module ppatc

go 1.22
