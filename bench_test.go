// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each regenerating the rows/series the paper reports (logged
// once per run), plus ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
package ppatc

import (
	"sync"
	"testing"

	"ppatc/internal/act"
	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/edram"
	"ppatc/internal/process"
	"ppatc/internal/synth"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
	"ppatc/internal/wafer"
	"ppatc/internal/yield"
)

// table2Cache shares the expensive headline evaluation across benches that
// only need its design points.
var (
	table2Once sync.Once
	table2Si   *core.PPAtC
	table2M3D  *core.PPAtC
	table2Text string
	table2Err  error
)

func table2(b *testing.B) (*core.PPAtC, *core.PPAtC, string) {
	b.Helper()
	table2Once.Do(func() {
		table2Si, table2M3D, table2Text, table2Err = Table2(MatmultInt(), GridUS)
	})
	if table2Err != nil {
		b.Fatal(table2Err)
	}
	return table2Si, table2M3D, table2Text
}

// BenchmarkFig2cEmbodiedPerWafer regenerates Fig. 2c: per-wafer embodied
// carbon of both processes across the four grids.
func BenchmarkFig2cEmbodiedPerWafer(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig2c()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFig2dStepEnergies regenerates Fig. 2d / Eq. 4: the step-count ×
// step-energy matrix of both flows.
func BenchmarkFig2dStepEnergies(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig2d()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkTable1FETMetrics regenerates the quantitative backing of
// Table I (device IEFF/IOFF comparison).
func BenchmarkTable1FETMetrics(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = Table1()
	}
	b.Log("\n" + out)
}

// BenchmarkTable2PPAtC regenerates Table II end to end: ISA simulation of
// matmul-int, SPICE characterization of both eDRAM macros, synthesis,
// floorplan, die count, and carbon accounting.
func BenchmarkTable2PPAtC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Table2(MatmultInt(), GridUS); err != nil {
			b.Fatal(err)
		}
	}
	_, _, text := table2(b)
	b.Log("\n" + text)
}

// BenchmarkFig4EnergyVsFreq regenerates Fig. 4: the M0 synthesis sweep over
// clock targets and VT flavours.
func BenchmarkFig4EnergyVsFreq(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFig5Lifetime regenerates Fig. 5: tC and tCDP month by month for
// both designs, with crossovers and the 24-month ratio.
func BenchmarkFig5Lifetime(b *testing.B) {
	si, m3d, _ := table2(b)
	b.ResetTimer()
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig5(si, m3d, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFig6aIsoline regenerates Fig. 6a: the tCDP-benefit map and
// isoline.
func BenchmarkFig6aIsoline(b *testing.B) {
	si, m3d, _ := table2(b)
	b.ResetTimer()
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig6a(si, m3d, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFig6bUncertainty regenerates Fig. 6b: isoline variants under
// lifetime, CI_use and yield uncertainty.
func BenchmarkFig6bUncertainty(b *testing.B) {
	si, m3d, _ := table2(b)
	b.ResetTimer()
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = Fig6b(si, m3d, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkAblationYieldModels compares per-good-die embodied carbon under
// the yield models of internal/yield, at the M3D design's die size.
func BenchmarkAblationYieldModels(b *testing.B) {
	_, m3d, _ := table2(b)
	models := []yield.Model{
		yield.PaperM3D,
		yield.Poisson{D0: 0.1},
		yield.Murphy{D0: 0.1},
		yield.NegativeBinomial{D0: 0.1, Alpha: 2.5},
		yield.Compound{Tiers: []yield.Model{
			yield.Fixed{Value: 0.90}, // Si tier
			yield.Fixed{Value: 0.80}, // CNFET tier 1
			yield.Fixed{Value: 0.80}, // CNFET tier 2
			yield.Fixed{Value: 0.87}, // IGZO tier
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			y, err := m.Yield(m3d.TotalArea)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := carbon.PerGoodDie(m3d.EmbodiedPerWafer.Total(), m3d.DiesPerWafer, y); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, m := range models {
		y, _ := m.Yield(m3d.TotalArea)
		c, _ := carbon.PerGoodDie(m3d.EmbodiedPerWafer.Total(), m3d.DiesPerWafer, y)
		b.Logf("%-28s yield %.3f → %.2f gCO2e per good die", m.Name(), y, c.Grams())
	}
}

// BenchmarkAblationDieEstimators compares the analytic die-per-wafer
// formula against geometric packing for both dies.
func BenchmarkAblationDieEstimators(b *testing.B) {
	si, m3d, _ := table2(b)
	spec := wafer.Paper300mm()
	dies := []wafer.Die{
		{Width: si.DieWidth, Height: si.DieHeight, Spacing: units.Millimeters(0.1)},
		{Width: m3d.DieWidth, Height: m3d.DieHeight, Spacing: units.Millimeters(0.1)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range dies {
			if _, err := wafer.EstimateFormula(spec, d); err != nil {
				b.Fatal(err)
			}
			if _, err := wafer.EstimateGeometric(spec, d); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i, d := range dies {
		f, _ := wafer.EstimateFormula(spec, d)
		g, _ := wafer.EstimateGeometric(spec, d)
		b.Logf("die %d (%.0f×%.0f µm): formula %d, geometric %d",
			i, d.Width.Micrometers(), d.Height.Micrometers(), f, g)
	}
}

// BenchmarkAblationRefreshPolicy sweeps the Si cell's storage capacitance,
// showing the retention/refresh-power trade the design rests on.
func BenchmarkAblationRefreshPolicy(b *testing.B) {
	caps := []float64{0.4e-15, 0.8e-15, 1.6e-15, 3.2e-15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range caps {
			d := edram.SiCellDesign()
			d.SNCap = c
			if _, err := edram.Build(d, edram.PaperArray(), edram.PaperPeriphery(d)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, c := range caps {
		d := edram.SiCellDesign()
		d.SNCap = c
		m, err := edram.Build(d, edram.PaperArray(), edram.PaperPeriphery(d))
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("SNCap %.1f fF: retention %.1f µs, refresh %.3f mW, write %.0f ps",
			c*1e15, m.Timing.Retention*1e6, m.RefreshPower*1e3, m.Timing.WriteDelay*1e12)
	}
}

// BenchmarkSpiceBitcellWrite measures the SPICE characterization cost of
// the M3D cell (the paper's Step-2 validation loop).
func BenchmarkSpiceBitcellWrite(b *testing.B) {
	d := edram.M3DCellDesign()
	for i := 0; i < b.N; i++ {
		if _, err := edram.CharacterizeCell(d, 15e-15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISASimulator measures the Cortex-M0 simulator's throughput on
// the headline workload (cycles simulated per wall second).
func BenchmarkISASimulator(b *testing.B) {
	w := MatmultInt()
	for i := 0; i < b.N; i++ {
		res, err := runWorkload(w)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res))
	}
}

// BenchmarkSynthesisSweep measures the Fig. 4 sweep alone.
func BenchmarkSynthesisSweep(b *testing.B) {
	d := synth.CortexM0()
	for i := 0; i < b.N; i++ {
		if _, err := synth.PaperSweep(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPAMatrix measures the Eq. 4 evaluation of both flows.
func BenchmarkEPAMatrix(b *testing.B) {
	tbl := process.DefaultEnergyTable()
	flows := []*process.Flow{process.AllSi7nm(), process.M3D7nm()}
	for i := 0; i < b.N; i++ {
		for _, f := range flows {
			if _, err := f.EPA(tbl); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIsolineMap measures the Fig. 6a map on a fine grid.
func BenchmarkIsolineMap(b *testing.B) {
	si, m3d, _ := table2(b)
	var embScales, opScales []float64
	for x := 0.25; x <= 3.0; x += 0.05 {
		embScales = append(embScales, x)
	}
	for y := 0.25; y <= 1.5; y += 0.05 {
		opScales = append(opScales, y)
	}
	s := tcdp.PaperScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tcdp.Map(m3d.DesignPoint(), si.DesignPoint(), s, 24, embScales, opScales); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTemperature characterizes both cells across the
// industrial temperature range, showing the Si refresh-power blowup the
// IGZO cell avoids.
func BenchmarkAblationTemperature(b *testing.B) {
	temps := []float64{0, 25, 55, 85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tc := range temps {
			d := edram.SiCellDesign().AtTemperature(tc)
			if _, err := edram.Build(d, edram.PaperArray(), edram.PaperPeriphery(d)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, tc := range temps {
		si := edram.SiCellDesign().AtTemperature(tc)
		mSi, err := edram.Build(si, edram.PaperArray(), edram.PaperPeriphery(si))
		if err != nil {
			b.Fatal(err)
		}
		m3d := edram.M3DCellDesign().AtTemperature(tc)
		tM3D, err := edram.CharacterizeCell(m3d, 15e-15)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%3.0f°C: Si retention %8.1f µs (refresh %6.3f mW) | M3D retention %10.3g s",
			tc, mSi.Timing.Retention*1e6, mSi.RefreshPower*1e3, tM3D.Retention)
	}
}

// BenchmarkAblationTierCount sweeps the number of stacked CNFET tiers in
// the generalized M3D flow, showing how embodied carbon scales with 3D
// integration depth (the "which directions to pursue" question).
func BenchmarkAblationTierCount(b *testing.B) {
	tbl := process.DefaultEnergyTable()
	configs := make([]process.M3DConfig, 0, 4)
	for tiers := 1; tiers <= 4; tiers++ {
		cfg := process.PaperM3DConfig()
		cfg.CNFETTiers = tiers
		configs = append(configs, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			f, err := process.BuildM3D(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.EPA(tbl); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, cfg := range configs {
		f, _ := process.BuildM3D(cfg)
		epa, _ := f.EPA(tbl)
		gpa, _ := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
		bd, err := carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
			MPA:       process.SiWaferMPA(),
			GPA:       gpa,
			EPA:       epa,
			CIFab:     carbon.GridUS.Intensity,
			WaferArea: units.SquareCentimeters(706.858),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%d CNFET tiers + %d IGZO: EPA %6.1f kWh (%.3f× iN7) → %4.0f kgCO2e/wafer",
			cfg.CNFETTiers, cfg.IGZOTiers, epa.KilowattHours(),
			epa.KilowattHours()/process.IN7Reference().KilowattHours(),
			bd.Total().Kilograms())
	}
}

// BenchmarkMonteCarloRobustness samples the Fig. 6b uncertainty model and
// reports the probability that the M3D design stays more carbon-efficient.
func BenchmarkMonteCarloRobustness(b *testing.B) {
	si, m3d, _ := table2(b)
	s := tcdp.PaperScenario()
	model := tcdp.PaperUncertainty()
	b.ResetTimer()
	var res *tcdp.MonteCarloResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = tcdp.MonteCarlo(m3d.DesignPoint(), si.DesignPoint(), s, model, 20000, 2025)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Format())
}

// BenchmarkClockSweepTCDP extends the case study beyond the paper's fixed
// 500 MHz: tCDP across the feasible clock range, exposing the
// carbon-optimal operating point for each design.
func BenchmarkClockSweepTCDP(b *testing.B) {
	freqs := []units.Frequency{
		units.Megahertz(100), units.Megahertz(200), units.Megahertz(300),
		units.Megahertz(400), units.Megahertz(500), units.Megahertz(600),
		units.Megahertz(800), units.Gigahertz(1),
	}
	w := MatmultInt()
	var si, m3d []core.ClockSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		si, err = core.ClockSweep(core.AllSiSystem(), w, GridUS, 24, freqs)
		if err != nil {
			b.Fatal(err)
		}
		m3d, err = core.ClockSweep(core.M3DSystem(), w, GridUS, 24, freqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	out, err := core.FormatClockSweep("all-Si", si, "M3D", m3d)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + out)
	if best, err := core.BestClock(m3d); err == nil {
		b.Logf("M3D carbon-optimal clock: %v (tCDP %.4f gCO2e·s)", best.Clock, best.TCDP)
	}
}

// BenchmarkWorkloadSuite runs the full PPAtC pipeline over every bundled
// workload on both designs, reporting per-workload carbon efficiency.
func BenchmarkWorkloadSuite(b *testing.B) {
	var rows []core.SuiteRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Suite(GridUS)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + core.FormatSuite(rows))
}

// BenchmarkBaselineACTComparison compares the ACT-style top-down baseline
// (paper reference [6]) against this repository's bottom-up model: they
// agree on the all-Si die, and ACT simply has no entry for the M3D
// process — the gap the paper's contribution fills.
func BenchmarkBaselineACTComparison(b *testing.B) {
	si, m3d, _ := table2(b)
	b.ResetTimer()
	var actDie units.Carbon
	for i := 0; i < b.N; i++ {
		var err error
		actDie, err = act.EmbodiedPerGoodDie(act.Inputs{
			Node:    act.Node7,
			DieArea: si.TotalArea,
			Grid:    GridUS.Intensity,
			Yield:   si.Yield,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("all-Si die: ACT %.2f g vs bottom-up %.2f g (ACT prices net die area; the gap is wafer-level scribe/edge amortization)",
		actDie.Grams(), si.EmbodiedPerGoodDie.Grams())
	b.Logf("M3D process %q: ACT support = %v (no table entry — the paper's gap)",
		m3d.System, act.SupportsProcess("M3D IGZO/CNFET/Si"))
	tbl, err := act.FormatTable(GridUS.Intensity)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + tbl)
}

// BenchmarkWaterAblation reports the water-usage extension across flows.
func BenchmarkWaterAblation(b *testing.B) {
	wt := process.DefaultWaterTable()
	flows := []*process.Flow{process.AllSi7nm(), process.M3D7nm()}
	b.ResetTimer()
	var vals []float64
	for i := 0; i < b.N; i++ {
		vals = vals[:0]
		for _, f := range flows {
			w, err := f.Water(wt)
			if err != nil {
				b.Fatal(err)
			}
			vals = append(vals, w)
		}
	}
	for i, f := range flows {
		b.Logf("%-26s %6.0f L ultrapure water per wafer", f.Name, vals[i])
	}
}

// BenchmarkAblationCellTopology compares the paper's 3T IGZO/CNFET cell
// against the capacitorless 2T0C all-IGZO topology of its references
// [13]/[33] — the "alternative memory cell topologies" extension.
func BenchmarkAblationCellTopology(b *testing.B) {
	designs := []edram.CellDesign{edram.M3DCellDesign(), edram.TwoT0CCellDesign()}
	const blCap = 15e-15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range designs {
			if _, err := edram.CharacterizeCell(d, blCap); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, d := range designs {
		tm, err := edram.CharacterizeCell(d, blCap)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%-20s cell %.3f µm²: write %7.0f ps, read %10.0f ps, retention %9.3g s",
			d.Name, d.CellArea().SquareMicrometers(),
			tm.WriteDelay*1e12, tm.ReadDelay*1e12, tm.Retention)
	}
	b.Log("the 2T0C cell is smaller and still refresh-free, but its IGZO-driven read misses the 2 ns single-cycle contract — why the paper pays for CNFETs in the read path")
}

// BenchmarkSleepModeExtension extends Eq. 6 with state-preserving standby:
// if the system sleeps (instead of powering off) between its 2 h/day
// sessions, the Si design keeps refreshing its eDRAMs while the M3D
// design's >10⁵ s IGZO retention lets it power-gate — the retention
// advantage moves from a per-cycle nicety to the dominant lifetime term.
func BenchmarkSleepModeExtension(b *testing.B) {
	si, m3d, _ := table2(b)
	u := carbon.UsagePattern{StartHour: 20, HoursPerDay: 2, Lifetime: 24}
	prof := carbon.Flat(GridUS)
	// Standby power: both memories keep retention running; logic is
	// power-gated. Si pays refresh + memory leakage ×2; M3D pays a
	// power-gated residue.
	siStandby := units.Watts(2 * (si.Memory.RefreshPower + si.Memory.LeakagePower*0.1))
	m3dStandby := units.Microwatts(10)
	b.ResetTimer()
	var siTC, m3dTC float64
	for i := 0; i < b.N; i++ {
		cSi, err := carbon.OperationalWithStandby(si.OperationalPower, siStandby, u, prof)
		if err != nil {
			b.Fatal(err)
		}
		cM3D, err := carbon.OperationalWithStandby(m3d.OperationalPower, m3dStandby, u, prof)
		if err != nil {
			b.Fatal(err)
		}
		siTC = si.EmbodiedPerGoodDie.Grams() + cSi.Grams()
		m3dTC = m3d.EmbodiedPerGoodDie.Grams() + cM3D.Grams()
	}
	offBase, _ := carbon.Operational(si.OperationalPower, u, prof)
	b.Logf("off-when-idle  : Si tC %.2f g vs M3D %.2f g (ratio %.3f)",
		si.EmbodiedPerGoodDie.Grams()+offBase.Grams(),
		m3d.EmbodiedPerGoodDie.Grams()+func() float64 { c, _ := carbon.Operational(m3d.OperationalPower, u, prof); return c.Grams() }(),
		(si.EmbodiedPerGoodDie.Grams()+offBase.Grams())/(m3d.EmbodiedPerGoodDie.Grams()+func() float64 { c, _ := carbon.Operational(m3d.OperationalPower, u, prof); return c.Grams() }()))
	b.Logf("sleep-with-state: Si tC %.2f g (standby %.3f mW) vs M3D %.2f g → ratio %.3f",
		siTC, siStandby.Milliwatts(), m3dTC, siTC/m3dTC)
	if be, err := carbon.StandbyBreakEven(si.OperationalPower, u, prof); err == nil {
		b.Logf("standby break-even (operational carbon doubles): %.3f mW", be.Milliwatts())
	}
}
