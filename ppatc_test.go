package ppatc

import (
	"strings"
	"testing"

	"ppatc/internal/embench"
	"ppatc/internal/thumb"
)

// runWorkload executes a workload on a fresh simulator and reports its
// cycle count (shared with bench_test.go).
func runWorkload(w Workload) (uint64, error) {
	res, err := embench.Run(w, 1<<34)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

func TestFacadeGrids(t *testing.T) {
	if GridUS.Intensity.GramsPerKilowattHour() != 380 {
		t.Error("US grid wrong")
	}
	if GridCoal.Name != "Coal" || GridSolar.Name != "Solar" || GridTaiwan.Name != "Taiwan" {
		t.Error("grid names wrong")
	}
}

func TestFacadeSystems(t *testing.T) {
	si := AllSiSystem()
	m3d := M3DSystem()
	if si.Name == m3d.Name {
		t.Error("systems must differ")
	}
	if err := si.Validate(); err != nil {
		t.Error(err)
	}
	if err := m3d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) < 5 {
		t.Fatalf("want ≥ 5 workloads, got %d", len(ws))
	}
	if MatmultInt().Name != "matmult-int" {
		t.Error("matmult facade wrong")
	}
	if _, err := runWorkload(ws[0]); err != nil {
		t.Fatal(err)
	}
	_ = thumb.StackTop // facade exposes the substrate packages transitively
}

func TestExperimentDriversProduceOutput(t *testing.T) {
	out, err := Fig2c()
	if err != nil || !strings.Contains(out, "average") {
		t.Errorf("Fig2c: %v, %q", err, out)
	}
	out, err = Fig2d()
	if err != nil || !strings.Contains(out, "EPA total") {
		t.Errorf("Fig2d: %v", err)
	}
	if out := Table1(); !strings.Contains(out, "CNFET") || !strings.Contains(out, "IGZO") {
		t.Error("Table1 missing devices")
	}
	out, err = Fig4()
	if err != nil || !strings.Contains(out, "SLVT") {
		t.Errorf("Fig4: %v", err)
	}
}
