// Package ppatc reproduces "Quantifying Trade-Offs in Power, Performance,
// Area, and Total Carbon Footprint of Future Three-Dimensional Integrated
// Computing Systems" (DATE 2025): embodied-carbon models for monolithic-3D
// processes with beyond-Si devices, a complete PPAtC evaluation of an ARM
// Cortex-M0 + eDRAM embedded system in an all-Si and an M3D IGZO/CNFET/Si
// 7 nm process, and tCDP carbon-efficiency analysis under uncertainty.
//
// This root package is a thin facade over the implementation packages:
//
//	internal/process   fabrication flows and per-step energy (Eq. 4)
//	internal/carbon    embodied/operational carbon (Eqs. 1-3, 5-8)
//	internal/wafer     die-per-wafer estimation
//	internal/yield     yield models
//	internal/device    virtual-source FET compact models (Si/CNFET/IGZO)
//	internal/spice     MNA circuit simulator
//	internal/edram     3T gain-cell eDRAM macro model
//	internal/stdcell   ASAP7-style cell library corners
//	internal/synth     M0 synthesis and timing closure
//	internal/thumb     ARMv6-M assembler + Cortex-M0 simulator
//	internal/embench   Embench-style workloads with golden models
//	internal/power     VCD waveforms and activity-based power
//	internal/floorplan chip composition
//	internal/gds       GDSII layout of the M3D array
//	internal/tcdp      tC-vs-lifetime, tCDP, isolines (Figs. 5-6)
//	internal/core      the PPAtC engine and experiment drivers
//
// The quickest entry points:
//
//	si, m3d, table, err := ppatc.Table2(ppatc.MatmultInt(), ppatc.GridUS)
//	fig5, err := ppatc.Fig5(si, m3d, 24)
package ppatc

import (
	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
)

// Re-exported core types.
type (
	// SystemDesign is a technology realization of the embedded system.
	SystemDesign = core.SystemDesign
	// PPAtC is a full evaluation result (Table II row set).
	PPAtC = core.PPAtC
	// Workload is an Embench-style benchmark.
	Workload = embench.Workload
	// Grid is an electricity supply with its carbon intensity.
	Grid = carbon.Grid
)

// Canonical grids (Fig. 2c).
var (
	GridUS     = carbon.GridUS
	GridCoal   = carbon.GridCoal
	GridSolar  = carbon.GridSolar
	GridTaiwan = carbon.GridTaiwan
)

// AllSiSystem returns the baseline all-Si design (Fig. 1c).
func AllSiSystem() SystemDesign { return core.AllSiSystem() }

// M3DSystem returns the M3D IGZO/CNFET/Si design (Fig. 1b).
func M3DSystem() SystemDesign { return core.M3DSystem() }

// MatmultInt returns the paper's headline workload.
func MatmultInt() Workload { return embench.MatmultInt() }

// Workloads returns the bundled workload suite.
func Workloads() []Workload { return embench.Workloads() }

// Evaluate runs the full design flow for a system and workload.
func Evaluate(sys SystemDesign, w Workload, grid Grid) (*PPAtC, error) {
	return core.Evaluate(sys, w, grid)
}

// Experiment drivers — one per table/figure of the paper.
var (
	Fig2c  = core.Fig2c
	Fig2d  = core.Fig2d
	Table1 = core.Table1
	Table2 = core.Table2
	Fig4   = core.Fig4
	Fig5   = core.Fig5
	Fig6a  = core.Fig6a
	Fig6b  = core.Fig6b
)
