package ppatc_test

import (
	"fmt"
	"log"

	"ppatc"
	"ppatc/internal/carbon"
	"ppatc/internal/process"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// ExampleEvaluate runs the full design flow for the M3D system on a light
// workload and prints the per-good-die embodied carbon.
func ExampleEvaluate() {
	var sieve ppatc.Workload
	for _, w := range ppatc.Workloads() {
		if w.Name == "sieve" {
			sieve = w
		}
	}
	res, err := ppatc.Evaluate(ppatc.M3DSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embodied carbon per good die: %.2f gCO2e\n", res.EmbodiedPerGoodDie.Grams())
	// Output:
	// embodied carbon per good die: 3.80 gCO2e
}

// ExampleFlow_EPA prices the two fabrication processes of Fig. 2.
func ExampleFlow_EPA() {
	tbl := process.DefaultEnergyTable()
	for _, f := range []*process.Flow{process.AllSi7nm(), process.M3D7nm()} {
		epa, err := f.EPA(tbl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.0f kWh/wafer\n", f.Name, epa.KilowattHours())
	}
	// Output:
	// all-Si 7nm: 702 kWh/wafer
	// M3D IGZO/CNFET/Si 7nm: 1086 kWh/wafer
}

// ExampleOperational evaluates Eq. 8 for the paper's usage pattern.
func ExampleOperational() {
	c, err := carbon.Operational(
		units.Milliwatts(9.71),
		carbon.PaperUsage,
		carbon.Flat(carbon.GridUS),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("24-month operational carbon: %.2f gCO2e\n", c.Grams())
	// Output:
	// 24-month operational carbon: 5.39 gCO2e
}

// ExampleRatio reproduces the headline carbon-efficiency comparison from
// pre-computed design points (the values of Table II).
func ExampleRatio() {
	execTime := 20047423 * 2e-9
	si := tcdp.DesignPoint{
		Name: "all-Si", Embodied: units.GramsCO2e(3.26),
		Power: units.Milliwatts(9.714), ExecTime: execTime, Yield: 0.90,
	}
	m3d := tcdp.DesignPoint{
		Name: "M3D", Embodied: units.GramsCO2e(3.80),
		Power: units.Milliwatts(8.443), ExecTime: execTime, Yield: 0.50,
	}
	r, err := tcdp.Ratio(si, m3d, tcdp.PaperScenario(), 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tCDP(all-Si)/tCDP(M3D) at 24 months: %.2f\n", r)
	// Output:
	// tCDP(all-Si)/tCDP(M3D) at 24 months: 1.02
}
