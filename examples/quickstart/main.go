// Quickstart: evaluate the paper's two embedded-system designs end to end
// and print the Table II comparison plus the headline carbon-efficiency
// result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppatc"
	"ppatc/internal/core"
	"ppatc/internal/tcdp"
)

func main() {
	// The headline workload: Embench-style matmul-int, calibrated to the
	// paper's 20,047,348 cycles at 500 MHz.
	workload := ppatc.MatmultInt()

	si, m3d, table, err := ppatc.Table2(workload, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PPAtC comparison (Table II):")
	fmt.Println(table)

	// Carbon efficiency over the representative lifetime: 2 h/day for
	// 24 months on the US grid.
	scenario := tcdp.PaperScenario()
	ratio, err := tcdp.Ratio(si.DesignPoint(), m3d.DesignPoint(), scenario, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tCDP(all-Si) / tCDP(M3D) at 24 months = %.3f\n", ratio)
	if ratio > 1 {
		fmt.Printf("→ the M3D design is %.2f× more carbon-efficient (paper: 1.02×)\n", ratio)
	} else {
		fmt.Printf("→ the all-Si design is %.2f× more carbon-efficient\n", 1/ratio)
	}

	// Where do the carbon curves cross?
	if c, err := tcdp.DesignCrossover(si.DesignPoint(), m3d.DesignPoint(), scenario); err == nil {
		fmt.Printf("tC curves cross at %.1f months: before that the M3D design emits more\n", float64(c))
	}
	_ = core.PaperClock // the full engine is available under internal/core
}
