// Uncertainty: the Fig. 6b experiment — how robust is the "M3D is more
// carbon-efficient" conclusion to uncertainty in lifetime, use-phase
// carbon intensity, yield and the embodied model? A thin wrapper over
// the dse engine: the paper's uncertainty model becomes distribution
// axes in a sweep spec, and the win-probability and sensitivity analyses
// replace the hand-rolled isoline scan.
//
//	go run ./examples/uncertainty
package main

import (
	"context"
	"fmt"
	"log"

	"ppatc/internal/dse"
)

func main() {
	// The paper's Fig. 6b uncertainty model (tcdp.PaperUncertainty) as
	// sweep axes: every replica draws one joint scenario, applied to both
	// systems — paired comparison, like tcdp.MonteCarlo.
	spec := &dse.Spec{
		Name:    "uncertainty",
		Seed:    2025,
		Samples: 2000,
		Axes: dse.Axes{
			Workload:         []string{"sieve"},
			LifetimeMonths:   &dse.NumericAxis{Dist: &dse.DistSpec{Kind: "uniform", Lo: 18, Hi: 30}},
			CIUseScale:       &dse.NumericAxis{Dist: &dse.DistSpec{Kind: "loguniform", Lo: 1.0 / 3, Hi: 3}},
			M3DYield:         &dse.NumericAxis{Dist: &dse.DistSpec{Kind: "uniform", Lo: 0.10, Hi: 0.90}},
			M3DEmbodiedScale: &dse.NumericAxis{Dist: &dse.DistSpec{Kind: "triangular", Lo: 0.8, Mode: 1.0, Hi: 1.2}},
		},
		Objectives: []dse.Objective{{Metric: "tcdp_gs"}},
	}
	results, err := dse.Run(context.Background(), spec, dse.Options{})
	if err != nil {
		log.Fatal(err)
	}

	win, err := dse.Winners(results, dse.Objective{Metric: "tcdp_gs"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dse.FormatWinners(win))

	sens, err := dse.Sensitivity(results, "tcdp_gs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(dse.FormatSensitivity(sens, "tcdp_gs"))

	p := win.Probability["M3D IGZO/CNFET/Si"]
	fmt.Printf("\nAcross %d joint draws of lifetime, CI_use, M3D yield and embodied\n", win.Groups)
	fmt.Printf("scale, the M3D design is the more carbon-efficient choice in %.0f%%\n", 100*p)
	fmt.Println("of scenarios — the paper's Sec. III-D robustness argument, regenerated")
	fmt.Println("as a declarative sweep. The sensitivity table shows which assumption")
	fmt.Println("moves the verdict most (correlation of each axis with tCDP).")
}
