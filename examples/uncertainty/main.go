// Uncertainty: the Fig. 6b experiment — how robust is the "M3D is more
// carbon-efficient" conclusion to uncertainty in lifetime, use-phase
// carbon intensity and yield? Prints the isoline family and identifies
// operating regions where the verdict survives every perturbation.
//
//	go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"ppatc"
	"ppatc/internal/tcdp"
)

func main() {
	var sieve ppatc.Workload
	for _, w := range ppatc.Workloads() {
		if w.Name == "sieve" {
			sieve = w
		}
	}
	si, err := ppatc.Evaluate(ppatc.AllSiSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}
	m3d, err := ppatc.Evaluate(ppatc.M3DSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}

	s := tcdp.PaperScenario()
	variants, err := tcdp.UncertaintySet(m3d.DesignPoint(), si.DesignPoint(), s, 24)
	if err != nil {
		log.Fatal(err)
	}

	opScales := []float64{0.25, 0.5, 0.75, 1.0, 1.25}
	fmt.Println("Embodied-carbon scale at which the designs tie (tCDP isoline),")
	fmt.Println("per operational-energy scale of the M3D design:")
	fmt.Printf("%-20s", "variant")
	for _, y := range opScales {
		fmt.Printf(" %8.2f", y)
	}
	fmt.Println()
	minAt := make([]float64, len(opScales))
	for i := range minAt {
		minAt[i] = 1e300
	}
	for _, v := range variants {
		fmt.Printf("%-20s", v.Name)
		for i, y := range opScales {
			x := v.Isoline(y)
			fmt.Printf(" %8.3f", x)
			if x < minAt[i] {
				minAt[i] = x
			}
		}
		fmt.Println()
	}

	fmt.Println("\nRobust-win region (M3D better under EVERY perturbation):")
	for i, y := range opScales {
		if minAt[i] > 0 {
			fmt.Printf("  op scale %.2f: embodied scale below %.3f\n", y, minAt[i])
		} else {
			fmt.Printf("  op scale %.2f: no robust win\n", y)
		}
	}
	fmt.Println("\nEven with worst-case yield, lifetime and grid assumptions, an M3D")
	fmt.Println("process whose operational energy is ≤ half the projection keeps a")
	fmt.Println("robust carbon-efficiency win across a wide embodied-carbon range —")
	fmt.Println("the paper's Sec. III-D argument, regenerated.")
}
