// Gridsweep: the Fig. 2c experiment extended with user-defined grids —
// where should a fab buy its electricity to minimize the embodied carbon
// of each process, and how does the M3D premium move with grid intensity?
// A thin wrapper over the dse engine: the sweep is declared as a spec
// (grid axis = the paper's four grids plus two hypothetical fabs built
// with carbon.CustomGrid) and evaluated by the parallel sweep engine.
//
//	go run ./examples/gridsweep
package main

import (
	"context"
	"fmt"
	"log"

	"ppatc/internal/dse"
)

func main() {
	spec := &dse.Spec{
		Name: "gridsweep",
		Axes: dse.Axes{
			Workload: []string{"huff"},
			Grid: &dse.GridAxis{
				// The paper's four grids plus a wind-powered fab and a
				// 2035-projection mixed grid.
				Names: []string{"US", "Coal", "Solar", "Taiwan"},
				Custom: []dse.CustomGridSpec{
					{Name: "Wind", GPerKWh: 11},
					{Name: "Mix2035", GPerKWh: 200},
				},
			},
		},
	}
	results, err := dse.Run(context.Background(), spec, dse.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Pair the two systems per grid, preserving the spec's grid order.
	type row struct{ si, m3d float64 }
	perGrid := map[string]*row{}
	var order []string
	for _, r := range results {
		e, ok := perGrid[r.Grid]
		if !ok {
			e = &row{}
			perGrid[r.Grid] = e
			order = append(order, r.Grid)
		}
		if r.System == "all-Si" {
			e.si = r.EmbodiedWaferKG
		} else {
			e.m3d = r.EmbodiedWaferKG
		}
	}

	fmt.Printf("%-10s %18s %18s %8s %22s\n",
		"grid", "all-Si (kgCO2e)", "M3D (kgCO2e)", "ratio", "M3D premium (kgCO2e)")
	for _, g := range order {
		e := perGrid[g]
		fmt.Printf("%-10s %18.0f %18.0f %8.3f %22.0f\n",
			g, e.si, e.m3d, e.m3d/e.si, e.m3d-e.si)
	}

	fmt.Println("\nTakeaway: the M3D process's extra fabrication energy matters most on")
	fmt.Println("dirty grids; on solar/wind fabs the ratio collapses toward the fixed")
	fmt.Println("materials + gas floor, which favours pursuing M3D integration.")
}
