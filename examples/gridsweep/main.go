// Gridsweep: the Fig. 2c experiment extended with a user-defined grid —
// where should a fab buy its electricity to minimize the embodied carbon
// of each process, and how does the M3D premium move with grid intensity?
//
//	go run ./examples/gridsweep
package main

import (
	"fmt"
	"log"

	"ppatc/internal/carbon"
	"ppatc/internal/process"
	"ppatc/internal/units"
)

func main() {
	flows := []*process.Flow{process.AllSi7nm(), process.M3D7nm()}
	tbl := process.DefaultEnergyTable()
	waferArea := units.SquareCentimeters(706.858)

	// The paper's four grids plus two hypothetical fabs: a wind-powered
	// one and a 2035-projection mixed grid.
	grids := append(carbon.Grids(),
		carbon.Grid{Name: "Wind", Intensity: units.GramsPerKilowattHour(11)},
		carbon.Grid{Name: "Mix2035", Intensity: units.GramsPerKilowattHour(200)},
	)

	fmt.Printf("%-10s %18s %18s %8s %22s\n",
		"grid", "all-Si (kgCO2e)", "M3D (kgCO2e)", "ratio", "M3D premium (kgCO2e)")
	for _, g := range grids {
		var totals [2]units.Carbon
		for i, f := range flows {
			epa, err := f.EPA(tbl)
			if err != nil {
				log.Fatal(err)
			}
			gpa, err := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
			if err != nil {
				log.Fatal(err)
			}
			b, err := carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
				MPA:       process.SiWaferMPA(),
				GPA:       gpa,
				EPA:       epa,
				CIFab:     g.Intensity,
				WaferArea: waferArea,
			})
			if err != nil {
				log.Fatal(err)
			}
			totals[i] = b.Total()
		}
		fmt.Printf("%-10s %18.0f %18.0f %8.3f %22.0f\n",
			g.Name, totals[0].Kilograms(), totals[1].Kilograms(),
			totals[1].Kilograms()/totals[0].Kilograms(),
			totals[1].Kilograms()-totals[0].Kilograms())
	}

	fmt.Println("\nTakeaway: the M3D process's extra fabrication energy matters most on")
	fmt.Println("dirty grids; on solar/wind fabs the ratio collapses toward the fixed")
	fmt.Println("materials + gas floor, which favours pursuing M3D integration.")
}
