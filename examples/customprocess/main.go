// Customprocess: build your own fabrication flow with the process-modeling
// API — here a single-tier CNFET M3D variant (no IGZO tier, one CNFET
// tier) — and compare its fabrication energy and embodied carbon against
// the paper's two processes. This is the extension path the paper's
// conclusion invites: "new materials and processes".
//
//	go run ./examples/customprocess
package main

import (
	"fmt"
	"log"

	"ppatc/internal/carbon"
	"ppatc/internal/process"
	"ppatc/internal/units"
)

// singleTierM3D builds a reduced M3D flow: FEOL, M1-M4, one CNFET tier,
// and six upper metal layers.
func singleTierM3D() *process.Flow {
	f := &process.Flow{Name: "M3D 1-tier CNFET 7nm"}
	f.Segments = append(f.Segments, process.Segment{
		Name:        "FEOL+MOL (Si FinFET, iN7 reference)",
		FixedEnergy: units.KilowattHours(process.FEOLEnergyKWh),
	})
	mv := func(name string, pitch int) {
		seg, err := process.MetalViaPair(name, pitch)
		if err != nil {
			log.Fatal(err)
		}
		f.Segments = append(f.Segments, seg)
	}
	mv("M1", 36)
	mv("M2", 36)
	mv("M3", 36)
	mv("M4", 48)
	f.Segments = append(f.Segments, process.CNFETTier("CNFET tier 1"))
	mv("M5", 36)
	mv("M6", 36)
	mv("M7", 48)
	mv("M8", 64)
	mv("M9", 64)
	mv("M10", 80)
	return f
}

func main() {
	tbl := process.DefaultEnergyTable()
	waferArea := units.SquareCentimeters(706.858)
	flows := []*process.Flow{
		process.AllSi7nm(),
		singleTierM3D(),
		process.M3D7nm(),
	}

	fmt.Printf("%-26s %14s %10s %18s\n", "process", "EPA (kWh)", "vs iN7", "wafer carbon (US)")
	for _, f := range flows {
		epa, err := f.EPA(tbl)
		if err != nil {
			log.Fatal(err)
		}
		gpa, err := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
		if err != nil {
			log.Fatal(err)
		}
		b, err := carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
			MPA:       process.SiWaferMPA(),
			GPA:       gpa,
			EPA:       epa,
			CIFab:     carbon.GridUS.Intensity,
			WaferArea: waferArea,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %14.1f %10.3f %18.0f kgCO2e\n",
			f.Name, epa.KilowattHours(),
			epa.KilowattHours()/process.IN7Reference().KilowattHours(),
			b.Total().Kilograms())
	}

	// Show where the single-tier flow spends its energy.
	fmt.Println("\nSegment energy of the custom flow:")
	segs, err := singleTierM3D().SegmentEnergy(tbl)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range segs {
		fmt.Printf("  %-40s %8.1f kWh (%d steps)\n", s.Name, s.Energy.KilowattHours(), s.Steps)
	}
	fmt.Println("\nA single-tier CNFET process splits the difference: one BEOL tier of")
	fmt.Println("high-drive devices costs far less fabrication energy than the full")
	fmt.Println("two-CNFET-plus-IGZO stack, at the cost of the IGZO retention benefit.")
}
