// Lifetime: the Fig. 5 experiment with diurnal carbon-intensity profiles —
// how do usage window and grid shape move the tC crossover between the
// all-Si and M3D designs?
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"ppatc"
	"ppatc/internal/carbon"
	"ppatc/internal/tcdp"
)

func main() {
	// Evaluate with a lighter workload to keep the example snappy; the
	// carbon math only needs the design points.
	workloads := ppatc.Workloads()
	var sieve ppatc.Workload
	for _, w := range workloads {
		if w.Name == "sieve" {
			sieve = w
		}
	}
	si, err := ppatc.Evaluate(ppatc.AllSiSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}
	m3d, err := ppatc.Evaluate(ppatc.M3DSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}
	a, b := si.DesignPoint(), m3d.DesignPoint()

	scenarios := []struct {
		name string
		s    tcdp.Scenario
	}{
		{"flat grid, 8-10 pm", tcdp.PaperScenario()},
		{"evening-peak grid, 8-10 pm", tcdp.Scenario{
			StartHour: 20, HoursPerDay: 2,
			Profile: carbon.EveningPeak(carbon.GridUS.Intensity),
		}},
		{"evening-peak grid, 1-3 pm (midday shift)", tcdp.Scenario{
			StartHour: 13, HoursPerDay: 2,
			Profile: carbon.EveningPeak(carbon.GridUS.Intensity),
		}},
		{"solar-day grid, 11 am-1 pm", tcdp.Scenario{
			StartHour: 11, HoursPerDay: 2,
			Profile: carbon.SolarDay(carbon.GridUS.Intensity),
		}},
	}

	fmt.Printf("%-42s %14s %14s %14s %12s\n",
		"scenario", "Si emb<op (mo)", "M3D emb<op", "tC cross (mo)", "ratio @24mo")
	for _, sc := range scenarios {
		cSi, err := tcdp.EmbodiedOperationalCrossover(a, sc.s)
		if err != nil {
			log.Fatal(err)
		}
		cM3D, err := tcdp.EmbodiedOperationalCrossover(b, sc.s)
		if err != nil {
			log.Fatal(err)
		}
		cross := "never"
		if c, err := tcdp.DesignCrossover(a, b, sc.s); err == nil {
			cross = fmt.Sprintf("%.1f", float64(c))
		}
		ratio, err := tcdp.Ratio(a, b, sc.s, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %14.1f %14.1f %14s %12.3f\n",
			sc.name, float64(cSi), float64(cM3D), cross, ratio)
	}

	fmt.Println("\nShifting usage into cleaner hours stretches every crossover: embodied")
	fmt.Println("carbon stays fixed while each operational gram takes longer to accrue,")
	fmt.Println("so longer service lives are needed before the M3D energy advantage pays")
	fmt.Println("back its fabrication premium.")
}
