// Actcompare: the baseline comparison the paper motivates — the ACT-style
// top-down model (paper reference [6]) prices silicon nodes per area, but
// has no entry for beyond-Si M3D processes. This example shows the two
// models agreeing on the all-Si design and the ACT table simply running
// out when asked about the M3D process, which is exactly the gap the
// paper's bottom-up per-step model fills.
//
//	go run ./examples/actcompare
package main

import (
	"fmt"
	"log"

	"ppatc"
	"ppatc/internal/act"
	"ppatc/internal/process"
)

func main() {
	var sieve ppatc.Workload
	for _, w := range ppatc.Workloads() {
		if w.Name == "sieve" {
			sieve = w
		}
	}
	si, err := ppatc.Evaluate(ppatc.AllSiSystem(), sieve, ppatc.GridUS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ACT-style CPA table (US grid):")
	tbl, err := act.FormatTable(ppatc.GridUS.Intensity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)

	// Where the models overlap: pricing the all-Si wafer.
	cpa, err := act.CPA(act.Node7, ppatc.GridUS.Intensity)
	if err != nil {
		log.Fatal(err)
	}
	waferACT := cpa.GramsPerSquareCentimeter() * 706.858 / 1000 // kg per 300 mm wafer
	fmt.Printf("all-Si 300 mm wafer:  ACT %.0f kgCO2e  vs  bottom-up %.0f kgCO2e\n",
		waferACT, si.EmbodiedPerWafer.Total().Kilograms())

	actDie, err := act.EmbodiedPerGoodDie(act.Inputs{
		Node:    act.Node7,
		DieArea: si.TotalArea,
		Grid:    ppatc.GridUS.Intensity,
		Yield:   si.Yield,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-Si good die:      ACT %.2f gCO2e  vs  bottom-up %.2f gCO2e\n",
		actDie.Grams(), si.EmbodiedPerGoodDie.Grams())
	fmt.Println("(ACT prices net die area; the difference is the wafer-level")
	fmt.Println(" scribe/edge/flat amortization the bottom-up flow carries.)")

	// Where ACT runs out.
	m3dName := process.M3D7nm().Name
	fmt.Printf("\nM3D process %q:\n", m3dName)
	if act.SupportsProcess(m3dName) {
		fmt.Println("  ACT claims support — unexpected!")
	} else {
		fmt.Println("  no ACT table entry: CNFET/IGZO BEOL tiers are outside its")
		fmt.Println("  silicon-only node list. Pricing this process requires the")
		fmt.Println("  paper's per-step model (internal/process), which reports")
		epa, err := process.M3D7nm().EPA(process.DefaultEnergyTable())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  EPA = %.0f kWh/wafer → 1104 kgCO2e on the US grid.\n", epa.KilowattHours())
	}
}
