// Command edramsim characterizes the eDRAM bit cells with the SPICE
// engine (write transient, read transient, retention), then builds the
// full 64 kB macro model and reports timing, energy, refresh and area —
// Step 2 of the paper's design flow.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"ppatc/internal/edram"
	"ppatc/internal/spice"
	"ppatc/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edramsim:", err)
		os.Exit(1)
	}
}

func run() error {
	cellName := flag.String("cell", "both", "cell to characterize: si, m3d, or both")
	clkMHz := flag.Float64("clock", 500, "clock frequency in MHz for the timing check")
	deckPath := flag.String("deck", "", "simulate a SPICE deck file instead (needs a .tran card)")
	probe := flag.String("probe", "", "comma-separated nodes to report for -deck (default: all)")
	flag.Parse()

	if *deckPath != "" {
		return runDeck(*deckPath, *probe)
	}

	var designs []edram.CellDesign
	switch *cellName {
	case "si":
		designs = []edram.CellDesign{edram.SiCellDesign()}
	case "m3d":
		designs = []edram.CellDesign{edram.M3DCellDesign()}
	case "both":
		designs = []edram.CellDesign{edram.SiCellDesign(), edram.M3DCellDesign()}
	default:
		return fmt.Errorf("unknown cell %q", *cellName)
	}
	clk := units.Megahertz(*clkMHz)

	for _, d := range designs {
		mem, err := edram.Build(d, edram.PaperArray(), edram.PaperPeriphery(d))
		if err != nil {
			return err
		}
		fmt.Printf("=== %s ===\n", d.Name)
		fmt.Printf("cell:        %.2f × %.2f µm, SN cap %.2f fF, VWWL %.1f V\n",
			d.CellWidth.Micrometers(), d.CellHeight.Micrometers(), d.SNCap*1e15, d.VWWL)
		fmt.Printf("write:       %.0f ps (energy %.3f fJ/bit)\n",
			mem.Timing.WriteDelay*1e12, mem.Timing.WriteEnergy*1e15)
		fmt.Printf("read:        %.0f ps against %.1f fF bitline\n",
			mem.Timing.ReadDelay*1e12, mem.BitlineCap*1e15)
		if mem.Timing.Retention > 1e4 {
			fmt.Printf("retention:   %.3g s (no refresh needed)\n", mem.Timing.Retention)
		} else {
			fmt.Printf("retention:   %.1f µs → refresh every %.1f µs, %.3f mW\n",
				mem.Timing.Retention*1e6, mem.RefreshInterval*1e6, mem.RefreshPower*1e3)
		}
		fmt.Printf("access:      read %.2f pJ, write %.2f pJ\n",
			mem.ReadEnergy*1e12, mem.WriteEnergy*1e12)
		fmt.Printf("latency:     read %.0f ps, write %.0f ps (period %.0f ps) — timing %s\n",
			mem.ReadLatency*1e12, mem.WriteLatency*1e12, clk.PeriodSeconds()*1e12,
			okString(mem.MeetsTiming(clk)))
		fmt.Printf("macro:       %.3f mm² (%.0f × %.0f µm)\n",
			mem.Area.SquareMillimeters(), mem.Width.Micrometers(), mem.Height.Micrometers())
		refreshInfo := "none"
		if !math.IsInf(mem.RefreshInterval, 1) {
			refreshInfo = fmt.Sprintf("%.1f µs", mem.RefreshInterval*1e6)
		}
		fmt.Printf("refresh:     %s; leakage %.0f µW\n\n", refreshInfo, mem.LeakagePower*1e6)
	}
	return nil
}

func okString(ok bool) string {
	if ok {
		return "MET"
	}
	return "VIOLATED"
}

// runDeck parses and simulates a user-supplied SPICE deck, printing the
// final value and extrema of each probed node.
func runDeck(path, probe string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ck, req, err := spice.ParseDeck(string(src))
	if err != nil {
		return err
	}
	if req == nil {
		op, err := ck.OP()
		if err != nil {
			return err
		}
		for _, n := range probeNodes(ck, probe) {
			v, err := op.Voltage(n)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %10.4f V (DC)\n", n, v)
		}
		return nil
	}
	tr, err := ck.Transient(req.Stop, req.Step)
	if err != nil {
		return err
	}
	fmt.Printf("transient: %d points to %.3g s\n", len(tr.Times), req.Stop)
	for _, n := range probeNodes(ck, probe) {
		w, err := tr.Voltage(n)
		if err != nil {
			return err
		}
		lo, hi := w[0], w[0]
		for _, v := range w {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Printf("%-16s final %8.4f V   min %8.4f   max %8.4f\n", n, w[len(w)-1], lo, hi)
	}
	return nil
}

func probeNodes(ck *spice.Circuit, probe string) []string {
	if probe == "" {
		return ck.Nodes()
	}
	var out []string
	for _, n := range strings.Split(probe, ",") {
		out = append(out, strings.TrimSpace(n))
	}
	return out
}
