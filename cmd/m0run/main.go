// Command m0run executes an Embench-style workload (or a user-supplied
// Thumb assembly file) on the Cortex-M0 simulator, reporting cycle count,
// instruction count and memory-access statistics — the Step-4 quantities
// of the paper's design flow. With -vcd it records the run as a value
// change dump, the waveform artifact the paper extracts from RTL
// simulation.
package main

import (
	"flag"
	"fmt"
	"os"

	"ppatc/internal/embench"
	"ppatc/internal/power"
	"ppatc/internal/thumb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "m0run:", err)
		os.Exit(1)
	}
}

func run() error {
	workload := flag.String("workload", "matmult-int", "bundled workload name, or 'list'")
	asmFile := flag.String("asm", "", "run a Thumb assembly file instead of a bundled workload")
	vcdFile := flag.String("vcd", "", "write a VCD trace to this file")
	sample := flag.Uint64("sample", 10000, "VCD sample interval in cycles")
	budget := flag.Uint64("max-cycles", 1<<32, "cycle budget")
	disasm := flag.Bool("disasm", false, "print the disassembly instead of running")
	profile := flag.Int("profile", 0, "profile the run and print the N hottest instructions")
	flag.Parse()

	if *workload == "list" {
		for _, w := range embench.Workloads() {
			fmt.Printf("%-14s %s\n", w.Name, w.Description)
		}
		return nil
	}

	var src string
	var name string
	var expected *uint32
	if *asmFile != "" {
		b, err := os.ReadFile(*asmFile)
		if err != nil {
			return err
		}
		src, name = string(b), *asmFile
	} else {
		w, err := embench.ByName(*workload)
		if err != nil {
			return err
		}
		src, name = w.Source, w.Name
		e := w.Expected
		expected = &e
	}

	prog, err := thumb.Assemble(src)
	if err != nil {
		return err
	}
	if *disasm {
		for i, line := range thumb.Disassemble(prog.Halfwords) {
			fmt.Printf("%08x: %s\n", 2*i, line)
		}
		return nil
	}
	mem := thumb.NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		return err
	}
	cpu := thumb.NewCPU(mem)

	switch {
	case *vcdFile != "":
		f, err := os.Create(*vcdFile)
		if err != nil {
			return err
		}
		defer f.Close()
		res, err := power.Trace(cpu, f, *budget, *sample)
		if err != nil {
			return err
		}
		fmt.Printf("traced %d samples to %s\n", res.Samples, *vcdFile)
	case *profile > 0:
		p, err := thumb.RunProfiled(cpu, *budget)
		if err != nil {
			return err
		}
		out, err := p.FormatHotSpots(prog, *profile)
		if err != nil {
			return err
		}
		fmt.Printf("hotspots (%d distinct PCs executed):\n%s\n", p.CoveragePC(), out)
	default:
		if err := cpu.Run(*budget); err != nil {
			return err
		}
	}

	fmt.Printf("workload:      %s\n", name)
	fmt.Printf("cycles:        %d\n", cpu.Cycles)
	fmt.Printf("instructions:  %d (CPI %.3f)\n", cpu.Instructions,
		float64(cpu.Cycles)/float64(cpu.Instructions))
	fmt.Printf("program reads: %d (%.3f/cycle)\n", mem.Stats.ProgramReads,
		float64(mem.Stats.ProgramReads)/float64(cpu.Cycles))
	fmt.Printf("data reads:    %d (%.3f/cycle)\n", mem.Stats.DataReads,
		float64(mem.Stats.DataReads)/float64(cpu.Cycles))
	fmt.Printf("data writes:   %d (%.3f/cycle)\n", mem.Stats.DataWrites,
		float64(mem.Stats.DataWrites)/float64(cpu.Cycles))
	fmt.Printf("result (r0):   %#x\n", cpu.R[0])
	if expected != nil {
		status := "MATCH"
		if cpu.R[0] != *expected {
			status = "MISMATCH"
		}
		fmt.Printf("golden:        %#x (%s)\n", *expected, status)
	}
	return nil
}
