package main

import (
	"runtime"
	"testing"
	"time"

	"ppatc/internal/core"
)

// TestP99ScenarioBudget is the load-harness regression test for the
// admission-control fix: with cold 256-tuple batches saturating the
// worker pool, single-evaluation p99 must stay within budget — at most
// 5x its own p95, with a small absolute floor so timer noise on a tiny
// sample can't fail a healthy run. Before per-class admission the probe
// tail sat behind whole batch fan-outs and blew this budget by an order
// of magnitude.
func TestP99ScenarioBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("p99 scenario floods the pool for seconds")
	}
	cfg := benchConfig{
		serverWorkers: runtime.GOMAXPROCS(0),
		p99Duration:   2 * time.Second,
	}
	pb, err := runP99Scenario(cfg)
	if err != nil {
		t.Fatalf("runP99Scenario: %v", err)
	}
	if pb.Probes < 5 {
		t.Fatalf("only %d probes in %v; the scenario is not exercising the pool", pb.Probes, cfg.p99Duration)
	}
	budget := 5 * pb.P95Ms
	if budget < 50 {
		budget = 50
	}
	if pb.P99Ms > budget {
		t.Fatalf("probe p99 %.3fms exceeds budget %.3fms (p95 %.3fms, %d probes): interactive requests are waiting behind cold batches",
			pb.P99Ms, budget, pb.P95Ms, pb.Probes)
	}
}

// TestSweepBenchIdenticalAndFaster pins the sweep-bench section's two
// claims on a live run: the memoized sweep's NDJSON is byte-identical
// to the non-memoized run, and it is measurably faster (the full >=10x
// stage-execution reduction is pinned deterministically in
// internal/dse; the wall-clock assertion here stays conservative so
// scheduler noise can't flake it).
func TestSweepBenchIdenticalAndFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep bench runs a full mixed-axis sweep twice")
	}
	sb, err := runSweepBench(benchConfig{serverWorkers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatalf("runSweepBench: %v", err)
	}
	if !sb.Identical {
		t.Fatal("memoized sweep NDJSON differs from the non-memoized run")
	}
	if sb.SpeedupX < 2 {
		t.Errorf("memoized sweep speedup %.2fx, want at least 2x (no-memo %.2fs, memo %.2fs)",
			sb.SpeedupX, sb.NoMemoS, sb.MemoS)
	}
	if st := sb.MemoStages[core.StageEmbench]; st.Misses != 1 {
		t.Errorf("embench stage ran %d times across the sweep, want 1 (stats %+v)", st.Misses, sb.MemoStages)
	}
}
