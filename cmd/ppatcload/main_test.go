package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppatc/internal/bench"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("evaluate=60,batch=15,tcdp=15,suite=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix["evaluate"] != 60 || mix["suite"] != 10 {
		t.Errorf("mix parsed wrong: %v", mix)
	}
	for _, bad := range []string{"", "evaluate", "evaluate=-1", "nosuch=10", "evaluate=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q should be rejected", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lats, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(lats, 99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

// TestHarnessSmoke runs a short real load and checks the report: every
// endpoint of the mix served traffic without errors, and the warmed
// evaluate path was overwhelmingly cache hits.
func TestHarnessSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_9.json")
	cfg, err := parseFlags([]string{
		"-duration", "300ms", "-workers", "2", "-seed", "7",
		"-workloads", "crc32", "-batch-size", "4",
		"-mix", "evaluate=70,batch=20,tcdp=10",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Requests == 0 {
		t.Fatal("harness issued no requests")
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("%d errored requests", rep.Totals.Errors)
	}
	for _, name := range []string{"evaluate", "batch", "tcdp"} {
		st, ok := rep.Endpoints[name]
		if !ok || st.Count == 0 {
			t.Errorf("endpoint %s got no traffic", name)
			continue
		}
		if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
			t.Errorf("%s percentiles implausible: p50 %.3f p99 %.3f", name, st.P50Ms, st.P99Ms)
		}
	}
	if ev := rep.Endpoints["evaluate"]; ev != nil && ev.CacheHits < ev.Count*9/10 {
		t.Errorf("warmed evaluate traffic only %d/%d cache hits", ev.CacheHits, ev.Count)
	}

	if err := writeReport(rep, cfg.out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	round, err := bench.Parse(b, out)
	if err != nil {
		t.Fatalf("report does not round-trip through the bench parser: %v", err)
	}
	if round.Schema != bench.SchemaV2 {
		t.Errorf("schema %q, want %s", round.Schema, bench.SchemaV2)
	}
	if round.Seq != 9 {
		t.Errorf("seq %d, want 9 (derived from BENCH_9.json)", round.Seq)
	}
	if round.Engine == nil || round.Engine.GoVersion == "" {
		t.Error("v2 report missing engine stamp")
	}
	var sb strings.Builder
	printReport(&sb, rep)
	if !strings.Contains(sb.String(), "evaluate") {
		t.Error("human-readable summary missing endpoint lines")
	}
}
