package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppatc/internal/bench"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("evaluate=60,batch=15,tcdp=15,suite=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix["evaluate"] != 60 || mix["suite"] != 10 {
		t.Errorf("mix parsed wrong: %v", mix)
	}
	for _, bad := range []string{"", "evaluate", "evaluate=-1", "nosuch=10", "evaluate=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q should be rejected", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lats, 50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(lats, 99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

// TestHarnessSmoke runs a short real load and checks the report: every
// endpoint of the mix served traffic without errors, and the warmed
// evaluate path was overwhelmingly cache hits.
func TestHarnessSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_9.json")
	cfg, err := parseFlags([]string{
		"-duration", "300ms", "-workers", "2", "-seed", "7",
		"-workloads", "crc32", "-batch-size", "4",
		"-mix", "evaluate=70,batch=20,tcdp=10",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Requests == 0 {
		t.Fatal("harness issued no requests")
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("%d errored requests", rep.Totals.Errors)
	}
	for _, name := range []string{"evaluate", "batch", "tcdp"} {
		st, ok := rep.Endpoints[name]
		if !ok || st.Count == 0 {
			t.Errorf("endpoint %s got no traffic", name)
			continue
		}
		if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
			t.Errorf("%s percentiles implausible: p50 %.3f p99 %.3f", name, st.P50Ms, st.P99Ms)
		}
	}
	if ev := rep.Endpoints["evaluate"]; ev != nil && ev.CacheHits < ev.Count*9/10 {
		t.Errorf("warmed evaluate traffic only %d/%d cache hits", ev.CacheHits, ev.Count)
	}

	if err := writeReport(rep, cfg.out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	round, err := bench.Parse(b, out)
	if err != nil {
		t.Fatalf("report does not round-trip through the bench parser: %v", err)
	}
	if round.Schema != bench.SchemaV2 {
		t.Errorf("schema %q, want %s", round.Schema, bench.SchemaV2)
	}
	if round.Seq != 9 {
		t.Errorf("seq %d, want 9 (derived from BENCH_9.json)", round.Seq)
	}
	if round.Engine == nil || round.Engine.GoVersion == "" {
		t.Error("v2 report missing engine stamp")
	}
	var sb strings.Builder
	printReport(&sb, rep)
	if !strings.Contains(sb.String(), "evaluate") {
		t.Error("human-readable summary missing endpoint lines")
	}
}

// TestAttributionSmoke runs the harness in -attribution mode and checks
// the report's stage breakdowns: every endpoint that served traffic has
// an attribution whose stage means re-add to its mean latency, and
// -flight-out wrote a parseable NDJSON dump.
func TestAttributionSmoke(t *testing.T) {
	dir := t.TempDir()
	flightOut := filepath.Join(dir, "flight.ndjson")
	cfg, err := parseFlags([]string{
		"-duration", "300ms", "-workers", "2", "-seed", "7",
		"-workloads", "crc32", "-batch-size", "4",
		"-mix", "evaluate=80,batch=20",
		"-flight-out", flightOut, // implies -attribution
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.attribution {
		t.Fatal("-flight-out should imply -attribution")
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Config.Attribution {
		t.Error("report config does not record attribution mode")
	}
	for _, name := range []string{"evaluate", "batch"} {
		at := rep.Attribution[name]
		if at == nil || at.Events == 0 {
			t.Fatalf("no attribution for %s: %+v", name, rep.Attribution)
		}
		sum := at.QueueWaitMs + at.CacheLookupMs + at.ComputeMs +
			at.EncodeMs + at.StoreWriteMs + at.OtherMs
		diff := sum - at.TotalMs
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01*at.TotalMs {
			t.Errorf("%s stage means %.6fms don't re-add to total %.6fms", name, sum, at.TotalMs)
		}
	}

	b, err := os.ReadFile(flightOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flight dump is empty")
	}
	for _, line := range lines {
		if !strings.Contains(line, `"total_ns"`) || !strings.Contains(line, `"endpoint"`) {
			t.Fatalf("flight dump line missing attribution fields: %s", line)
		}
	}

	// The attribution section must survive the report round trip and
	// show up in the human-readable summary.
	raw, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	round, err := bench.Parse(raw, "BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Attribution) != len(rep.Attribution) {
		t.Errorf("attribution lost in round trip: %d vs %d endpoints",
			len(round.Attribution), len(rep.Attribution))
	}
	var sb strings.Builder
	printReport(&sb, rep)
	if !strings.Contains(sb.String(), "attribution (mean ms/request):") {
		t.Error("summary missing the attribution table")
	}
}
