package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ppatc/internal/bench"
	"ppatc/internal/core"
	"ppatc/internal/dse"
	"ppatc/internal/embench"
	"ppatc/internal/server"
)

// p99 scenario shape: two clients flooding 256-item batches against a
// cache too small to retain anything, so the pool is permanently
// saturated with cold bulk work while one prober measures single
// evaluations.
const (
	p99Flooders     = 2
	p99BatchSize    = 256
	p99CacheEntries = 4
)

// runP99Scenario measures the admission-control contract under
// worst-case head-of-line pressure: flooder clients keep the worker
// pool saturated with cold 256-tuple batches (the tiny cache evicts
// everything between rounds), and a prober issues single /v1/evaluate
// requests whose latency distribution becomes the report's p99 budget.
// Probe tuples use grids the flooders never touch, so a probe is always
// its own cold computation — never a coalesced ride on a batch item.
func runP99Scenario(cfg benchConfig) (*bench.P99Budget, error) {
	srv := server.New(server.Config{
		Workers:      cfg.serverWorkers,
		QueueDepth:   1024,
		CacheEntries: p99CacheEntries,
		CacheShards:  1,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	defer srv.Close()
	h := srv.Handler()

	systems := []string{"si", "m3d"}
	var tuples []string
	var probeReqs []request
	for _, sys := range systems {
		for _, wl := range embench.Workloads() {
			for _, g := range []string{"US", "Coal"} {
				tuples = append(tuples, fmt.Sprintf(`{"system":%q,"workload":%q,"grid":%q}`, sys, wl.Name, g))
			}
			for _, g := range []string{"Solar", "Taiwan"} {
				probeReqs = append(probeReqs, request{
					endpoint: "evaluate",
					path:     "/v1/evaluate",
					body:     fmt.Sprintf(`{"system":%q,"workload":%q,"grid":%q}`, sys, wl.Name, g),
				})
			}
		}
	}
	items := make([]string, p99BatchSize)
	for i := range items {
		items[i] = tuples[i%len(tuples)]
	}
	floodReq := request{
		endpoint: "batch",
		path:     "/v1/batch",
		body:     `{"items":[` + strings.Join(items, ",") + `]}`,
	}

	stop := make(chan struct{})
	var fwg sync.WaitGroup
	for i := 0; i < p99Flooders; i++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				issue(h, floodReq)
			}
		}()
	}
	// Let the flood establish pool pressure before the first probe.
	time.Sleep(250 * time.Millisecond)

	var lats []time.Duration
	errors := 0
	deadline := time.Now().Add(cfg.p99Duration)
	for i := 0; time.Now().Before(deadline); i++ {
		r := probeReqs[i%len(probeReqs)]
		start := time.Now()
		code, _ := issue(h, r)
		if code != http.StatusOK {
			errors++
			continue
		}
		lats = append(lats, time.Since(start))
	}
	close(stop)
	fwg.Wait()

	if len(lats) == 0 {
		return nil, fmt.Errorf("ppatcload: p99 scenario measured no successful probes (%d errors)", errors)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pb := &bench.P99Budget{
		Flooders:     p99Flooders,
		BatchSize:    p99BatchSize,
		CacheEntries: p99CacheEntries,
		Probes:       len(lats),
		P50Ms:        percentile(lats, 50).Seconds() * 1e3,
		P95Ms:        percentile(lats, 95).Seconds() * 1e3,
		P99Ms:        percentile(lats, 99).Seconds() * 1e3,
		MaxMs:        lats[len(lats)-1].Seconds() * 1e3,
	}
	if pb.P95Ms > 0 {
		pb.P99OverP95 = pb.P99Ms / pb.P95Ms
	}
	return pb, nil
}

// Sweep-bench shape: a mixed-axis sweep where most points differ only
// in grid intensity — the axis only the carbon stage reads — so the
// stage memo collapses nearly all embench/EDRAM/synthesis/floorplan
// work.
const (
	sweepBenchIntensities = 24
	sweepBenchClocks      = 2
)

// runSweepBench runs one mixed-axis sweep twice — memo disabled, then
// stage-memoized — byte-compares the NDJSON outputs, and reports the
// wall-clock speedup with the memoized run's per-stage hit/miss
// counters.
func runSweepBench(cfg benchConfig) (*bench.SweepBench, error) {
	vals := make([]float64, sweepBenchIntensities)
	for i := range vals {
		vals[i] = 40 + 40*float64(i)
	}
	mhz := make([]float64, sweepBenchClocks)
	for i := range mhz {
		mhz[i] = 500 - 100*float64(i)
	}
	spec := &dse.Spec{
		Name: "sweep-bench-mixed",
		Axes: dse.Axes{
			System:   []string{"si", "m3d"},
			Workload: []string{"huff"},
			Grid:     &dse.GridAxis{Intensity: &dse.NumericAxis{Values: vals}},
			ClockMHz: &dse.NumericAxis{Values: mhz},
		},
	}
	plan, err := dse.Expand(spec)
	if err != nil {
		return nil, fmt.Errorf("ppatcload: sweep-bench spec: %w", err)
	}
	run := func(opts dse.Options) ([]byte, float64, error) {
		start := time.Now()
		results, err := dse.RunPlan(context.Background(), plan, opts)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start).Seconds()
		var buf bytes.Buffer
		if err := dse.WriteNDJSON(&buf, results); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), elapsed, nil
	}
	plain, plainS, err := run(dse.Options{Workers: cfg.serverWorkers, NoMemo: true})
	if err != nil {
		return nil, fmt.Errorf("ppatcload: no-memo sweep: %w", err)
	}
	memo := core.NewMemo()
	memoized, memoS, err := run(dse.Options{Workers: cfg.serverWorkers, Memo: memo})
	if err != nil {
		return nil, fmt.Errorf("ppatcload: memoized sweep: %w", err)
	}
	sb := &bench.SweepBench{
		Points: len(plan.Points),
		Spec: fmt.Sprintf("2 systems x 1 workload x %d grid intensities x %d clocks",
			sweepBenchIntensities, sweepBenchClocks),
		NoMemoS:    plainS,
		MemoS:      memoS,
		Identical:  bytes.Equal(plain, memoized),
		MemoStages: make(map[string]bench.MemoStageCounters),
	}
	if memoS > 0 {
		sb.SpeedupX = plainS / memoS
	}
	for stage, st := range memo.Stats() {
		sb.MemoStages[stage] = bench.MemoStageCounters{Hits: st.Hits, Misses: st.Misses}
	}
	return sb, nil
}
