// Command ppatcload is the reproducible load-bench harness for the
// serving hot path: it drives a configurable mix of evaluate, batch,
// tcdp and suite traffic against an in-process server (no sockets — the
// handler is called directly, so numbers isolate the serving stack from
// kernel networking) and reports per-endpoint latency percentiles,
// throughput, and allocation rates.
//
// The canonical run behind BENCH_4.json:
//
//	go run ./cmd/ppatcload -duration 10s -workers 8 -out BENCH_4.json
//
// Runs are deterministic for a given -seed, worker count and duration
// modulo scheduler timing: the request schedule is a seeded PRNG per
// worker, and every request draws from a fixed tuple set that the
// warmup phase fully populates in the cache, so the steady state
// measures the cache-hit path. Pass -no-warmup to measure cold traffic.
//
// -attribution additionally subscribes to the server's flight recorder
// and folds per-endpoint stage breakdowns (queue_wait / cache_lookup /
// compute / peer_forward / encode / store_write / other, mean ms per
// request) into the report's "attribution" section; -flight-out writes
// the post-run flight-recorder dump as NDJSON, the same format
// GET /debug/flight serves.
//
// -targets switches to multi-node mode: instead of an in-process
// server, the harness spreads the same request schedule over several
// running daemons (typically a -join'd cluster) via real HTTP and
// reports per-node stats — requests absorbed, local cache hits,
// one-hop forwards to the key's owner (X-Cache: REMOTE), latency
// percentiles — next to the merged cluster-wide view:
//
//	go run ./cmd/ppatcload -targets http://127.0.0.1:8037,http://127.0.0.1:8038 -out BENCH_cluster.json
//
// Multi-node numbers include real kernel networking, so they only
// compare against other multi-node runs. -attribution needs the
// in-process flight recorder and is rejected with -targets.
//
// Two scenario sections ride along on demand (both in-process only):
// -p99-scenario floods a dedicated tiny-cache server with cold
// 256-tuple batches while a prober measures single /v1/evaluate
// latency — the report's "p99_budget" section pins the admission
// control's tail contract; -sweep-bench runs one mixed-axis DSE sweep
// twice (memo off, then stage-memoized), byte-compares the NDJSON, and
// reports the wall-clock speedup in "sweep_bench".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ppatc/internal/bench"
	"ppatc/internal/obs/flight"
	"ppatc/internal/server"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeReport(rep, cfg.out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printReport(os.Stdout, rep)
}

// benchConfig is one harness run's shape.
type benchConfig struct {
	duration  time.Duration
	workers   int
	seed      int64
	batchSize int
	mix       map[string]int
	workloads []string
	out       string
	seq       int
	warmup    bool
	// attribution subscribes to the flight recorder and folds
	// per-endpoint stage breakdowns into the report; flightOut
	// additionally dumps the recorder's retained events as NDJSON.
	attribution bool
	flightOut   string
	// serverWorkers/cacheShards size the server under test.
	serverWorkers int
	cacheShards   int
	// targets switches to multi-node mode: base URLs of running
	// daemons the schedule is spread over (empty = in-process server).
	targets []string
	// p99Scenario additionally runs the batch-saturation probe scenario
	// (its own dedicated server) for p99Duration and folds the probe
	// percentiles into the report's "p99_budget" section.
	p99Scenario bool
	p99Duration time.Duration
	// sweepBench additionally runs the memoized-vs-direct mixed-axis
	// sweep comparison into the report's "sweep_bench" section.
	sweepBench bool
}

func parseFlags(args []string) (benchConfig, error) {
	fs := flag.NewFlagSet("ppatcload", flag.ContinueOnError)
	cfg := benchConfig{}
	var mix, workloads string
	var noWarmup bool
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured load duration")
	fs.IntVar(&cfg.workers, "workers", 8, "concurrent client workers")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for the request schedule")
	fs.IntVar(&cfg.batchSize, "batch-size", 16, "items per /v1/batch request")
	fs.StringVar(&mix, "mix", "evaluate=60,batch=15,tcdp=15,suite=10", "endpoint weights")
	fs.StringVar(&workloads, "workloads", "crc32,sieve,edn", "workloads to request")
	fs.StringVar(&cfg.out, "out", "", "write the JSON report to this file")
	fs.IntVar(&cfg.seq, "seq", 0, "bench sequence number (0 derives it from -out, e.g. BENCH_7.json → 7)")
	fs.BoolVar(&noWarmup, "no-warmup", false, "skip cache warmup (measure cold traffic)")
	fs.BoolVar(&cfg.attribution, "attribution", false, "aggregate flight-recorder latency attributions into the report")
	fs.StringVar(&cfg.flightOut, "flight-out", "", "write the post-run flight-recorder dump (NDJSON) to this file (implies -attribution)")
	fs.IntVar(&cfg.serverWorkers, "server-workers", runtime.GOMAXPROCS(0), "server worker-pool size")
	fs.IntVar(&cfg.cacheShards, "cache-shards", 16, "server response-cache shards")
	var targets string
	fs.StringVar(&targets, "targets", "", "comma-separated daemon base URLs: drive a running (multi-node) cluster over HTTP instead of an in-process server")
	fs.BoolVar(&cfg.p99Scenario, "p99-scenario", false, "also run the batch-saturation probe scenario (cold 256-tuple batch flood + single-evaluate prober) and report its p99 budget")
	fs.DurationVar(&cfg.p99Duration, "p99-duration", 5*time.Second, "probe window for -p99-scenario")
	fs.BoolVar(&cfg.sweepBench, "sweep-bench", false, "also run the memoized-vs-direct mixed-axis sweep comparison and report the speedup")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.warmup = !noWarmup
	if cfg.flightOut != "" {
		cfg.attribution = true
	}
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			cfg.targets = append(cfg.targets, t)
		}
	}
	if len(cfg.targets) > 0 && cfg.attribution {
		return cfg, fmt.Errorf("ppatcload: -attribution/-flight-out need the in-process flight recorder and cannot combine with -targets")
	}
	if len(cfg.targets) > 0 && (cfg.p99Scenario || cfg.sweepBench) {
		return cfg, fmt.Errorf("ppatcload: -p99-scenario/-sweep-bench run in-process and cannot combine with -targets")
	}
	if cfg.p99Scenario && cfg.p99Duration <= 0 {
		return cfg, fmt.Errorf("ppatcload: -p99-duration must be positive")
	}
	var err error
	if cfg.mix, err = parseMix(mix); err != nil {
		return cfg, err
	}
	cfg.workloads = strings.Split(workloads, ",")
	if cfg.workers < 1 || cfg.batchSize < 1 || cfg.duration <= 0 {
		return cfg, fmt.Errorf("ppatcload: workers, batch-size and duration must be positive")
	}
	if cfg.seq == 0 && cfg.out != "" {
		cfg.seq = bench.SeqFromFilename(cfg.out)
	}
	return cfg, nil
}

var knownEndpoints = []string{"evaluate", "batch", "tcdp", "suite"}

func parseMix(s string) (map[string]int, error) {
	mix := make(map[string]int)
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("ppatcload: mix entry %q is not name=weight", part)
		}
		known := false
		for _, e := range knownEndpoints {
			known = known || e == name
		}
		if !known {
			return nil, fmt.Errorf("ppatcload: unknown mix endpoint %q (valid: %s)", name, strings.Join(knownEndpoints, ", "))
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("ppatcload: mix weight %q is not a non-negative integer", weight)
		}
		mix[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("ppatcload: mix has zero total weight")
	}
	return mix, nil
}

// request is one prebuilt traffic unit: endpoint name, path and body.
type request struct {
	endpoint string
	path     string
	body     string
}

// buildRequests expands the tuple set into the request pool each worker
// draws from.
func buildRequests(cfg benchConfig) []request {
	systems := []string{"si", "m3d"}
	grids := []string{"US", "Coal"}
	var reqs []request
	var tuples []string
	for _, sys := range systems {
		for _, wl := range cfg.workloads {
			for _, g := range grids {
				body := fmt.Sprintf(`{"system":%q,"workload":%q,"grid":%q}`, sys, wl, g)
				reqs = append(reqs, request{endpoint: "evaluate", path: "/v1/evaluate", body: body})
				tuples = append(tuples, fmt.Sprintf(`{"system":%q,"workload":%q,"grid":%q}`, sys, wl, g))
			}
		}
	}
	if w := cfg.mix["batch"]; w > 0 {
		// Batches cycle through the tuple set at a rotating offset so
		// different batch requests still share cache entries.
		for off := 0; off < len(tuples); off += 3 {
			items := make([]string, 0, cfg.batchSize)
			for i := 0; i < cfg.batchSize; i++ {
				items = append(items, tuples[(off+i)%len(tuples)])
			}
			reqs = append(reqs, request{
				endpoint: "batch",
				path:     "/v1/batch",
				body:     fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ",")),
			})
		}
	}
	if w := cfg.mix["tcdp"]; w > 0 {
		for _, wl := range cfg.workloads {
			reqs = append(reqs, request{
				endpoint: "tcdp",
				path:     "/v1/tcdp",
				body:     fmt.Sprintf(`{"workload":%q,"grid":"US","months":24}`, wl),
			})
		}
	}
	if w := cfg.mix["suite"]; w > 0 {
		reqs = append(reqs, request{endpoint: "suite", path: "/v1/suite", body: `{"grid":"US"}`})
	}
	return reqs
}

// sample is one measured request.
type sample struct {
	endpoint string
	// node is the target URL the request went to ("" in-process).
	node    string
	latency time.Duration
	hit     bool
	// remote marks responses served by a one-hop forward to the key's
	// cluster owner (X-Cache: REMOTE).
	remote bool
	err    bool
}

func run(cfg benchConfig) (*bench.Report, error) {
	// In-process mode spins up the server under test; -targets mode
	// drives already-running daemons over real HTTP instead.
	var srv *server.Server
	var h http.Handler
	if len(cfg.targets) == 0 {
		srv = server.New(server.Config{
			Workers:     cfg.serverWorkers,
			QueueDepth:  cfg.workers * 4,
			CacheShards: cfg.cacheShards,
			// Request logging off: the harness measures the serving path,
			// not the log encoder.
			Logger: slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError})),
		})
		defer srv.Close()
		h = srv.Handler()
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// send issues one request — in-process or to the wk-rotating
	// target — and reports the status code, disposition and node.
	send := func(wk, n int, r request) (code int, disposition, node string) {
		if h != nil {
			code, disposition = issue(h, r)
			return code, disposition, ""
		}
		node = cfg.targets[(wk+n)%len(cfg.targets)]
		code, disposition = issueHTTP(client, node, r)
		return code, disposition, node
	}

	reqs := buildRequests(cfg)
	schedule := weightedSchedule(cfg.mix, reqs)

	if cfg.warmup {
		// Warm every node: forwarded replies are cached locally, so one
		// pass per target makes the steady state all-hits cluster-wide.
		for _, r := range reqs {
			for ti := range max(len(cfg.targets), 1) {
				if code, _, _ := send(ti, 0, r); code != http.StatusOK {
					return nil, fmt.Errorf("ppatcload: warmup %s returned %d", r.path, code)
				}
			}
		}
	}

	// Attribution mode subscribes to the flight recorder's live stream
	// after warmup, so the aggregation covers exactly the measured
	// requests. The consumer only adds integers, so it keeps up with the
	// hub's buffer; anything it still misses is counted as dropped.
	var agg *attributionAgg
	stopAgg := func() {}
	if cfg.attribution {
		events, cancel := srv.Recorder().Hub().Subscribe(8192)
		agg = newAttributionAgg()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for e := range events {
				agg.add(&e)
			}
		}()
		// cancel closes the subscription; the consumer then drains
		// whatever is still buffered before done closes.
		stopAgg = func() {
			cancel()
			<-done
		}
	}

	var ms0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)

	deadline := time.Now().Add(cfg.duration)
	perWorker := make([][]sample, cfg.workers)
	var wg sync.WaitGroup
	for wk := 0; wk < cfg.workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(wk)))
			samples := make([]sample, 0, 4096)
			for n := 0; time.Now().Before(deadline); n++ {
				r := schedule.pick(rng)
				start := time.Now()
				code, disp, node := send(wk, n, r)
				samples = append(samples, sample{
					endpoint: r.endpoint,
					node:     node,
					latency:  time.Since(start),
					hit:      disp == "HIT",
					remote:   disp == "REMOTE",
					err:      code != http.StatusOK,
				})
			}
			perWorker[wk] = samples
		}(wk)
	}
	wg.Wait()

	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	stopAgg()

	// The report is self-describing (ppatc-bench/v2): it carries its
	// place in the bench sequence and the engine it ran on, so the
	// reporting tooling can order history and refuse apples-to-oranges
	// latency comparisons.
	rep := &bench.Report{
		Schema:    bench.SchemaV2,
		Seq:       cfg.seq,
		Engine:    bench.CurrentEngine(),
		Endpoints: make(map[string]*bench.EndpointStats),
	}
	rep.Config.DurationS = cfg.duration.Seconds()
	rep.Config.Workers = cfg.workers
	rep.Config.Seed = cfg.seed
	rep.Config.BatchSize = cfg.batchSize
	rep.Config.Mix = cfg.mix
	rep.Config.Workloads = cfg.workloads
	rep.Config.Warmup = cfg.warmup
	rep.Config.ServerWorkers = cfg.serverWorkers
	rep.Config.CacheShards = cfg.cacheShards
	rep.Config.Targets = cfg.targets

	byEndpoint := make(map[string][]time.Duration)
	byNode := make(map[string][]time.Duration)
	total := 0
	for _, samples := range perWorker {
		for _, s := range samples {
			st := rep.Endpoints[s.endpoint]
			if st == nil {
				st = &bench.EndpointStats{}
				rep.Endpoints[s.endpoint] = st
			}
			st.Count++
			if s.err {
				st.Errors++
				rep.Totals.Errors++
			}
			if s.hit {
				st.CacheHits++
			}
			byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.latency)
			total++
			if s.node == "" {
				continue
			}
			if rep.Nodes == nil {
				rep.Nodes = make(map[string]*bench.NodeStats)
			}
			ns := rep.Nodes[s.node]
			if ns == nil {
				ns = &bench.NodeStats{Target: s.node}
				rep.Nodes[s.node] = ns
			}
			ns.Requests++
			if s.err {
				ns.Errors++
			}
			if s.hit {
				ns.CacheHits++
			}
			if s.remote {
				ns.Remote++
			}
			byNode[s.node] = append(byNode[s.node], s.latency)
		}
	}
	for node, lats := range byNode {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ns := rep.Nodes[node]
		ns.P50Ms = percentile(lats, 50).Seconds() * 1e3
		ns.P95Ms = percentile(lats, 95).Seconds() * 1e3
	}
	for name, lats := range byEndpoint {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st := rep.Endpoints[name]
		st.P50Ms = percentile(lats, 50).Seconds() * 1e3
		st.P95Ms = percentile(lats, 95).Seconds() * 1e3
		st.P99Ms = percentile(lats, 99).Seconds() * 1e3
		st.MaxMs = lats[len(lats)-1].Seconds() * 1e3
	}
	if agg != nil {
		rep.Config.Attribution = true
		rep.Attribution = agg.finish()
	}
	if cfg.flightOut != "" {
		if err := writeFlightDump(srv, cfg.flightOut); err != nil {
			return nil, err
		}
	}
	// The scenario sections run after the main measurement on their own
	// dedicated servers, so they never perturb the endpoint percentiles.
	if cfg.p99Scenario {
		pb, err := runP99Scenario(cfg)
		if err != nil {
			return nil, err
		}
		rep.P99Budget = pb
	}
	if cfg.sweepBench {
		sb, err := runSweepBench(cfg)
		if err != nil {
			return nil, err
		}
		rep.SweepBench = sb
	}
	rep.Totals.Requests = total
	rep.Totals.ElapsedS = cfg.duration.Seconds()
	if total > 0 {
		rep.Totals.ThroughputRPS = float64(total) / cfg.duration.Seconds()
		// Allocation deltas cover harness and server together — an
		// upper bound on the serving path, comparable across runs of
		// the same harness version.
		rep.Totals.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
		rep.Totals.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(total)
	}
	return rep, nil
}

// attributionAgg accumulates per-endpoint stage sums from the flight
// recorder's event stream. It is written by exactly one consumer
// goroutine; finish() is only called after that goroutine exits (the
// channel-close edge orders the accesses).
type attributionAgg struct {
	byEndpoint map[string]*stageSums
}

type stageSums struct {
	events                            int
	queueWait, cacheLookup, compute   int64
	peerForward                       int64
	encode, storeWrite, other, totals int64
}

func newAttributionAgg() *attributionAgg {
	return &attributionAgg{byEndpoint: make(map[string]*stageSums)}
}

func (a *attributionAgg) add(e *flight.Event) {
	s := a.byEndpoint[e.Endpoint]
	if s == nil {
		s = &stageSums{}
		a.byEndpoint[e.Endpoint] = s
	}
	s.events++
	s.queueWait += e.QueueWaitNS
	s.cacheLookup += e.CacheLookupNS
	s.compute += e.ComputeNS
	s.peerForward += e.PeerForwardNS
	s.encode += e.EncodeNS
	s.storeWrite += e.StoreWriteNS
	s.other += e.OtherNS
	s.totals += e.TotalNS
}

func (a *attributionAgg) finish() map[string]*bench.StageAttribution {
	out := make(map[string]*bench.StageAttribution, len(a.byEndpoint))
	for name, s := range a.byEndpoint {
		n := float64(s.events) * 1e6 // ns sums → mean ms
		out[name] = &bench.StageAttribution{
			Events:        s.events,
			QueueWaitMs:   float64(s.queueWait) / n,
			CacheLookupMs: float64(s.cacheLookup) / n,
			ComputeMs:     float64(s.compute) / n,
			PeerForwardMs: float64(s.peerForward) / n,
			EncodeMs:      float64(s.encode) / n,
			StoreWriteMs:  float64(s.storeWrite) / n,
			OtherMs:       float64(s.other) / n,
			TotalMs:       float64(s.totals) / n,
		}
	}
	return out
}

// writeFlightDump writes the recorder's retained events as NDJSON, the
// same format GET /debug/flight serves.
func writeFlightDump(srv *server.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	evs := srv.Recorder().Dump(flight.RingAll, 0)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// issue sends one in-process request and reports the status code and
// the X-Cache disposition.
func issue(h http.Handler, r request) (code int, disposition string) {
	req := httptest.NewRequest(http.MethodPost, r.path, strings.NewReader(r.body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("X-Cache")
}

// issueHTTP sends one request to a running daemon and reports the
// status code and the X-Cache disposition. The body is drained so the
// client reuses connections.
func issueHTTP(client *http.Client, base string, r request) (code int, disposition string) {
	resp, err := client.Post(base+r.path, "application/json", strings.NewReader(r.body))
	if err != nil {
		return 0, ""
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Cache")
}

// weightedPool maps mix weights onto the request pool.
type weightedPool struct {
	byEndpoint map[string][]request
	names      []string
	cum        []int
	total      int
}

func weightedSchedule(mix map[string]int, reqs []request) *weightedPool {
	p := &weightedPool{byEndpoint: make(map[string][]request)}
	for _, r := range reqs {
		p.byEndpoint[r.endpoint] = append(p.byEndpoint[r.endpoint], r)
	}
	for _, name := range knownEndpoints {
		w := mix[name]
		if w == 0 || len(p.byEndpoint[name]) == 0 {
			continue
		}
		p.total += w
		p.names = append(p.names, name)
		p.cum = append(p.cum, p.total)
	}
	return p
}

func (p *weightedPool) pick(rng *rand.Rand) request {
	n := rng.Intn(p.total)
	for i, c := range p.cum {
		if n < c {
			pool := p.byEndpoint[p.names[i]]
			return pool[rng.Intn(len(pool))]
		}
	}
	panic("unreachable")
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

func writeReport(r *bench.Report, path string) error {
	if path == "" {
		return nil
	}
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func printReport(w io.Writer, r *bench.Report) {
	fmt.Fprintf(w, "ppatcload: %d requests in %.1fs (%.0f req/s), %d errors, %.0f allocs/op, %.0f B/op\n",
		r.Totals.Requests, r.Totals.ElapsedS, r.Totals.ThroughputRPS,
		r.Totals.Errors, r.Totals.AllocsPerOp, r.Totals.BytesPerOp)
	for _, name := range knownEndpoints {
		st, ok := r.Endpoints[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-9s %7d reqs  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms  hits %d\n",
			name, st.Count, st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs, st.CacheHits)
	}
	if len(r.Nodes) > 0 {
		targets := make([]string, 0, len(r.Nodes))
		for t := range r.Nodes {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		fmt.Fprintln(w, "  nodes:")
		for _, t := range targets {
			ns := r.Nodes[t]
			fmt.Fprintf(w, "    %-28s %7d reqs  p50 %8.3fms  p95 %8.3fms  hits %d  remote %d  errors %d\n",
				ns.Target, ns.Requests, ns.P50Ms, ns.P95Ms, ns.CacheHits, ns.Remote, ns.Errors)
		}
	}
	if pb := r.P99Budget; pb != nil {
		fmt.Fprintf(w, "  p99 budget: %d probes under %dx%d-item batch flood  p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms  p99/p95 %.2fx\n",
			pb.Probes, pb.Flooders, pb.BatchSize, pb.P50Ms, pb.P95Ms, pb.P99Ms, pb.MaxMs, pb.P99OverP95)
	}
	if sb := r.SweepBench; sb != nil {
		fmt.Fprintf(w, "  sweep bench: %d points (%s)  no-memo %.2fs  memo %.2fs  speedup %.1fx  identical %v\n",
			sb.Points, sb.Spec, sb.NoMemoS, sb.MemoS, sb.SpeedupX, sb.Identical)
	}
	if len(r.Attribution) > 0 {
		fmt.Fprintln(w, "  attribution (mean ms/request):")
		for _, name := range knownEndpoints {
			at, ok := r.Attribution[name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "    %-9s %7d events  queue %8.4f  lookup %8.4f  compute %8.4f  encode %8.4f  store %8.4f  other %8.4f\n",
				name, at.Events, at.QueueWaitMs, at.CacheLookupMs, at.ComputeMs,
				at.EncodeMs, at.StoreWriteMs, at.OtherMs)
		}
	}
}
