package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"

	"ppatc/internal/dse"
)

// runSweep drives `ppatc sweep -spec spec.json`: expand the spec, stream
// results to stdout as NDJSON while the worker pool runs, and print the
// analyses (Pareto frontier, sensitivity, win probabilities) to stderr
// so stdout stays machine-readable. With -checkpoint, completed points
// persist across interrupts: Ctrl-C, re-run, and the sweep resumes.
func runSweep(ctx context.Context, specPath string, workers int, ckptPath string, noMemo bool) error {
	if specPath == "" {
		return errors.New("sweep needs -spec <file> (or -spec - for stdin)")
	}
	in := os.Stdin
	if specPath != "-" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := dse.ParseSpec(in)
	if err != nil {
		return err
	}
	plan, err := dse.Expand(spec)
	if err != nil {
		return err
	}

	// Ctrl-C cancels the run but leaves the checkpoint behind.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	opts := dse.Options{
		Workers: workers,
		NoMemo:  noMemo,
		OnResult: func(r dse.Result) error {
			line, err := r.MarshalLine()
			if err != nil {
				return err
			}
			_, err = out.Write(line)
			return err
		},
	}
	if ckptPath != "" {
		cp, err := dse.OpenCheckpoint(ckptPath, plan)
		if err != nil {
			return err
		}
		defer cp.Close()
		if n := len(cp.Completed); n > 0 {
			fmt.Fprintf(os.Stderr, "ppatc: resuming %s: %d/%d points from %s\n",
				spec.Name, n, len(plan.Points), ckptPath)
		}
		opts.Completed = cp.Completed
		opts.OnComplete = cp.Record
	}

	results, err := dse.RunPlan(ctx, plan, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && ckptPath != "" {
			fmt.Fprintf(os.Stderr, "ppatc: sweep interrupted; re-run with -checkpoint %s to resume\n", ckptPath)
		}
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}

	// Analyses go to stderr: the frontier always; sensitivity and win
	// probabilities when the sweep actually varies something to rank.
	front, err := dse.Frontier(results, plan.Spec.Objectives)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, dse.FormatFrontier(front, plan.Spec.Objectives))
	metric := plan.Spec.Objectives[0].Metric
	if sens, err := dse.Sensitivity(results, metric); err == nil && len(sens) > 0 {
		fmt.Fprint(os.Stderr, dse.FormatSensitivity(sens, metric))
	}
	if len(plan.Spec.Axes.System) > 1 {
		if win, err := dse.Winners(results, plan.Spec.Objectives[0]); err == nil {
			fmt.Fprint(os.Stderr, dse.FormatWinners(win))
		}
	}
	return nil
}
