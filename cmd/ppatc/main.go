// Command ppatc regenerates every table and figure of the paper from the
// reproduction library. Usage:
//
//	ppatc <experiment> [flags]
//
// Experiments:
//
//	fig2c    embodied carbon per wafer across grids (Fig. 2c)
//	fig2d    Eq. 4 step-energy matrix (Fig. 2d)
//	table1   FET IEFF/IOFF comparison backing Table I
//	table2   full PPAtC evaluation (Table II)
//	fig4     M0 energy/cycle vs clock sweep (Fig. 4)
//	fig5     tC and tCDP vs lifetime (Fig. 5)
//	fig6a    tCDP benefit map and isoline (Fig. 6a)
//	fig6b    isoline uncertainty variants (Fig. 6b)
//	suite    full pipeline over every bundled workload
//	score    Embench-style reference cycles and relative score
//	gases    per-gas GWP-100 inventory behind the GPA term
//	diecount die-per-wafer estimates for both designs
//	wafermap ASCII wafer map (dies magnified)
//	montecarlo sampled robustness of the tCDP verdict
//	sweep    design-space sweep from a JSON spec (-spec, -p, -checkpoint, -no-memo)
//	report   everything, in order (-markdown for a markdown artifact)
//
// Observability flags: -trace <file> writes a Chrome trace-event file
// (load in chrome://tracing or Perfetto) of the pipeline stages behind
// the experiment; -provenance prints, after table2, every intermediate
// quantity each stage produced (cycles, EPA, yield, ...) so the final
// numbers can be audited back to their inputs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
	"ppatc/internal/obs"
	"ppatc/internal/process"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
	"ppatc/internal/wafer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppatc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppatc", flag.ContinueOnError)
	gridName := fs.String("grid", "US", "energy grid: US, Coal, Solar, Taiwan")
	workload := fs.String("workload", "matmult-int", "workload name, or 'all'")
	months := fs.Int("months", 24, "system lifetime in months for fig5/fig6")
	markdown := fs.Bool("markdown", false, "for report: emit a self-contained markdown artifact")
	asJSON := fs.Bool("json", false, "for table2/suite: emit machine-readable JSON")
	asCSV := fs.Bool("csv", false, "for fig5: emit the series as CSV")
	traceFile := fs.String("trace", "", "write a Chrome trace-event file (chrome://tracing) of the pipeline stages")
	provenance := fs.Bool("provenance", false, "for table2: print each stage's intermediate quantities after the table")
	specPath := fs.String("spec", "", "for sweep: JSON sweep spec file ('-' reads stdin)")
	parallel := fs.Int("p", 0, "for sweep: worker count (default GOMAXPROCS; any value gives identical results)")
	checkpoint := fs.String("checkpoint", "", "for sweep: checkpoint file — interrupted sweeps resume from it")
	noMemo := fs.Bool("no-memo", false, "for sweep: disable stage memoization (identical output, slower)")
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing experiment (fig2c fig2d table1 table2 fig4 fig5 fig6a fig6b suite score gases diecount wafermap montecarlo sweep report)")
	}
	cmd := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	grid, err := carbon.GridByName(*gridName)
	if err != nil {
		return err
	}

	// Observability: -trace installs a tracer on the context driving the
	// evaluation pipeline (the file is written on the way out);
	// -provenance asks evaluations to record their intermediates.
	ctx := context.Background()
	var tr *obs.Trace
	if *traceFile != "" {
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
		defer func() {
			f, ferr := os.Create(*traceFile)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "ppatc: trace:", ferr)
				return
			}
			defer f.Close()
			if werr := tr.WriteChromeTrace(f); werr != nil {
				fmt.Fprintln(os.Stderr, "ppatc: trace:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "ppatc: wrote trace %s (run %s)\n", *traceFile, tr.ID)
		}()
	}
	if *provenance {
		ctx = obs.WithProvenanceEnabled(ctx)
	}

	printProvenance := func(results ...*core.PPAtC) {
		if !*provenance {
			return
		}
		for _, r := range results {
			fmt.Printf("\nprovenance: %s / %s (run inputs → Table II)\n", r.System, r.Workload)
			fmt.Print(obs.FormatFields(r.Provenance))
		}
	}

	table2 := func(w embench.Workload) (*core.PPAtC, *core.PPAtC, error) {
		si, m3d, text, err := core.Table2Context(ctx, w, grid)
		if err != nil {
			return nil, nil, err
		}
		fmt.Print(text)
		printProvenance(si, m3d)
		return si, m3d, nil
	}

	switch cmd {
	case "fig2c":
		out, err := core.Fig2c()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "fig2d":
		out, err := core.Fig2d()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "table1":
		fmt.Print(core.Table1())
	case "score":
		out, err := embench.FormatReference()
		if err != nil {
			return err
		}
		fmt.Print(out)
		ref, err := embench.ReferenceCycles()
		if err != nil {
			return err
		}
		sc, err := embench.Score(ref)
		if err != nil {
			return err
		}
		fmt.Printf("Embench-style score of this build vs reference: %.3f\n", sc)
	case "gases":
		out, err := process.FormatInventory(process.ReferenceIN7Inventory())
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "table2":
		ws, err := selectWorkloads(*workload)
		if err != nil {
			return err
		}
		if *asJSON {
			var all []*core.PPAtC
			for _, w := range ws {
				si, m3d, _, err := core.Table2Context(ctx, w, grid)
				if err != nil {
					return err
				}
				all = append(all, si, m3d)
			}
			return core.WriteJSON(os.Stdout, all...)
		}
		for _, w := range ws {
			if _, _, err := table2(w); err != nil {
				return err
			}
			fmt.Println()
		}
	case "fig4":
		out, err := core.Fig4()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "fig5", "fig6a", "fig6b":
		w, err := embench.ByName(*workload)
		if err != nil {
			return err
		}
		si, m3d, _, err := core.Table2Context(ctx, w, grid)
		if err != nil {
			return err
		}
		if cmd == "fig5" && *asCSV {
			s := tcdp.PaperScenario()
			sa, err := tcdp.Lifetime(si.DesignPoint(), s, *months)
			if err != nil {
				return err
			}
			sb, err := tcdp.Lifetime(m3d.DesignPoint(), s, *months)
			if err != nil {
				return err
			}
			return core.WriteLifetimeCSV(os.Stdout, sa, sb)
		}
		var out string
		switch cmd {
		case "fig5":
			out, err = core.Fig5(si, m3d, *months)
		case "fig6a":
			out, err = core.Fig6a(si, m3d, *months)
		default:
			out, err = core.Fig6b(si, m3d, *months)
		}
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "suite":
		rows, err := core.SuiteContext(ctx, grid)
		if err != nil {
			return err
		}
		if *asJSON {
			return core.WriteSuiteJSON(os.Stdout, rows)
		}
		fmt.Print(core.FormatSuite(rows))
	case "diecount":
		return dieCount(grid, *workload)
	case "wafermap":
		return waferMap(grid, *workload)
	case "montecarlo":
		w, err := embench.ByName(*workload)
		if err != nil {
			return err
		}
		si, m3d, _, err := core.Table2Context(ctx, w, grid)
		if err != nil {
			return err
		}
		res, err := tcdp.MonteCarlo(m3d.DesignPoint(), si.DesignPoint(),
			tcdp.PaperScenario(), tcdp.PaperUncertainty(), 20000, 2025)
		if err != nil {
			return err
		}
		fmt.Print(res.Format())
	case "sweep":
		return runSweep(ctx, *specPath, *parallel, *checkpoint, *noMemo)
	case "report":
		if *markdown {
			w, err := embench.ByName(*workload)
			if err != nil {
				return err
			}
			return core.WriteMarkdownReport(os.Stdout, w, grid, *months)
		}
		for _, step := range []struct {
			title string
			run   func() (string, error)
		}{
			{"Fig. 2c — embodied carbon per wafer", core.Fig2c},
			{"Fig. 2d — Eq. 4 step-energy matrix", core.Fig2d},
			{"Table I — FET comparison", func() (string, error) { return core.Table1(), nil }},
			{"Fig. 4 — M0 synthesis sweep", core.Fig4},
		} {
			fmt.Printf("== %s ==\n", step.title)
			out, err := step.run()
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
		w, err := embench.ByName(*workload)
		if err != nil {
			return err
		}
		fmt.Println("== Table II — PPAtC summary ==")
		si, m3d, err := table2(w)
		if err != nil {
			return err
		}
		for _, step := range []struct {
			title string
			run   func(a, b *core.PPAtC, m int) (string, error)
		}{
			{"Fig. 5 — tC and tCDP vs lifetime", core.Fig5},
			{"Fig. 6a — tCDP benefit map", core.Fig6a},
			{"Fig. 6b — isoline uncertainty", core.Fig6b},
		} {
			fmt.Printf("\n== %s ==\n", step.title)
			out, err := step.run(si, m3d, *months)
			if err != nil {
				return err
			}
			fmt.Print(out)
		}
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return nil
}

func selectWorkloads(name string) ([]embench.Workload, error) {
	if name == "all" {
		return embench.Workloads(), nil
	}
	w, err := embench.ByName(name)
	if err != nil {
		return nil, err
	}
	return []embench.Workload{w}, nil
}

// waferMap renders ASCII wafer maps for both designs (at a magnified die
// size so the structure is visible in a terminal).
func waferMap(grid carbon.Grid, workload string) error {
	w, err := embench.ByName(workload)
	if err != nil {
		return err
	}
	for _, sys := range []core.SystemDesign{core.AllSiSystem(), core.M3DSystem()} {
		res, err := core.Evaluate(sys, w, grid)
		if err != nil {
			return err
		}
		// Magnify the die 40× so individual cells are visible.
		die := wafer.Die{
			Width:   res.DieWidth * 40,
			Height:  res.DieHeight * 40,
			Spacing: units.Millimeters(0.1 * 40),
		}
		m, err := wafer.RenderMap(wafer.Paper300mm(), die, 110)
		if err != nil {
			return err
		}
		fmt.Printf("%s (die magnified 40×; real count %d):\n%s\n", sys.Name, res.DiesPerWafer, m)
	}
	return nil
}

func dieCount(grid carbon.Grid, workload string) error {
	w, err := embench.ByName(workload)
	if err != nil {
		return err
	}
	spec := wafer.Paper300mm()
	for _, sys := range []core.SystemDesign{core.AllSiSystem(), core.M3DSystem()} {
		res, err := core.Evaluate(sys, w, grid)
		if err != nil {
			return err
		}
		die := wafer.Die{Width: res.DieWidth, Height: res.DieHeight, Spacing: units.Millimeters(0.1)}
		formula, err := wafer.EstimateFormula(spec, die)
		if err != nil {
			return err
		}
		geo, err := wafer.EstimateGeometric(spec, die)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s die %.0f×%.0f µm: formula %d, geometric %d, yield %.0f%% → %d good\n",
			sys.Name, die.Width.Micrometers(), die.Height.Micrometers(),
			formula, geo, res.Yield*100, int(float64(geo)*res.Yield))
	}
	return nil
}
