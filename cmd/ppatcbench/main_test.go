package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppatc/internal/bench"
)

// fixtureV1 mimics a committed pre-versioning report: no seq (derived
// from the filename), no engine stamp.
const fixtureV1 = `{
  "schema": "ppatc-bench/v1",
  "config": {"duration_s": 10, "workers": 8, "seed": 1, "batch_size": 16,
    "mix": {"evaluate": 60, "batch": 15, "tcdp": 15, "suite": 10},
    "workloads": ["crc32", "sieve", "edn"], "warmup": true,
    "server_workers": 8, "cache_shards": 16},
  "totals": {"requests": 100000, "errors": 0, "elapsed_s": 10,
    "throughput_rps": 10000, "allocs_per_op": 100, "bytes_per_op": 9000},
  "endpoints": {
    "evaluate": {"count": 60000, "errors": 0, "p50_ms": 0.010, "p95_ms": 0.050,
      "p99_ms": 0.100, "max_ms": 1.0, "cache_hits": 59990},
    "suite": {"count": 10000, "errors": 0, "p50_ms": 0.020, "p95_ms": 0.080,
      "p99_ms": 0.200, "max_ms": 2.0, "cache_hits": 9990}
  }
}`

func fixtureV2(seq int, evalP95, allocs float64) string {
	return fmt.Sprintf(`{
  "schema": "ppatc-bench/v2",
  "seq": %d,
  "engine": {"go_version": "go1.23", "goos": "linux", "goarch": "amd64",
    "gomaxprocs": 8, "num_cpu": 8},
  "config": {"duration_s": 10, "workers": 8, "seed": 1, "batch_size": 16,
    "mix": {"evaluate": 60, "suite": 10},
    "workloads": ["crc32"], "warmup": true,
    "server_workers": 8, "cache_shards": 16},
  "totals": {"requests": 120000, "errors": 0, "elapsed_s": 10,
    "throughput_rps": 12000, "allocs_per_op": %g, "bytes_per_op": 8000},
  "endpoints": {
    "evaluate": {"count": 70000, "errors": 0, "p50_ms": 0.010, "p95_ms": %g,
      "p99_ms": 0.090, "max_ms": 0.9, "cache_hits": 69990},
    "suite": {"count": 10000, "errors": 0, "p50_ms": 0.018, "p95_ms": 0.070,
      "p99_ms": 0.150, "max_ms": 1.5, "cache_hits": 9995}
  }
}`, seq, allocs, evalP95)
}

func writeFixtures(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirOrdersBySeq(t *testing.T) {
	dir := writeFixtures(t, map[string]string{
		"BENCH_10.json": fixtureV2(10, 0.045, 90),
		"BENCH_4.json":  fixtureV1,
		"BENCH_7.json":  fixtureV2(7, 0.048, 95),
	})
	reports, err := loadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	for _, r := range reports {
		seqs = append(seqs, r.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 4 || seqs[1] != 7 || seqs[2] != 10 {
		t.Fatalf("order = %v, want [4 7 10]", seqs)
	}
	// The v1 report's seq came from its filename.
	if reports[0].Schema != bench.SchemaV1 || reports[0].Engine != nil {
		t.Errorf("v1 report parsed wrong: %+v", reports[0])
	}
}

func TestRenderMarkdownDeterministic(t *testing.T) {
	dir := writeFixtures(t, map[string]string{
		"BENCH_4.json": fixtureV1,
		"BENCH_7.json": fixtureV2(7, 0.045, 90),
	})
	reports, err := loadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	md := renderMarkdown(reports)
	// Byte-identical across repeated renders and reloads — the property
	// CI's git-diff gate relies on.
	for i := 0; i < 5; i++ {
		again, err := loadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if renderMarkdown(again) != md {
			t.Fatal("regenerated BENCHMARK.md differs between runs")
		}
	}
	for _, want := range []string{
		"## Latest: seq 7 (`BENCH_7.json`)",
		"### Delta vs seq 4 (`BENCH_4.json`)",
		"## History",
		"| 4 | `BENCH_4.json` | ppatc-bench/v1 |",
		"Engines differ", // v1 has no stamp, v2 does
		"evaluate=60",    // mix rendered in sorted order
	} {
		if !strings.Contains(md, want) {
			t.Errorf("BENCHMARK.md missing %q", want)
		}
	}
	// Endpoints sorted best-first by p95: evaluate (0.045) before suite.
	if strings.Index(md, "| evaluate |") > strings.Index(md, "| suite |") {
		t.Error("endpoint table not sorted best-first by p95")
	}
}

func TestCompareRegressions(t *testing.T) {
	old, err := bench.Parse([]byte(fixtureV2(7, 0.050, 100)), "BENCH_7.json")
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, newBody string, wantFail bool) {
		t.Helper()
		cur, err := bench.Parse([]byte(newBody), "BENCH_8.json")
		if err != nil {
			t.Fatal(err)
		}
		failed := false
		for _, f := range compare(old, cur, 10, 25, 10) {
			failed = failed || f.Regression
		}
		if failed != wantFail {
			t.Errorf("failed = %v, want %v", failed, wantFail)
		}
	}
	t.Run("within thresholds", func(t *testing.T) {
		check(t, fixtureV2(8, 0.052, 105), false) // +4%, +5%
	})
	t.Run("p95 regression", func(t *testing.T) {
		check(t, fixtureV2(8, 0.060, 100), true) // +20% p95
	})
	t.Run("allocs regression", func(t *testing.T) {
		check(t, fixtureV2(8, 0.050, 120), true) // +20% allocs/op
	})
	t.Run("p99 regression", func(t *testing.T) {
		// p95 within threshold but the tail blows out: +67% p99 on
		// evaluate against the 25% gate.
		body := strings.Replace(fixtureV2(8, 0.050, 100), `"p99_ms": 0.090`, `"p99_ms": 0.150`, 1)
		check(t, body, true)
	})
	t.Run("p99 within threshold", func(t *testing.T) {
		body := strings.Replace(fixtureV2(8, 0.050, 100), `"p99_ms": 0.090`, `"p99_ms": 0.100`, 1)
		check(t, body, false) // +11% p99
	})
	t.Run("improvement", func(t *testing.T) {
		check(t, fixtureV2(8, 0.030, 50), false)
	})
}

func TestCheckCmdFiles(t *testing.T) {
	dir := writeFixtures(t, map[string]string{
		"BENCH_1.json": fixtureV2(1, 0.050, 100),
		"BENCH_2.json": fixtureV2(2, 0.090, 100), // 80% p95 regression
	})
	failed, err := checkCmd([]string{
		"-old", filepath.Join(dir, "BENCH_1.json"),
		"-new", filepath.Join(dir, "BENCH_2.json"),
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("80% p95 regression not flagged")
	}
	// The same pair passes with a generous threshold.
	failed, err = checkCmd([]string{"-dir", dir, "-max-p95-regress", "100"}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("regression flagged despite 100% threshold")
	}
}

func TestReportCmdWritesFile(t *testing.T) {
	dir := writeFixtures(t, map[string]string{
		"BENCH_4.json": fixtureV1,
		"BENCH_7.json": fixtureV2(7, 0.045, 90),
	})
	if err := reportCmd([]string{"-dir", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "BENCHMARK.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "# Benchmark report\n") {
		t.Errorf("unexpected document head: %.60s", b)
	}
	// A second run must reproduce the file byte-identically.
	if err := reportCmd([]string{"-dir", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir, "BENCHMARK.md"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("report regeneration is not byte-identical")
	}
}
