// Command ppatcbench turns committed load-bench reports (BENCH_*.json,
// written by cmd/ppatcload) into continuous benchmark reporting:
//
//	ppatcbench report [-dir .] [-out BENCHMARK.md]
//	    regenerates BENCHMARK.md from every BENCH_*.json in -dir —
//	    per-endpoint latency percentiles sorted best-first, throughput,
//	    allocation rates, and regression deltas against the previous
//	    bench in the sequence. The output is a pure function of the
//	    input files (no timestamps), so CI verifies the committed
//	    BENCHMARK.md is in sync by regenerating and diffing.
//
//	ppatcbench check [-dir .] [-old a.json -new b.json]
//	               [-max-p95-regress 10] [-max-p99-regress 25]
//	               [-max-allocs-regress 10]
//	    compares two reports (explicit files, or the two newest
//	    sequence numbers in -dir) and exits nonzero when any endpoint's
//	    p95 or p99, or the run's allocs/op, regressed beyond the
//	    thresholds — the CI gate. The p99 threshold is looser than p95
//	    by default: the tail is noisier, but an unbounded tail is
//	    exactly the admission-control regression the gate exists to
//	    catch. Latency thresholds only mean something between runs on
//	    the same engine; the tool warns when engines differ.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ppatc/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: ppatcbench <report|check> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = reportCmd(os.Args[2:], os.Stdout)
	case "check":
		var failed bool
		failed, err = checkCmd(os.Args[2:], os.Stdout)
		if err == nil && failed {
			os.Exit(1)
		}
	default:
		err = fmt.Errorf("ppatcbench: unknown subcommand %q (want report or check)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// loadDir parses every BENCH_*.json in dir, ordered by sequence number
// (ties broken by filename, so the order — and the rendered report —
// is deterministic).
func loadDir(dir string) ([]*bench.Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	reports := make([]*bench.Report, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		r, err := bench.Parse(data, p)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].Seq < reports[j].Seq })
	return reports, nil
}

func reportCmd(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("ppatcbench report", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json reports")
	out := fs.String("out", "", "output path (default <dir>/BENCHMARK.md; - for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reports, err := loadDir(*dir)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		return fmt.Errorf("ppatcbench: no BENCH_*.json reports in %s", *dir)
	}
	md := renderMarkdown(reports)
	if *out == "-" {
		_, err = stdout.WriteString(md)
		return err
	}
	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCHMARK.md")
	}
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ppatcbench: wrote %s from %d report(s), latest seq %d\n",
		path, len(reports), reports[len(reports)-1].Seq)
	return nil
}

func checkCmd(args []string, stdout *os.File) (failed bool, err error) {
	fs := flag.NewFlagSet("ppatcbench check", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json reports")
	oldPath := fs.String("old", "", "baseline report (overrides -dir selection)")
	newPath := fs.String("new", "", "candidate report (overrides -dir selection)")
	maxP95 := fs.Float64("max-p95-regress", 10, "max tolerated p95 regression, percent")
	maxP99 := fs.Float64("max-p99-regress", 25, "max tolerated p99 regression, percent")
	maxAllocs := fs.Float64("max-allocs-regress", 10, "max tolerated allocs/op regression, percent")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	var oldRep, newRep *bench.Report
	switch {
	case *oldPath != "" && *newPath != "":
		if oldRep, err = loadFile(*oldPath); err != nil {
			return false, err
		}
		if newRep, err = loadFile(*newPath); err != nil {
			return false, err
		}
	case *oldPath == "" && *newPath == "":
		reports, err := loadDir(*dir)
		if err != nil {
			return false, err
		}
		if len(reports) < 2 {
			return false, fmt.Errorf("ppatcbench: need two reports to check, found %d in %s", len(reports), *dir)
		}
		oldRep, newRep = reports[len(reports)-2], reports[len(reports)-1]
	default:
		return false, fmt.Errorf("ppatcbench: -old and -new must be given together")
	}
	findings := compare(oldRep, newRep, *maxP95, *maxP99, *maxAllocs)
	fmt.Fprintf(stdout, "ppatcbench: %s (seq %d) vs %s (seq %d)\n",
		oldRep.File, oldRep.Seq, newRep.File, newRep.Seq)
	if oldRep.Engine.String() != newRep.Engine.String() {
		fmt.Fprintf(stdout, "  warning: engines differ (%s vs %s); latency thresholds are unreliable\n",
			oldRep.Engine, newRep.Engine)
	}
	for _, f := range findings {
		fmt.Fprintf(stdout, "  %s\n", f.String())
		failed = failed || f.Regression
	}
	if !failed {
		fmt.Fprintln(stdout, "  ok: no regression beyond thresholds")
	}
	return failed, nil
}

func loadFile(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.Parse(data, path)
}

// finding is one compared metric.
type finding struct {
	Metric     string
	Old, New   float64
	DeltaPct   float64
	Regression bool
}

func (f finding) String() string {
	verdict := "ok"
	if f.Regression {
		verdict = "REGRESSION"
	}
	return fmt.Sprintf("%-22s %12.3f -> %12.3f  (%+7.1f%%)  %s",
		f.Metric, f.Old, f.New, f.DeltaPct, verdict)
}

func deltaPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// compare builds the regression findings: per-endpoint p95 and p99
// (endpoints present in both reports) and whole-run allocs/op, each
// against its threshold.
func compare(oldRep, newRep *bench.Report, maxP95, maxP99, maxAllocs float64) []finding {
	var out []finding
	for _, name := range newRep.SortedEndpoints() {
		n := newRep.Endpoints[name]
		o, ok := oldRep.Endpoints[name]
		if !ok {
			continue
		}
		d := deltaPct(o.P95Ms, n.P95Ms)
		out = append(out, finding{
			Metric: name + " p95 ms", Old: o.P95Ms, New: n.P95Ms,
			DeltaPct: d, Regression: d > maxP95,
		})
		d = deltaPct(o.P99Ms, n.P99Ms)
		out = append(out, finding{
			Metric: name + " p99 ms", Old: o.P99Ms, New: n.P99Ms,
			DeltaPct: d, Regression: d > maxP99,
		})
	}
	d := deltaPct(oldRep.Totals.AllocsPerOp, newRep.Totals.AllocsPerOp)
	out = append(out, finding{
		Metric: "allocs/op", Old: oldRep.Totals.AllocsPerOp, New: newRep.Totals.AllocsPerOp,
		DeltaPct: d, Regression: d > maxAllocs,
	})
	return out
}
