// Command gdsgen emits a GDSII layout of the M3D eDRAM sub-array (the
// 3T IGZO/CNFET bit cell arrayed into a 128×128 mat) together with a
// GDS3D-style layer map, matching the layout artifact the paper's
// repository distributes.
package main

import (
	"flag"
	"fmt"
	"os"

	"ppatc/internal/edram"
	"ppatc/internal/gds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gdsgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "m3d_edram.gds", "output GDS path")
	layerMap := flag.String("layermap", "m3d_edram.layermap", "output GDS3D layer map path (empty to skip)")
	rows := flag.Int("rows", 128, "sub-array rows")
	cols := flag.Int("cols", 128, "sub-array columns")
	flag.Parse()

	cell := edram.M3DCellDesign()
	lib, err := gds.M3DSubArray(cell, *rows, *cols)
	if err != nil {
		return err
	}
	// DRC-lite gate: refuse to emit a layout that violates the generator's
	// own design rules.
	rules := gds.DefaultDRCRules(int32(cell.CellWidth.Nanometers()), int32(cell.CellHeight.Nanometers()))
	if violations := gds.CheckStructure(lib.Structures[0], rules); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "DRC:", v)
		}
		return fmt.Errorf("bit cell fails DRC with %d violations", len(violations))
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := lib.Encode(f); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d structures, %d×%d cells)\n",
		*out, info.Size(), len(lib.Structures), *rows, *cols)

	if *layerMap != "" {
		lf, err := os.Create(*layerMap)
		if err != nil {
			return err
		}
		defer lf.Close()
		if err := gds.LayerMap(lf); err != nil {
			return err
		}
		fmt.Printf("wrote %s (render with GDS3D to see the Fig. 2b stack)\n", *layerMap)
	}
	return nil
}
