package main

import (
	"fmt"
	"os/exec"
	"path"
	"sort"
	"strings"

	"ppatc/internal/analysis"
)

// gitChangedFiles lists the paths git reports as changed relative to
// base (committed, staged, and working-tree edits alike), as
// repo-root-relative slash paths — the same shape diagnostics use.
func gitChangedFiles(dir, base string) ([]string, error) {
	cmd := exec.Command("git", "diff", "--name-only", base, "--")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff --name-only %s: %s", base, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff --name-only %s: %v", base, err)
	}
	var files []string
	for _, line := range strings.Split(string(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			files = append(files, line)
		}
	}
	return files, nil
}

// changedDirPatterns reduces a changed-file list to the go-list
// patterns covering the packages those files live in: one ./dir per
// directory holding a changed .go file, sorted and deduplicated.
// Fixture sources under testdata are not loadable packages and are
// dropped.
func changedDirPatterns(files []string) []string {
	seen := map[string]bool{}
	for _, f := range files {
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		d := path.Dir(f)
		if d == "testdata" || strings.HasPrefix(d, "testdata/") || strings.Contains(d, "/testdata") {
			continue
		}
		if d == "." {
			seen["."] = true
		} else {
			seen["./"+d] = true
		}
	}
	patterns := make([]string, 0, len(seen))
	for p := range seen {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return patterns
}

// githubAnnotation renders one diagnostic as a GitHub Actions workflow
// command, so findings surface inline on the pull request diff.
func githubAnnotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=ppatcvet(%s)::%s",
		githubEscapeProperty(d.File), d.Line, d.Col,
		githubEscapeProperty(d.Analyzer), githubEscapeMessage(d.Message))
}

// githubEscapeMessage escapes the data portion of a workflow command:
// %, CR, and LF would otherwise terminate or corrupt the command.
func githubEscapeMessage(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProperty escapes a property value, which additionally
// reserves ':' and ','.
func githubEscapeProperty(s string) string {
	s = githubEscapeMessage(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
