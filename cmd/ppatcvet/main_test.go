package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"ppatc/internal/analysis"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(analysis.Analyzers()) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(analysis.Analyzers()), out)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("-list output missing %s / its doc:\n%s", a.Name, out)
		}
	}
}

// TestJSONRoundTrip pins the -json contract: the output parses as a
// JSON array of analysis.Diagnostic and survives a re-encode without
// losing a field.
func TestJSONRoundTrip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./internal/analysis/testdata/src/yield"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1: %s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse as []Diagnostic: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic lost a field in JSON: %+v", d)
		}
	}
	again, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []analysis.Diagnostic
	if err := json.Unmarshal(again, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("diagnostics changed across a re-encode:\n%v\nvs\n%v", diags, back)
	}
}

// TestJSONEmptyIsArray checks a clean run still emits valid JSON ([]),
// so CI consumers never see "null".
func TestJSONEmptyIsArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./internal/units"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package exited %d: %s\n%s", code, stderr.String(), stdout.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestFixtureExitCodes pins the exit-status contract on each
// analyzer's fixture.
func TestFixtureExitCodes(t *testing.T) {
	for _, fixture := range []string{
		"unitcast", "dse", "core", "yield", "hotpath", "directives",
		"server", "cluster", "store", "apicontract",
	} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"./internal/analysis/testdata/src/" + fixture}, &stdout, &stderr)
		if code != 1 {
			t.Errorf("fixture %s exited %d, want 1\nstdout: %s\nstderr: %s",
				fixture, code, stdout.String(), stderr.String())
		}
	}
}

func TestDisableFlagSilencesAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-floatcmp=false", "./internal/analysis/testdata/src/yield"}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("yield fixture with floatcmp disabled exited %d\n%s%s",
			code, stdout.String(), stderr.String())
	}
	// The fixture's in-source suppression must not be reported stale
	// while its analyzer is disabled.
	if strings.Contains(stdout.String(), "suppresses nothing") {
		t.Errorf("disabled analyzer's suppression reported stale:\n%s", stdout.String())
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exited %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
	allOff := make([]string, 0, len(analysis.Analyzers()))
	for _, a := range analysis.Analyzers() {
		allOff = append(allOff, "-"+a.Name+"=false")
	}
	if code := run(allOff, &stdout, &stderr); code != 2 {
		t.Errorf("all-disabled exited %d, want 2", code)
	}
}

// TestFormatGitHub pins the -format github contract: one ::error
// workflow command per finding, carrying the file, position, and
// analyzer, with exit status 1.
func TestFormatGitHub(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-format", "github", "./internal/analysis/testdata/src/yield"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no annotations emitted")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=internal/analysis/testdata/src/yield/") {
			t.Errorf("annotation does not target the fixture file: %q", line)
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, "title=ppatcvet(") {
			t.Errorf("annotation missing position or title: %q", line)
		}
	}
}

func TestFormatValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown format exited %d, want 2", code)
	}
	if code := run([]string{"-json", "-format", "github"}, &stdout, &stderr); code != 2 {
		t.Errorf("conflicting -json/-format exited %d, want 2", code)
	}
	if code := run([]string{"-changed", "HEAD", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("-changed with explicit patterns exited %d, want 2", code)
	}
}

// TestChangedDirPatterns pins the pure file→pattern mapping -changed
// rests on.
func TestChangedDirPatterns(t *testing.T) {
	got := changedDirPatterns([]string{
		"internal/server/batch.go",
		"internal/server/pool.go",
		"internal/cluster/membership.go",
		"internal/analysis/testdata/src/server/request.go", // fixture: dropped
		"README.md",            // not Go: dropped
		"main.go",              // module root
		"docs/example_test.go", // any .go file counts
	})
	want := []string{".", "./docs", "./internal/cluster", "./internal/server"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("changedDirPatterns = %v, want %v", got, want)
	}
}

// TestChangedModeAgainstHEAD runs the real git path: relative to HEAD
// the tree either has no Go changes (exit 0, nothing loaded) or only
// this PR's packages, which are clean at HEAD by the repo-clean gate.
func TestChangedModeAgainstHEAD(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-changed", "HEAD", "-dir", "../.."}, &stdout, &stderr); code != 0 {
		t.Errorf("-changed HEAD exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestGitHubEscaping keeps workflow-command metacharacters from
// corrupting annotations.
func TestGitHubEscaping(t *testing.T) {
	d := analysis.Diagnostic{
		Analyzer: "ctxflow",
		File:     "a,b:c.go",
		Line:     3,
		Col:      7,
		Message:  "50% done\nnext line",
	}
	got := githubAnnotation(d)
	want := "::error file=a%2Cb%3Ac.go,line=3,col=7,title=ppatcvet(ctxflow)::50%25 done%0Anext line"
	if got != want {
		t.Errorf("githubAnnotation:\n got %q\nwant %q", got, want)
	}
}
