package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ppatc/internal/analysis"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	out := stdout.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(analysis.Analyzers()) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(analysis.Analyzers()), out)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out, a.Name) || !strings.Contains(out, a.Doc) {
			t.Errorf("-list output missing %s / its doc:\n%s", a.Name, out)
		}
	}
}

// TestJSONRoundTrip pins the -json contract: the output parses as a
// JSON array of analysis.Diagnostic and survives a re-encode without
// losing a field.
func TestJSONRoundTrip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./internal/analysis/testdata/src/yield"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1: %s", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse as []Diagnostic: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic lost a field in JSON: %+v", d)
		}
	}
	again, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []analysis.Diagnostic
	if err := json.Unmarshal(again, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("diagnostics changed across a re-encode:\n%v\nvs\n%v", diags, back)
	}
}

// TestJSONEmptyIsArray checks a clean run still emits valid JSON ([]),
// so CI consumers never see "null".
func TestJSONEmptyIsArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./internal/units"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package exited %d: %s\n%s", code, stderr.String(), stdout.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestFixtureExitCodes pins the exit-status contract on each
// analyzer's fixture.
func TestFixtureExitCodes(t *testing.T) {
	for _, fixture := range []string{"unitcast", "dse", "core", "yield", "hotpath", "directives"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"./internal/analysis/testdata/src/" + fixture}, &stdout, &stderr)
		if code != 1 {
			t.Errorf("fixture %s exited %d, want 1\nstdout: %s\nstderr: %s",
				fixture, code, stdout.String(), stderr.String())
		}
	}
}

func TestDisableFlagSilencesAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-floatcmp=false", "./internal/analysis/testdata/src/yield"}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("yield fixture with floatcmp disabled exited %d\n%s%s",
			code, stdout.String(), stderr.String())
	}
	// The fixture's in-source suppression must not be reported stale
	// while its analyzer is disabled.
	if strings.Contains(stdout.String(), "suppresses nothing") {
		t.Errorf("disabled analyzer's suppression reported stale:\n%s", stdout.String())
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exited %d, want 2", code)
	}
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"-unitcast=false", "-determinism=false", "-floatcmp=false", "-hotpath=false"}, &stdout, &stderr); code != 2 {
		t.Errorf("all-disabled exited %d, want 2", code)
	}
}
