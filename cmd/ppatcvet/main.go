// Command ppatcvet runs ppatc's domain-specific static-analysis suite
// — unitcast, determinism, floatcmp, hotpath, ctxflow, locksafe,
// goleak, apicontract — over the packages matching the given go-list
// patterns (default ./...).
//
//	go run ./cmd/ppatcvet ./...                 # human-readable findings
//	go run ./cmd/ppatcvet -json ./...           # JSON array of diagnostics
//	go run ./cmd/ppatcvet -format github ./...  # GitHub ::error annotations
//	go run ./cmd/ppatcvet -changed origin/main  # only packages changed since the ref
//	go run ./cmd/ppatcvet -list                 # analyzer names and docs
//	go run ./cmd/ppatcvet -floatcmp=false ./internal/...
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
// Deliberate violations are suppressed in place:
//
//	//ppatcvet:ignore <analyzer>[,<analyzer>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ppatc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppatcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of diagnostics (same as -format json)")
	format := fs.String("format", "", "output format: text (default), json, or github (::error workflow annotations)")
	changed := fs.String("changed", "", "git base ref: analyze only packages with Go files changed since it (replaces the patterns)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory whose module the patterns resolve in")

	enabled := make(map[string]*bool)
	for _, a := range analysis.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "github":
		if *jsonOut && *format != "json" {
			fmt.Fprintf(stderr, "ppatcvet: -json conflicts with -format %s\n", *format)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "ppatcvet: unknown -format %q (want text, json, or github)\n", *format)
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var analyzers []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "ppatcvet: every analyzer is disabled")
		return 2
	}

	patterns := fs.Args()
	if *changed != "" {
		if len(patterns) > 0 {
			fmt.Fprintln(stderr, "ppatcvet: -changed replaces the package patterns; pass one or the other")
			return 2
		}
		files, err := gitChangedFiles(*dir, *changed)
		if err != nil {
			fmt.Fprintf(stderr, "ppatcvet: %v\n", err)
			return 2
		}
		patterns = changedDirPatterns(files)
		if len(patterns) == 0 {
			if *format == "json" {
				fmt.Fprintln(stdout, "[]")
			}
			fmt.Fprintf(stderr, "ppatcvet: no Go files changed since %s\n", *changed)
			return 0
		}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ppatcvet: %v\n", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "ppatcvet: %v\n", err)
			return 2
		}
	case "github":
		for _, d := range diags {
			fmt.Fprintln(stdout, githubAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if *format != "json" {
			fmt.Fprintf(stderr, "ppatcvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
