// Command ppatcd serves the PPAtC engine as a long-lived JSON API. Run
// with no arguments to start the daemon:
//
//	ppatcd -addr :8037 -workers 4 -queue 64 -cache 512
//
// Endpoints:
//
//	POST /v1/evaluate   {"system":"m3d","workload":"matmult-int","grid":"US"}
//	POST /v1/batch      {"items":[{"system":"si","workload":"crc32"}, ...]}
//	POST /v1/suite      {"grid":"US"}
//	POST /v1/tcdp       {"workload":"matmult-int","grid":"US","months":24}
//	POST /v1/sweeps     design-space sweep spec → async job (202 + job ID)
//	GET  /v1/sweeps     job listing
//	GET  /v1/sweeps/{id}           job status and progress
//	GET  /v1/sweeps/{id}/results   NDJSON result stream (follows live jobs)
//	GET  /v1/sweeps/{id}/frontier  Pareto/sensitivity/winner analyses
//	DELETE /v1/sweeps/{id}         cancel
//	GET  /v1/results    stored-result listing (?prefix= filters; needs -store-dir)
//	GET  /v1/results/{key}         one stored result, byte-identical (URL-escaped key)
//	GET  /v1/grids      grid discovery
//	GET  /v1/workloads  workload discovery
//	GET  /healthz       readiness (503 while draining or store-degraded)
//	GET  /livez         liveness (200 while the process is up)
//	GET  /metrics       Prometheus-style counters and latency histograms
//	                    (request + per-pipeline-stage + ppatcd_sweep_* +
//	                    endpoint×disposition + slowest-request exemplars)
//	GET  /v1/metrics/stream  Server-Sent Events: completed-request flight
//	                    events plus periodic counter snapshots
//	GET  /debug/flight  flight-recorder dump, NDJSON, one event per line
//	                    (?ring=recent|slow|all, ?n= newest n)
//
// Sweep jobs are keyed by the spec hash: POSTing the same spec twice
// lands on the same job, and with -sweep-dir the daemon checkpoints
// completed points so a restart resumes interrupted sweeps from disk.
//
// With -store-dir the daemon additionally persists every computed
// result — evaluate/suite/tcdp responses, sweep points and finished
// sweeps — to an on-disk store (-store-backend segment or cas). A
// restarted daemon warms its cache from the store, replays finished
// sweeps under their old IDs, and adopts already-computed points into
// new sweep jobs, so historical work is never re-evaluated. Store
// failures degrade to compute-on-miss and are surfaced on /healthz.
//
// The daemon caches results (the pipeline is deterministic; the cache is
// striped across -cache-shards locks), coalesces concurrent identical
// requests, bounds concurrency with a worker pool, and drains in-flight
// requests on SIGTERM/SIGINT. /v1/batch evaluates up to 256 tuples per
// request through the same cache and pool.
//
// Observability: every request gets a trace ID (taken from an incoming
// X-Request-ID header when present), echoed on the response and logged
// with the request's latency and cache disposition. Appending ?trace=1
// to an evaluation endpoint returns the stage-level span tree inline.
// -pprof mounts net/http/pprof at /debug/pprof/. Logs are structured
// slog records; -log-level and -log-format select verbosity and
// text/JSON encoding.
//
// Every request additionally records a latency attribution — wall clock
// split into queue_wait / cache_lookup / compute / encode / store_write
// — into an always-on flight recorder retaining the last -flight-slots
// completed requests plus everything slower than -slow-ms (those are
// also logged at warn with their stage breakdown). Dump it with
// -call flight or GET /debug/flight.
//
// Cluster mode: -join turns N daemons into one service. Peers gossip
// health over HTTP, evaluation results route to their consistent-hash
// owner (a miss on the wrong node forwards one hop instead of
// recomputing), and sweeps shard across the cluster with work-stealing
// — merged output stays byte-identical to a single-node run:
//
//	ppatcd -addr :8037 -node-id a
//	ppatcd -addr :8038 -node-id b -join http://127.0.0.1:8037
//
// -advertise overrides the URL peers use to reach this node (defaults
// to http://127.0.0.1:PORT derived from -addr). On SIGTERM a joined
// node flips /healthz to 503 and gossips "leaving" before the drain
// window starts, so peers stop routing to it while it can still answer.
//
// Client mode drives a running daemon without curl:
//
//	ppatcd -call evaluate -data '{"system":"si","workload":"crc32"}'
//	ppatcd -call grids -addr http://localhost:8037
//	ppatcd -call sweep -data @spec.json
//	ppatcd -call sweep-results -id 3f1c9a2b7d04
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ppatc/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppatcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppatcd", flag.ContinueOnError)
	addr := fs.String("addr", ":8037", "listen address (serve mode) or base URL (client mode)")
	workers := fs.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "request queue depth before 503s")
	cache := fs.Int("cache", 512, "LRU result-cache entries")
	cacheShards := fs.Int("cache-shards", 16, "result-cache lock stripes (rounded up to a power of two)")
	batchChunk := fs.Int("batch-chunk", 0, "bulk-batch chunk size: cold batches fan out in sub-units of this many items (0 = 16)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request evaluation timeout")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain window for in-flight requests")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := fs.String("log-format", "json", "log encoding: text or json")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	sweepDir := fs.String("sweep-dir", "", "sweep checkpoint directory (restarted daemon resumes interrupted sweeps)")
	sweepQueue := fs.Int("sweep-queue", 8, "queued sweep jobs before 503s")
	sweepRunners := fs.Int("sweep-runners", 1, "sweep jobs executing concurrently")
	sweepMaxPoints := fs.Int("sweep-max-points", 0, "largest accepted sweep plan (0 = 100000)")
	storeDir := fs.String("store-dir", "", "persistent result-store directory (results survive restarts)")
	storeBackend := fs.String("store-backend", "segment", "result-store layout: segment or cas")
	storeMaxSegment := fs.Int64("store-max-segment-bytes", 0, "segment-store file size cap (0 = 8 MiB)")
	slowMS := fs.Int("slow-ms", 100, "slow-request threshold in milliseconds (retained in the flight recorder's slow ring and logged at warn; 0 disables)")
	flightSlots := fs.Int("flight-slots", 1024, "flight-recorder recent-events ring size (rounded up to a power of two)")
	join := fs.String("join", "", "comma-separated peer URLs to join as a cluster (empty = standalone)")
	nodeID := fs.String("node-id", "", "stable cluster node ID (default: derived from the advertise URL)")
	advertise := fs.String("advertise", "", "URL peers use to reach this node (default: http://127.0.0.1:PORT from -addr)")
	call := fs.String("call", "", "client mode: endpoint to call (evaluate, batch, suite, tcdp, sweep, sweeps, sweep-status, sweep-results, sweep-frontier, sweep-cancel, results, result, grids, workloads, health, metrics, flight)")
	data := fs.String("data", "", "client mode: JSON request body ('@file' reads a file)")
	jobID := fs.String("id", "", "client mode: sweep job ID for sweep-status/results/frontier/cancel")
	key := fs.String("key", "", "client mode: stored-result key for -call result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *call != "" {
		return clientCall(*addr, *call, *data, *jobID, *key)
	}
	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	return serve(*addr, clusterOpts{join: *join, nodeID: *nodeID, advertise: *advertise}, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		CacheShards:    *cacheShards,
		BatchChunk:     *batchChunk,
		RequestTimeout: *timeout,
		Logger:         logger,
		EnablePprof:    *pprofOn,
		SweepDir:       *sweepDir,
		SweepQueue:     *sweepQueue,
		SweepRunners:   *sweepRunners,
		SweepMaxPoints: *sweepMaxPoints,

		StoreDir:             *storeDir,
		StoreBackend:         *storeBackend,
		StoreMaxSegmentBytes: *storeMaxSegment,

		FlightRecentSlots: *flightSlots,
		SlowThreshold:     slowThreshold(*slowMS),
	}, *drain)
}

// slowThreshold converts the -slow-ms flag to a Config value: 0 means
// "disable", which Config spells as a negative duration (zero selects
// the default).
func slowThreshold(ms int) time.Duration {
	if ms <= 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

// buildLogger assembles the daemon's slog.Logger from the -log-level and
// -log-format flags.
func buildLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
	}
}

// clusterOpts carries the -join/-node-id/-advertise flags into serve.
type clusterOpts struct {
	join, nodeID, advertise string
}

// enabled reports whether the flags ask for cluster mode: -join names
// peers, or -node-id marks this daemon as a (seed) cluster member that
// peers will join later.
func (c clusterOpts) enabled() bool { return c.join != "" || c.nodeID != "" }

// resolve fills the defaults: advertise from the listen address, node
// ID from the advertise URL.
func (c clusterOpts) resolve(addr string) (nodeID, advertise string, peers []string) {
	advertise = c.advertise
	if advertise == "" {
		port := addr
		if i := strings.LastIndex(addr, ":"); i >= 0 {
			port = addr[i:]
		}
		advertise = "http://127.0.0.1" + port
	}
	nodeID = c.nodeID
	if nodeID == "" {
		nodeID = strings.TrimPrefix(strings.TrimPrefix(advertise, "http://"), "https://")
	}
	for _, p := range strings.Split(c.join, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return nodeID, advertise, peers
}

func serve(addr string, cl clusterOpts, cfg server.Config, drain time.Duration) error {
	logger := cfg.Logger
	srv := server.New(cfg)
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	if cl.enabled() {
		nodeID, advertise, peers := cl.resolve(addr)
		if err := srv.StartCluster(nodeID, advertise, peers); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		logger.Info("cluster", "node_id", nodeID, "advertise", advertise, "join", peers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Flip /healthz to not-ready and gossip "leaving" BEFORE the
		// drain starts: load balancers and peers stop routing to this
		// node while it can still answer its in-flight requests.
		srv.BeginShutdown()
		logger.Info("shutdown", "reason", "signal", "drain", drain.String())
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()

	logger.Info("listening", "addr", addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	// Shutdown returned: in-flight requests have drained (or the drain
	// window expired); the deferred srv.Close reaps the worker pool.
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("stopped")
	return nil
}

// clientCall posts to (or gets from) a running daemon and streams the
// response to stdout. Paths containing {id} substitute the -id flag;
// {key} substitutes the -key flag, escaped (store keys contain "|").
func clientCall(addr, endpoint, data, jobID, key string) error {
	base := addr
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	routes := map[string]struct {
		method, path string
	}{
		"evaluate":       {http.MethodPost, "/v1/evaluate"},
		"batch":          {http.MethodPost, "/v1/batch"},
		"suite":          {http.MethodPost, "/v1/suite"},
		"tcdp":           {http.MethodPost, "/v1/tcdp"},
		"sweep":          {http.MethodPost, "/v1/sweeps"},
		"sweeps":         {http.MethodGet, "/v1/sweeps"},
		"sweep-status":   {http.MethodGet, "/v1/sweeps/{id}"},
		"sweep-results":  {http.MethodGet, "/v1/sweeps/{id}/results"},
		"sweep-frontier": {http.MethodGet, "/v1/sweeps/{id}/frontier"},
		"sweep-cancel":   {http.MethodDelete, "/v1/sweeps/{id}"},
		"results":        {http.MethodGet, "/v1/results"},
		"result":         {http.MethodGet, "/v1/results/{key}"},
		"grids":          {http.MethodGet, "/v1/grids"},
		"workloads":      {http.MethodGet, "/v1/workloads"},
		"health":         {http.MethodGet, "/healthz"},
		"metrics":        {http.MethodGet, "/metrics"},
		"flight":         {http.MethodGet, "/debug/flight"},
	}
	rt, ok := routes[endpoint]
	if !ok {
		names := make([]string, 0, len(routes))
		for n := range routes {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown -call %q (valid: %s)", endpoint, strings.Join(names, ", "))
	}
	if strings.Contains(rt.path, "{id}") {
		if jobID == "" {
			return fmt.Errorf("-call %s needs -id <job id>", endpoint)
		}
		rt.path = strings.Replace(rt.path, "{id}", jobID, 1)
	}
	if strings.Contains(rt.path, "{key}") {
		if key == "" {
			return fmt.Errorf("-call %s needs -key <stored-result key>", endpoint)
		}
		rt.path = strings.Replace(rt.path, "{key}", url.PathEscape(key), 1)
	}
	body := io.Reader(nil)
	if rt.method == http.MethodPost {
		if data == "" {
			data = "{}"
		}
		if after, ok := strings.CutPrefix(data, "@"); ok {
			b, err := os.ReadFile(after)
			if err != nil {
				return err
			}
			data = string(b)
		}
		body = strings.NewReader(data)
	}
	req, err := http.NewRequest(rt.method, base+rt.path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s", rt.method, rt.path, resp.Status)
	}
	return nil
}
