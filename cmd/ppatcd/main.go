// Command ppatcd serves the PPAtC engine as a long-lived JSON API. Run
// with no arguments to start the daemon:
//
//	ppatcd -addr :8037 -workers 4 -queue 64 -cache 512
//
// Endpoints:
//
//	POST /v1/evaluate   {"system":"m3d","workload":"matmult-int","grid":"US"}
//	POST /v1/suite      {"grid":"US"}
//	POST /v1/tcdp       {"workload":"matmult-int","grid":"US","months":24}
//	GET  /v1/grids      grid discovery
//	GET  /v1/workloads  workload discovery
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus-style counters and latency histograms
//	                    (request + per-pipeline-stage)
//
// The daemon caches results (the pipeline is deterministic), coalesces
// concurrent identical requests, bounds concurrency with a worker pool,
// and drains in-flight requests on SIGTERM/SIGINT.
//
// Observability: every request gets a trace ID (taken from an incoming
// X-Request-ID header when present), echoed on the response and logged
// with the request's latency and cache disposition. Appending ?trace=1
// to an evaluation endpoint returns the stage-level span tree inline.
// -pprof mounts net/http/pprof at /debug/pprof/. Logs are structured
// slog records; -log-level and -log-format select verbosity and
// text/JSON encoding.
//
// Client mode drives a running daemon without curl:
//
//	ppatcd -call evaluate -data '{"system":"si","workload":"crc32"}'
//	ppatcd -call grids -addr http://localhost:8037
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ppatc/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppatcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppatcd", flag.ContinueOnError)
	addr := fs.String("addr", ":8037", "listen address (serve mode) or base URL (client mode)")
	workers := fs.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "request queue depth before 503s")
	cache := fs.Int("cache", 512, "LRU result-cache entries")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request evaluation timeout")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain window for in-flight requests")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := fs.String("log-format", "json", "log encoding: text or json")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	call := fs.String("call", "", "client mode: endpoint to call (evaluate, suite, tcdp, grids, workloads, health, metrics)")
	data := fs.String("data", "", "client mode: JSON request body")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *call != "" {
		return clientCall(*addr, *call, *data)
	}
	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	return serve(*addr, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		Logger:         logger,
		EnablePprof:    *pprofOn,
	}, *drain)
}

// buildLogger assembles the daemon's slog.Logger from the -log-level and
// -log-format flags.
func buildLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (valid: debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (valid: text, json)", format)
	}
}

func serve(addr string, cfg server.Config, drain time.Duration) error {
	logger := cfg.Logger
	srv := server.New(cfg)
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutdown", "reason", "signal", "drain", drain.String())
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		shutdownErr <- hs.Shutdown(dctx)
	}()

	logger.Info("listening", "addr", addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	// Shutdown returned: in-flight requests have drained (or the drain
	// window expired); the deferred srv.Close reaps the worker pool.
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("stopped")
	return nil
}

// clientCall posts to (or gets from) a running daemon and streams the
// response to stdout.
func clientCall(addr, endpoint, data string) error {
	base := addr
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	routes := map[string]struct {
		method, path string
	}{
		"evaluate":  {http.MethodPost, "/v1/evaluate"},
		"suite":     {http.MethodPost, "/v1/suite"},
		"tcdp":      {http.MethodPost, "/v1/tcdp"},
		"grids":     {http.MethodGet, "/v1/grids"},
		"workloads": {http.MethodGet, "/v1/workloads"},
		"health":    {http.MethodGet, "/healthz"},
		"metrics":   {http.MethodGet, "/metrics"},
	}
	rt, ok := routes[endpoint]
	if !ok {
		names := make([]string, 0, len(routes))
		for n := range routes {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown -call %q (valid: %s)", endpoint, strings.Join(names, ", "))
	}
	body := io.Reader(nil)
	if rt.method == http.MethodPost {
		if data == "" {
			data = "{}"
		}
		body = strings.NewReader(data)
	}
	req, err := http.NewRequest(rt.method, base+rt.path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s", rt.method, rt.path, resp.Status)
	}
	return nil
}
