package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	logger, err := buildLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatalf("buildLogger: %v", err)
	}
	logger.Info("hidden")
	logger.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info record emitted at -log-level warn")
	}
	if !strings.Contains(out, "visible") {
		t.Error("warn record suppressed at -log-level warn")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Errorf("-log-format json did not emit JSON: %v (%q)", err, out)
	}
}

func TestBuildLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	logger, err := buildLogger(&buf, "debug", "text")
	if err != nil {
		t.Fatalf("buildLogger: %v", err)
	}
	logger.Debug("dbg", "k", "v")
	if out := buf.String(); !strings.Contains(out, "msg=dbg") {
		t.Errorf("text handler output unexpected: %q", out)
	}
}

func TestBuildLoggerRejectsBadFlags(t *testing.T) {
	if _, err := buildLogger(&bytes.Buffer{}, "loud", "json"); err == nil {
		t.Error("bad -log-level accepted")
	}
	if _, err := buildLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("bad -log-format accepted")
	}
}
