package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	all := []Params{
		SiNFET(HVT), SiNFET(RVT), SiNFET(LVT), SiNFET(SLVT),
		SiPFET(RVT), CNFET(), CNFETPMOS(), IGZO(),
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := SiNFET(RVT)
	bad.SSmVdec = 30 // below model validity
	if err := bad.Validate(); err == nil {
		t.Error("sub-thermal swing should be invalid")
	}
	bad = SiNFET(RVT)
	bad.VT0 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero VT should be invalid")
	}
}

func TestVTFlavorStrings(t *testing.T) {
	want := []string{"HVT", "RVT", "LVT", "SLVT"}
	for i, f := range VTFlavors() {
		if f.String() != want[i] {
			t.Errorf("flavor %d = %q, want %q", i, f.String(), want[i])
		}
	}
}

func TestSiIONInASAP7Envelope(t *testing.T) {
	// ASAP7-class FinFETs deliver roughly 0.4-0.9 mA/µm at VDD = 0.7 V.
	for _, f := range VTFlavors() {
		ion := SiNFET(f).ION(VDD) // A/m == µA/µm
		if ion < 300 || ion > 1000 {
			t.Errorf("Si NMOS %s ION = %.0f µA/µm, want 300-1000", f, ion)
		}
	}
}

func TestVTFlavorOrdering(t *testing.T) {
	// Lower VT ⇒ more drive and more leakage, strictly.
	flavors := VTFlavors()
	for i := 1; i < len(flavors); i++ {
		slow, fast := SiNFET(flavors[i-1]), SiNFET(flavors[i])
		if fast.ION(VDD) <= slow.ION(VDD) {
			t.Errorf("%s ION should exceed %s", fast.Name, slow.Name)
		}
		if fast.IOFF(VDD) <= slow.IOFF(VDD) {
			t.Errorf("%s IOFF should exceed %s", fast.Name, slow.Name)
		}
	}
	// Leakage steps should be roughly a decade per flavour.
	ratio := SiNFET(SLVT).IOFF(VDD) / SiNFET(HVT).IOFF(VDD)
	if ratio < 1e2 || ratio > 1e5 {
		t.Errorf("SLVT/HVT leakage ratio = %.2g, want within [1e2, 1e5]", ratio)
	}
}

func TestTableIOrderings(t *testing.T) {
	// Paper Table I: CNFET has high I_EFF (above Si); IGZO has low I_EFF
	// and ultra-low I_OFF; CNFET I_OFF exceeds IGZO's.
	si := SiNFET(RVT)
	cn := CNFET()
	ig := IGZO()
	if cn.IEFF(VDD) <= si.IEFF(VDD) {
		t.Errorf("CNFET IEFF %.0f should exceed Si %.0f", cn.IEFF(VDD), si.IEFF(VDD))
	}
	if ig.IEFF(VDD) >= si.IEFF(VDD)/10 {
		t.Errorf("IGZO IEFF %.2f should be far below Si %.0f", ig.IEFF(VDD), si.IEFF(VDD))
	}
	if cn.IOFF(VDD) <= si.IOFF(VDD) {
		t.Errorf("CNFET IOFF %.3g should exceed Si %.3g (metallic CNTs)", cn.IOFF(VDD), si.IOFF(VDD))
	}
	if ig.HoldLeakage(VDD) >= 1e-12 {
		t.Errorf("IGZO hold leakage = %.3g A/m, want ultra-low (<1e-12)", ig.HoldLeakage(VDD))
	}
}

func TestMetallicCNTFloorRaisesIOFF(t *testing.T) {
	with := CNFET()
	without := CNFET()
	without.LeakFloor = 0
	if with.IOFF(VDD) <= without.IOFF(VDD) {
		t.Error("metallic-CNT floor must raise IOFF")
	}
	// The floor must not materially change the on-current.
	if r := with.ION(VDD) / without.ION(VDD); r > 1.01 {
		t.Errorf("leak floor changed ION by %.3f×", r)
	}
}

func TestSubthresholdSwingExtraction(t *testing.T) {
	for _, p := range []Params{SiNFET(RVT), CNFET(), IGZO()} {
		got, err := p.SubthresholdSwing(VDD)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if math.Abs(got-p.SSmVdec) > 0.05*p.SSmVdec {
			t.Errorf("%s extracted swing %.1f mV/dec, parameter %.1f", p.Name, got, p.SSmVdec)
		}
	}
}

func TestIGZOWriteOverdrive(t *testing.T) {
	// The 1.3 V boosted wordline must deliver several times the 0.7 V
	// drive — that is why the paper overdrives the IGZO write transistor.
	ig := IGZO()
	boost := ig.ION(WriteWordlineVoltage)
	nominal := ig.ION(VDD)
	if boost < 2*nominal {
		t.Errorf("1.3 V drive %.3g should be ≥ 2× the 0.7 V drive %.3g", boost, nominal)
	}
}

func TestPMOSMirrorsSymmetry(t *testing.T) {
	n := SiNFET(RVT)
	p := SiPFET(RVT)
	w := 1e-6
	// PMOS with negative bias conducts negative drain current of similar
	// magnitude scaled by its transport deficit.
	in := n.DrainCurrent(VDD, VDD, w)
	ip := p.DrainCurrent(-VDD, -VDD, w)
	if ip >= 0 {
		t.Fatalf("PMOS on-current should be negative, got %v", ip)
	}
	ratio := -ip / in
	if ratio < 0.5 || ratio > 1.0 {
		t.Errorf("PMOS/NMOS drive ratio = %.2f, want 0.5-1.0", ratio)
	}
	// PMOS off state.
	if off := math.Abs(p.DrainCurrent(0, -VDD, w)); off > 1e-9 {
		t.Errorf("PMOS off current = %v A, want < 1 nA for 1 µm", off)
	}
}

func TestDrainCurrentSymmetry(t *testing.T) {
	// Source/drain exchange: I(vgs, vds) = −I(vgs−vds, −vds).
	p := SiNFET(RVT)
	w := 1e-6
	for _, bias := range [][2]float64{{0.7, 0.3}, {0.5, 0.7}, {0.3, 0.05}} {
		vgs, vds := bias[0], bias[1]
		fwd := p.DrainCurrent(vgs, vds, w)
		rev := p.DrainCurrent(vgs-vds, -vds, w)
		if !almostEqual(fwd, -rev, 1e-9) {
			t.Errorf("symmetry broken at vgs=%v vds=%v: %v vs %v", vgs, vds, fwd, -rev)
		}
	}
	// Zero vds carries zero current (no leak floor for Si).
	if i := p.DrainCurrent(VDD, 0, w); i != 0 {
		t.Errorf("I(vdd, 0) = %v, want 0", i)
	}
}

func TestConductancesPositive(t *testing.T) {
	p := SiNFET(RVT)
	gm, gds := p.Conductances(VDD, VDD/2, 1e-6)
	if gm <= 0 {
		t.Errorf("gm = %v, want positive in saturation", gm)
	}
	if gds <= 0 {
		t.Errorf("gds = %v, want positive", gds)
	}
}

func TestIEFFBetweenHalfAndFullDrive(t *testing.T) {
	for _, p := range []Params{SiNFET(RVT), CNFET()} {
		ieff := p.IEFF(VDD)
		ion := p.ION(VDD)
		if !(ieff > 0.3*ion && ieff < ion) {
			t.Errorf("%s IEFF=%.0f outside (0.3, 1)×ION=%.0f", p.Name, ieff, ion)
		}
	}
}

func TestHoldLeakagePrefersSpec(t *testing.T) {
	ig := IGZO()
	if got := ig.HoldLeakage(VDD); got != ig.IOFFSpec {
		t.Errorf("hold leakage = %v, want IOFFSpec %v", got, ig.IOFFSpec)
	}
	si := SiNFET(RVT)
	if got := si.HoldLeakage(VDD); got != si.IOFF(VDD) {
		t.Errorf("Si hold leakage should fall back to modeled IOFF")
	}
}

// Property: drain current is monotone in vgs for fixed positive vds, and
// monotone in vds for fixed vgs (NMOS).
func TestCurrentMonotonicity(t *testing.T) {
	p := SiNFET(RVT)
	w := 1e-6
	f := func(a, b uint8, dsel uint8) bool {
		v1 := float64(a%140) / 100 // 0..1.39
		v2 := float64(b%140) / 100
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		vds := 0.05 + float64(dsel%70)/100
		i1 := p.DrainCurrent(v1, vds, w)
		i2 := p.DrainCurrent(v2, vds, w)
		if i2 < i1-1e-15 {
			return false
		}
		// And in vds at fixed vgs.
		j1 := p.DrainCurrent(0.5, v1, w)
		j2 := p.DrainCurrent(0.5, v2, w)
		return j2 >= j1-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: current scales linearly with width.
func TestCurrentWidthLinearity(t *testing.T) {
	p := CNFET()
	f := func(wNM uint16) bool {
		w := (float64(wNM%1000) + 10) * 1e-9
		i1 := p.DrainCurrent(VDD, VDD, w)
		i2 := p.DrainCurrent(VDD, VDD, 2*w)
		return almostEqual(i2, 2*i1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
