package device

import (
	"testing"
	"testing/quick"
)

func TestTemperatureRaisesLeakage(t *testing.T) {
	cold := SiNFET(HVT).AtTemperature(25)
	hot := SiNFET(HVT).AtTemperature(85)
	if hot.IOFF(VDD) <= cold.IOFF(VDD) {
		t.Errorf("85°C IOFF %.3g should exceed 25°C %.3g", hot.IOFF(VDD), cold.IOFF(VDD))
	}
	// 60 K should cost at least an order of magnitude of leakage for an
	// HVT device (VT drop + slope flattening).
	if ratio := hot.IOFF(VDD) / cold.IOFF(VDD); ratio < 5 {
		t.Errorf("85/25°C leakage ratio = %.2f, want ≥ 5", ratio)
	}
}

func TestTemperatureSlopeScaling(t *testing.T) {
	base := SiNFET(RVT)
	hot := base.AtTemperature(85)
	wantSS := base.SSmVdec * (85 + 273.15) / ReferenceTempK
	if diff := hot.SSmVdec - wantSS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("hot SS = %v, want %v", hot.SSmVdec, wantSS)
	}
	// VT drops with temperature.
	if hot.VT0 >= base.VT0 {
		t.Error("VT should drop at high temperature")
	}
	// 27°C is (approximately) the identity.
	same := base.AtTemperature(26.85)
	if d := same.VT0 - base.VT0; d > 1e-6 || d < -1e-6 {
		t.Errorf("300 K round trip changed VT by %v", d)
	}
}

func TestIGZOHoldLeakageDoubling(t *testing.T) {
	base := IGZO()
	hot := base.AtTemperature(26.85 + 25) // one doubling interval
	ratio := hot.IOFFSpec / base.IOFFSpec
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("one doubling interval scaled IOFFSpec by %.3f, want 2", ratio)
	}
}

func TestTemperatureClamping(t *testing.T) {
	// Extreme inputs stay valid.
	for _, tc := range []float64{-400, 1000} {
		p := SiNFET(SLVT).AtTemperature(tc)
		if err := p.Validate(); err != nil {
			t.Errorf("clamped params at %v°C invalid: %v", tc, err)
		}
	}
}

func TestMetallicFloorAthermal(t *testing.T) {
	cn := CNFET()
	hot := cn.AtTemperature(85)
	if hot.LeakFloor != cn.LeakFloor {
		t.Error("metallic-CNT floor should not change with temperature")
	}
}

// Property: leakage is monotone in temperature over the validity range.
func TestLeakageMonotoneInTemperature(t *testing.T) {
	f := func(a, b uint8) bool {
		t1 := -25 + float64(a%150)
		t2 := -25 + float64(b%150)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		p1 := SiNFET(RVT).AtTemperature(t1)
		p2 := SiNFET(RVT).AtTemperature(t2)
		return p2.IOFF(VDD) >= p1.IOFF(VDD)-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSaturationBehaviour checks the F_sat shape: current saturates in
// vds (less than 5% gain from VDD/2 to VDD in strong inversion for a
// short-channel device biased well above threshold).
func TestSaturationBehaviour(t *testing.T) {
	p := SiNFET(SLVT) // strongest overdrive
	w := 1e-6
	iHalf := p.DrainCurrent(VDD, VDD/2, w)
	iFull := p.DrainCurrent(VDD, VDD, w)
	gain := iFull / iHalf
	if gain < 1.0 || gain > 1.25 {
		t.Errorf("saturation gain VDD/2→VDD = %.3f, want 1.0-1.25", gain)
	}
	// Linear region: at tiny vds, current ∝ vds.
	i1 := p.DrainCurrent(VDD, 0.01, w)
	i2 := p.DrainCurrent(VDD, 0.02, w)
	if r := i2 / i1; r < 1.8 || r > 2.2 {
		t.Errorf("linear-region scaling = %.3f, want ≈2", r)
	}
}

// TestGmOverIdSanity: in weak inversion gm/Id approaches 1/(n·φt); in
// strong inversion it must be far lower.
func TestGmOverIdSanity(t *testing.T) {
	p := SiNFET(RVT)
	w := 1e-6
	gmID := func(vgs float64) float64 {
		gm, _ := p.Conductances(vgs, VDD, w)
		id := p.DrainCurrent(vgs, VDD, w)
		return gm / id
	}
	weak := gmID(p.VT0 - 0.15)
	strong := gmID(VDD)
	limit := 1 / (p.SSmVdec * 1e-3 / 2.302585) // 1/(n·φt)
	if weak < 0.7*limit || weak > 1.05*limit {
		t.Errorf("weak-inversion gm/Id = %.1f, want near %.1f", weak, limit)
	}
	if strong > weak/3 {
		t.Errorf("strong-inversion gm/Id %.1f should be far below weak %.1f", strong, weak)
	}
}
