package device

import "math"

// Temperature handling. The base parameter sets are specified at 300 K.
// AtTemperature derives a new parameter set for a different junction
// temperature, applying the dominant effects for leakage-sensitive design:
//
//   - the thermal voltage kT/q grows linearly with T, flattening the
//     sub-threshold slope (SSmVdec scales with T/300);
//   - the threshold voltage drops by ≈0.7 mV/K, compounding the leakage
//     increase (the classic reason retention times collapse at 85 °C);
//   - experimentally anchored hold leakages (IOFFSpec) double roughly
//     every 25 K, the empirical behaviour of oxide-semiconductor TFTs.
const (
	// ReferenceTempK is the temperature the base parameter sets assume.
	ReferenceTempK = 300.0
	// vtTempCoefficient is the threshold shift in V/K (magnitude).
	vtTempCoefficient = 0.7e-3
	// ioffSpecDoublingK is the temperature increase that doubles an
	// experimentally anchored hold leakage.
	ioffSpecDoublingK = 25.0
)

// AtTemperature returns the parameter set adjusted to the given junction
// temperature in °C. Temperatures outside the model's validity range
// (−73 °C to 177 °C) are clamped.
func (p Params) AtTemperature(tempC float64) Params {
	tK := tempC + 273.15
	if tK < 200 {
		tK = 200
	}
	if tK > 450 {
		tK = 450
	}
	dT := tK - ReferenceTempK
	out := p
	out.SSmVdec = p.SSmVdec * tK / ReferenceTempK
	out.VT0 = p.VT0 - vtTempCoefficient*dT
	if out.VT0 < 0.05 {
		out.VT0 = 0.05
	}
	if p.IOFFSpec > 0 {
		out.IOFFSpec = p.IOFFSpec * math.Pow(2, dT/ioffSpecDoublingK)
	}
	if p.LeakFloor > 0 {
		// Metallic-CNT conduction is ohmic and nearly athermal; keep it.
		out.LeakFloor = p.LeakFloor
	}
	return out
}
