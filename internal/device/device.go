// Package device implements a virtual-source (VS) FET compact model in the
// style of Khakifirooz et al. (paper reference [37]), parameterised for the
// three transistor families of the paper's M3D case study:
//
//   - 7 nm Si FinFETs (NMOS and PMOS, four ASAP7-style VT flavours),
//   - carbon-nanotube FETs (CNFETs, high I_EFF, metallic-CNT leakage),
//   - IGZO FETs (NMOS only, low mobility, ultra-low I_OFF).
//
// The VS model expresses drain current as the product of mobile charge at
// the virtual source, injection velocity, and a saturation function:
//
//	I_D = W · Q_ix0(V_GS, V_DS) · v_x0 · F_sat(V_DS)
//
// with the charge term smooth across the sub-threshold and strong-inversion
// regimes. This continuity makes it well suited to the Newton iterations of
// the transient simulator in internal/spice.
package device

import (
	"errors"
	"fmt"
	"math"
)

// ThermalVoltage is kT/q at 300 K, in volts.
const ThermalVoltage = 0.02585

// Polarity distinguishes N- and P-type FETs.
type Polarity int

// FET polarities.
const (
	NMOS Polarity = iota
	PMOS
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params is the virtual-source parameter set of one FET family/flavour.
// All internal quantities are SI: volts, meters, farads per square meter,
// meters per second, amperes per meter of gate width.
type Params struct {
	// Name identifies the device ("Si NMOS RVT", "CNFET", "IGZO").
	Name string
	// Polarity is NMOS or PMOS.
	Polarity Polarity
	// VT0 is the threshold voltage magnitude at V_DS → 0, in volts.
	VT0 float64
	// DIBL is the drain-induced barrier lowering coefficient in V/V:
	// the effective threshold is VT0 − DIBL·|V_DS|.
	DIBL float64
	// SSmVdec is the sub-threshold swing in mV/decade at 300 K.
	SSmVdec float64
	// Vx0 is the virtual-source injection velocity in m/s.
	Vx0 float64
	// MuEff is the effective channel mobility in cm²/(V·s); together with
	// Lg it sets the saturation voltage of the F_sat function.
	MuEff float64
	// Lg is the gate length in meters.
	Lg float64
	// Cinv is the inversion capacitance per gate area in F/m².
	Cinv float64
	// CgPerWidth is the total switching gate capacitance per meter of
	// width (F/m), used for digital load estimates.
	CgPerWidth float64
	// Beta shapes the F_sat transition (typically ≈ 1.8 for FETs).
	Beta float64
	// LeakFloor is a gate-independent parasitic leakage per width (A/m)
	// added to the channel current — for CNFETs it models the residual
	// metallic-CNT population; zero elsewhere.
	LeakFloor float64
	// IOFFSpec, when nonzero, is an experimentally anchored off-state
	// leakage per width (A/m) at the hold bias, used by retention
	// calculations in place of evaluating the VS model far below
	// threshold (the paper anchors IGZO to < 3e-21 A/µm from Belmonte
	// et al., a regime where a fixed-SS exponential is not predictive).
	IOFFSpec float64
}

// Validate checks the parameter set for physical sanity.
func (p Params) Validate() error {
	switch {
	case p.VT0 <= 0:
		return fmt.Errorf("device %s: VT0 must be positive", p.Name)
	case p.SSmVdec < 40:
		// The thermal limit is 59.5 mV/dec at 300 K; the model keeps φt
		// fixed at 300 K and encodes temperature through SSmVdec (see
		// AtTemperature), so cold-corner parameter sets legitimately dip
		// below 59.5. 40 mV/dec (≈200 K) bounds the validity range.
		return fmt.Errorf("device %s: sub-threshold swing %.1f below model validity", p.Name, p.SSmVdec)
	case p.Vx0 <= 0 || p.MuEff <= 0 || p.Lg <= 0 || p.Cinv <= 0:
		return fmt.Errorf("device %s: transport parameters must be positive", p.Name)
	case p.Beta <= 0:
		return fmt.Errorf("device %s: beta must be positive", p.Name)
	case p.DIBL < 0 || p.LeakFloor < 0 || p.IOFFSpec < 0:
		return fmt.Errorf("device %s: DIBL and leakage terms must be non-negative", p.Name)
	}
	return nil
}

// n reports the ideality factor implied by the sub-threshold swing.
func (p Params) n() float64 {
	return p.SSmVdec * 1e-3 / (ThermalVoltage * math.Ln10)
}

// vdsat reports the saturation voltage of the F_sat function: the velocity-
// limited V_DSAT blended against the thermal floor so the function stays
// smooth in weak inversion.
func (p Params) vdsat() float64 {
	mu := p.MuEff * 1e-4 // cm²/Vs → m²/Vs
	v := p.Vx0 * p.Lg / mu
	floor := p.n() * ThermalVoltage
	if v < floor {
		return floor
	}
	return v
}

// channelCurrent evaluates the VS model for an N-type device with
// vds ≥ 0, returning current per meter of width (A/m).
func (p Params) channelCurrent(vgs, vds float64) float64 {
	nphit := p.n() * ThermalVoltage
	vt := p.VT0 - p.DIBL*vds
	// Smooth charge: Q = Cinv·n·φt·ln(1 + exp((Vgs − VT)/(n·φt))).
	arg := (vgs - vt) / nphit
	var q float64
	if arg > 40 {
		q = p.Cinv * nphit * arg
	} else {
		q = p.Cinv * nphit * math.Log1p(math.Exp(arg))
	}
	// Saturation function.
	x := vds / p.vdsat()
	fsat := x / math.Pow(1+math.Pow(x, p.Beta), 1/p.Beta)
	return q*p.Vx0*fsat + p.LeakFloor*math.Tanh(vds/ThermalVoltage)
}

// DrainCurrent reports the terminal drain current of a FET of width w
// (meters) at the given gate-source and drain-source voltages, in amperes.
// Polarity and source/drain symmetry (vds < 0 operation) are handled here,
// so circuit simulators can stamp the device without case analysis.
func (p Params) DrainCurrent(vgs, vds, w float64) float64 {
	if p.Polarity == PMOS {
		// A PMOS conducts with negative vgs/vds; evaluate the N-equivalent
		// with flipped signs and return the negated current.
		return -p.nTypeCurrent(-vgs, -vds, w)
	}
	return p.nTypeCurrent(vgs, vds, w)
}

// nTypeCurrent handles source/drain symmetry for an N-type evaluation.
func (p Params) nTypeCurrent(vgs, vds, w float64) float64 {
	if vds >= 0 {
		return w * p.channelCurrent(vgs, vds)
	}
	// Reversed operation: the physical source is the terminal we called
	// drain. Gate-to-(true source) is vgd = vgs − vds.
	return -w * p.channelCurrent(vgs-vds, -vds)
}

// Conductances reports the small-signal transconductance gm = ∂I/∂Vgs and
// output conductance gds = ∂I/∂Vds at the bias point, via central
// differences. The spice package uses these for its Newton stamps.
func (p Params) Conductances(vgs, vds, w float64) (gm, gds float64) {
	const h = 1e-5
	gm = (p.DrainCurrent(vgs+h, vds, w) - p.DrainCurrent(vgs-h, vds, w)) / (2 * h)
	gds = (p.DrainCurrent(vgs, vds+h, w) - p.DrainCurrent(vgs, vds-h, w)) / (2 * h)
	return gm, gds
}

// ION reports the on-state current per width (A/m) at |Vgs| = |Vds| = vdd.
func (p Params) ION(vdd float64) float64 {
	return p.channelCurrent(vdd, vdd)
}

// IOFF reports the off-state current per width (A/m) at Vgs = 0,
// |Vds| = vdd, as modeled (including any metallic-CNT floor).
func (p Params) IOFF(vdd float64) float64 {
	return p.channelCurrent(0, vdd)
}

// IEFF reports the effective drive current per width (A/m) — the standard
// average of the high and low switching points:
//
//	I_EFF = (I_H + I_L)/2,  I_H = I(Vgs=vdd, Vds=vdd/2),  I_L = I(vdd/2, vdd).
func (p Params) IEFF(vdd float64) float64 {
	ih := p.channelCurrent(vdd, vdd/2)
	il := p.channelCurrent(vdd/2, vdd)
	return (ih + il) / 2
}

// HoldLeakage reports the per-width leakage used for retention analysis:
// the experimental IOFFSpec when provided, otherwise the modeled IOFF.
func (p Params) HoldLeakage(vdd float64) float64 {
	if p.IOFFSpec > 0 {
		return p.IOFFSpec
	}
	return p.IOFF(vdd)
}

// SubthresholdSwing numerically extracts the sub-threshold swing in
// mV/decade from the model around the deep sub-threshold point, as a
// consistency check against the SSmVdec parameter.
func (p Params) SubthresholdSwing(vdd float64) (float64, error) {
	v1 := p.VT0 * 0.3
	v2 := p.VT0 * 0.5
	i1 := p.channelCurrent(v1, vdd)
	i2 := p.channelCurrent(v2, vdd)
	if i1 <= 0 || i2 <= 0 || i1 == i2 {
		return 0, errors.New("device: cannot extract swing from non-positive currents")
	}
	decades := math.Log10(i2 / i1)
	return (v2 - v1) * 1e3 / decades, nil
}
