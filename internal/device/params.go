package device

import "fmt"

// VTFlavor selects one of the ASAP7 threshold-voltage flavours the paper
// sweeps in its synthesis experiments (Fig. 4).
type VTFlavor int

// The four ASAP7 VT flavours, slowest/least-leaky first.
const (
	HVT  VTFlavor = iota // high VT
	RVT                  // regular VT
	LVT                  // low VT
	SLVT                 // super-low VT
)

// VTFlavors returns all flavours in canonical order.
func VTFlavors() []VTFlavor { return []VTFlavor{HVT, RVT, LVT, SLVT} }

// String implements fmt.Stringer.
func (f VTFlavor) String() string {
	switch f {
	case HVT:
		return "HVT"
	case RVT:
		return "RVT"
	case LVT:
		return "LVT"
	case SLVT:
		return "SLVT"
	default:
		return fmt.Sprintf("VTFlavor(%d)", int(f))
	}
}

// vt0 reports the nominal threshold magnitude of the flavour. Steps of
// ~70 mV give roughly an order of magnitude of leakage per flavour, the
// ASAP7 pattern.
func (f VTFlavor) vt0() float64 {
	switch f {
	case HVT:
		return 0.42
	case RVT:
		return 0.35
	case LVT:
		return 0.28
	default: // SLVT
		return 0.21
	}
}

// VDD is the nominal supply of the ASAP7 standard-cell libraries, which the
// paper adopts for the memory supply as well (Sec. III-B, Step 2).
const VDD = 0.7

// WriteWordlineVoltage is the boosted write wordline level used to
// overdrive the IGZO write transistor (Sec. III-B, Step 2).
const WriteWordlineVoltage = 1.3

// SiNFET returns the 7 nm Si FinFET NMOS parameter set for a VT flavour.
// Transport values are chosen to land in the ASAP7 envelope: ION ≈
// 0.5-0.8 mA/µm and IOFF spanning ~35 pA/µm (HVT) to ~60 nA/µm (SLVT)
// at VDD = 0.7 V.
func SiNFET(f VTFlavor) Params {
	return Params{
		Name:       "Si NMOS " + f.String(),
		Polarity:   NMOS,
		VT0:        f.vt0(),
		DIBL:       0.05,
		SSmVdec:    65,
		Vx0:        6e4,
		MuEff:      200,
		Lg:         21e-9,
		Cinv:       0.025,
		CgPerWidth: 1.0e-9,
		Beta:       1.8,
	}
}

// SiPFET returns the 7 nm Si FinFET PMOS parameter set for a VT flavour.
// FinFET PMOS drive is close to NMOS thanks to strained SiGe fins; we model
// a modest deficit.
func SiPFET(f VTFlavor) Params {
	p := SiNFET(f)
	p.Name = "Si PMOS " + f.String()
	p.Polarity = PMOS
	p.Vx0 = 5e4
	p.MuEff = 150
	return p
}

// CNFET returns the carbon-nanotube FET parameter set (paper Table I:
// high I_EFF, BEOL-compatible, subject to metallic CNTs). The injection
// velocity of semiconducting CNTs gives it ≈1.5× the Si drive; the
// LeakFloor term models the residual metallic-CNT population left after
// removal processing, which raises I_OFF well above the Si and IGZO
// devices.
func CNFET() Params {
	return Params{
		Name:       "CNFET",
		Polarity:   NMOS,
		VT0:        0.32,
		DIBL:       0.06,
		SSmVdec:    70,
		Vx0:        1.2e5,
		MuEff:      1500,
		Lg:         30e-9, // 30 nm gate length per the paper's M3D flow
		Cinv:       0.018,
		CgPerWidth: 0.8e-9,
		Beta:       1.8,
		LeakFloor:  2e-3, // ≈2 nA/µm residual metallic-CNT leakage
	}
}

// CNFETPMOS returns the P-type CNFET used in complementary peripheral
// logic; CNT valence and conduction transport are nearly symmetric.
func CNFETPMOS() Params {
	p := CNFET()
	p.Name = "CNFET PMOS"
	p.Polarity = PMOS
	p.Vx0 = 1.1e5
	return p
}

// IGZO returns the IGZO FET parameter set (paper Table I: low I_EFF from
// ~1 cm²/V·s mobility, ultra-low I_OFF, BEOL-compatible; NMOS only —
// amorphous oxide semiconductors lack usable p-type conduction). Mobility
// and swing follow the experimentally measured values the paper calibrates
// to (1 cm²/V·s, 90 mV/dec at 44 nm gate length, from Samanta et al.); the
// hold-state leakage is anchored to the Belmonte et al. measurement of
// < 3×10⁻²¹ A/µm.
func IGZO() Params {
	return Params{
		Name:       "IGZO",
		Polarity:   NMOS,
		VT0:        0.50,
		DIBL:       0.02,
		SSmVdec:    90,
		Vx0:        2e2,
		MuEff:      1,
		Lg:         44e-9,
		Cinv:       0.020,
		CgPerWidth: 1.2e-9,
		Beta:       1.8,
		IOFFSpec:   3e-15, // 3e-21 A/µm in A/m
	}
}

// PerWidthToMicroAmpPerMicron converts an A/m per-width current to µA/µm.
// The two units are numerically identical; the helper exists to make call
// sites self-documenting.
func PerWidthToMicroAmpPerMicron(aPerM float64) float64 { return aPerM }
