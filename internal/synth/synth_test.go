package synth

import (
	"math"
	"testing"

	"ppatc/internal/device"
	"ppatc/internal/stdcell"
	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDesignValidate(t *testing.T) {
	if err := CortexM0().Validate(); err != nil {
		t.Fatalf("M0 design invalid: %v", err)
	}
	bad := CortexM0()
	bad.Gates = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero gates should fail")
	}
	bad = CortexM0()
	bad.Activity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("activity > 1 should fail")
	}
	bad = CortexM0()
	bad.MaxSpeedup = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("speedup < 1 should fail")
	}
}

func TestM0AreaMatchesTableII(t *testing.T) {
	// Table II implies M0 area ≈ total − 2×memory: 0.139 − 2×0.068 =
	// 0.003 mm² for the all-Si design (and the same core in the M3D one).
	got := CortexM0().Area().SquareMillimeters()
	if !almostEqual(got, 0.0039, 0.35) {
		t.Errorf("M0 area = %v mm², want ≈0.003-0.005", got)
	}
}

func TestRVT500MHzAnchor(t *testing.T) {
	// Table II: M0 dynamic energy per cycle = 1.42 pJ at 500 MHz. The RVT
	// corner at the paper's operating point must land within 3%.
	r, err := Close(CortexM0(), stdcell.New(device.RVT), units.Megahertz(500))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Closed {
		t.Fatal("RVT must close at 500 MHz")
	}
	if got := r.DynamicEnergy.Picojoules(); !almostEqual(got, 1.42, 0.03) {
		t.Errorf("RVT dynamic energy at 500 MHz = %v pJ, want 1.42 ± 3%%", got)
	}
	if r.Sizing != 1 {
		t.Errorf("RVT at 500 MHz should need no upsizing, got %v", r.Sizing)
	}
	if r.CriticalPath >= 2e-9 {
		t.Errorf("critical path %v must fit the 2 ns period", r.CriticalPath)
	}
}

func TestClosureFrequencyLimits(t *testing.T) {
	d := CortexM0()
	// Every flavour closes at 100 MHz.
	for _, lib := range stdcell.All() {
		r, err := Close(d, lib, units.Megahertz(100))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Closed {
			t.Errorf("%s must close at 100 MHz", lib.Flavor)
		}
	}
	// HVT fails before SLVT as frequency rises.
	fmax := func(f device.VTFlavor) units.Frequency {
		lib := stdcell.New(f)
		var last units.Frequency
		for mhz := 100.0; mhz <= 3000; mhz += 50 {
			r, err := Close(d, lib, units.Megahertz(mhz))
			if err != nil {
				t.Fatal(err)
			}
			if r.Closed {
				last = units.Megahertz(mhz)
			}
		}
		return last
	}
	fHVT, fSLVT := fmax(device.HVT), fmax(device.SLVT)
	if fHVT >= fSLVT {
		t.Errorf("HVT fmax %v should be below SLVT fmax %v", fHVT, fSLVT)
	}
	// Absurd target fails closure rather than erroring.
	r, err := Close(d, stdcell.New(device.SLVT), units.Gigahertz(50))
	if err != nil || r.Closed {
		t.Errorf("50 GHz should fail closure cleanly, got closed=%v err=%v", r.Closed, err)
	}
}

func TestEnergyRisesWithUpsizing(t *testing.T) {
	d := CortexM0()
	lib := stdcell.New(device.RVT)
	relaxed, err := Close(d, lib, units.Megahertz(300))
	if err != nil {
		t.Fatal(err)
	}
	// Find a frequency that needs sizing for RVT.
	var tight Result
	for mhz := 400.0; mhz <= 2000; mhz += 50 {
		r, err := Close(d, lib, units.Megahertz(mhz))
		if err != nil {
			t.Fatal(err)
		}
		if r.Closed && r.Sizing > 1.05 {
			tight = r
			break
		}
	}
	if !tight.Closed {
		t.Fatal("no sized RVT point found")
	}
	if tight.DynamicEnergy <= relaxed.DynamicEnergy {
		t.Errorf("upsized point %v should burn more dynamic energy than relaxed %v",
			tight.DynamicEnergy, relaxed.DynamicEnergy)
	}
}

func TestLeakageOrderingAcrossFlavors(t *testing.T) {
	d := CortexM0()
	clk := units.Megahertz(500)
	var prev units.Power
	for i, lib := range stdcell.All() {
		r, err := Close(d, lib, clk)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.LeakagePower <= prev {
			t.Errorf("%s leakage %v should exceed previous flavour %v",
				lib.Flavor, r.LeakagePower, prev)
		}
		prev = r.LeakagePower
	}
}

func TestLeakagePerCycleFallsWithFrequency(t *testing.T) {
	// Leakage energy per cycle = P_leak·T shrinks as T shrinks — the
	// low-frequency uptick of Fig. 4's SLVT curve.
	d := CortexM0()
	lib := stdcell.New(device.SLVT)
	slow, err := Close(d, lib, units.Megahertz(100))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Close(d, lib, units.Megahertz(800))
	if err != nil {
		t.Fatal(err)
	}
	if slow.LeakageEnergy <= fast.LeakageEnergy {
		t.Errorf("leakage per cycle at 100 MHz (%v) should exceed 800 MHz (%v)",
			slow.LeakageEnergy, fast.LeakageEnergy)
	}
}

func TestPaperSweepShape(t *testing.T) {
	rs, err := PaperSweep(CortexM0())
	if err != nil {
		t.Fatal(err)
	}
	// 4 flavours × 10 frequencies.
	if len(rs) != 40 {
		t.Fatalf("sweep has %d points, want 40", len(rs))
	}
	closed := 0
	for _, r := range rs {
		if r.Closed {
			closed++
			if r.EnergyPerCycle() <= 0 {
				t.Errorf("%s@%v: non-positive energy", r.Flavor, r.TargetClock)
			}
			if r.CriticalPath > r.TargetClock.PeriodSeconds() {
				t.Errorf("%s@%v: critical path %v exceeds period", r.Flavor, r.TargetClock, r.CriticalPath)
			}
		}
	}
	if closed < 30 {
		t.Errorf("only %d/40 points closed; expect most of the sweep to close", closed)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(CortexM0(), 0, units.Megahertz(100), units.Megahertz(100)); err == nil {
		t.Error("zero fMin should fail")
	}
	if _, err := Sweep(CortexM0(), units.Megahertz(200), units.Megahertz(100), units.Megahertz(100)); err == nil {
		t.Error("fMax < fMin should fail")
	}
	if _, err := Close(CortexM0(), stdcell.Library{}, units.Megahertz(100)); err == nil {
		t.Error("invalid library should fail")
	}
	if _, err := Close(CortexM0(), stdcell.New(device.RVT), 0); err == nil {
		t.Error("zero clock should fail")
	}
}

func TestStdcellLibraryProperties(t *testing.T) {
	libs := stdcell.All()
	if len(libs) != 4 {
		t.Fatalf("expected 4 corners, got %d", len(libs))
	}
	for i, lib := range libs {
		if err := lib.Validate(); err != nil {
			t.Errorf("%s: %v", lib.Flavor, err)
		}
		if i > 0 && lib.FO4 >= libs[i-1].FO4 {
			t.Errorf("%s FO4 %v should be faster than %s %v",
				lib.Flavor, lib.FO4, libs[i-1].Flavor, libs[i-1].FO4)
		}
	}
	// RVT FO4 in the ASAP7 envelope (≈10-16 ps).
	rvt := stdcell.New(device.RVT)
	if rvt.FO4 < 8e-12 || rvt.FO4 > 20e-12 {
		t.Errorf("RVT FO4 = %v s, want 8-20 ps", rvt.FO4)
	}
	if _, err := rvt.LeakagePower(-1); err == nil {
		t.Error("negative gate count should fail")
	}
	p, err := rvt.LeakagePower(1000)
	if err != nil || p <= 0 {
		t.Errorf("leakage power = %v, %v", p, err)
	}
}
