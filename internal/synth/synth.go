// Package synth models the logic-synthesis and timing-closure step of the
// paper's design flow (Sec. III-B, Step 3): "We perform logic synthesis &
// place-and-route ... over a range of design parameters ... we sweep the
// target clock frequency from 100 MHz to 1 GHz (in steps of 100 MHz), and
// sweep VT of the FETs over all options offered in the ASAP7 standard cell
// library."
//
// The model captures what that sweep measures: for each (f_CLK, VT) point,
// the tool upsizes and buffers critical paths until timing closes, which
// trades energy for speed. Energy per cycle is activity-weighted CV² of
// the (sized) gates plus clock-tree energy plus leakage integrated over the
// cycle — the quantities behind Fig. 4 and the 1.42 pJ/cycle anchor of
// Table II.
package synth

import (
	"errors"
	"fmt"

	"ppatc/internal/device"
	"ppatc/internal/stdcell"
	"ppatc/internal/units"
)

// Design describes the digital block being synthesized.
type Design struct {
	// Name identifies the block ("Cortex-M0").
	Name string
	// Gates is the NAND2-equivalent gate count.
	Gates int
	// Flops is the sequential element count (drives clock-tree energy).
	Flops int
	// LogicDepth is the critical-path depth in FO4 units at unit sizing.
	LogicDepth float64
	// Activity is the average switching activity factor per cycle.
	Activity float64
	// ClockOverhead is the sequencing overhead per cycle (clk-to-Q plus
	// setup), in seconds.
	ClockOverhead float64
	// MaxSpeedup is the largest critical-path speedup achievable through
	// upsizing and buffering before timing closure fails.
	MaxSpeedup float64
	// SizingCapFraction is the fraction of total capacitance that scales
	// when critical paths are upsized.
	SizingCapFraction float64
	// AreaPerGate is the placed area of one NAND2-equivalent (m²).
	AreaPerGate units.Area
}

// CortexM0 returns the design parameters of the ARM Cortex-M0 used in the
// paper's embedded system: a ~12 k-gate, 3-stage-pipeline core with the
// long single-cycle ALU/shifter paths typical of the M0 (deep FO4 depth).
// Activity is calibrated so the RVT corner at 500 MHz lands at the paper's
// 1.42 pJ/cycle for matmul-int (Table II).
func CortexM0() Design {
	return Design{
		Name:              "Cortex-M0",
		Gates:             12000,
		Flops:             900,
		LogicDepth:        80,
		Activity:          0.145,
		ClockOverhead:     60e-12,
		MaxSpeedup:        1.8,
		SizingCapFraction: 0.25,
		AreaPerGate:       units.SquareMicrometers(0.25),
	}
}

// Validate checks the design parameters.
func (d Design) Validate() error {
	switch {
	case d.Gates <= 0 || d.Flops < 0:
		return errors.New("synth: gate and flop counts must be positive")
	case d.LogicDepth <= 0 || d.Activity <= 0 || d.Activity > 1:
		return errors.New("synth: depth and activity must be positive (activity ≤ 1)")
	case d.ClockOverhead < 0:
		return errors.New("synth: clock overhead must be non-negative")
	case d.MaxSpeedup < 1:
		return errors.New("synth: max speedup must be ≥ 1")
	case d.SizingCapFraction < 0 || d.SizingCapFraction > 1:
		return errors.New("synth: sizing cap fraction must be in [0, 1]")
	case d.AreaPerGate <= 0:
		return errors.New("synth: area per gate must be positive")
	}
	return nil
}

// Area reports the placed area of the design (cell area plus 30% routing
// overhead, the usual post-P&R utilization).
func (d Design) Area() units.Area {
	return units.Area(float64(d.AreaPerGate) * float64(d.Gates) * 1.3)
}

// Result is one closed implementation point of the (f_CLK, VT) sweep.
type Result struct {
	// Flavor and TargetClock echo the sweep point.
	Flavor      device.VTFlavor
	TargetClock units.Frequency
	// Closed reports whether timing closure succeeded.
	Closed bool
	// Sizing is the critical-path upsizing factor applied (1 = none).
	Sizing float64
	// CriticalPath is the achieved critical-path delay (seconds).
	CriticalPath float64
	// DynamicEnergy is the switching energy per cycle (J), including the
	// clock tree.
	DynamicEnergy units.Energy
	// LeakageEnergy is the leakage integrated over one cycle (J).
	LeakageEnergy units.Energy
	// LeakagePower is the static power (W).
	LeakagePower units.Power
}

// EnergyPerCycle reports the total energy per cycle of the point.
func (r Result) EnergyPerCycle() units.Energy {
	return r.DynamicEnergy + r.LeakageEnergy
}

// Close attempts timing closure of the design at a target clock in the
// given library corner.
func Close(d Design, lib stdcell.Library, clk units.Frequency) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if err := lib.Validate(); err != nil {
		return Result{}, err
	}
	if clk <= 0 {
		return Result{}, errors.New("synth: clock frequency must be positive")
	}
	period := clk.PeriodSeconds()
	res := Result{Flavor: lib.Flavor, TargetClock: clk}

	logicDelay := d.LogicDepth * lib.FO4
	available := period - d.ClockOverhead
	if available <= 0 {
		return res, nil // not closable at any sizing
	}
	// Required speedup; sizing beyond MaxSpeedup fails closure.
	s := 1.0
	if logicDelay > available {
		s = logicDelay / available
		if s > d.MaxSpeedup {
			return res, nil
		}
	}
	res.Closed = true
	res.Sizing = s
	res.CriticalPath = d.ClockOverhead + logicDelay/s

	// Capacitance grows on the sized critical-path fraction.
	capScale := 1 + d.SizingCapFraction*(s-1)
	gateCap := float64(d.Gates) * lib.SwitchedCapPerGate * capScale
	eLogic := d.Activity * gateCap * lib.VDD * lib.VDD
	// Clock tree: every flop's clock pin plus distribution toggles twice
	// per cycle regardless of data activity.
	eClock := float64(d.Flops) * 2.5 * lib.SwitchedCapPerGate * lib.VDD * lib.VDD
	res.DynamicEnergy = units.Joules(eLogic + eClock)

	leakW, err := lib.LeakagePower(d.Gates)
	if err != nil {
		return Result{}, err
	}
	leakW *= capScale // upsized gates leak proportionally more
	res.LeakagePower = units.Watts(leakW)
	res.LeakageEnergy = units.Joules(leakW * period)
	return res, nil
}

// Sweep reproduces the paper's synthesis sweep: every VT flavour at clock
// targets from fMin to fMax in the given step. Points that fail closure
// are reported with Closed = false (Fig. 4's curves simply end there).
func Sweep(d Design, fMin, fMax, step units.Frequency) ([]Result, error) {
	if fMin <= 0 || fMax < fMin || step <= 0 {
		return nil, errors.New("synth: need 0 < fMin ≤ fMax and positive step")
	}
	var out []Result
	for _, lib := range stdcell.All() {
		for f := fMin; f <= fMax+step/1e6; f += step {
			r, err := Close(d, lib, f)
			if err != nil {
				return nil, fmt.Errorf("synth: %s at %v: %w", lib.Flavor, f, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PaperSweep runs the paper's exact sweep: 100 MHz to 1 GHz in 100 MHz
// steps (Sec. III-B, Step 3).
func PaperSweep(d Design) ([]Result, error) {
	return Sweep(d, units.Megahertz(100), units.Megahertz(1000), units.Megahertz(100))
}
