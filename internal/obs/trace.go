// Package obs is the zero-dependency observability layer shared by the
// PPAtC library, the ppatc CLI, and the ppatcd daemon. It provides three
// instruments:
//
//   - a context-carried tracer: a run gets a Trace (with an ID), stages
//     open nested Spans with monotonic timings, and the finished tree
//     exports as JSON or Chrome trace-event format (chrome://tracing,
//     Perfetto);
//   - provenance records: the intermediate quantities each pipeline stage
//     produced (cycles, EPA, yield, ...) so any headline number can be
//     audited back to its inputs;
//   - a Prometheus-style metrics Registry (counters, gauges, histograms)
//     shared by every serving surface.
//
// All three are opt-in per context and nil-safe: when a caller has not
// installed a Trace (the default for library users), StartSpan returns a
// nil Span whose methods are no-ops, and the instrumented hot path makes
// no allocations.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// idCounter breaks ties if crypto/rand ever fails; IDs stay unique within
// the process either way.
var idCounter atomic.Uint64

// NewID returns a 16-hex-character random identifier, used for run and
// request IDs.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Trace is one run's span collection. A Trace is safe for concurrent use:
// spans opened from different goroutines (each carrying its own derived
// context) attach to the right parents without interleaving.
type Trace struct {
	// ID identifies the run (a request ID in the daemon, a fresh random
	// ID in the CLI).
	ID string

	start time.Time
	mu    sync.Mutex
	roots []*Span
}

// NewTrace starts a trace. An empty id draws a fresh random one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, start: time.Now()}
}

// Attr is one span annotation: a string or numeric value under a key.
// The split fields (instead of an any-typed value) keep the disabled
// tracer path free of interface boxing, hence allocation-free.
type Attr struct {
	Key string  `json:"key"`
	Str string  `json:"str,omitempty"`
	Num float64 `json:"num,omitempty"`
	// IsNum disambiguates Num==0 from an unset number.
	IsNum bool `json:"is_num,omitempty"`
}

// Span is one timed region of a trace. A nil *Span is a valid no-op span:
// every method checks the receiver, so instrumented code never branches
// on whether tracing is enabled.
type Span struct {
	tr     *Trace
	parent *Span

	name  string
	start time.Time
	// dur is set by End; zero means the span never ended.
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

type traceKey struct{}
type spanKey struct{}

// WithTrace installs a trace into the context; spans started from the
// returned context (and its descendants) attach to it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the context's trace, or nil when tracing is disabled.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Enabled reports whether the context carries a trace.
func Enabled(ctx context.Context) bool { return TraceFrom(ctx) != nil }

// StartSpan opens a span named name under the context's current span (or
// as a root). It returns a derived context carrying the new span — pass
// it to children so their spans nest — and the span itself. When the
// context has no trace, it returns ctx unchanged and a nil span, without
// allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	if tr == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent != nil && parent.tr != tr {
		// A span left over from a previous trace on this context chain
		// must not adopt children of the new trace.
		parent = nil
	}
	s := &Span{tr: tr, parent: parent, name: name, start: time.Now()}
	tr.mu.Lock()
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		tr.roots = append(tr.roots, s)
	}
	tr.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, s), s
}

// End closes the span with a monotonic duration. Safe on a nil span and
// idempotent: only the first End sets the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetStr annotates the span with a string value. Safe on a nil span.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: value})
	s.tr.mu.Unlock()
}

// SetFloat annotates the span with a numeric value. Safe on a nil span.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Num: value, IsNum: true})
	s.tr.mu.Unlock()
}

// SpanNode is the exported (JSON) shape of a span: timings are integer
// microseconds relative to the trace start.
type SpanNode struct {
	Name        string     `json:"name"`
	StartMicros int64      `json:"start_us"`
	DurMicros   int64      `json:"dur_us"`
	Attrs       []Attr     `json:"attrs,omitempty"`
	Children    []SpanNode `json:"children,omitempty"`
}

// Tree snapshots the trace as a span forest. Unfinished spans export with
// a zero duration.
func (t *Trace) Tree() []SpanNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exportLocked(t.roots)
}

func (t *Trace) exportLocked(spans []*Span) []SpanNode {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanNode, len(spans))
	for i, s := range spans {
		out[i] = SpanNode{
			Name:        s.name,
			StartMicros: s.start.Sub(t.start).Microseconds(),
			DurMicros:   s.dur.Microseconds(),
			Attrs:       append([]Attr(nil), s.attrs...),
			Children:    t.exportLocked(s.children),
		}
	}
	return out
}

// Walk visits every finished-or-not span in the trace, depth first,
// reporting its name and duration. Handy for feeding span timings into
// latency histograms.
func (t *Trace) Walk(fn func(name string, dur time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rec func([]*Span)
	rec = func(spans []*Span) {
		for _, s := range spans {
			fn(s.name, s.dur)
			rec(s.children)
		}
	}
	rec(t.roots)
}

// exportedTrace is the JSON envelope of WriteJSON.
type exportedTrace struct {
	ID    string     `json:"id"`
	Spans []SpanNode `json:"spans"`
}

// WriteJSON emits the trace as an indented JSON object {id, spans}.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exportedTrace{ID: t.ID, Spans: t.Tree()})
}
