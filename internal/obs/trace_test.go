package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("test-run")
	ctx := WithTrace(context.Background(), tr)

	rctx, root := StartSpan(ctx, "evaluate")
	if root == nil {
		t.Fatal("StartSpan returned nil span with a trace installed")
	}
	root.SetStr("system", "all-Si")
	_, child := StartSpan(rctx, "embench")
	child.SetFloat("cycles", 42)
	child.End()
	cctx, child2 := StartSpan(rctx, "edram")
	_, grand := StartSpan(cctx, "spice")
	grand.End()
	child2.End()
	root.End()

	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "evaluate" {
		t.Fatalf("want one root 'evaluate', got %+v", tree)
	}
	kids := tree[0].Children
	if len(kids) != 2 || kids[0].Name != "embench" || kids[1].Name != "edram" {
		t.Fatalf("want children [embench edram], got %+v", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "spice" {
		t.Fatalf("want grandchild spice, got %+v", kids[1].Children)
	}
	if len(tree[0].Attrs) != 1 || tree[0].Attrs[0].Key != "system" || tree[0].Attrs[0].Str != "all-Si" {
		t.Errorf("root attrs wrong: %+v", tree[0].Attrs)
	}
	if a := kids[0].Attrs; len(a) != 1 || !a[0].IsNum || a[0].Num != 42 {
		t.Errorf("child attrs wrong: %+v", kids[0].Attrs)
	}
}

func TestDisabledTracerIsNoOp(t *testing.T) {
	ctx := context.Background()
	octx, sp := StartSpan(ctx, "evaluate")
	if sp != nil {
		t.Fatal("StartSpan must return a nil span without a trace")
	}
	if octx != ctx {
		t.Fatal("StartSpan must return the context unchanged without a trace")
	}
	// All span methods must be safe on nil.
	sp.SetStr("k", "v")
	sp.SetFloat("k", 1)
	sp.End()
	if TraceFrom(ctx) != nil || Enabled(ctx) {
		t.Fatal("background context must not carry a trace")
	}
}

// TestDisabledPathAllocates0 is the hard guard behind the PR's
// no-allocation contract: the instrumentation calls EvaluateContext makes
// (span start/annotate/end, provenance record) must not allocate when
// tracing and provenance are disabled.
func TestDisabledPathAllocates0(t *testing.T) {
	ctx := context.Background()
	var prov *Provenance // disabled collector, as in core.EvaluateContext
	allocs := testing.AllocsPerRun(200, func() {
		c, sp := StartSpan(ctx, "evaluate")
		sp.SetStr("system", "all-Si")
		sp.SetFloat("cycles", 1)
		prov.Record("embench", "cycles", 1, "cycles")
		if ProvenanceEnabled(c) {
			t.Error("provenance must not be enabled")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkDisabledTracerOverhead benchmarks the same disabled path; CI's
// bench smoke keeps it from rotting, and -benchmem shows 0 allocs/op.
func BenchmarkDisabledTracerOverhead(b *testing.B) {
	ctx := context.Background()
	var prov *Provenance
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "evaluate")
		sp.SetFloat("cycles", float64(i))
		prov.Record("embench", "cycles", float64(i), "cycles")
		sp.End()
	}
}

// BenchmarkEnabledSpan prices the enabled path for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	ctx := WithTrace(context.Background(), NewTrace(""))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "stage")
		sp.End()
	}
}

func TestConcurrentTracesDoNotInterleave(t *testing.T) {
	const workers = 8
	traces := make([]*Trace, workers)
	var wg sync.WaitGroup
	for i := range traces {
		traces[i] = NewTrace("")
		wg.Add(1)
		go func(tr *Trace, name string) {
			defer wg.Done()
			ctx := WithTrace(context.Background(), tr)
			for j := 0; j < 50; j++ {
				rctx, root := StartSpan(ctx, name)
				_, child := StartSpan(rctx, name+"-child")
				child.End()
				root.End()
			}
		}(traces[i], string(rune('a'+i)))
	}
	wg.Wait()
	for i, tr := range traces {
		want := string(rune('a' + i))
		tree := tr.Tree()
		if len(tree) != 50 {
			t.Errorf("trace %d: %d roots, want 50", i, len(tree))
		}
		for _, n := range tree {
			if n.Name != want {
				t.Errorf("trace %d: foreign span %q interleaved", i, n.Name)
			}
			if len(n.Children) != 1 || n.Children[0].Name != want+"-child" {
				t.Errorf("trace %d: children wrong: %+v", i, n.Children)
			}
		}
	}
}

func TestSharedTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, sp := StartSpan(ctx, "root")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Tree()); got != 800 {
		t.Errorf("got %d roots, want 800", got)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace("rt")
	ctx := WithTrace(context.Background(), tr)
	rctx, root := StartSpan(ctx, "evaluate")
	root.SetStr("system", "m3d")
	_, s1 := StartSpan(rctx, "embench")
	time.Sleep(time.Millisecond)
	s1.SetFloat("cycles", 123)
	s1.End()
	_, s2 := StartSpan(rctx, "carbon")
	s2.End()
	root.End()

	want := tr.ChromeEvents()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name || g.Phase != w.Phase || g.TsUS != w.TsUS || g.DurUS != w.DurUS || g.PID != w.PID || g.TID != w.TID {
			t.Errorf("event %d differs: got %+v want %+v", i, g, w)
		}
		if len(g.Args) != len(w.Args) {
			t.Errorf("event %d args differ: got %v want %v", i, g.Args, w.Args)
		}
		for k, v := range w.Args {
			if g.Args[k] != v {
				t.Errorf("event %d arg %q: got %q want %q", i, k, g.Args[k], v)
			}
		}
	}
	// The embench span slept ≥1ms; its exported duration must say so.
	if got[1].Name != "embench" || got[1].DurUS < 900 {
		t.Errorf("embench duration %dµs, want >= 900", got[1].DurUS)
	}
	// Parsing garbage must fail loudly.
	if _, err := ParseChromeTrace(strings.NewReader(`[{"name":"x","ph":"B","ts":0,"dur":0,"pid":1,"tid":1}]`)); err == nil {
		t.Error("ParseChromeTrace accepted an unsupported phase")
	}
}

func TestNewIDFormat(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("IDs %q %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("consecutive IDs collide: %q", a)
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTrace("json-run")
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "evaluate")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"id": "json-run"`, `"name": "evaluate"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}
