package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("demo_total", "A counter.")
	cv := reg.CounterVec("demo_by_kind_total", "A labeled counter.", "kind")
	reg.GaugeFunc("demo_depth", "A gauge.", func() float64 { return 2.5 })
	hv := reg.HistogramVec("demo_seconds", "A histogram.", "op", []float64{0.001, 0.01})

	c.Add(3)
	cv.With("b").Add(1)
	cv.With("a").Add(2)
	hv.With("eval").Observe(5 * time.Millisecond)
	hv.With("eval").Observe(500 * time.Microsecond)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP demo_total A counter.",
		"# TYPE demo_total counter",
		"demo_total 3",
		`demo_by_kind_total{kind="a"} 2`,
		`demo_by_kind_total{kind="b"} 1`,
		"# TYPE demo_depth gauge",
		"demo_depth 2.5",
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{op="eval",le="0.001"} 1`,
		`demo_seconds_bucket{op="eval",le="0.01"} 2`,
		`demo_seconds_bucket{op="eval",le="+Inf"} 2`,
		`demo_seconds_sum{op="eval"} 0.0055`,
		`demo_seconds_count{op="eval"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Labels must render sorted: a before b.
	if strings.Index(out, `kind="a"`) > strings.Index(out, `kind="b"`) {
		t.Error("labeled samples not sorted by label value")
	}
}

func TestRegistryRejectsShapeMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "A counter.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a histogram must panic")
		}
	}()
	reg.HistogramVec("x_total", "Not a counter.", "op", nil)
}

func TestHistogramCount(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("h_seconds", "h", "k", nil)
	if got := hv.With("a").Count(); got != 0 {
		t.Fatalf("fresh histogram count %d, want 0", got)
	}
	hv.With("a").Observe(time.Millisecond)
	hv.With("a").Observe(time.Second)
	if got := hv.With("a").Count(); got != 2 {
		t.Fatalf("count %d, want 2", got)
	}
	if got := hv.With("other").Count(); got != 0 {
		t.Fatalf("sibling label leaked observations: %d", got)
	}
}
