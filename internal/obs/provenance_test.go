package obs

import (
	"context"
	"strings"
	"testing"
)

func TestProvenanceRecordAndLookup(t *testing.T) {
	p := NewProvenance()
	p.Record("embench", "cycles", 123456, "cycles")
	p.Record("carbon", "yield", 0.9, "")
	p.Record("carbon", "epa_kwh_per_wafer", 777.5, "kWh")

	fields := p.Fields()
	if len(fields) != 3 {
		t.Fatalf("got %d fields, want 3", len(fields))
	}
	f, ok := Lookup(fields, "carbon", "yield")
	if !ok || f.Value != 0.9 {
		t.Fatalf("Lookup carbon/yield = %+v, %v", f, ok)
	}
	if _, ok := Lookup(fields, "carbon", "missing"); ok {
		t.Fatal("Lookup found a field that was never recorded")
	}
	stages := Stages(fields)
	if len(stages) != 2 || stages[0] != "carbon" || stages[1] != "embench" {
		t.Fatalf("Stages = %v, want [carbon embench]", stages)
	}
}

func TestProvenanceNilSafe(t *testing.T) {
	var p *Provenance
	p.Record("embench", "cycles", 1, "") // must not panic
	if got := p.Fields(); got != nil {
		t.Fatalf("nil collector Fields() = %v, want nil", got)
	}
}

func TestProvenanceContextFlag(t *testing.T) {
	ctx := context.Background()
	if ProvenanceEnabled(ctx) {
		t.Fatal("provenance enabled on background context")
	}
	if !ProvenanceEnabled(WithProvenanceEnabled(ctx)) {
		t.Fatal("WithProvenanceEnabled did not stick")
	}
}

func TestFormatFields(t *testing.T) {
	p := NewProvenance()
	p.Record("carbon", "epa_kwh_per_wafer", 1086.33, "kWh")
	p.Record("embench", "cycles", 3.39e6, "cycles")
	out := FormatFields(p.Fields())
	for _, want := range []string{"carbon", "epa_kwh_per_wafer", "1086.33", "kWh", "embench", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFields missing %q:\n%s", want, out)
		}
	}
}
