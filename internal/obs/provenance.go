package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Field is one intermediate quantity a pipeline stage produced: the
// cycle count the ISA simulation measured, the EPA the flow summed, the
// yield the model returned. A result's fields let any headline number be
// audited back to its inputs.
type Field struct {
	// Stage names the producing pipeline stage (embench, edram, synth,
	// floorplan, carbon).
	Stage string `json:"stage"`
	// Name is the quantity, with the unit suffixed in the conventional
	// export style (e.g. "epa_kwh", "yield").
	Name string `json:"name"`
	// Value is the quantity in the unit Name declares.
	Value float64 `json:"value"`
	// Unit spells the unit out for display ("kWh", "" for ratios).
	Unit string `json:"unit,omitempty"`
}

// Provenance collects fields as stages run. Safe for concurrent use; a
// nil *Provenance is a valid no-op collector, so instrumented code calls
// Record unconditionally.
type Provenance struct {
	mu     sync.Mutex
	fields []Field
}

// NewProvenance returns an empty collector.
func NewProvenance() *Provenance { return &Provenance{} }

// Record appends one field. Safe on a nil receiver (no-op, no
// allocations — the disabled hot path).
func (p *Provenance) Record(stage, name string, value float64, unit string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.fields = append(p.fields, Field{Stage: stage, Name: name, Value: value, Unit: unit})
	p.mu.Unlock()
}

// Fields snapshots the recorded fields in insertion order. Returns nil on
// a nil receiver.
func (p *Provenance) Fields() []Field {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Field(nil), p.fields...)
}

type provenanceKey struct{}

// WithProvenanceEnabled marks the context so instrumented pipelines
// collect provenance and attach it to their results.
func WithProvenanceEnabled(ctx context.Context) context.Context {
	return context.WithValue(ctx, provenanceKey{}, true)
}

// ProvenanceEnabled reports whether the context asks for provenance.
func ProvenanceEnabled(ctx context.Context) bool {
	on, _ := ctx.Value(provenanceKey{}).(bool)
	return on
}

// Stages returns the distinct stage names present in fields, sorted.
func Stages(fields []Field) []string {
	seen := make(map[string]bool)
	for _, f := range fields {
		seen[f.Stage] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a field by stage and name; ok is false when absent.
func Lookup(fields []Field, stage, name string) (Field, bool) {
	for _, f := range fields {
		if f.Stage == stage && f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FormatFields renders a provenance table, stages in insertion order.
func FormatFields(fields []Field) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-28s %16s %s\n", "stage", "quantity", "value", "unit")
	for _, f := range fields {
		fmt.Fprintf(&sb, "%-10s %-28s %16.6g %s\n", f.Stage, f.Name, f.Value, f.Unit)
	}
	return sb.String()
}
