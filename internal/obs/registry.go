package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The metrics half of the package: a small Prometheus-text-format
// registry shared by every serving surface (the daemon today; any future
// backend the same way), so instruments are declared once and rendered
// uniformly. Supports counters, function gauges, and fixed-bucket latency
// histograms, each either plain or with a single label dimension —
// histograms can also carry two (e.g. endpoint × cache disposition).

// DefaultLatencyBuckets are histogram upper bounds in seconds spanning
// sub-millisecond cache hits to multi-second suite evaluations.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load reads the counter.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram is a fixed-bucket latency histogram with lock-free
// observation. Bucket counts are stored per-bucket and cumulated at
// render time, the way Prometheus expects `le` buckets.
type Histogram struct {
	buckets   []float64
	counts    []atomic.Int64 // one per bucket; overflow lives in count-sum
	count     atomic.Int64
	sumMicros atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range h.buckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumMicros.Add(d.Microseconds())
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindHistogram2
)

// family is one named metric with up to two label dimensions.
type family struct {
	name, help string
	kind       metricKind
	label      string // first label key; "" when unlabeled
	label2     string // second label key (kindHistogram2 only)

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	// hists2 nests the second label under the first, so two-label
	// lookups never build a concatenated key (keeps the hot path
	// allocation-free).
	hists2  map[string]map[string]*Histogram
	buckets []float64
	gauge   func() float64
}

func (f *family) labelValues() []string {
	vals := make([]string, 0, len(f.counters)+len(f.hists))
	for v := range f.counters {
		vals = append(vals, v)
	}
	for v := range f.hists {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for a label value, creating it on first use.
func (v *CounterVec) With(label string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[label]
	if !ok {
		c = &Counter{}
		v.f.counters[label] = c
	}
	return c
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value, creating it on first use.
func (v *HistogramVec) With(label string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.hists[label]
	if !ok {
		h = newHistogram(v.f.buckets)
		v.f.hists[label] = h
	}
	return h
}

// HistogramVec2 is a histogram family with two label dimensions
// (e.g. endpoint × cache disposition).
type HistogramVec2 struct{ f *family }

// With returns the histogram for a label-value pair, creating it on
// first use. Steady-state lookups are allocation-free.
//
//ppatc:hotpath
func (v *HistogramVec2) With(v1, v2 string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	inner, ok := v.f.hists2[v1]
	if !ok {
		inner = make(map[string]*Histogram)
		v.f.hists2[v1] = inner
	}
	h, ok := inner[v2]
	if !ok {
		h = newHistogram(v.f.buckets)
		inner[v2] = h
	}
	return h
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Register instruments up front (registration takes a
// lock); observation is lock-free for counters and histograms.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, label, label2 string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label || f.label2 != label2 {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, label: label, label2: label2,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		hists2:   make(map[string]map[string]*Histogram),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "", "")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[""]
	if !ok {
		c = &Counter{}
		f.counters[""] = c
	}
	return c
}

// CounterVec registers (or returns) a counter family labeled by key.
func (r *Registry) CounterVec(name, help, key string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, key, "")}
}

// GaugeFunc registers a gauge whose value is read at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, "", "")
	f.mu.Lock()
	f.gauge = fn
	f.mu.Unlock()
}

// HistogramVec registers (or returns) a histogram family labeled by key,
// with the given bucket bounds (DefaultLatencyBuckets when nil).
func (r *Registry) HistogramVec(name, help, key string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	f := r.register(name, help, kindHistogram, key, "")
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = buckets
	}
	f.mu.Unlock()
	return &HistogramVec{f: f}
}

// HistogramVec2 registers (or returns) a histogram family with two
// label dimensions, with the given bucket bounds (DefaultLatencyBuckets
// when nil).
func (r *Registry) HistogramVec2(name, help, key1, key2 string, buckets []float64) *HistogramVec2 {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	f := r.register(name, help, kindHistogram2, key1, key2)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = buckets
	}
	f.mu.Unlock()
	return &HistogramVec2{f: f}
}

// WriteTo renders every registered family, in registration order, in
// Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var n int64
	p := func(format string, args ...any) error {
		c, err := fmt.Fprintf(w, format, args...)
		n += int64(c)
		return err
	}

	for _, f := range families {
		typ := map[metricKind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram", kindHistogram2: "histogram"}[f.kind]
		if err := p("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return n, err
		}
		f.mu.Lock()
		switch f.kind {
		case kindCounter:
			for _, lv := range f.labelValues() {
				c := f.counters[lv]
				var err error
				if f.label == "" {
					err = p("%s %d\n", f.name, c.Load())
				} else {
					err = p("%s{%s=%q} %d\n", f.name, f.label, lv, c.Load())
				}
				if err != nil {
					f.mu.Unlock()
					return n, err
				}
			}
		case kindGauge:
			v := 0.0
			if f.gauge != nil {
				v = f.gauge()
			}
			if err := p("%s %g\n", f.name, v); err != nil {
				f.mu.Unlock()
				return n, err
			}
		case kindHistogram:
			for _, lv := range f.labelValues() {
				h := f.hists[lv]
				label := ""
				if f.label != "" {
					label = fmt.Sprintf("%s=%q,", f.label, lv)
				}
				var cum int64
				for i, ub := range h.buckets {
					cum += h.counts[i].Load()
					if err := p("%s_bucket{%sle=%q} %d\n", f.name, label, fmt.Sprintf("%g", ub), cum); err != nil {
						f.mu.Unlock()
						return n, err
					}
				}
				if err := p("%s_bucket{%sle=\"+Inf\"} %d\n", f.name, label, h.count.Load()); err != nil {
					f.mu.Unlock()
					return n, err
				}
				suffix := ""
				if f.label != "" {
					suffix = fmt.Sprintf("{%s=%q}", f.label, lv)
				}
				if err := p("%s_sum%s %g\n", f.name, suffix, float64(h.sumMicros.Load())/1e6); err != nil {
					f.mu.Unlock()
					return n, err
				}
				if err := p("%s_count%s %d\n", f.name, suffix, h.count.Load()); err != nil {
					f.mu.Unlock()
					return n, err
				}
			}
		case kindHistogram2:
			outer := make([]string, 0, len(f.hists2))
			for v1 := range f.hists2 {
				outer = append(outer, v1)
			}
			sort.Strings(outer)
			for _, v1 := range outer {
				inner := make([]string, 0, len(f.hists2[v1]))
				for v2 := range f.hists2[v1] {
					inner = append(inner, v2)
				}
				sort.Strings(inner)
				for _, v2 := range inner {
					h := f.hists2[v1][v2]
					label := fmt.Sprintf("%s=%q,%s=%q", f.label, v1, f.label2, v2)
					var cum int64
					for i, ub := range h.buckets {
						cum += h.counts[i].Load()
						if err := p("%s_bucket{%s,le=%q} %d\n", f.name, label, fmt.Sprintf("%g", ub), cum); err != nil {
							f.mu.Unlock()
							return n, err
						}
					}
					if err := p("%s_bucket{%s,le=\"+Inf\"} %d\n", f.name, label, h.count.Load()); err != nil {
						f.mu.Unlock()
						return n, err
					}
					if err := p("%s_sum{%s} %g\n", f.name, label, float64(h.sumMicros.Load())/1e6); err != nil {
						f.mu.Unlock()
						return n, err
					}
					if err := p("%s_count{%s} %d\n", f.name, label, h.count.Load()); err != nil {
						f.mu.Unlock()
						return n, err
					}
				}
			}
		}
		f.mu.Unlock()
	}
	return n, nil
}
