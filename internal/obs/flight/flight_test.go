package flight

import (
	"testing"
	"time"
)

func TestAttributionFinishPartitionsTotal(t *testing.T) {
	a := Attribution{
		Endpoint:    "/v1/evaluate",
		RequestID:   "req-1",
		Disposition: "MISS",
		PoolDepth:   3,

		QueueWaitNS:   100,
		CacheLookupNS: 50,
		ComputeNS:     700,
		EncodeNS:      80,
		StoreWriteNS:  20,
	}
	start := time.Unix(100, 0)
	e := a.Finish(start, 1000*time.Nanosecond, 200)
	if e.OtherNS != 50 {
		t.Fatalf("other = %d, want 50 (total 1000 - attributed 950)", e.OtherNS)
	}
	if got := e.StageSumNS(); got != e.TotalNS {
		t.Fatalf("stage sum %d != total %d", got, e.TotalNS)
	}
	if err := e.CheckTotal(0.01); err != nil {
		t.Fatalf("CheckTotal: %v", err)
	}
	if e.StartUnixNano != start.UnixNano() {
		t.Fatalf("start = %d, want %d", e.StartUnixNano, start.UnixNano())
	}
	if e.Status != 200 || e.Disposition != "MISS" || e.PoolDepth != 3 {
		t.Fatalf("metadata lost: %+v", e)
	}
}

func TestAttributionFinishClampsNegativeResidual(t *testing.T) {
	a := Attribution{ComputeNS: 2000}
	e := a.Finish(time.Unix(0, 0), 1000*time.Nanosecond, 200)
	if e.OtherNS != 0 {
		t.Fatalf("other = %d, want clamped 0", e.OtherNS)
	}
	if e.Disposition != "NONE" {
		t.Fatalf("empty disposition should seal as NONE, got %q", e.Disposition)
	}
	// Overshoot breaks the partition invariant; CheckTotal must say so.
	if err := e.CheckTotal(0.01); err == nil {
		t.Fatal("CheckTotal should fail when stages overshoot the total")
	}
}

func TestAttributionAddBreakdown(t *testing.T) {
	a := Attribution{QueueWaitNS: 10}
	a.AddBreakdown(Breakdown{QueueWaitNS: 5, ComputeNS: 100, EncodeNS: 7, StoreWriteNS: 3})
	if a.QueueWaitNS != 15 || a.ComputeNS != 100 || a.EncodeNS != 7 || a.StoreWriteNS != 3 {
		t.Fatalf("breakdown not folded: %+v", a)
	}
}

func TestEventStageNSCoversAllStages(t *testing.T) {
	e := Event{QueueWaitNS: 1, CacheLookupNS: 2, ComputeNS: 3, EncodeNS: 4, StoreWriteNS: 5, OtherNS: 6}
	var sum int64
	for _, s := range Stages {
		sum += e.StageNS(s)
	}
	if sum != e.StageSumNS() {
		t.Fatalf("Stages list sum %d != StageSumNS %d", sum, e.StageSumNS())
	}
	if e.StageNS("bogus") != 0 {
		t.Fatal("unknown stage should report 0")
	}
}

func TestRecorderDumpOrderedBySeq(t *testing.T) {
	r := NewRecorder(8, 8, 0)
	for i := 0; i < 5; i++ {
		r.Record(Event{Endpoint: "/v1/evaluate", TotalNS: int64(i)})
	}
	evs := r.Dump(RingRecent, 0)
	if len(evs) != 5 {
		t.Fatalf("dump returned %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if got := r.Dump(RingRecent, 2); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("max=2 should keep newest two, got %+v", got)
	}
	if r.Dump("bogus", 0) != nil {
		t.Fatal("unknown ring name should return nil")
	}
}

func TestRecorderRecentRingEvicts(t *testing.T) {
	r := NewRecorder(4, 4, 0)
	for i := 0; i < 10; i++ {
		r.Record(Event{TotalNS: int64(i)})
	}
	evs := r.Dump(RingRecent, 0)
	if len(evs) != 4 {
		t.Fatalf("recent ring should hold 4 events, got %d", len(evs))
	}
	for _, e := range evs {
		if e.Seq <= 6 {
			t.Fatalf("old event seq %d survived eviction", e.Seq)
		}
	}
}

func TestRecorderSlowRingRetainsSlowEvents(t *testing.T) {
	r := NewRecorder(4, 8, time.Millisecond)
	// One slow event, then enough fast traffic to lap the recent ring.
	r.Record(Event{Endpoint: "/v1/batch", TotalNS: (2 * time.Millisecond).Nanoseconds()})
	for i := 0; i < 16; i++ {
		r.Record(Event{Endpoint: "/v1/evaluate", TotalNS: 100})
	}
	slow := r.Dump(RingSlow, 0)
	if len(slow) != 1 || !slow[0].Slow || slow[0].Endpoint != "/v1/batch" {
		t.Fatalf("slow ring = %+v, want the one slow batch event", slow)
	}
	// The union dedups by seq and includes the slow event exactly once.
	all := r.Dump(RingAll, 0)
	count := 0
	for _, e := range all {
		if e.Slow {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("union contains slow event %d times, want 1", count)
	}
	if !r.IsSlow(time.Millisecond) || r.IsSlow(999*time.Microsecond) {
		t.Fatal("IsSlow threshold comparison wrong")
	}
	if r.SlowThreshold() != time.Millisecond {
		t.Fatalf("SlowThreshold = %v", r.SlowThreshold())
	}
}

func TestRecorderDisabledSlowThreshold(t *testing.T) {
	r := NewRecorder(4, 4, 0)
	r.Record(Event{TotalNS: int64(time.Hour)})
	if evs := r.Dump(RingSlow, 0); len(evs) != 0 {
		t.Fatalf("slow ring should stay empty with threshold disabled, got %d", len(evs))
	}
	if r.IsSlow(time.Hour) {
		t.Fatal("IsSlow must be false when disabled")
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	r := NewRecorder(1024, 64, 100*time.Millisecond)
	e := Event{
		Endpoint:    "/v1/evaluate",
		RequestID:   "0123456789abcdef",
		Disposition: "HIT",
		TotalNS:     5000,
		OtherNS:     5000,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(e)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := NewRecorder(1024, 64, 100*time.Millisecond)
	e := Event{Endpoint: "/v1/evaluate", Disposition: "HIT", TotalNS: 5000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}
