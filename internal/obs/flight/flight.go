// Package flight is the always-on request telemetry layer of the
// daemon: per-request latency attribution plus a fixed-size in-memory
// flight recorder retaining the most recent completed requests and
// every request slower than a threshold.
//
// Attribution splits a request's wall clock into named stages —
// queue_wait, cache_lookup, compute, encode, store_write — with the
// residual reported explicitly as "other" rather than silently
// dropped, so the stage sum always cross-checks against the end-to-end
// latency the same way provenance records cross-check against final
// numbers. The recorder is a pair of power-of-two rings (recent +
// slow) written lock-free from request goroutines and dumped
// copy-on-read; the record path makes zero steady-state allocations so
// it can stay enabled at full load.
package flight

import (
	"fmt"
	"time"
)

// Stage names, in the order they are reported. "other" is the
// explicitly-reported unattributed residual (request decode, response
// write, scheduling), so the stages always partition the total.
var Stages = []string{
	"queue_wait", "cache_lookup", "compute", "peer_forward", "encode", "store_write", "other",
}

// Event is one completed request's attribution record: the compact,
// fixed-size value stored in the recorder rings and dumped as NDJSON.
//
//ppatc:schema
type Event struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based;
	// 0 marks an empty ring slot).
	Seq uint64 `json:"seq"`
	// StartUnixNano is the request's admission wall-clock time.
	StartUnixNano int64 `json:"start_unix_ns"`

	Endpoint  string `json:"endpoint"`
	RequestID string `json:"request_id"`
	// Disposition is the cache disposition: HIT, MISS, COALESCED,
	// STORE, REMOTE (served by the key's owning cluster peer), BYPASS,
	// or NONE for endpoints that don't compute.
	Disposition string `json:"disposition"`
	Status      int    `json:"status"`
	// BatchSize is the item count of a /v1/batch request (0 otherwise).
	BatchSize int `json:"batch_size,omitempty"`
	// AdmissionClass is the worker-pool class the request's computation
	// was admitted under ("interactive" or "bulk"; empty for requests
	// that never reached the pool).
	AdmissionClass string `json:"admission_class,omitempty"`
	// PoolDepth is the worker-pool queue depth at admission — the
	// head-of-line pressure this request walked into.
	PoolDepth int64 `json:"pool_depth"`

	// Stage durations, nanoseconds. OtherNS is the measured residual:
	// TotalNS minus the attributed stages, clamped at zero.
	QueueWaitNS   int64 `json:"queue_wait_ns"`
	CacheLookupNS int64 `json:"cache_lookup_ns"`
	ComputeNS     int64 `json:"compute_ns"`
	// PeerForwardNS is the time spent forwarding the request to the
	// key's owning cluster peer and reading its response (0 when the
	// request was served locally).
	PeerForwardNS int64 `json:"peer_forward_ns,omitempty"`
	EncodeNS      int64 `json:"encode_ns"`
	StoreWriteNS  int64 `json:"store_write_ns"`
	OtherNS       int64 `json:"other_ns"`
	// TotalNS is the end-to-end request latency, measured
	// independently of the stages.
	TotalNS int64 `json:"total_ns"`

	// Slow marks an event that met the recorder's slow threshold (it
	// is retained in the slow ring as well as the recent ring).
	Slow bool `json:"slow,omitempty"`
}

// StageNS returns the named stage's duration. Unknown names return 0.
func (e *Event) StageNS(stage string) int64 {
	switch stage {
	case "queue_wait":
		return e.QueueWaitNS
	case "cache_lookup":
		return e.CacheLookupNS
	case "compute":
		return e.ComputeNS
	case "peer_forward":
		return e.PeerForwardNS
	case "encode":
		return e.EncodeNS
	case "store_write":
		return e.StoreWriteNS
	case "other":
		return e.OtherNS
	}
	return 0
}

// StageSumNS is the sum of every reported stage, including the
// explicit residual.
func (e *Event) StageSumNS() int64 {
	return e.QueueWaitNS + e.CacheLookupNS + e.ComputeNS + e.PeerForwardNS +
		e.EncodeNS + e.StoreWriteNS + e.OtherNS
}

// CheckTotal cross-checks the stage sum against the end-to-end
// latency, tolerating a relative error of tol (e.g. 0.01 for 1%).
// The attribution discipline is the same as provenance: every claimed
// breakdown must re-add to the number it claims to explain.
func (e *Event) CheckTotal(tol float64) error {
	sum := e.StageSumNS()
	diff := sum - e.TotalNS
	if diff < 0 {
		diff = -diff
	}
	limit := int64(tol * float64(e.TotalNS))
	if diff > limit {
		return fmt.Errorf("flight: event %d (%s): stage sum %dns vs total %dns exceeds %.2g tolerance",
			e.Seq, e.Endpoint, sum, e.TotalNS, tol)
	}
	return nil
}

// Breakdown is the computation-side slice of an attribution: the
// stages measured inside a single-flight computation, shared verbatim
// with every coalesced waiter of that computation's leader.
type Breakdown struct {
	QueueWaitNS   int64
	CacheLookupNS int64
	ComputeNS     int64
	PeerForwardNS int64
	EncodeNS      int64
	StoreWriteNS  int64
	// OtherNS is wall time a computation measured but could not ascribe
	// to a named stage (e.g. a batch fan-out whose items recorded no
	// stage time at clock resolution). It folds into the event's
	// explicit "other" stage, keeping the partition invariant.
	OtherNS int64
	// Remote marks a computation satisfied by forwarding to the key's
	// owning cluster peer instead of evaluating locally; the caller
	// reports disposition REMOTE instead of MISS.
	Remote bool
}

// Attribution accumulates one request's stage timings while it is in
// flight; Finish seals it into an Event. The zero value is ready to
// use. Attribution is owned by a single request goroutine and must not
// be shared; cross-goroutine stage timings arrive via Breakdown values
// returned over happens-before edges (channel close).
type Attribution struct {
	Endpoint    string
	RequestID   string
	Disposition string
	BatchSize   int
	PoolDepth   int64
	// Class is the admission class the request's computation ran under
	// ("interactive" or "bulk"; empty when it never reached the pool).
	Class string

	QueueWaitNS   int64
	CacheLookupNS int64
	ComputeNS     int64
	PeerForwardNS int64
	EncodeNS      int64
	StoreWriteNS  int64
	// OtherNS accumulates explicitly-unattributable measured time; Finish
	// adds the end-to-end residual on top of it.
	OtherNS int64
}

// DispositionOrNone returns the disposition, or "NONE" when unset
// (endpoints that don't touch the cache).
//
//ppatc:hotpath
func (a *Attribution) DispositionOrNone() string {
	if a.Disposition == "" {
		return "NONE"
	}
	return a.Disposition
}

// AddBreakdown folds a computation's measured stages into the request.
//
//ppatc:hotpath
func (a *Attribution) AddBreakdown(b Breakdown) {
	a.QueueWaitNS += b.QueueWaitNS
	a.CacheLookupNS += b.CacheLookupNS
	a.ComputeNS += b.ComputeNS
	a.PeerForwardNS += b.PeerForwardNS
	a.EncodeNS += b.EncodeNS
	a.StoreWriteNS += b.StoreWriteNS
	a.OtherNS += b.OtherNS
}

// Finish seals the attribution into an Event: the unattributed
// residual becomes the explicit "other" stage so the stage sum always
// re-adds to the end-to-end total. start stamps the event; total is
// the independently measured request latency.
//
//ppatc:hotpath
func (a *Attribution) Finish(start time.Time, total time.Duration, status int) Event {
	totalNS := total.Nanoseconds()
	attributed := a.QueueWaitNS + a.CacheLookupNS + a.ComputeNS + a.PeerForwardNS +
		a.EncodeNS + a.StoreWriteNS + a.OtherNS
	residual := totalNS - attributed
	if residual < 0 {
		// Stage clocks read inside the computation can overshoot the
		// outer clock by scheduling wobble; never report negative time.
		residual = 0
	}
	other := a.OtherNS + residual
	disp := a.Disposition
	if disp == "" {
		disp = "NONE"
	}
	return Event{
		StartUnixNano:  start.UnixNano(),
		Endpoint:       a.Endpoint,
		RequestID:      a.RequestID,
		Disposition:    disp,
		Status:         status,
		BatchSize:      a.BatchSize,
		AdmissionClass: a.Class,
		PoolDepth:      a.PoolDepth,
		QueueWaitNS:    a.QueueWaitNS,
		CacheLookupNS:  a.CacheLookupNS,
		ComputeNS:      a.ComputeNS,
		PeerForwardNS:  a.PeerForwardNS,
		EncodeNS:       a.EncodeNS,
		StoreWriteNS:   a.StoreWriteNS,
		OtherNS:        other,
		TotalNS:        totalNS,
	}
}
