package flight

import (
	"sync"
	"sync/atomic"
)

// Hub fans completed events out to live stream subscribers
// (GET /v1/metrics/stream). The no-subscriber fast path — the steady
// state — is a single atomic load, so the hub costs the request path
// nothing until someone is actually watching. Publishes never block:
// a subscriber whose buffer is full misses events rather than stalling
// the recorder.
type Hub struct {
	n    atomic.Int64
	mu   sync.Mutex
	subs map[int]chan Event
	next int
}

// Subscribe registers a listener with the given channel buffer
// (minimum 1) and returns its event channel plus a cancel function.
// Cancel is idempotent and closes the channel, so a draining range
// loop terminates.
func (h *Hub) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[int]chan Event)
	}
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	h.n.Add(1)

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, id)
			h.mu.Unlock()
			h.n.Add(-1)
			close(ch)
		})
	}
	return ch, cancel
}

// Subscribers reports the number of live subscriptions.
func (h *Hub) Subscribers() int64 { return h.n.Load() }

// publish delivers e to every subscriber that has buffer room.
//
//ppatc:hotpath
func (h *Hub) publish(e Event) {
	if h.n.Load() == 0 {
		return
	}
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- e:
		default:
		}
	}
	h.mu.Unlock()
}
