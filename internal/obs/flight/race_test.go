package flight

import (
	"sync"
	"testing"
	"time"
)

// TestRingConcurrentWritersAndReaders hammers the recorder from 32
// writer goroutines while readers continuously dump it, asserting the
// two guarantees the latch design makes: no torn events (every dumped
// event is internally consistent) and unique, in-range sequence
// numbers in every strictly ascending dump. Run under -race in CI.
func TestRingConcurrentWritersAndReaders(t *testing.T) {
	const (
		writers  = 32
		perW     = 500
		readers  = 4
		slowEach = 50 // every 50th event per writer is slow
	)
	r := NewRecorder(256, 256, time.Millisecond)

	// Writers stamp redundant fields from one value; a torn event would
	// mix fields from two writers and break the equalities below.
	torn := func(e Event) bool {
		return e.TotalNS != e.ComputeNS+e.OtherNS ||
			e.QueueWaitNS != e.ComputeNS ||
			int64(e.Status) != e.ComputeNS%1000
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers+writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := int64(w*perW + i)
				e := Event{
					Endpoint:    "/v1/evaluate",
					Disposition: "HIT",
					Status:      int(v % 1000),
					QueueWaitNS: v,
					ComputeNS:   v,
					OtherNS:     1,
					TotalNS:     v + 1,
				}
				if i%slowEach == 0 {
					e.TotalNS = (2 * time.Millisecond).Nanoseconds()
					e.OtherNS = e.TotalNS - e.ComputeNS
				}
				r.Record(e)
			}
		}(w)
	}

	var rwg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ring := range []string{RingRecent, RingSlow, RingAll} {
					evs := r.Dump(ring, 0)
					var last uint64
					for _, e := range evs {
						if torn(e) {
							errs <- "torn event in dump"
							return
						}
						if e.Seq <= last {
							errs <- "dump sequence not strictly ascending"
							return
						}
						last = e.Seq
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	total := uint64(writers * perW)
	if got := r.Seq(); got != total {
		t.Fatalf("recorded seq = %d, want %d", got, total)
	}
	// Everything still present must be consistent and unique.
	evs := r.Dump(RingAll, 0)
	seen := make(map[uint64]bool, len(evs))
	for _, e := range evs {
		if torn(e) {
			t.Fatalf("torn event after quiesce: %+v", e)
		}
		if e.Seq == 0 || e.Seq > total {
			t.Fatalf("seq %d out of range [1,%d]", e.Seq, total)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in deduplicated dump", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(evs) == 0 {
		t.Fatal("quiesced dump is empty")
	}
	// Drops are possible under contention but must be accounted for.
	if d := r.Dropped(); d < 0 {
		t.Fatalf("negative drop count %d", d)
	}
}

func TestHubSubscribePublishCancel(t *testing.T) {
	var h Hub
	if h.Subscribers() != 0 {
		t.Fatal("fresh hub should have no subscribers")
	}
	h.publish(Event{Seq: 1}) // no subscribers: must be a no-op

	ch, cancel := h.Subscribe(4)
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", h.Subscribers())
	}
	h.publish(Event{Seq: 2})
	select {
	case e := <-ch:
		if e.Seq != 2 {
			t.Fatalf("received seq %d, want 2", e.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("published event not delivered")
	}

	// A full buffer drops rather than blocking the publisher.
	for i := 0; i < 10; i++ {
		h.publish(Event{Seq: uint64(10 + i)})
	}

	cancel()
	cancel() // idempotent
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", h.Subscribers())
	}
	// Channel is closed: a drain loop terminates.
	for range ch {
	}
	h.publish(Event{Seq: 99}) // must not panic on closed subscription
}

func TestHubConcurrentSubscribersUnderLoad(t *testing.T) {
	r := NewRecorder(64, 64, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := r.Hub().Subscribe(8)
			defer cancel()
			for {
				select {
				case <-ch:
				case <-stop:
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		r.Record(Event{Seq: 0, TotalNS: int64(i)})
	}
	close(stop)
	wg.Wait()
	if r.Hub().Subscribers() != 0 {
		t.Fatalf("subscribers = %d after all cancels", r.Hub().Subscribers())
	}
}
