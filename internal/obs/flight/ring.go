package flight

import (
	"sort"
	"sync/atomic"
	"time"
)

// ring is a fixed-size event buffer written from many request
// goroutines without blocking any of them. Slots are claimed by an
// atomic cursor; each slot is guarded by a one-word try-latch, so a
// writer that collides with a reader (or with a writer that lapped the
// whole ring mid-copy) drops its event — metered, never torn, never
// blocked. Readers copy slots out under the same latch, so a dump can
// run concurrently with full-load recording and every event it returns
// is internally consistent.
type ring struct {
	mask    uint64
	cursor  atomic.Uint64
	dropped atomic.Int64
	slots   []slot
}

type slot struct {
	// latch is the slot's try-acquire guard: 0 free, 1 held. Writers
	// and readers both go through it, so slot data accesses are always
	// ordered by the latch's acquire/release edges.
	latch atomic.Uint32
	ev    Event
}

// newRing sizes a ring to the next power of two ≥ n (minimum 1).
func newRing(n int) *ring {
	size := 1
	for size < n {
		size <<= 1
	}
	return &ring{mask: uint64(size - 1), slots: make([]slot, size)}
}

// record claims the next slot and copies e into it. It never blocks:
// if the slot is momentarily held (a reader copying it, or a writer
// that lapped the ring), the event is dropped and counted.
//
//ppatc:hotpath
func (r *ring) record(e Event) {
	t := r.cursor.Add(1) - 1
	s := &r.slots[t&r.mask]
	if !s.latch.CompareAndSwap(0, 1) {
		r.dropped.Add(1)
		return
	}
	s.ev = e
	s.latch.Store(0)
}

// snapshot appends a consistent copy of every written slot to dst.
// Slots momentarily held by a writer are skipped — the dump is a
// best-effort copy-on-read view, which is exactly what a live flight
// recorder can promise under load.
func (r *ring) snapshot(dst []Event) []Event {
	for i := range r.slots {
		s := &r.slots[i]
		if !s.latch.CompareAndSwap(0, 1) {
			continue
		}
		e := s.ev
		s.latch.Store(0)
		if e.Seq != 0 {
			dst = append(dst, e)
		}
	}
	return dst
}

// Recorder is the flight recorder: a recent-events ring holding the
// last N completed requests of any speed, plus a slow ring retaining
// requests at or above the slow threshold (which would otherwise be
// evicted quickly by high-rate fast traffic). All methods are safe for
// concurrent use; Record makes no allocations.
type Recorder struct {
	seq    atomic.Uint64
	slowNS int64
	recent *ring
	slow   *ring
	hub    Hub
}

// NewRecorder builds a recorder with the given ring capacities
// (rounded up to powers of two; minimums of 1) and slow threshold.
// A zero or negative threshold disables the slow ring.
func NewRecorder(recentSlots, slowSlots int, slowThreshold time.Duration) *Recorder {
	if recentSlots < 1 {
		recentSlots = 1
	}
	if slowSlots < 1 {
		slowSlots = 1
	}
	return &Recorder{
		slowNS: slowThreshold.Nanoseconds(),
		recent: newRing(recentSlots),
		slow:   newRing(slowSlots),
	}
}

// SlowThreshold reports the configured slow-request threshold
// (0 when disabled).
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.slowNS)
}

// Record assigns the event its sequence number and stores it: always
// in the recent ring, and additionally in the slow ring when it meets
// the slow threshold. Completed events are also published to any live
// stream subscribers (non-blocking; slow consumers miss events rather
// than stalling the request path).
//
//ppatc:hotpath
func (r *Recorder) Record(e Event) {
	e.Seq = r.seq.Add(1)
	if r.slowNS > 0 && e.TotalNS >= r.slowNS {
		e.Slow = true
	}
	r.recent.record(e)
	if e.Slow {
		r.slow.record(e)
	}
	r.hub.publish(e)
}

// IsSlow reports whether a latency meets the slow threshold.
//
//ppatc:hotpath
func (r *Recorder) IsSlow(d time.Duration) bool {
	return r.slowNS > 0 && d.Nanoseconds() >= r.slowNS
}

// Dropped counts events lost to slot contention across both rings —
// at sane ring sizes this stays zero even under heavy load.
func (r *Recorder) Dropped() int64 {
	return r.recent.dropped.Load() + r.slow.dropped.Load()
}

// Seq reports the number of events recorded so far.
func (r *Recorder) Seq() uint64 { return r.seq.Load() }

// Hub returns the recorder's live-stream hub.
func (r *Recorder) Hub() *Hub { return &r.hub }

// Ring names accepted by Dump.
const (
	RingRecent = "recent"
	RingSlow   = "slow"
	RingAll    = "all"
)

// Dump returns a consistent copy of the named ring's events ("recent",
// "slow", or "all" for the union), deduplicated by sequence number and
// sorted in ascending sequence order. max > 0 keeps only the newest
// max events. Unknown ring names return nil.
func (r *Recorder) Dump(ring string, max int) []Event {
	var out []Event
	switch ring {
	case RingRecent:
		out = r.recent.snapshot(nil)
	case RingSlow:
		out = r.slow.snapshot(nil)
	case RingAll, "":
		out = r.recent.snapshot(nil)
		out = r.slow.snapshot(out)
	default:
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	// The union can contain a slow event twice (once per ring); the
	// rings never reuse sequence numbers, so adjacent dedup is exact.
	dedup := out[:0]
	var last uint64
	for _, e := range out {
		if e.Seq == last {
			continue
		}
		dedup = append(dedup, e)
		last = e.Seq
	}
	out = dedup
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
