package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour loadable by chrome://tracing and Perfetto). Only complete
// ("ph":"X") events are emitted: one per span, with ts/dur in integer
// microseconds relative to the trace start.
type ChromeEvent struct {
	Name   string            `json:"name"`
	Phase  string            `json:"ph"`
	TsUS   int64             `json:"ts"`
	DurUS  int64             `json:"dur"`
	PID    int               `json:"pid"`
	TID    int               `json:"tid"`
	Args   map[string]string `json:"args,omitempty"`
}

// ChromeEvents flattens the trace into complete events, depth first, so
// the viewer reconstructs nesting from timestamp containment.
func (t *Trace) ChromeEvents() []ChromeEvent {
	var out []ChromeEvent
	t.mu.Lock()
	defer t.mu.Unlock()
	var rec func([]*Span)
	rec = func(spans []*Span) {
		for _, s := range spans {
			ev := ChromeEvent{
				Name:  s.name,
				Phase: "X",
				TsUS:  s.start.Sub(t.start).Microseconds(),
				DurUS: s.dur.Microseconds(),
				PID:   1,
				TID:   1,
			}
			if len(s.attrs) > 0 {
				ev.Args = make(map[string]string, len(s.attrs))
				for _, a := range s.attrs {
					if a.IsNum {
						ev.Args[a.Key] = fmt.Sprintf("%g", a.Num)
					} else {
						ev.Args[a.Key] = a.Str
					}
				}
			}
			out = append(out, ev)
			rec(s.children)
		}
	}
	rec(t.roots)
	return out
}

// WriteChromeTrace emits the trace as a Chrome trace-event JSON array.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := t.ChromeEvents()
	if events == nil {
		events = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

// ParseChromeTrace reads a Chrome trace-event JSON array back into
// events, validating the phase field. It accepts exactly what
// WriteChromeTrace produces (the round-trip contract the tests pin).
func ParseChromeTrace(r io.Reader) ([]ChromeEvent, error) {
	var events []ChromeEvent
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&events); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	for i, ev := range events {
		if ev.Phase != "X" {
			return nil, fmt.Errorf("obs: event %d (%q): unsupported phase %q", i, ev.Name, ev.Phase)
		}
		if ev.DurUS < 0 || ev.TsUS < 0 {
			return nil, fmt.Errorf("obs: event %d (%q): negative timestamp", i, ev.Name)
		}
	}
	return events, nil
}
