package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var (
	_ ResultStore = (*MemStore)(nil)
	_ ResultStore = (*SegmentStore)(nil)
	_ ResultStore = (*CASStore)(nil)
)

// openStores builds one of each implementation over t.TempDir.
func openStores(t *testing.T) map[string]ResultStore {
	t.Helper()
	seg, err := OpenSegmentStore(filepath.Join(t.TempDir(), "seg"), 0)
	if err != nil {
		t.Fatal(err)
	}
	cas, err := OpenCASStore(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]ResultStore{
		"mem":     NewMemStore(),
		"segment": seg,
		"cas":     cas,
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})
	return stores
}

func TestRoundTrip(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			body := []byte("{\n  \"pretty\": true\n}\n") // whitespace must survive verbatim
			if err := st.Put(Record{Key: "evaluate|si|crc32|US", Kind: "evaluate", Body: body}); err != nil {
				t.Fatal(err)
			}
			rec, ok, err := st.Get("evaluate|si|crc32|US")
			if err != nil || !ok {
				t.Fatalf("get: ok=%v err=%v", ok, err)
			}
			if !bytes.Equal(rec.Body, body) {
				t.Errorf("body mangled: %q != %q", rec.Body, body)
			}
			if rec.Kind != "evaluate" {
				t.Errorf("kind = %q", rec.Kind)
			}
			if _, ok, _ := st.Get("missing"); ok {
				t.Error("phantom record")
			}

			// Overwrite replaces; the old body is gone.
			if err := st.Put(Record{Key: "evaluate|si|crc32|US", Kind: "evaluate", Body: []byte(`{"v":2}`)}); err != nil {
				t.Fatal(err)
			}
			rec, _, _ = st.Get("evaluate|si|crc32|US")
			if string(rec.Body) != `{"v":2}` {
				t.Errorf("overwrite lost: %s", rec.Body)
			}
			if got := st.Stats().Keys; got != 1 {
				t.Errorf("keys = %d, want 1", got)
			}
		})
	}
}

func TestPutValidation(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Put(Record{Key: "", Body: []byte("x")}); err == nil {
				t.Error("empty key accepted")
			}
			if err := st.Put(Record{Key: "a\nb", Body: []byte("x")}); err == nil {
				t.Error("newline key accepted")
			}
		})
	}
}

func TestScanPrefixOrder(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			for _, k := range []string{"point|b", "sweep|x", "point|a", "point|c"} {
				if err := st.Put(Record{Key: k, Kind: "point", Body: []byte(`{}`)}); err != nil {
					t.Fatal(err)
				}
			}
			var got []string
			if err := st.Scan("point|", func(r Record) error {
				got = append(got, r.Key)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			want := []string{"point|a", "point|b", "point|c"}
			if len(got) != len(want) {
				t.Fatalf("scan %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("scan %v, want %v", got, want)
				}
			}
			// A callback error stops the walk and surfaces.
			calls := 0
			err := st.Scan("point|", func(Record) error {
				calls++
				return fmt.Errorf("stop")
			})
			if err == nil || calls != 1 {
				t.Errorf("err=%v calls=%d", err, calls)
			}
		})
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("k%d", i%10)
						body := []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))
						if err := st.Put(Record{Key: key, Body: body}); err != nil {
							t.Error(err)
							return
						}
						if _, _, err := st.Get(key); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if got := st.Stats().Keys; got != 10 {
				t.Errorf("keys = %d, want 10", got)
			}
		})
	}
}

func TestSegmentReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Put(Record{Key: fmt.Sprintf("k%02d", i), Kind: "point", Body: []byte(fmt.Sprintf(`{"i":%d}`, i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenSegmentStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Keys; got != 20 {
		t.Fatalf("reopened keys = %d, want 20", got)
	}
	rec, ok, err := st2.Get("k07")
	if err != nil || !ok || string(rec.Body) != `{"i":7}` {
		t.Fatalf("reopened get: %v %v %s", ok, err, rec.Body)
	}
	// The reopened store accepts appends.
	if err := st2.Put(Record{Key: "k99", Body: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(Record{Key: "a", Body: []byte(`{"v":1}`)})
	st.Put(Record{Key: "b", Body: []byte(`{"v":2}`)})
	st.Close()

	// Simulate a crash mid-append: garbage without a trailing newline.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"c","bo`)
	f.Close()

	st2, err := OpenSegmentStore(dir, 0)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer st2.Close()
	if got := st2.Stats().Keys; got != 2 {
		t.Fatalf("keys = %d, want 2 (torn record dropped)", got)
	}
	// Appending after recovery must not weld onto torn bytes.
	if err := st2.Put(Record{Key: "d", Body: []byte(`{"v":4}`)}); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := st2.Get("d")
	if err != nil || !ok || string(rec.Body) != `{"v":4}` {
		t.Fatalf("post-recovery get: %v %v %s", ok, err, rec.Body)
	}
}

func TestSegmentMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(Record{Key: "a", Body: []byte(`{"v":1}`)})
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	f, _ := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("not json\n")           // complete (newline-terminated) garbage line
	f.WriteString(`{"key":"b","body":""}` + "\n") // followed by a valid record
	f.Close()

	if _, err := OpenSegmentStore(dir, 0); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation quickly.
	st, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 60)
	for i := 0; i < 12; i++ {
		if err := st.Put(Record{Key: fmt.Sprintf("k%d", i), Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats().Segments; got < 2 {
		t.Fatalf("segments = %d, want rotation", got)
	}

	// Overwrite every key repeatedly: dead bytes pile up past live and
	// compaction fires.
	for round := 0; round < 6; round++ {
		for i := 0; i < 12; i++ {
			if err := st.Put(Record{Key: fmt.Sprintf("k%d", i), Body: body}); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := st.Stats()
	if stats.Compactions == 0 {
		t.Fatalf("no compaction after heavy overwrite: %+v", stats)
	}
	if stats.Keys != 12 {
		t.Fatalf("keys = %d, want 12", stats.Keys)
	}
	// Every record still reads back, and a reopen agrees.
	for i := 0; i < 12; i++ {
		if _, ok, err := st.Get(fmt.Sprintf("k%d", i)); !ok || err != nil {
			t.Fatalf("k%d lost after compaction: ok=%v err=%v", i, ok, err)
		}
	}
	st.Close()
	st2, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Keys; got != 12 {
		t.Fatalf("reopened keys = %d, want 12", got)
	}
}

func TestCASDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenCASStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	body := []byte(`{"same":"result"}`)
	for i := 0; i < 5; i++ {
		if err := st.Put(Record{Key: fmt.Sprintf("point|job%d", i), Kind: "point", Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Keys != 5 || stats.Segments != 1 {
		t.Fatalf("keys=%d objects=%d, want 5 keys sharing 1 object", stats.Keys, stats.Segments)
	}
	if stats.Dedups != 4 {
		t.Errorf("dedups = %d, want 4", stats.Dedups)
	}
	// Exactly one object file exists.
	count := 0
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			count++
		}
		return nil
	})
	if count != 1 {
		t.Errorf("object files = %d, want 1", count)
	}
}

func TestCASReopenAndTornIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenCASStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(Record{Key: "a", Kind: "point", Body: []byte(`{"v":1}`)})
	st.Put(Record{Key: "b", Kind: "point", Body: []byte(`{"v":2}`)})
	st.Close()

	// Torn index tail from a crash mid-append.
	f, _ := os.OpenFile(filepath.Join(dir, "index.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"key":"c","sha2`)
	f.Close()

	st2, err := OpenCASStore(dir)
	if err != nil {
		t.Fatalf("torn index not tolerated: %v", err)
	}
	defer st2.Close()
	if got := st2.Stats().Keys; got != 2 {
		t.Fatalf("keys = %d, want 2", got)
	}
	rec, ok, err := st2.Get("b")
	if err != nil || !ok || string(rec.Body) != `{"v":2}` {
		t.Fatalf("reopened get: %v %v %s", ok, err, rec.Body)
	}
	// Appends still work after recovery.
	if err := st2.Put(Record{Key: "c", Body: []byte(`{"v":3}`)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st2.Get("c"); !ok {
		t.Error("post-recovery record missing")
	}
}

func TestCASNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenCASStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		st.Put(Record{Key: fmt.Sprintf("k%d", i), Body: []byte(fmt.Sprintf(`{"i":%d}`, i))})
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "objects", "*", "*.tmp"))
	if len(matches) != 0 {
		t.Errorf("temp files left behind: %v", matches)
	}
}
