// Package store persists evaluation results across daemon restarts. The
// serving cache and the sweep engine both die with the process; a
// ResultStore is the durable layer under them, keyed by the same
// canonical strings the response cache uses (evaluate|…, suite|…,
// tcdp:…) plus the dse point and sweep keys, so a restarted — or
// scaled-out — daemon serves historical results without re-running the
// pipeline.
//
// Three implementations cover the deployment spectrum:
//
//   - MemStore: a map. Current in-process behavior, for tests and as the
//     degraded fallback.
//   - SegmentStore: append-only NDJSON segment files with an in-memory
//     index — crash-safe reopen (torn trailing lines are truncated, the
//     discipline proven by dse.OpenCheckpoint), size-bounded segment
//     rotation, and dead-record compaction.
//   - CASStore: content-addressed blobs. Records are stored once per
//     distinct body hash, so identical points computed by different
//     sweep jobs dedup to one object on disk.
//
// Stored bodies are returned byte-identically: callers cache and serve
// them verbatim, which preserves the engine's determinism contract
// (identical requests → identical bytes) across restarts.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Record is one stored result: a canonical key, the kind tag used by
// scans and warm-up ("evaluate", "suite", "tcdp", "point", "sweep"),
// and the encoded body, stored and returned byte-for-byte.
type Record struct {
	Key  string `json:"key"`
	Kind string `json:"kind,omitempty"`
	Body []byte `json:"body"`
}

// Stats is a store's observability snapshot.
type Stats struct {
	// Keys is the number of distinct live keys.
	Keys int `json:"keys"`
	// LiveBytes is the payload held by live records; DeadBytes is space
	// consumed by overwritten records awaiting compaction (SegmentStore).
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	// Segments counts on-disk segment files (SegmentStore) or distinct
	// content-addressed objects (CASStore).
	Segments int `json:"segments"`
	// Puts/Gets/Hits count operations since open; Dedups counts Puts
	// whose body was already stored under another key (CASStore).
	Puts   uint64 `json:"puts"`
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Dedups uint64 `json:"dedups"`
	// Compactions counts segment-compaction passes.
	Compactions uint64 `json:"compactions"`
}

// ResultStore is the pluggable persistence contract. Implementations are
// safe for concurrent use. Put replaces any existing record under the
// same key; Get returns the stored body byte-identically (the returned
// record is the caller's to keep); Scan visits live records in sorted
// key order, stopping early on a callback error.
type ResultStore interface {
	Put(rec Record) error
	Get(key string) (Record, bool, error)
	Scan(prefix string, fn func(Record) error) error
	Stats() Stats
	Close() error
}

// validate rejects records no store can hold.
func validate(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("store: empty key")
	}
	if strings.ContainsAny(rec.Key, "\n\r") {
		return fmt.Errorf("store: key %q contains a line break", rec.Key)
	}
	return nil
}

// MemStore is the in-memory ResultStore: the pre-persistence behavior,
// kept as the zero-dependency implementation for tests and degraded
// operation. Records survive exactly as long as the process.
type MemStore struct {
	mu   sync.RWMutex
	recs map[string]Record
	st   Stats
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]Record)}
}

// Put stores a copy of rec, replacing any record under the same key.
func (m *MemStore) Put(rec Record) error {
	if err := validate(rec); err != nil {
		return err
	}
	body := make([]byte, len(rec.Body))
	copy(body, rec.Body)
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.recs[rec.Key]; ok {
		m.st.LiveBytes -= int64(len(old.Body))
	}
	m.recs[rec.Key] = Record{Key: rec.Key, Kind: rec.Kind, Body: body}
	m.st.LiveBytes += int64(len(body))
	m.st.Puts++
	return nil
}

// Get returns a copy of the record under key.
func (m *MemStore) Get(key string) (Record, bool, error) {
	m.mu.Lock()
	m.st.Gets++
	rec, ok := m.recs[key]
	if ok {
		m.st.Hits++
	}
	m.mu.Unlock()
	if !ok {
		return Record{}, false, nil
	}
	body := make([]byte, len(rec.Body))
	copy(body, rec.Body)
	return Record{Key: rec.Key, Kind: rec.Kind, Body: body}, true, nil
}

// Scan visits records whose key starts with prefix, in sorted key order.
// The callback runs outside the store lock, on its own copy of each
// record snapshotted at call time.
func (m *MemStore) Scan(prefix string, fn func(Record) error) error {
	m.mu.RLock()
	recs := make([]Record, 0, len(m.recs))
	for k, rec := range m.recs {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		body := make([]byte, len(rec.Body))
		copy(body, rec.Body)
		recs = append(recs, Record{Key: rec.Key, Kind: rec.Kind, Body: body})
	}
	m.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports the store's counters.
func (m *MemStore) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := m.st
	st.Keys = len(m.recs)
	return st
}

// Close releases the store (a no-op for memory).
func (m *MemStore) Close() error { return nil }
