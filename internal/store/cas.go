package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CASStore is the content-addressed ResultStore: bodies live once per
// distinct SHA-256 under objects/<aa>/<hash>, and an append-only
// index.ndjson log maps keys to hashes. Identical results written under
// different keys — the same design point computed by two sweep jobs,
// say — share one object on disk; the index line is the only per-key
// cost. The determinism of the pipeline makes this dedup exact: equal
// coordinates produce byte-equal bodies, so hash equality is result
// equality.
//
// Crash safety: objects are written to a temp file and renamed into
// place (readers never see a partial object), and the index log reopens
// with the torn-trailing-line truncation discipline of
// dse.OpenCheckpoint. An index line whose object is missing (a crash
// between index append and a later reread, or manual tampering) fails
// the Get that touches it, not the open.
type CASStore struct {
	dir string

	mu     sync.Mutex
	index  map[string]casEntry // key -> entry
	refs   map[string]int      // hash -> live key count
	f      *os.File
	w      *bufio.Writer
	st     Stats
	closed bool
}

// casEntry is one index mapping.
type casEntry struct {
	Key    string `json:"key"`
	Kind   string `json:"kind,omitempty"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// indexHeader is the first line of the index log.
type indexHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

const (
	casFormat  = "ppatc-store-cas"
	casVersion = 1
)

// OpenCASStore opens (or creates) the content-addressed store at dir.
func OpenCASStore(dir string) (*CASStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: cas dir: %w", err)
	}
	s := &CASStore{
		dir:   dir,
		index: make(map[string]casEntry),
		refs:  make(map[string]int),
	}
	path := s.indexPath()
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err), err == nil && len(data) == 0:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		s.f, s.w = f, bufio.NewWriter(f)
		hdr, err := json.Marshal(indexHeader{Format: casFormat, Version: casVersion})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := s.w.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
		if err := s.w.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		return s, nil
	case err != nil:
		return nil, err
	}

	lines := bytes.Split(data, []byte("\n"))
	var hdr indexHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("store: cas index %s: bad header: %w", path, err)
	}
	if hdr.Format != casFormat || hdr.Version != casVersion {
		return nil, fmt.Errorf("store: cas index %s: format %q v%d, want %q v%d",
			path, hdr.Format, hdr.Version, casFormat, casVersion)
	}
	validEnd := len(data)
	for i, line := range lines[1:] {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		var e casEntry
		if err := json.Unmarshal(trimmed, &e); err != nil || e.Key == "" || len(e.SHA256) != 64 {
			if i == len(lines)-2 { // torn trailing line: crash mid-append
				validEnd = len(data) - len(line)
				break
			}
			if err == nil {
				err = fmt.Errorf("missing key or hash")
			}
			return nil, fmt.Errorf("store: cas index %s: corrupt line %d: %w", path, i+2, err)
		}
		s.adoptLocked(e)
	}
	if validEnd < len(data) {
		if err := os.Truncate(path, int64(validEnd)); err != nil {
			return nil, fmt.Errorf("store: cas index %s: dropping torn tail: %w", path, err)
		}
		data = data[:validEnd]
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.f, s.w = f, bufio.NewWriter(f)
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if _, err := s.w.WriteString("\n"); err != nil {
			f.Close()
			return nil, err
		}
		if err := s.w.Flush(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *CASStore) indexPath() string { return filepath.Join(s.dir, "index.ndjson") }

func (s *CASStore) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash)
}

// adoptLocked applies one index entry to the in-memory maps (later
// entries for a key win, replaying the log's append order).
func (s *CASStore) adoptLocked(e casEntry) {
	if old, ok := s.index[e.Key]; ok {
		s.refs[old.SHA256]--
		if s.refs[old.SHA256] == 0 {
			delete(s.refs, old.SHA256)
		}
		s.st.LiveBytes -= int64(old.Bytes)
	}
	s.index[e.Key] = e
	s.refs[e.SHA256]++
	s.st.LiveBytes += int64(e.Bytes)
}

// Put hashes the body, writes the object if it is new (temp file +
// rename, so readers never observe a partial object), and appends the
// key→hash mapping to the index log.
func (s *CASStore) Put(rec Record) error {
	if err := validate(rec); err != nil {
		return err
	}
	sum := sha256.Sum256(rec.Body)
	hash := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put on closed store")
	}
	_, known := s.refs[hash]
	if !known {
		// The hash may still exist on disk from an earlier process whose
		// index references were all overwritten; rewriting is harmless
		// (same content) but skippable.
		if _, err := os.Stat(s.objectPath(hash)); err == nil {
			known = true
		}
	}
	if !known {
		if err := s.writeObject(hash, rec.Body); err != nil {
			return err
		}
	} else {
		s.st.Dedups++
	}
	e := casEntry{Key: rec.Key, Kind: rec.Kind, SHA256: hash, Bytes: len(rec.Body)}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.adoptLocked(e)
	s.st.Puts++
	return nil
}

// writeObject lands the body at its content address via temp + rename.
func (s *CASStore) writeObject(hash string, body []byte) error {
	path := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "obj-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get resolves key through the index and reads its object.
func (s *CASStore) Get(key string) (Record, bool, error) {
	s.mu.Lock()
	s.st.Gets++
	e, ok := s.index[key]
	if ok {
		s.st.Hits++
	}
	s.mu.Unlock()
	if !ok {
		return Record{}, false, nil
	}
	body, err := os.ReadFile(s.objectPath(e.SHA256))
	if err != nil {
		return Record{}, false, fmt.Errorf("store: object %s for key %q: %w", e.SHA256[:12], key, err)
	}
	return Record{Key: e.Key, Kind: e.Kind, Body: body}, true, nil
}

// Scan visits live records whose key starts with prefix, in sorted key
// order, reading each object outside the lock.
func (s *CASStore) Scan(prefix string, fn func(Record) error) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		rec, ok, err := s.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports the store's counters. Segments counts distinct live
// objects (the measure of how much dedup saved).
func (s *CASStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Keys = len(s.index)
	st.Segments = len(s.refs)
	return st
}

// Close flushes and closes the index log.
func (s *CASStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
