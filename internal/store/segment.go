package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SegmentStore is the on-disk ResultStore: records append to NDJSON
// segment files (seg-00000001.ndjson, …) under one directory, with an
// in-memory index mapping each live key to its newest on-disk record.
//
// Durability discipline follows dse.OpenCheckpoint: every Put flushes
// its line, reopen tolerates a torn trailing line in the youngest
// segment (a crash mid-append) by truncating it away, and a bad line
// anywhere else reports corruption instead of guessing. The active
// segment rotates once it exceeds MaxSegmentBytes; overwritten records
// become dead bytes, and once they outweigh the live ones a compaction
// rewrites the live set into fresh segments and deletes the old files.
// Compacted copies land in strictly newer segments, so a crash at any
// point of a compaction leaves a directory that reopens correctly
// (newest record wins).
type SegmentStore struct {
	dir string
	max int64

	mu     sync.Mutex
	index  map[string]segLoc
	files  map[int]*os.File // read handles, by segment id
	ids    []int            // sorted live segment ids; last is active
	active *os.File         // append handle of the active segment
	w      *bufio.Writer
	size   int64 // active segment's byte size
	st     Stats
	closed bool
}

// segLoc locates one record: segment id, byte offset, line length.
type segLoc struct {
	seg  int
	off  int64
	n    int
	body int // body length, for Stats without a read
}

// segmentHeader is the first line of every segment file.
type segmentHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

const (
	segmentFormat  = "ppatc-store-segment"
	segmentVersion = 1
	// DefaultMaxSegmentBytes rotates the active segment at 8 MiB —
	// small enough that compaction rewrites stay cheap, large enough
	// that a busy daemon doesn't shed files every minute.
	DefaultMaxSegmentBytes = 8 << 20
)

// OpenSegmentStore opens (or creates) the segment store rooted at dir.
// maxSegmentBytes caps one segment file (<=0 takes the default).
func OpenSegmentStore(dir string, maxSegmentBytes int64) (*SegmentStore, error) {
	if maxSegmentBytes <= 0 {
		maxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: segment dir: %w", err)
	}
	s := &SegmentStore{
		dir:   dir,
		max:   maxSegmentBytes,
		index: make(map[string]segLoc),
		files: make(map[int]*os.File),
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if err != nil {
		return nil, err
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.ndjson", &id); err != nil {
			return nil, fmt.Errorf("store: alien file %s in segment dir", name)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if err := s.loadSegment(id, i == len(ids)-1); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	s.ids = ids
	if len(ids) == 0 {
		if err := s.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		if err := s.reopenActiveLocked(ids[len(ids)-1]); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	return s, nil
}

// segPath names a segment file.
func (s *SegmentStore) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.ndjson", id))
}

// loadSegment indexes one existing segment. Only the youngest segment
// (last=true) may carry a torn trailing line, which is truncated away —
// the same crash-tolerance contract as dse.OpenCheckpoint.
func (s *SegmentStore) loadSegment(id int, last bool) error {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		// A crash between create and the header flush: an empty segment
		// holds nothing, so treat it as fresh (the header is rewritten
		// when it becomes active again).
		if last {
			return nil
		}
		return fmt.Errorf("store: segment %s: empty non-final segment", path)
	}
	lines := bytes.Split(data, []byte("\n"))
	var hdr segmentHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return fmt.Errorf("store: segment %s: bad header: %w", path, err)
	}
	if hdr.Format != segmentFormat || hdr.Version != segmentVersion {
		return fmt.Errorf("store: segment %s: format %q v%d, want %q v%d",
			path, hdr.Format, hdr.Version, segmentFormat, segmentVersion)
	}
	off := int64(len(lines[0]) + 1)
	validEnd := int64(len(data))
	for i, line := range lines[1:] {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			off += int64(len(line) + 1)
			continue
		}
		var rec Record
		if err := json.Unmarshal(trimmed, &rec); err != nil || rec.Key == "" {
			// A torn trailing line of the youngest segment is a crash
			// mid-append: drop it. Anywhere else it is corruption.
			if last && i == len(lines)-2 {
				validEnd = int64(len(data) - len(line))
				break
			}
			if err == nil {
				err = fmt.Errorf("missing key")
			}
			return fmt.Errorf("store: segment %s: corrupt line %d: %w", path, i+2, err)
		}
		loc := segLoc{seg: id, off: off, n: len(line), body: len(rec.Body)}
		if old, ok := s.index[rec.Key]; ok {
			s.st.DeadBytes += int64(old.n)
			s.st.LiveBytes -= int64(old.body)
		}
		s.index[rec.Key] = loc
		s.st.LiveBytes += int64(len(rec.Body))
		off += int64(len(line) + 1)
	}
	if validEnd < int64(len(data)) {
		if err := os.Truncate(path, validEnd); err != nil {
			return fmt.Errorf("store: segment %s: dropping torn tail: %w", path, err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	s.files[id] = f
	return nil
}

// reopenActiveLocked opens the youngest segment for append, newline-
// terminating it first if a flush cut exactly at a record boundary.
func (s *SegmentStore) reopenActiveLocked(id int) error {
	path := s.segPath(id)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.active, s.w, s.size = f, bufio.NewWriter(f), info.Size()
	if s.files[id] == nil {
		// An empty recovered segment was skipped by loadSegment and has
		// no read handle yet.
		rf, err := os.Open(path)
		if err != nil {
			return err
		}
		s.files[id] = rf
	}
	if s.size == 0 {
		// Empty file recovered above: give it its header.
		return s.writeHeaderLocked()
	}
	tail := make([]byte, 1)
	if rf := s.files[id]; rf != nil {
		if _, err := rf.ReadAt(tail, s.size-1); err == nil && tail[0] != '\n' {
			if _, err := s.w.WriteString("\n"); err != nil {
				return err
			}
			s.size++
			return s.w.Flush()
		}
	}
	return nil
}

// newSegmentLocked seals the current active segment (if any) and starts
// segment id.
func (s *SegmentStore) newSegmentLocked(id int) error {
	if s.active != nil {
		if err := s.w.Flush(); err != nil {
			return err
		}
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	path := s.segPath(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	rf, err := os.Open(path)
	if err != nil {
		f.Close()
		return err
	}
	s.active, s.w, s.size = f, bufio.NewWriter(f), 0
	s.files[id] = rf
	s.ids = append(s.ids, id)
	return s.writeHeaderLocked()
}

func (s *SegmentStore) writeHeaderLocked() error {
	hdr, err := json.Marshal(segmentHeader{Format: segmentFormat, Version: segmentVersion})
	if err != nil {
		return err
	}
	if _, err := s.w.Write(append(hdr, '\n')); err != nil {
		return err
	}
	s.size += int64(len(hdr) + 1)
	return s.w.Flush()
}

// Put appends the record to the active segment (rotating first when
// full), flushes it durable, and repoints the index. Overwritten
// records become dead bytes; when they outweigh the live ones the store
// compacts in place.
func (s *SegmentStore) Put(rec Record) error {
	if err := validate(rec); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put on closed store")
	}
	if s.size+int64(len(line))+1 > s.max && s.size > 0 {
		if err := s.newSegmentLocked(s.ids[len(s.ids)-1] + 1); err != nil {
			return err
		}
	}
	id := s.ids[len(s.ids)-1]
	loc := segLoc{seg: id, off: s.size, n: len(line), body: len(rec.Body)}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	s.size += int64(len(line) + 1)
	if old, ok := s.index[rec.Key]; ok {
		s.st.DeadBytes += int64(old.n)
		s.st.LiveBytes -= int64(old.body)
	}
	s.index[rec.Key] = loc
	s.st.LiveBytes += int64(len(rec.Body))
	s.st.Puts++
	if s.st.DeadBytes > s.st.LiveBytes && s.st.DeadBytes > s.max/4 {
		return s.compactLocked()
	}
	return nil
}

// Get reads the record under key from its segment.
func (s *SegmentStore) Get(key string) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Gets++
	loc, ok := s.index[key]
	if !ok {
		return Record{}, false, nil
	}
	rec, err := s.readLocked(loc)
	if err != nil {
		return Record{}, false, err
	}
	s.st.Hits++
	return rec, true, nil
}

func (s *SegmentStore) readLocked(loc segLoc) (Record, error) {
	f := s.files[loc.seg]
	if f == nil {
		return Record{}, fmt.Errorf("store: segment %d vanished", loc.seg)
	}
	// The active segment's reads must see its latest flushed write.
	if s.active != nil && loc.seg == s.ids[len(s.ids)-1] {
		if err := s.w.Flush(); err != nil {
			return Record{}, err
		}
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return Record{}, fmt.Errorf("store: segment %d read: %w", loc.seg, err)
	}
	var rec Record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return Record{}, fmt.Errorf("store: segment %d offset %d: %w", loc.seg, loc.off, err)
	}
	return rec, nil
}

// Scan visits live records whose key starts with prefix, in sorted key
// order. The lock is held across the walk: scans are boot-time and
// operator paths, not hot ones.
func (s *SegmentStore) Scan(prefix string, fn func(Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec, err := s.readLocked(s.index[k])
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites the live record set into fresh segments and
// deletes the old files. New segments have strictly larger ids, so a
// crash mid-compaction reopens to a consistent (if larger) store:
// duplicate records resolve newest-wins, exactly as overwrites do.
func (s *SegmentStore) compactLocked() error {
	keys := make([]string, 0, len(s.index))
	oldLoc := make(map[string]segLoc, len(s.index))
	for k, loc := range s.index {
		keys = append(keys, k)
		oldLoc[k] = loc
	}
	sort.Strings(keys)
	oldIDs := append([]int(nil), s.ids...)
	nextID := 1
	if len(oldIDs) > 0 {
		nextID = oldIDs[len(oldIDs)-1] + 1
	}

	// Write every live record into the new segment chain. Old segments'
	// read handles stay open until the copy completes.
	s.ids = s.ids[:0]
	if err := s.newSegmentLocked(nextID); err != nil {
		return err
	}
	for _, k := range keys {
		rec, err := s.readLocked(oldLoc[k])
		if err != nil {
			return err
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if s.size+int64(len(line))+1 > s.max && s.size > 0 {
			if err := s.newSegmentLocked(s.ids[len(s.ids)-1] + 1); err != nil {
				return err
			}
		}
		id := s.ids[len(s.ids)-1]
		loc := segLoc{seg: id, off: s.size, n: len(line), body: len(rec.Body)}
		if _, err := s.w.Write(append(line, '\n')); err != nil {
			return err
		}
		s.size += int64(len(line) + 1)
		s.index[k] = loc
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	// Only now drop the old segments: every live record is durable in
	// the new chain.
	for _, id := range oldIDs {
		if f := s.files[id]; f != nil {
			f.Close()
			delete(s.files, id)
		}
		if err := os.Remove(s.segPath(id)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	s.st.DeadBytes = 0
	s.st.Compactions++
	return nil
}

// Stats reports the store's counters.
func (s *SegmentStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Keys = len(s.index)
	st.Segments = len(s.ids)
	return st
}

// Close flushes and closes every file handle.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *SegmentStore) closeLocked() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.active != nil {
		if err := s.w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := s.active.Close(); err != nil && first == nil {
			first = err
		}
		s.active = nil
	}
	for id, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, id)
	}
	return first
}
