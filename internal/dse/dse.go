// Package dse is the design-space-exploration engine: it turns the
// paper's one-point PPAtC evaluation into first-class parallel sweeps.
// A declarative SweepSpec names axes over the design space — system,
// workload, energy grid, clock, lifetime, yield, CI_use — each given as
// an explicit list, a linspace/logspace range, or a sampling
// distribution for Monte Carlo axes. Expand turns the spec into a
// deterministic evaluation plan (the cross product of the axes, Monte
// Carlo axes jointly sampled per replica from the root seed), and Run
// executes the plan on a context-cancellable worker pool whose results
// are byte-identical at any worker count.
//
// On top of the raw results sit the paper's design-space analyses,
// generalized: Pareto-frontier extraction over user-chosen objectives
// (Fig. 6a's delay-vs-carbon isoline as a frontier), per-axis
// sensitivity summaries (Fig. 6b as a table), and win-probability
// aggregation paired across the system axis (the Monte Carlo companion
// of tcdp.MonteCarlo).
//
// Long sweeps checkpoint completed points to disk (Checkpoint), so a
// cancelled CLI run or a restarted ppatcd daemon resumes instead of
// recomputing.
package dse
