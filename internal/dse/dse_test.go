package dse

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"ppatc/internal/obs"
)

// testSpec is a small but multi-axis sweep: 2 systems × 1 workload ×
// 2 grids × 2 lifetimes = 8 points, all sharing 4 core evaluations of
// the cheapest kernel.
func testSpec() *Spec {
	return &Spec{
		Name: "unit",
		Seed: 7,
		Axes: Axes{
			System:         []string{"si", "m3d"},
			Workload:       []string{"huff"},
			Grid:           &GridAxis{Names: []string{"US", "Coal"}},
			LifetimeMonths: &NumericAxis{Values: []float64{12, 24}},
		},
	}
}

// mcSpec adds Monte Carlo axes: the paper's Fig. 6b uncertainty model.
func mcSpec(samples int) *Spec {
	return &Spec{
		Name:    "unit-mc",
		Seed:    11,
		Samples: samples,
		Axes: Axes{
			System:           []string{"si", "m3d"},
			Workload:         []string{"huff"},
			LifetimeMonths:   &NumericAxis{Dist: &DistSpec{Kind: "uniform", Lo: 18, Hi: 30}},
			M3DYield:         &NumericAxis{Dist: &DistSpec{Kind: "uniform", Lo: 0.3, Hi: 0.9}},
			M3DEmbodiedScale: &NumericAxis{Dist: &DistSpec{Kind: "triangular", Lo: 0.8, Mode: 1, Hi: 1.2}},
			CIUseScale:       &NumericAxis{Dist: &DistSpec{Kind: "loguniform", Lo: 0.5, Hi: 2}},
		},
	}
}

func ndjson(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, results); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	return buf.Bytes()
}

// TestDeterminism is the core engine contract: the same spec and seed
// produce byte-identical NDJSON whether the sweep runs on one worker or
// many.
func TestDeterminism(t *testing.T) {
	for _, spec := range []*Spec{testSpec(), mcSpec(8)} {
		r1, err := Run(context.Background(), spec, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s at 1 worker: %v", spec.Name, err)
		}
		r8, err := Run(context.Background(), spec, Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s at 8 workers: %v", spec.Name, err)
		}
		if got, want := ndjson(t, r8), ndjson(t, r1); !bytes.Equal(got, want) {
			t.Errorf("%s: NDJSON differs between 1 and 8 workers", spec.Name)
		}
	}
}

// TestOnResultOrder checks the streaming hook fires in plan order even
// when completions land out of order.
func TestOnResultOrder(t *testing.T) {
	var seen []int
	_, err := Run(context.Background(), testSpec(), Options{
		Workers:  4,
		OnResult: func(r Result) error { seen = append(seen, r.Index); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("streamed %d of 8 points", len(seen))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("streamed order %v, want ascending", seen)
		}
	}
}

// TestRunPlanRange is the distributed-sweep shard contract: running a
// plan as contiguous ranges and concatenating the outputs is
// byte-identical to one full run, at any shard split.
func TestRunPlanRange(t *testing.T) {
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunPlan(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := ndjson(t, full)
	for _, size := range []int{1, 3, 5, 8} {
		var merged []Result
		for lo := 0; lo < len(plan.Points); lo += size {
			hi := lo + size
			if hi > len(plan.Points) {
				hi = len(plan.Points)
			}
			rs, err := RunPlanRange(context.Background(), plan, lo, hi, Options{Workers: 3})
			if err != nil {
				t.Fatalf("range [%d, %d): %v", lo, hi, err)
			}
			if len(rs) != hi-lo {
				t.Fatalf("range [%d, %d) returned %d results", lo, hi, len(rs))
			}
			for i, r := range rs {
				if r.Index != lo+i {
					t.Fatalf("range [%d, %d) result %d has index %d", lo, hi, i, r.Index)
				}
			}
			merged = append(merged, rs...)
		}
		if got := ndjson(t, merged); !bytes.Equal(got, want) {
			t.Errorf("shard size %d: merged NDJSON differs from full run", size)
		}
	}
	if _, err := RunPlanRange(context.Background(), plan, 2, 1, Options{}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RunPlanRange(context.Background(), plan, 0, len(plan.Points)+1, Options{}); err == nil {
		t.Error("out-of-bounds range accepted")
	}
}

// TestRunPlanRangeCompleted checks checkpointed results use absolute
// plan indices: in-range entries are emitted verbatim without
// re-evaluation, out-of-range entries are ignored.
func TestRunPlanRangeCompleted(t *testing.T) {
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunPlan(context.Background(), plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctr := obs.NewRegistry().Counter("test_evals", "test")
	rs, err := RunPlanRange(context.Background(), plan, 2, 6, Options{
		Completed:   map[int]Result{3: full[3], 7: full[7]},
		EvalCounter: ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ndjson(t, rs); !bytes.Equal(got, ndjson(t, full[2:6])) {
		t.Error("range with completed points differs from full-run slice")
	}
	if got := ctr.Load(); got != 3 {
		t.Errorf("evaluated %d points in [2, 6) with one checkpointed, want 3", got)
	}
}

// TestRunResults sanity-checks the physics wiring: coal fab carbon above
// US, longer lifetime means more total carbon, exec time constant across
// carbon axes.
func TestRunResults(t *testing.T) {
	results, err := Run(context.Background(), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Result{}
	for _, r := range results {
		if !r.Feasible {
			t.Fatalf("point %d infeasible: %s", r.Index, r.Error)
		}
		if r.TCG <= 0 || r.ExecTimeS <= 0 || r.Yield <= 0 {
			t.Fatalf("point %d has empty metrics: %+v", r.Index, r)
		}
		byKey[fmt.Sprintf("%s|%s|%g", r.System, r.Grid, r.LifetimeMonths)] = r
	}
	for _, sys := range []string{"all-Si", "M3D IGZO/CNFET/Si"} {
		us := byKey[sys+"|US|24"]
		coal := byKey[sys+"|Coal|24"]
		if coal.TCG <= us.TCG {
			t.Errorf("%s: coal-fab TC %.1f not above US-fab %.1f", sys, coal.TCG, us.TCG)
		}
		if coal.ExecTimeS != us.ExecTimeS {
			t.Errorf("%s: exec time moved with fab grid", sys)
		}
		short := byKey[sys+"|US|12"]
		if us.TCG <= short.TCG {
			t.Errorf("%s: 24-month TC %.1f not above 12-month %.1f", sys, us.TCG, short.TCG)
		}
	}
}

// TestYieldOverrideExact checks the Eq. 5 re-amortization shortcut
// against first principles: embodied-per-good-die scales as Y/Y'.
func TestYieldOverrideExact(t *testing.T) {
	base := &Spec{
		Axes: Axes{System: []string{"m3d"}, Workload: []string{"huff"}},
	}
	baseRes, err := Run(context.Background(), base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	over := &Spec{
		Axes: Axes{
			System:   []string{"m3d"},
			Workload: []string{"huff"},
			M3DYield: &NumericAxis{Values: []float64{0.5}},
		},
	}
	overRes, err := Run(context.Background(), over, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, o := baseRes[0], overRes[0]
	want := b.EmbodiedGoodDieG * b.Yield / 0.5
	if rel := math.Abs(o.EmbodiedGoodDieG-want) / want; rel > 1e-12 {
		t.Errorf("overridden embodied %.6g, want %.6g (rel err %g)", o.EmbodiedGoodDieG, want, rel)
	}
	if o.Yield != 0.5 {
		t.Errorf("yield %v, want 0.5", o.Yield)
	}
}

// TestResume cancels a sweep mid-run, resumes from the checkpoint, and
// verifies via the obs counter that no point was evaluated twice.
func TestResume(t *testing.T) {
	spec := testSpec()
	plan, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var c1 obs.Counter
	var recorded atomic.Int64
	_, err = RunPlan(ctx, plan, Options{
		Workers:     2,
		EvalCounter: &c1,
		OnComplete: func(r Result) error {
			if err := cp.Record(r); err != nil {
				return err
			}
			if recorded.Add(1) == 3 {
				cancel() // die mid-sweep
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("first run finished despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: %v, want context.Canceled", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if c1.Load() == 0 || c1.Load() >= int64(len(plan.Points)) {
		t.Fatalf("first run recorded %d points, want strictly between 0 and %d", c1.Load(), len(plan.Points))
	}

	// Resume: reopen the checkpoint, feed its results back in.
	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if len(cp2.Completed) != int(c1.Load()) {
		t.Fatalf("checkpoint recovered %d points, counter says %d", len(cp2.Completed), c1.Load())
	}
	var c2 obs.Counter
	results, err := RunPlan(context.Background(), plan, Options{
		Workers:     2,
		Completed:   cp2.Completed,
		EvalCounter: &c2,
		OnComplete:  cp2.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.Load() + c2.Load(); got != int64(len(plan.Points)) {
		t.Errorf("evaluations across runs = %d + %d = %d, want exactly %d (no point twice)",
			c1.Load(), c2.Load(), got, len(plan.Points))
	}

	// The resumed output must equal an uninterrupted run.
	clean, err := RunPlan(context.Background(), plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ndjson(t, results), ndjson(t, clean)) {
		t.Error("resumed results differ from an uninterrupted run")
	}
}

// TestCheckpointRejectsOtherSpec ensures a checkpoint can't resume a
// different sweep.
func TestCheckpointRejectsOtherSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	planA, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, planA)
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	other := testSpec()
	other.Seed = 99
	planB, err := Expand(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, planB); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("got %v, want different-spec rejection", err)
	}
}

// TestParetoProperty checks the frontier definition on random point
// clouds: every non-frontier point is dominated by some frontier point,
// and no frontier point dominates another.
func TestParetoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objs := []Objective{{Metric: "exec_time_s"}, {Metric: "tc_g", Maximize: false}}
	for trial := 0; trial < 20; trial++ {
		results := make([]Result, 60)
		for i := range results {
			results[i] = Result{
				Index:     i,
				Feasible:  rng.Float64() > 0.1,
				ExecTimeS: rng.Float64(),
				TCG:       rng.Float64(),
			}
		}
		front, err := Frontier(results, objs)
		if err != nil {
			t.Fatal(err)
		}
		inFront := map[int]bool{}
		for _, f := range front {
			inFront[f.Index] = true
		}
		score := func(r Result) []float64 { return []float64{r.ExecTimeS, r.TCG} }
		for i, a := range front {
			for k, b := range front {
				if i != k && dominates(score(a), score(b)) {
					t.Fatalf("trial %d: frontier point %d dominates frontier point %d", trial, a.Index, b.Index)
				}
			}
		}
		for _, r := range results {
			if !r.Feasible {
				if inFront[r.Index] {
					t.Fatalf("trial %d: infeasible point %d on frontier", trial, r.Index)
				}
				continue
			}
			if inFront[r.Index] {
				continue
			}
			dominated := false
			for _, f := range front {
				if dominates(score(f), score(r)) {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("trial %d: off-frontier point %d not dominated by any frontier point", trial, r.Index)
			}
		}
	}
}

// TestWinnersPairing checks win probabilities on the MC spec: paired
// replicas mean the per-system win counts partition the groups.
func TestWinnersPairing(t *testing.T) {
	results, err := Run(context.Background(), mcSpec(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Winners(results, Objective{Metric: "tc_g"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Groups != 16 {
		t.Fatalf("got %d groups, want 16 (one per replica)", w.Groups)
	}
	total := w.Ties
	for _, n := range w.Wins {
		total += n
	}
	if total != w.Groups {
		t.Errorf("wins+ties = %d, want %d", total, w.Groups)
	}
	var psum float64
	for _, p := range w.Probability {
		if p < 0 || p > 1 {
			t.Errorf("probability %v out of range", p)
		}
		psum += p
	}
	if w.Ties == 0 && math.Abs(psum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v, want 1", psum)
	}
}

// TestSensitivityRanks checks the analysis surfaces the axes that
// actually vary, and that grid intensity correlates positively with TC.
func TestSensitivityRanks(t *testing.T) {
	results, err := Run(context.Background(), testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sens, err := Sensitivity(results, "tc_g")
	if err != nil {
		t.Fatal(err)
	}
	axes := map[string]AxisSensitivity{}
	for _, s := range sens {
		axes[s.Axis] = s
	}
	for _, want := range []string{"system", "grid", "lifetime_months"} {
		if _, ok := axes[want]; !ok {
			t.Errorf("axis %s missing from sensitivity (got %v)", want, axes)
		}
	}
	if g := axes["grid"]; g.Corr <= 0 {
		t.Errorf("grid intensity vs TC correlation %v, want positive", g.Corr)
	}
	if _, ok := axes["workload"]; ok {
		t.Error("fixed workload axis should be omitted")
	}
}

// TestSpecHashStability: a spec and its fully spelled-out normalization
// share a hash; changing the seed changes it.
func TestSpecHashStability(t *testing.T) {
	short := &Spec{Axes: Axes{Workload: []string{"huff"}}}
	long := &Spec{
		UseGrid: "US",
		Axes: Axes{
			System:         []string{"all-Si", "M3D IGZO/CNFET/Si"},
			Workload:       []string{"huff"},
			Grid:           &GridAxis{Names: []string{"US"}},
			LifetimeMonths: &NumericAxis{Values: []float64{24}},
		},
		Objectives: []Objective{{Metric: "exec_time_s"}, {Metric: "tc_g"}},
	}
	h1, err := short.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := long.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("shorthand and spelled-out specs hash differently:\n%s\n%s", h1, h2)
	}
	seeded := *short
	seeded.Seed = 1
	h3, err := seeded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("seed change did not change the hash")
	}
}

// TestSpecValidation exercises the rejection paths.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"axes": {"sistem": ["si"]}}`, "unknown field"},
		{"unknown system", `{"axes": {"system": ["cmos"]}}`, "unknown system"},
		{"unknown workload", `{"axes": {"workload": ["nope"]}}`, "unknown workload"},
		{"two forms", `{"axes": {"clock_mhz": {"values": [100], "linspace": {"lo": 1, "hi": 2, "n": 2}}}}`, "exactly one"},
		{"bad dist", `{"axes": {"ci_use_scale": {"dist": {"kind": "gaussian"}}}}`, "unknown distribution"},
		{"grid dist", `{"axes": {"grid": {"intensity": {"dist": {"kind": "uniform", "lo": 1, "hi": 2}}}}}`, "cannot be a distribution"},
		{"bad metric", `{"axes": {}, "objectives": [{"metric": "speed"}]}`, "unknown objective metric"},
		{"negative clock", `{"axes": {"clock_mhz": {"values": [-5]}}}`, "must be positive"},
		{"bad m3d yield", `{"axes": {"m3d_yield": {"values": [1.5]}}}`, "in (0, 1]"},
	}
	for _, c := range cases {
		_, err := ParseSpec(strings.NewReader(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestMaxPoints bounds job size.
func TestMaxPoints(t *testing.T) {
	_, err := Run(context.Background(), testSpec(), Options{MaxPoints: 4})
	if err == nil || !strings.Contains(err.Error(), "cap is 4") {
		t.Fatalf("got %v, want point-cap rejection", err)
	}
}

// TestInfeasibleClock: an absurd clock fails timing closure and comes
// back as an infeasible datum, not an error.
func TestInfeasibleClock(t *testing.T) {
	spec := &Spec{
		Axes: Axes{
			System:   []string{"si"},
			Workload: []string{"huff"},
			ClockMHz: &NumericAxis{Values: []float64{1e6}},
		},
	}
	results, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Feasible || results[0].Error == "" {
		t.Fatalf("1 THz point came back feasible: %+v", results[0])
	}
}
