package dse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Result is one evaluated point: the resolved axis coordinate echoed
// back, plus the PPAtC and carbon-efficiency metrics. The JSON encoding
// is one NDJSON line of `ppatc sweep` and GET /v1/sweeps/{id}/results;
// field order is fixed, so identical sweeps are byte-identical.
type Result struct {
	Index   int `json:"index"`
	Replica int `json:"replica,omitempty"`

	System           string   `json:"system"`
	Workload         string   `json:"workload"`
	Grid             string   `json:"grid"`
	GridGPerKWh      float64  `json:"grid_g_per_kwh"`
	ClockMHz         float64  `json:"clock_mhz"`
	LifetimeMonths   float64  `json:"lifetime_months"`
	CIUseScale       float64  `json:"ci_use_scale"`
	YieldD0          *float64 `json:"yield_d0,omitempty"`
	M3DYield         *float64 `json:"m3d_yield,omitempty"`
	M3DEmbodiedScale *float64 `json:"m3d_embodied_scale,omitempty"`

	// Feasible is false when the point fails timing closure (a sweep
	// datum, not an error) — its metrics are zero and Error explains.
	Feasible bool   `json:"feasible"`
	Error    string `json:"error,omitempty"`

	Cycles             uint64  `json:"cycles,omitempty"`
	ExecTimeS          float64 `json:"exec_time_s,omitempty"`
	OperationalPowerMW float64 `json:"operational_power_mw,omitempty"`
	TotalAreaMM2       float64 `json:"total_area_mm2,omitempty"`
	EmbodiedWaferKG    float64 `json:"embodied_per_wafer_kg,omitempty"`
	EmbodiedGoodDieG   float64 `json:"embodied_per_good_die_g,omitempty"`
	DiesPerWafer       int     `json:"dies_per_wafer,omitempty"`
	Yield              float64 `json:"yield,omitempty"`
	TCG                float64 `json:"tc_g,omitempty"`
	TCDPGS             float64 `json:"tcdp_gs,omitempty"`
}

// metricKeys maps every addressable metric to its accessor, in the order
// MetricKeys reports.
var metricKeys = []struct {
	key string
	get func(*Result) float64
}{
	{"exec_time_s", func(r *Result) float64 { return r.ExecTimeS }},
	{"operational_power_mw", func(r *Result) float64 { return r.OperationalPowerMW }},
	{"total_area_mm2", func(r *Result) float64 { return r.TotalAreaMM2 }},
	{"embodied_per_wafer_kg", func(r *Result) float64 { return r.EmbodiedWaferKG }},
	{"embodied_per_good_die_g", func(r *Result) float64 { return r.EmbodiedGoodDieG }},
	{"dies_per_wafer", func(r *Result) float64 { return float64(r.DiesPerWafer) }},
	{"yield", func(r *Result) float64 { return r.Yield }},
	{"tc_g", func(r *Result) float64 { return r.TCG }},
	{"tcdp_gs", func(r *Result) float64 { return r.TCDPGS }},
	{"cycles", func(r *Result) float64 { return float64(r.Cycles) }},
	{"clock_mhz", func(r *Result) float64 { return r.ClockMHz }},
	{"grid_g_per_kwh", func(r *Result) float64 { return r.GridGPerKWh }},
	{"lifetime_months", func(r *Result) float64 { return r.LifetimeMonths }},
}

// MetricKeys lists the metric names addressable by objectives,
// sensitivity and winner analyses.
func MetricKeys() []string {
	out := make([]string, len(metricKeys))
	for i, m := range metricKeys {
		out[i] = m.key
	}
	return out
}

// ValidMetric reports whether key names a Result metric.
func ValidMetric(key string) bool {
	for _, m := range metricKeys {
		if m.key == key {
			return true
		}
	}
	return false
}

// Metric reads one metric by key; ok is false for unknown keys.
func (r *Result) Metric(key string) (v float64, ok bool) {
	for _, m := range metricKeys {
		if m.key == key {
			return m.get(r), true
		}
	}
	return 0, false
}

// groupKey identifies the point's coordinate with the system axis erased
// — results sharing a key are paired observations of different systems.
func (r *Result) groupKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%g|%g|%g|%d", r.Workload, r.Grid, r.ClockMHz, r.LifetimeMonths, r.CIUseScale, r.Replica)
	for _, p := range []*float64{r.YieldD0, r.M3DYield, r.M3DEmbodiedScale} {
		if p == nil {
			sb.WriteString("|-")
		} else {
			fmt.Fprintf(&sb, "|%g", *p)
		}
	}
	return sb.String()
}

// MarshalLine encodes the result as one compact NDJSON line (with the
// trailing newline).
func (r *Result) MarshalLine() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteNDJSON streams results as newline-delimited JSON.
func WriteNDJSON(w io.Writer, results []Result) error {
	bw := bufio.NewWriter(w)
	for i := range results {
		line, err := results[i].MarshalLine()
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON decodes a stream written by WriteNDJSON.
func ReadNDJSON(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var res Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			return nil, fmt.Errorf("dse: bad NDJSON line: %w", err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
