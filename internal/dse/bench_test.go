package dse

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchSpec is a 120-point sweep where every point is a distinct core
// evaluation (the fab-grid intensity feeds the embodied-carbon stage, so
// the cache can't collapse them).
func benchSpec() *Spec {
	return &Spec{
		Name: "bench",
		Axes: Axes{
			System:   []string{"si"},
			Workload: []string{"huff"},
			Grid: &GridAxis{
				Intensity: &NumericAxis{Linspace: &Range{Lo: 20, Hi: 820, N: 120}},
			},
		},
	}
}

// BenchmarkSweep measures the worker pool's scaling: compare
// workers=1 against workers=N ns/op — the ratio should approach the
// core count for this embarrassingly parallel 120-point plan.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := Run(context.Background(), benchSpec(), Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 120 {
					b.Fatalf("got %d points", len(results))
				}
			}
		})
	}
}
