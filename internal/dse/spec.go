package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
)

// Spec declares a design-space sweep. Axes missing from the spec are held
// at the paper's case-study defaults (both systems, matmult-int, the US
// grid, the design clock, a 24-month lifetime). The JSON encoding of a
// Spec is the wire format of `ppatc sweep -spec` and POST /v1/sweeps.
type Spec struct {
	// Name labels the sweep in reports and job listings.
	Name string `json:"name,omitempty"`
	// Seed is the root seed every Monte Carlo draw derives from; two runs
	// of the same spec and seed produce identical plans and results.
	Seed int64 `json:"seed,omitempty"`
	// Samples is the number of Monte Carlo replicas when any axis is a
	// distribution (default 100). All distribution axes are sampled
	// jointly per replica, so replicas pair across list axes — the
	// pairing the win-probability analysis depends on.
	Samples int `json:"samples,omitempty"`
	// UseGrid names the grid supplying CI_use for the operational-carbon
	// terms (default "US", the paper's scenario). The grid axis, by
	// contrast, supplies CI_fab.
	UseGrid string `json:"use_grid,omitempty"`
	// Axes are the swept dimensions.
	Axes Axes `json:"axes"`
	// Objectives select the Pareto-frontier metrics (default execution
	// time vs. total carbon — the Fig. 6a trade-off).
	Objectives []Objective `json:"objectives,omitempty"`
}

// Axes names every sweepable dimension. Dimensions are crossed in
// declaration order, with Monte Carlo replicas innermost.
type Axes struct {
	// System lists design names ("si"/"m3d" shorthands or full names).
	// Default: both bundled systems.
	System []string `json:"system,omitempty"`
	// Workload lists bundled kernel names. Default: matmult-int.
	Workload []string `json:"workload,omitempty"`
	// Grid sweeps the fabrication grid (CI_fab). Default: US.
	Grid *GridAxis `json:"grid,omitempty"`
	// ClockMHz sweeps the system clock. Default: the design clock.
	ClockMHz *NumericAxis `json:"clock_mhz,omitempty"`
	// LifetimeMonths sweeps the system lifetime. Default: 24.
	LifetimeMonths *NumericAxis `json:"lifetime_months,omitempty"`
	// YieldD0 sweeps a Poisson defect density (defects/cm²) applied to
	// both designs in place of their baseline yield models.
	YieldD0 *NumericAxis `json:"yield_d0,omitempty"`
	// M3DYield overrides the M3D design's yield fraction only — the
	// paper's Fig. 6b yield uncertainty.
	M3DYield *NumericAxis `json:"m3d_yield,omitempty"`
	// M3DEmbodiedScale scales the M3D design's embodied carbon — the
	// paper's ±20% model-uncertainty band.
	M3DEmbodiedScale *NumericAxis `json:"m3d_embodied_scale,omitempty"`
	// CIUseScale scales the use-phase carbon intensity of both designs.
	CIUseScale *NumericAxis `json:"ci_use_scale,omitempty"`
}

// GridAxis enumerates fabrication grids: canonical names, user-defined
// grids, and/or a range of raw intensities.
type GridAxis struct {
	// Names are canonical grid names (US, Coal, Solar, Taiwan).
	Names []string `json:"names,omitempty"`
	// Custom are user-defined grids (promoted to carbon.CustomGrid).
	Custom []CustomGridSpec `json:"custom,omitempty"`
	// Intensity generates anonymous grids from raw intensities in
	// gCO2e/kWh (named "grid-<value>"). Distributions are not allowed
	// here; use explicit values or a range.
	Intensity *NumericAxis `json:"intensity,omitempty"`
}

// CustomGridSpec is the JSON form of a user-defined grid.
type CustomGridSpec struct {
	Name    string  `json:"name"`
	GPerKWh float64 `json:"intensity_g_per_kwh"`
}

// NumericAxis is one numeric dimension, given as exactly one of: an
// explicit value list, a linear or logarithmic range, or a sampling
// distribution (making the axis Monte Carlo).
type NumericAxis struct {
	Values   []float64 `json:"values,omitempty"`
	Linspace *Range    `json:"linspace,omitempty"`
	Logspace *Range    `json:"logspace,omitempty"`
	Dist     *DistSpec `json:"dist,omitempty"`
}

// Range is an inclusive [Lo, Hi] interval sampled at N points.
type Range struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	N  int     `json:"n"`
}

// DistSpec is the JSON form of a tcdp.Distribution.
type DistSpec struct {
	// Kind is point, uniform, loguniform, or triangular.
	Kind string `json:"kind"`
	// Lo and Hi bound uniform/loguniform/triangular draws.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Mode is the triangular mode.
	Mode float64 `json:"mode,omitempty"`
	// Value is the point-distribution constant.
	Value float64 `json:"value,omitempty"`
}

// Objective is one Pareto objective over a Result metric key.
type Objective struct {
	// Metric is a Result metric key (see MetricKeys).
	Metric string `json:"metric"`
	// Maximize inverts the default minimization.
	Maximize bool `json:"maximize,omitempty"`
}

// DefaultSamples is the Monte Carlo replica count when a spec has
// distribution axes but no explicit sample count.
const DefaultSamples = 100

// ParseSpec decodes and validates a JSON sweep spec.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("dse: bad sweep spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Distribution builds the tcdp.Distribution the spec names.
func (d *DistSpec) Distribution() (tcdp.Distribution, error) {
	switch d.Kind {
	case "point":
		return tcdp.Point(d.Value), nil
	case "uniform":
		if d.Lo > d.Hi {
			return nil, fmt.Errorf("dse: uniform needs lo <= hi (got [%g, %g])", d.Lo, d.Hi)
		}
		return tcdp.Uniform{Lo: d.Lo, Hi: d.Hi}, nil
	case "loguniform":
		if d.Lo <= 0 || d.Lo > d.Hi {
			return nil, fmt.Errorf("dse: loguniform needs 0 < lo <= hi (got [%g, %g])", d.Lo, d.Hi)
		}
		return tcdp.LogUniform{Lo: d.Lo, Hi: d.Hi}, nil
	case "triangular":
		if d.Lo > d.Mode || d.Mode > d.Hi {
			return nil, fmt.Errorf("dse: triangular needs lo <= mode <= hi (got %g, %g, %g)", d.Lo, d.Mode, d.Hi)
		}
		return tcdp.Triangular{Lo: d.Lo, Mode: d.Mode, Hi: d.Hi}, nil
	default:
		return nil, fmt.Errorf("dse: unknown distribution kind %q (valid: point, uniform, loguniform, triangular)", d.Kind)
	}
}

// values expands a non-distribution axis into its ordered level list.
func (a *NumericAxis) values() []float64 {
	switch {
	case a.Values != nil:
		return a.Values
	case a.Linspace != nil:
		return a.Linspace.linspace()
	case a.Logspace != nil:
		return a.Logspace.logspace()
	}
	return nil
}

func (r *Range) linspace() []float64 {
	if r.N == 1 {
		return []float64{r.Lo}
	}
	out := make([]float64, r.N)
	step := (r.Hi - r.Lo) / float64(r.N-1)
	for i := range out {
		out[i] = r.Lo + float64(i)*step
	}
	return out
}

func (r *Range) logspace() []float64 {
	if r.N == 1 {
		return []float64{r.Lo}
	}
	out := make([]float64, r.N)
	ratio := math.Log(r.Hi / r.Lo)
	for i := range out {
		out[i] = r.Lo * math.Exp(ratio*float64(i)/float64(r.N-1))
	}
	return out
}

// validate checks one numeric axis plus an axis-specific value predicate.
func (a *NumericAxis) validate(name string, check func(v float64) error) error {
	forms := 0
	if a.Values != nil {
		forms++
		if len(a.Values) == 0 {
			return fmt.Errorf("dse: axis %s: empty value list", name)
		}
	}
	if a.Linspace != nil {
		forms++
		if a.Linspace.N < 1 {
			return fmt.Errorf("dse: axis %s: linspace needs n >= 1", name)
		}
	}
	if a.Logspace != nil {
		forms++
		if a.Logspace.N < 1 {
			return fmt.Errorf("dse: axis %s: logspace needs n >= 1", name)
		}
		if a.Logspace.Lo <= 0 || a.Logspace.Hi <= 0 {
			return fmt.Errorf("dse: axis %s: logspace bounds must be positive", name)
		}
	}
	if a.Dist != nil {
		forms++
		if _, err := a.Dist.Distribution(); err != nil {
			return fmt.Errorf("axis %s: %w", name, err)
		}
	}
	if forms != 1 {
		return fmt.Errorf("dse: axis %s: give exactly one of values, linspace, logspace, dist", name)
	}
	if check != nil {
		for _, v := range a.values() {
			if err := check(v); err != nil {
				return fmt.Errorf("dse: axis %s: %w", name, err)
			}
		}
	}
	return nil
}

func positive(what string) func(float64) error {
	return func(v float64) error {
		if v <= 0 {
			return fmt.Errorf("%s must be positive (got %g)", what, v)
		}
		return nil
	}
}

// Validate checks the spec without expanding it.
func (s *Spec) Validate() error {
	if s.Samples < 0 {
		return errors.New("dse: samples must be non-negative")
	}
	for _, name := range s.Axes.System {
		if _, err := core.SystemByName(name); err != nil {
			return err
		}
	}
	for _, name := range s.Axes.Workload {
		if _, err := embench.ByName(name); err != nil {
			return err
		}
	}
	if s.UseGrid != "" {
		if _, err := carbon.GridByName(s.UseGrid); err != nil {
			return err
		}
	}
	if g := s.Axes.Grid; g != nil {
		if len(g.Names) == 0 && len(g.Custom) == 0 && g.Intensity == nil {
			return errors.New("dse: grid axis needs names, custom grids, or intensities")
		}
		for _, name := range g.Names {
			if _, err := carbon.GridByName(name); err != nil {
				return err
			}
		}
		for _, c := range g.Custom {
			if c.Name == "" {
				return errors.New("dse: custom grids must be named")
			}
			if c.GPerKWh <= 0 {
				return fmt.Errorf("dse: custom grid %s: intensity must be positive", c.Name)
			}
		}
		if g.Intensity != nil {
			if g.Intensity.Dist != nil {
				return errors.New("dse: grid intensity axis cannot be a distribution")
			}
			if err := g.Intensity.validate("grid.intensity", positive("grid intensity")); err != nil {
				return err
			}
		}
	}
	type axisCheck struct {
		name  string
		axis  *NumericAxis
		check func(float64) error
	}
	for _, a := range []axisCheck{
		{"clock_mhz", s.Axes.ClockMHz, positive("clock")},
		{"lifetime_months", s.Axes.LifetimeMonths, positive("lifetime")},
		{"yield_d0", s.Axes.YieldD0, func(v float64) error {
			if v < 0 {
				return fmt.Errorf("defect density must be non-negative (got %g)", v)
			}
			return nil
		}},
		{"m3d_yield", s.Axes.M3DYield, func(v float64) error {
			if v <= 0 || v > 1 {
				return fmt.Errorf("yield must be in (0, 1] (got %g)", v)
			}
			return nil
		}},
		{"m3d_embodied_scale", s.Axes.M3DEmbodiedScale, positive("embodied scale")},
		{"ci_use_scale", s.Axes.CIUseScale, positive("CI_use scale")},
	} {
		if a.axis == nil {
			continue
		}
		if err := a.axis.validate(a.name, a.check); err != nil {
			return err
		}
	}
	for _, o := range s.Objectives {
		if !ValidMetric(o.Metric) {
			return fmt.Errorf("dse: unknown objective metric %q (valid: %v)", o.Metric, MetricKeys())
		}
	}
	return nil
}

// normalized returns a copy with every default made explicit: resolved
// full system names, the default workload/grid/lifetime/objectives, and
// the replica count. The normalized spec is what Hash covers, so a spec
// and its fully spelled-out form resume each other's checkpoints.
func (s *Spec) normalized() (*Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := *s
	if len(n.Axes.System) == 0 {
		n.Axes.System = []string{"si", "m3d"}
	}
	resolved := make([]string, len(n.Axes.System))
	for i, name := range n.Axes.System {
		sys, err := core.SystemByName(name)
		if err != nil {
			return nil, err
		}
		resolved[i] = sys.Name
	}
	n.Axes.System = resolved
	if len(n.Axes.Workload) == 0 {
		n.Axes.Workload = []string{"matmult-int"}
	}
	if n.Axes.Grid == nil {
		n.Axes.Grid = &GridAxis{Names: []string{"US"}}
	}
	if n.UseGrid == "" {
		n.UseGrid = "US"
	}
	if n.Axes.LifetimeMonths == nil {
		n.Axes.LifetimeMonths = &NumericAxis{Values: []float64{24}}
	}
	if n.hasDistAxis() {
		if n.Samples == 0 {
			n.Samples = DefaultSamples
		}
	} else {
		n.Samples = 0
	}
	if len(n.Objectives) == 0 {
		n.Objectives = []Objective{{Metric: "exec_time_s"}, {Metric: "tc_g"}}
	}
	return &n, nil
}

func (s *Spec) hasDistAxis() bool {
	for _, a := range []*NumericAxis{
		s.Axes.ClockMHz, s.Axes.LifetimeMonths, s.Axes.YieldD0,
		s.Axes.M3DYield, s.Axes.M3DEmbodiedScale, s.Axes.CIUseScale,
	} {
		if a != nil && a.Dist != nil {
			return true
		}
	}
	return false
}

// Hash is the hex SHA-256 of the normalized spec's canonical JSON — the
// identity checkpoints and sweep jobs are keyed by.
func (s *Spec) Hash() (string, error) {
	n, err := s.normalized()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
