package dse

import (
	"encoding/json"
	"fmt"
	"strings"

	"ppatc/internal/store"
)

// This file bridges the sweep engine to the persistent result store:
// finished points write through under coordinate-identity keys, so a
// later job touching the same point — any job, not just a resume of the
// same spec — adopts the stored result instead of re-running the
// pipeline, and a finished sweep's full ordered result set persists
// under its job ID for replay after a daemon restart.

// Store record kinds written by the sweep engine.
const (
	KindPoint = "point"
	KindSweep = "sweep"
)

// PointKey is the canonical store key of one plan point: every input
// that determines the evaluation's output — the full coordinate plus
// the plan's use-phase grid — and nothing that doesn't (plan index,
// replica number, seed). Two points with equal keys produce byte-equal
// results, per the engine's determinism contract, which is what makes
// cross-job dedup sound.
func PointKey(useGrid string, useGPerKWh float64, p Point) string {
	var sb strings.Builder
	sb.Grow(128)
	fmt.Fprintf(&sb, "dsepoint|%s|%s|%s|%g|%g|%g|%g|%s|%g",
		p.System, p.Workload, p.Grid.Name, p.Grid.Intensity.GramsPerKilowattHour(),
		p.ClockMHz, p.LifetimeMonths, p.CIUseScale, useGrid, useGPerKWh)
	for _, v := range []*float64{p.YieldD0, p.M3DYield, p.M3DEmbodiedScale} {
		if v == nil {
			sb.WriteString("|-")
		} else {
			fmt.Fprintf(&sb, "|%g", *v)
		}
	}
	return sb.String()
}

// planPointKey keys a point against its own plan's use grid.
func planPointKey(plan *Plan, p Point) string {
	return PointKey(plan.UseGrid.Name, plan.UseGrid.Intensity.GramsPerKilowattHour(), p)
}

// SweepKey is the store key of a finished sweep's ordered result set.
func SweepKey(id string) string { return "sweep|" + id }

// StoredCompleted scans st for results of plan's points computed by any
// earlier job and returns them keyed by plan index — the same shape as
// Checkpoint.Completed, so the engine skips their evaluation. Adopted
// results are re-stamped with this plan's index and replica (the only
// job-relative fields). Store read errors skip the point rather than
// failing the sweep: the store is an accelerator, not a dependency.
func StoredCompleted(st store.ResultStore, plan *Plan) map[int]Result {
	if st == nil {
		return nil
	}
	var out map[int]Result
	for _, p := range plan.Points {
		rec, ok, err := st.Get(planPointKey(plan, p))
		if err != nil || !ok {
			continue
		}
		var r Result
		if err := json.Unmarshal(rec.Body, &r); err != nil {
			continue
		}
		r.Index = p.Index
		r.Replica = p.Replica
		if out == nil {
			out = make(map[int]Result)
		}
		out[p.Index] = r
	}
	return out
}

// PersistPoint writes one freshly evaluated result through to st under
// its coordinate key. Safe to call from Options.OnComplete (calls are
// serialized by the engine).
func PersistPoint(st store.ResultStore, plan *Plan, r Result) error {
	if st == nil {
		return nil
	}
	if r.Index < 0 || r.Index >= len(plan.Points) {
		return fmt.Errorf("dse: persist: index %d outside plan", r.Index)
	}
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return st.Put(store.Record{Key: planPointKey(plan, plan.Points[r.Index]), Kind: KindPoint, Body: body})
}

// PersistSweep stores a finished sweep's full result set (plan order)
// under SweepKey(id), as one JSON array record.
func PersistSweep(st store.ResultStore, id string, results []Result) error {
	if st == nil {
		return nil
	}
	body, err := json.Marshal(results)
	if err != nil {
		return err
	}
	return st.Put(store.Record{Key: SweepKey(id), Kind: KindSweep, Body: body})
}

// LoadSweep reads a stored sweep result set back. The NDJSON rendering
// of the returned slice (Result.MarshalLine per element) is
// byte-identical to the live stream that produced it: Result marshals
// with fixed field order and shortest-round-trip floats.
func LoadSweep(st store.ResultStore, id string) ([]Result, bool, error) {
	if st == nil {
		return nil, false, nil
	}
	rec, ok, err := st.Get(SweepKey(id))
	if err != nil || !ok {
		return nil, false, err
	}
	var results []Result
	if err := json.Unmarshal(rec.Body, &results); err != nil {
		return nil, false, fmt.Errorf("dse: stored sweep %s: %w", id, err)
	}
	return results, true, nil
}
