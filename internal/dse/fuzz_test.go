package dse

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpoint throws arbitrary checkpoint-file contents — torn
// tails, binary garbage, missing newlines — at OpenCheckpoint and
// checks the resume contract: opening either fails cleanly or yields a
// checkpoint that can record a point, close, and reopen with every
// recovered point intact. The seed corpus is the set of states the
// PR-4 hardening covered: zero-length files, header-only files,
// unterminated tails, torn trailing lines, and mid-file corruption.
func FuzzCheckpoint(f *testing.F) {
	plan, err := Expand(testSpec())
	if err != nil {
		f.Fatal(err)
	}
	hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, SpecSHA256: plan.Hash, Total: len(plan.Points)})
	if err != nil {
		f.Fatal(err)
	}
	line := func(r Result) []byte {
		b, err := r.MarshalLine()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	full := line(Result{Index: 1, System: "all-Si"})

	f.Add([]byte{})                                     // crash before the header flush
	f.Add(append(bytes.Clone(hdr), '\n'))               // header only
	f.Add(bytes.Clone(hdr))                             // header without its newline
	f.Add(append(append(bytes.Clone(hdr), '\n'), full...))                  // one intact record
	f.Add(append(append(bytes.Clone(hdr), '\n'), full[:len(full)-1]...))    // record missing its newline
	f.Add(append(append(bytes.Clone(hdr), '\n'), full[:len(full)/2]...))    // torn trailing record
	f.Add(append(append(bytes.Clone(hdr), '\n'), []byte("{\"index\":9e99}\n")...)) // out-of-range index
	f.Add(append(append(bytes.Clone(hdr), '\n'), []byte("garbage\n{}\n")...))      // corrupt middle line
	f.Add([]byte("\x00\x01\x02\xff\xfe\n"))             // binary garbage
	f.Add([]byte("{\"version\":99}\n"))                 // wrong version header

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "sweep.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := OpenCheckpoint(path, plan)
		if err != nil {
			return // rejecting a mangled file is always acceptable
		}
		recovered := make(map[int]bool, len(cp.Completed))
		for idx := range cp.Completed {
			if idx < 0 || idx >= len(plan.Points) {
				t.Fatalf("recovered out-of-range point index %d", idx)
			}
			recovered[idx] = true
		}
		// The resume contract: appending after recovery must leave a
		// file that reopens with every point — recovered and new —
		// intact, whatever the tail looked like before.
		if err := cp.Record(Result{Index: 0, System: "fuzz"}); err != nil {
			t.Fatalf("recording after recovery: %v", err)
		}
		if err := cp.Close(); err != nil {
			t.Fatal(err)
		}
		cp2, err := OpenCheckpoint(path, plan)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer cp2.Close()
		if got := cp2.Completed[0].System; got != "fuzz" {
			t.Fatalf("recorded point lost or overwritten: Completed[0].System = %q", got)
		}
		for idx := range recovered {
			if _, ok := cp2.Completed[idx]; !ok {
				t.Fatalf("recovered point %d lost after append+reopen", idx)
			}
		}
	})
}
