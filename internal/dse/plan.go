package dse

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"ppatc/internal/carbon"
	"ppatc/internal/units"
)

// Point is one evaluation of the plan: a fully resolved coordinate in the
// design space plus a per-point seed.
type Point struct {
	// Index is the point's position in the plan (stable across runs and
	// worker counts; checkpoints key on it).
	Index int
	// Seed is the per-point seed derived from the root seed and Index,
	// available to any stochastic evaluation stage.
	Seed uint64
	// Replica is the Monte Carlo replica index (0 when no axis samples).
	Replica int

	// System and Workload are resolved names; Grid the CI_fab supply.
	System   string
	Workload string
	Grid     carbon.Grid
	// ClockMHz is the clock override (0 = the design's own clock).
	ClockMHz float64
	// LifetimeMonths is the tCDP lifetime.
	LifetimeMonths float64
	// CIUseScale scales the use-phase carbon intensity.
	CIUseScale float64
	// YieldD0, M3DYield and M3DEmbodiedScale are optional overrides
	// (nil = the design baseline).
	YieldD0          *float64
	M3DYield         *float64
	M3DEmbodiedScale *float64
}

// Plan is an expanded spec: the ordered point list plus everything the
// engine needs to execute it.
type Plan struct {
	// Spec is the normalized spec the plan was expanded from.
	Spec *Spec
	// Hash identifies the normalized spec (checkpoint identity).
	Hash string
	// Points are the evaluations, in deterministic order.
	Points []Point
	// UseGrid supplies CI_use.
	UseGrid carbon.Grid
}

// numLevels is one numeric dimension of the cross product: either fixed
// levels, or one per-replica sampled level.
type numLevels struct {
	present bool
	fixed   []float64 // nil for sampled axes
	sampled []float64 // indexed by replica
}

func (l numLevels) count() int {
	if !l.present || l.sampled != nil {
		return 1
	}
	return len(l.fixed)
}

// value resolves the level at a coordinate; ok is false when the axis is
// absent from the spec.
func (l numLevels) value(coord, replica int) (float64, bool) {
	switch {
	case !l.present:
		return 0, false
	case l.sampled != nil:
		return l.sampled[replica], true
	default:
		return l.fixed[coord], true
	}
}

// expandNum builds the level list of one numeric axis. Distribution axes
// pre-draw one value per replica from a stream seeded by the root seed
// and the axis name, so every point of a replica shares the draw (the
// pairing Winners depends on) and the plan is identical at any worker
// count.
func expandNum(a *NumericAxis, name string, seed int64, samples int) (numLevels, error) {
	if a == nil {
		return numLevels{}, nil
	}
	if a.Dist == nil {
		return numLevels{present: true, fixed: a.values()}, nil
	}
	dist, err := a.Dist.Distribution()
	if err != nil {
		return numLevels{}, err
	}
	rng := rand.New(rand.NewSource(axisSeed(seed, name)))
	vals := make([]float64, samples)
	for i := range vals {
		vals[i] = dist.Sample(rng)
	}
	return numLevels{present: true, sampled: vals}, nil
}

// axisSeed derives a per-axis seed from the root seed and the axis name.
func axisSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64() ^ uint64(seed)*0x9E3779B97F4A7C15)
}

// pointSeed derives the per-point seed from the root seed and the point
// index (a splitmix64 step, so nearby indices decorrelate).
func pointSeed(seed int64, index int) uint64 {
	z := uint64(seed) + uint64(index)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Expand validates and normalizes the spec and expands it into the full
// evaluation plan. Axes are crossed in declaration order — system,
// workload, grid, clock, lifetime, yield D0, M3D yield, M3D embodied
// scale, CI_use scale — with Monte Carlo replicas innermost.
func Expand(spec *Spec) (*Plan, error) {
	n, err := spec.normalized()
	if err != nil {
		return nil, err
	}
	hash, err := n.Hash()
	if err != nil {
		return nil, err
	}
	useGrid, err := carbon.GridByName(n.UseGrid)
	if err != nil {
		return nil, err
	}
	grids, err := expandGrids(n.Axes.Grid)
	if err != nil {
		return nil, err
	}

	samples := n.Samples
	replicas := 1
	if samples > 0 {
		replicas = samples
	}
	type numDim struct {
		name string
		axis *NumericAxis
	}
	dims := []numDim{
		{"clock_mhz", n.Axes.ClockMHz},
		{"lifetime_months", n.Axes.LifetimeMonths},
		{"yield_d0", n.Axes.YieldD0},
		{"m3d_yield", n.Axes.M3DYield},
		{"m3d_embodied_scale", n.Axes.M3DEmbodiedScale},
		{"ci_use_scale", n.Axes.CIUseScale},
	}
	levels := make([]numLevels, len(dims))
	for i, d := range dims {
		if levels[i], err = expandNum(d.axis, d.name, n.Seed, samples); err != nil {
			return nil, err
		}
	}
	clock, life, d0, m3dY, m3dEmb, ciUse := levels[0], levels[1], levels[2], levels[3], levels[4], levels[5]

	counts := []int{
		len(n.Axes.System), len(n.Axes.Workload), len(grids),
		clock.count(), life.count(), d0.count(), m3dY.count(), m3dEmb.count(), ciUse.count(),
		replicas,
	}
	total := 1
	for _, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("dse: empty axis in spec %q", n.Name)
		}
		total *= c
	}

	plan := &Plan{Spec: n, Hash: hash, UseGrid: useGrid, Points: make([]Point, 0, total)}
	for i := 0; i < total; i++ {
		// Decode the flat index into per-axis coordinates, row-major with
		// the replica fastest so paired replicas sit adjacent.
		rem := i
		coord := make([]int, len(counts))
		for d := len(counts) - 1; d >= 0; d-- {
			coord[d] = rem % counts[d]
			rem /= counts[d]
		}
		replica := coord[9]
		p := Point{
			Index:          i,
			Seed:           pointSeed(n.Seed, i),
			Replica:        replica,
			System:         n.Axes.System[coord[0]],
			Workload:       n.Axes.Workload[coord[1]],
			Grid:           grids[coord[2]],
			LifetimeMonths: 24,
			CIUseScale:     1,
		}
		if v, ok := clock.value(coord[3], replica); ok {
			p.ClockMHz = v
		}
		if v, ok := life.value(coord[4], replica); ok {
			p.LifetimeMonths = v
		}
		if v, ok := d0.value(coord[5], replica); ok {
			p.YieldD0 = &v
		}
		if v, ok := m3dY.value(coord[6], replica); ok {
			p.M3DYield = &v
		}
		if v, ok := m3dEmb.value(coord[7], replica); ok {
			p.M3DEmbodiedScale = &v
		}
		if v, ok := ciUse.value(coord[8], replica); ok {
			p.CIUseScale = v
		}
		plan.Points = append(plan.Points, p)
	}
	return plan, nil
}

// expandGrids resolves a grid axis into concrete grids: canonical names,
// then custom grids, then raw intensities.
func expandGrids(g *GridAxis) ([]carbon.Grid, error) {
	var out []carbon.Grid
	for _, name := range g.Names {
		grid, err := carbon.GridByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, grid)
	}
	for _, c := range g.Custom {
		out = append(out, carbon.CustomGrid(c.Name, units.GramsPerKilowattHour(c.GPerKWh)))
	}
	if g.Intensity != nil {
		for _, v := range g.Intensity.values() {
			out = append(out, carbon.CustomGrid(fmt.Sprintf("grid-%g", v), units.GramsPerKilowattHour(v)))
		}
	}
	return out, nil
}
