package dse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// checkpointHeader is the first line of a checkpoint file; every later
// line is one Result. The spec hash ties the file to one exact sweep, so
// a resume against an edited spec is rejected instead of silently mixing
// incompatible points.
type checkpointHeader struct {
	Version    int    `json:"version"`
	SpecSHA256 string `json:"spec_sha256"`
	Total      int    `json:"total"`
}

const checkpointVersion = 1

// Checkpoint persists completed sweep points to an append-only NDJSON
// file. Record is safe to use as Options.OnComplete; a partially written
// trailing line (crash mid-append) is dropped on load.
type Checkpoint struct {
	path string
	f    *os.File
	w    *bufio.Writer
	// Completed holds the results recovered on open, keyed by index.
	Completed map[int]Result
}

// OpenCheckpoint opens (or creates) the checkpoint for a plan. An
// existing file must carry the plan's spec hash and point count;
// recovered results land in Completed and new Records append after them.
func OpenCheckpoint(path string, plan *Plan) (*Checkpoint, error) {
	cp := &Checkpoint{path: path, Completed: make(map[int]Result)}
	data, err := os.ReadFile(path)
	switch {
	// A zero-length file is a crash between create and the header flush:
	// nothing was recorded, so reinitialize it as a fresh checkpoint
	// instead of refusing to resume forever.
	case os.IsNotExist(err), err == nil && len(data) == 0:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		cp.f, cp.w = f, bufio.NewWriter(f)
		hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, SpecSHA256: plan.Hash, Total: len(plan.Points)})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := cp.w.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
		if err := cp.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		return cp, nil
	case err != nil:
		return nil, err
	}

	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("dse: checkpoint %s: missing header", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return nil, fmt.Errorf("dse: checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("dse: checkpoint %s: version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.SpecSHA256 != plan.Hash {
		return nil, fmt.Errorf("dse: checkpoint %s belongs to a different spec (hash %.12s…, want %.12s…)", path, hdr.SpecSHA256, plan.Hash)
	}
	if hdr.Total != len(plan.Points) {
		return nil, fmt.Errorf("dse: checkpoint %s: %d points, plan has %d", path, hdr.Total, len(plan.Points))
	}
	// validEnd marks how many leading bytes of the file hold intact,
	// newline-terminated records. A crash mid-append can leave a torn
	// tail past it; appending after that tail would weld the next record
	// onto the torn bytes and corrupt the file for every later resume,
	// so the tail is truncated away before the file reopens for append.
	validEnd := len(data)
	for i, line := range lines[1:] {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		var r Result
		if err := json.Unmarshal([]byte(trimmed), &r); err != nil {
			// A torn trailing line is expected after a crash; a bad line
			// in the middle means the file is corrupt.
			if i == len(lines)-2 {
				validEnd = len(data) - len(line)
				break
			}
			return nil, fmt.Errorf("dse: checkpoint %s: corrupt line %d: %w", path, i+2, err)
		}
		if r.Index < 0 || r.Index >= len(plan.Points) {
			return nil, fmt.Errorf("dse: checkpoint %s: point index %d out of range", path, r.Index)
		}
		cp.Completed[r.Index] = r
	}
	if validEnd < len(data) {
		if err := os.Truncate(path, int64(validEnd)); err != nil {
			return nil, fmt.Errorf("dse: checkpoint %s: dropping torn tail: %w", path, err)
		}
		data = data[:validEnd]
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cp.f, cp.w = f, bufio.NewWriter(f)
	// A file that ends without a newline (a flush cut exactly at a record
	// boundary) still parses, but appending straight after it would merge
	// two records onto one line; terminate it first.
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if _, err := cp.w.WriteString("\n"); err != nil {
			f.Close()
			return nil, err
		}
		if err := cp.Flush(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cp, nil
}

// Record appends one completed point and flushes it to the OS, making it
// durable against process death. Not safe for concurrent use — the
// engine serializes OnComplete calls.
func (c *Checkpoint) Record(r Result) error {
	line, err := r.MarshalLine()
	if err != nil {
		return err
	}
	if _, err := c.w.Write(line); err != nil {
		return err
	}
	return c.Flush()
}

// Flush pushes buffered lines to the file.
func (c *Checkpoint) Flush() error {
	return c.w.Flush()
}

// Close flushes and closes the file. The file is left in place; Remove
// deletes it once the sweep is complete.
func (c *Checkpoint) Close() error {
	if err := c.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}

// Remove deletes the checkpoint file (after Close).
func (c *Checkpoint) Remove() error {
	if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
