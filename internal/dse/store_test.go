package dse

import (
	"bytes"
	"context"
	"testing"

	"ppatc/internal/obs"
	"ppatc/internal/store"
)

func TestPointKeyIdentity(t *testing.T) {
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, p := range plan.Points {
		k := planPointKey(plan, p)
		if prev, dup := seen[k]; dup {
			t.Fatalf("points %d and %d collide on key %q", prev, p.Index, k)
		}
		seen[k] = p.Index
	}
	// The key is index- and replica-blind: the same coordinate at a
	// different plan position keys identically.
	p := plan.Points[3]
	moved := p
	moved.Index, moved.Replica, moved.Seed = 99, 5, 123
	if planPointKey(plan, p) != planPointKey(plan, moved) {
		t.Error("key depends on index/replica/seed")
	}
	// But the use grid is part of the identity.
	if PointKey("US", 400, p) == PointKey("Coal", 820, p) {
		t.Error("key ignores the use grid")
	}
}

// TestCrossJobDedup is the store's reason to exist inside dse: a second
// job whose plan overlaps an earlier job's points evaluates only the
// new ones.
func TestCrossJobDedup(t *testing.T) {
	st := store.NewMemStore()

	// Job 1: the full test spec, persisting every point.
	plan1, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var evals1 obs.Counter
	res1, err := RunPlan(context.Background(), plan1, Options{
		Workers:     2,
		EvalCounter: &evals1,
		OnComplete:  func(r Result) error { return PersistPoint(st, plan1, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := evals1.Load(); got != int64(len(plan1.Points)) {
		t.Fatalf("job 1 evaluated %d of %d", got, len(plan1.Points))
	}

	// Job 2: a different spec whose plan is a superset slice — same two
	// systems and grids, but three lifetimes (two shared, one new).
	spec2 := testSpec()
	spec2.Name = "unit-2"
	spec2.Axes.LifetimeMonths = &NumericAxis{Values: []float64{12, 24, 36}}
	plan2, err := Expand(spec2)
	if err != nil {
		t.Fatal(err)
	}
	completed := StoredCompleted(st, plan2)
	if len(completed) != len(plan1.Points) {
		t.Fatalf("adopted %d stored points, want %d", len(completed), len(plan1.Points))
	}
	var evals2 obs.Counter
	res2, err := RunPlan(context.Background(), plan2, Options{
		Workers:     2,
		Completed:   completed,
		EvalCounter: &evals2,
		OnComplete:  func(r Result) error { return PersistPoint(st, plan2, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh := len(plan2.Points) - len(plan1.Points)
	if got := evals2.Load(); got != int64(fresh) {
		t.Fatalf("job 2 evaluated %d points, want %d fresh ones", got, fresh)
	}

	// Adopted results are byte-identical to a from-scratch run of the
	// same plan (the determinism contract, now spanning jobs).
	res2Fresh, err := RunPlan(context.Background(), plan2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ndjson(t, res2), ndjson(t, res2Fresh)) {
		t.Error("adopted results differ from fresh evaluation")
	}
	_ = res1
}

func TestPersistLoadSweep(t *testing.T) {
	st := store.NewMemStore()
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunPlan(context.Background(), plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := plan.Hash[:12]
	if err := PersistSweep(st, id, results); err != nil {
		t.Fatal(err)
	}

	loaded, ok, err := LoadSweep(st, id)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	// The replayed NDJSON must match the live stream byte for byte.
	if !bytes.Equal(ndjson(t, loaded), ndjson(t, results)) {
		t.Error("stored sweep replay is not byte-identical")
	}

	if _, ok, err := LoadSweep(st, "nonexistent"); ok || err != nil {
		t.Errorf("phantom sweep: ok=%v err=%v", ok, err)
	}
	// A nil store is a silent no-op everywhere.
	if err := PersistSweep(nil, id, results); err != nil {
		t.Error(err)
	}
	if _, ok, _ := LoadSweep(nil, id); ok {
		t.Error("nil store returned a sweep")
	}
	if m := StoredCompleted(nil, plan); m != nil {
		t.Error("nil store returned completions")
	}
}
