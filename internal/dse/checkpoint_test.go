package dse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openTestPlan expands the shared test spec for checkpoint surgery.
func openTestPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := Expand(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func recordPoint(t *testing.T, cp *Checkpoint, idx int) {
	t.Helper()
	if err := cp.Record(Result{Index: idx, System: "all-Si"}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointZeroLengthFile covers a crash between file creation and
// the header flush: the empty file must reinitialize as a fresh
// checkpoint, not wedge every future resume with a header error.
func TestCheckpointZeroLengthFile(t *testing.T) {
	plan := openTestPlan(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("zero-length checkpoint: %v", err)
	}
	if len(cp.Completed) != 0 {
		t.Fatalf("recovered %d points from an empty file", len(cp.Completed))
	}
	recordPoint(t, cp, 0)
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("reopen after reinit: %v", err)
	}
	defer cp2.Close()
	if len(cp2.Completed) != 1 {
		t.Fatalf("recovered %d points, want 1", len(cp2.Completed))
	}
}

// TestCheckpointHeaderOnly covers a crash right after the header: the
// file resumes cleanly with nothing completed.
func TestCheckpointHeaderOnly(t *testing.T) {
	plan := openTestPlan(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("header-only checkpoint: %v", err)
	}
	defer cp2.Close()
	if len(cp2.Completed) != 0 {
		t.Fatalf("recovered %d points from a header-only file", len(cp2.Completed))
	}
}

// TestCheckpointTornTailSurvivesTwoResumes pins the truncation fix: a
// torn trailing line must not only be dropped on load — it must also be
// removed from the file, or the next Record appends onto the torn bytes
// and the SECOND resume finds a corrupt line mid-file.
func TestCheckpointTornTailSurvivesTwoResumes(t *testing.T) {
	plan := openTestPlan(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	recordPoint(t, cp, 0)
	recordPoint(t, cp, 1)
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: chop the last record in half, leaving no
	// trailing newline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimRight(string(data), "\n")
	if err := os.WriteFile(path, []byte(body[:len(body)-8]), 0o644); err != nil {
		t.Fatal(err)
	}

	// First resume drops the torn record…
	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("first resume over torn tail: %v", err)
	}
	if len(cp2.Completed) != 1 {
		t.Fatalf("first resume recovered %d points, want 1 (torn record dropped)", len(cp2.Completed))
	}
	// …and appending after it must start on a clean line.
	recordPoint(t, cp2, 1)
	recordPoint(t, cp2, 2)
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}

	cp3, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("second resume: %v (torn tail corrupted later appends)", err)
	}
	defer cp3.Close()
	if len(cp3.Completed) != 3 {
		t.Fatalf("second resume recovered %d points, want 3", len(cp3.Completed))
	}
}

// TestCheckpointTornOnlyDataLine covers the file whose single data line
// is torn: resume starts from zero and later appends stay intact.
func TestCheckpointTornOnlyDataLine(t *testing.T) {
	plan := openTestPlan(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	recordPoint(t, cp, 0)
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("resume over torn-only-line: %v", err)
	}
	if len(cp2.Completed) != 0 {
		t.Fatalf("recovered %d points, want 0", len(cp2.Completed))
	}
	recordPoint(t, cp2, 0)
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	cp3, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	defer cp3.Close()
	if len(cp3.Completed) != 1 {
		t.Fatalf("second resume recovered %d points, want 1", len(cp3.Completed))
	}
}

// TestCheckpointUnterminatedLastLine covers a flush cut exactly at a
// record boundary with no trailing newline: the record is intact and
// must be kept, and the next append must not weld onto it.
func TestCheckpointUnterminatedLastLine(t *testing.T) {
	plan := openTestPlan(t)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	cp, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	recordPoint(t, cp, 0)
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.TrimRight(string(data), "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp2.Completed) != 1 {
		t.Fatalf("recovered %d points, want 1 (complete unterminated record)", len(cp2.Completed))
	}
	recordPoint(t, cp2, 1)
	if err := cp2.Close(); err != nil {
		t.Fatal(err)
	}
	cp3, err := OpenCheckpoint(path, plan)
	if err != nil {
		t.Fatalf("resume after append to unterminated file: %v", err)
	}
	defer cp3.Close()
	if len(cp3.Completed) != 2 {
		t.Fatalf("recovered %d points, want 2", len(cp3.Completed))
	}
}
