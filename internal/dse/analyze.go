package dse

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// axisValues enumerates the axes a Result can vary over, with a label
// per level and (for numeric axes) the raw value for correlation.
var axisValues = []struct {
	name    string
	label   func(*Result) string
	numeric func(*Result) (float64, bool)
}{
	{"system", func(r *Result) string { return r.System }, nil},
	{"workload", func(r *Result) string { return r.Workload }, nil},
	{"grid", func(r *Result) string { return r.Grid },
		func(r *Result) (float64, bool) { return r.GridGPerKWh, true }},
	{"clock_mhz", func(r *Result) string { return fmt.Sprintf("%g", r.ClockMHz) },
		func(r *Result) (float64, bool) { return r.ClockMHz, true }},
	{"lifetime_months", func(r *Result) string { return fmt.Sprintf("%g", r.LifetimeMonths) },
		func(r *Result) (float64, bool) { return r.LifetimeMonths, true }},
	{"ci_use_scale", func(r *Result) string { return fmt.Sprintf("%g", r.CIUseScale) },
		func(r *Result) (float64, bool) { return r.CIUseScale, true }},
	{"yield_d0", labelPtr(func(r *Result) *float64 { return r.YieldD0 }),
		numPtr(func(r *Result) *float64 { return r.YieldD0 })},
	{"m3d_yield", labelPtr(func(r *Result) *float64 { return r.M3DYield }),
		numPtr(func(r *Result) *float64 { return r.M3DYield })},
	{"m3d_embodied_scale", labelPtr(func(r *Result) *float64 { return r.M3DEmbodiedScale }),
		numPtr(func(r *Result) *float64 { return r.M3DEmbodiedScale })},
}

func labelPtr(get func(*Result) *float64) func(*Result) string {
	return func(r *Result) string {
		if p := get(r); p != nil {
			return fmt.Sprintf("%g", *p)
		}
		return "-"
	}
}

func numPtr(get func(*Result) *float64) func(*Result) (float64, bool) {
	return func(r *Result) (float64, bool) {
		if p := get(r); p != nil {
			return *p, true
		}
		return 0, false
	}
}

// AxisSensitivity summarizes how much one axis moves a metric.
type AxisSensitivity struct {
	// Axis names the swept axis.
	Axis string
	// Levels is the number of distinct levels seen.
	Levels int
	// Spread is max−min of the per-level mean metric, and SpreadRel the
	// same relative to the grand mean. Zero when the axis has more than
	// maxLevelTable levels (Monte Carlo axes) — use Corr there instead.
	Spread    float64
	SpreadRel float64
	// Best and Worst are the level labels with the lowest and highest
	// mean metric (empty when Spread is not computed).
	Best, Worst string
	// Corr is the Pearson correlation between the axis value and the
	// metric (numeric axes only; 0 for categorical axes).
	Corr float64
}

// maxLevelTable caps per-level mean tables; axes with more levels are
// Monte Carlo draws, where level means are single observations.
const maxLevelTable = 16

// Sensitivity ranks the swept axes by their influence on one metric,
// over the feasible results. Fixed axes (one level) are omitted. Axes
// with few levels get a per-level mean contrast (the Fig. 6b view);
// densely sampled axes get a Pearson correlation instead.
func Sensitivity(results []Result, metric string) ([]AxisSensitivity, error) {
	if !ValidMetric(metric) {
		return nil, fmt.Errorf("dse: unknown metric %q", metric)
	}
	var feasible []*Result
	var grand float64
	for i := range results {
		if results[i].Feasible {
			feasible = append(feasible, &results[i])
			v, _ := results[i].Metric(metric)
			grand += v
		}
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("dse: no feasible results")
	}
	grand /= float64(len(feasible))

	var out []AxisSensitivity
	for _, ax := range axisValues {
		levels := map[string][]float64{}
		var order []string
		for _, r := range feasible {
			l := ax.label(r)
			if _, seen := levels[l]; !seen {
				order = append(order, l)
			}
			v, _ := r.Metric(metric)
			levels[l] = append(levels[l], v)
		}
		if len(levels) < 2 {
			continue
		}
		s := AxisSensitivity{Axis: ax.name, Levels: len(levels)}
		if len(levels) <= maxLevelTable {
			var lo, hi float64
			for i, l := range order {
				var m float64
				for _, v := range levels[l] {
					m += v
				}
				m /= float64(len(levels[l]))
				if i == 0 || m < lo {
					lo, s.Best = m, l
				}
				if i == 0 || m > hi {
					hi, s.Worst = m, l
				}
			}
			s.Spread = hi - lo
			if grand != 0 {
				s.SpreadRel = s.Spread / math.Abs(grand)
			}
		}
		if ax.numeric != nil {
			s.Corr = pearson(feasible, ax.numeric, metric)
		}
		out = append(out, s)
	}
	// Most influential first: by relative spread, then |corr|.
	sort.SliceStable(out, func(a, b int) bool {
		sa, sb := out[a].SpreadRel, out[b].SpreadRel
		if sa != sb {
			return sa > sb
		}
		return math.Abs(out[a].Corr) > math.Abs(out[b].Corr)
	})
	return out, nil
}

// pearson computes the correlation between an axis value and a metric
// over the results where the axis is set.
func pearson(results []*Result, value func(*Result) (float64, bool), metric string) float64 {
	var xs, ys []float64
	for _, r := range results {
		x, ok := value(r)
		if !ok {
			continue
		}
		y, _ := r.Metric(metric)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// FormatSensitivity renders the sensitivity table.
func FormatSensitivity(sens []AxisSensitivity, metric string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sensitivity of %s\n", metric)
	for _, s := range sens {
		if s.Best != "" {
			fmt.Fprintf(&sb, "  %-20s %3d levels  spread %.4g (%.1f%%)  best %s  worst %s",
				s.Axis, s.Levels, s.Spread, 100*s.SpreadRel, s.Best, s.Worst)
		} else {
			fmt.Fprintf(&sb, "  %-20s %3d levels  sampled", s.Axis, s.Levels)
		}
		if s.Corr != 0 {
			fmt.Fprintf(&sb, "  corr %+.2f", s.Corr)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WinnerSummary aggregates, per system, how often it wins a metric
// against the other systems at the same coordinate — the Monte Carlo
// win-probability of tcdp.MonteCarlo generalized to any sweep.
type WinnerSummary struct {
	// Metric and Maximize define the contest.
	Metric   string
	Maximize bool
	// Groups is the number of coordinates compared; Ties counts groups
	// with no strict winner.
	Groups, Ties int
	// Wins counts won groups per system; Probability is Wins/Groups.
	Wins        map[string]int
	Probability map[string]float64
}

// Winners pairs results across the system axis (same workload, grid,
// clock, lifetime, replica, …) and counts which system wins each
// coordinate on the objective. An infeasible system loses to any
// feasible one; coordinates with no feasible system are skipped.
func Winners(results []Result, obj Objective) (*WinnerSummary, error) {
	if !ValidMetric(obj.Metric) {
		return nil, fmt.Errorf("dse: unknown metric %q", obj.Metric)
	}
	groups := map[string][]*Result{}
	var order []string
	for i := range results {
		k := results[i].groupKey()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], &results[i])
	}
	w := &WinnerSummary{
		Metric: obj.Metric, Maximize: obj.Maximize,
		Wins: map[string]int{}, Probability: map[string]float64{},
	}
	for _, k := range order {
		group := groups[k]
		var best *Result
		var bestV float64
		tie := false
		for _, r := range group {
			if !r.Feasible {
				continue
			}
			v, _ := r.Metric(obj.Metric)
			if obj.Maximize {
				v = -v
			}
			switch {
			case best == nil || v < bestV:
				best, bestV, tie = r, v, false
			case v == bestV:
				tie = true
			}
		}
		if best == nil {
			continue // nothing feasible at this coordinate
		}
		w.Groups++
		if tie {
			w.Ties++
			continue
		}
		w.Wins[best.System]++
	}
	if w.Groups == 0 {
		return nil, fmt.Errorf("dse: no feasible results")
	}
	for sys, n := range w.Wins {
		w.Probability[sys] = float64(n) / float64(w.Groups)
	}
	return w, nil
}

// FormatWinners renders the win-probability summary.
func FormatWinners(w *WinnerSummary) string {
	var sb strings.Builder
	dir := "min"
	if w.Maximize {
		dir = "max"
	}
	fmt.Fprintf(&sb, "Winner on %s(%s) over %d coordinates", w.Metric, dir, w.Groups)
	if w.Ties > 0 {
		fmt.Fprintf(&sb, " (%d ties)", w.Ties)
	}
	sb.WriteByte('\n')
	systems := make([]string, 0, len(w.Wins))
	for sys := range w.Wins {
		systems = append(systems, sys)
	}
	sort.Slice(systems, func(a, b int) bool {
		if w.Wins[systems[a]] != w.Wins[systems[b]] {
			return w.Wins[systems[a]] > w.Wins[systems[b]]
		}
		return systems[a] < systems[b]
	})
	for _, sys := range systems {
		fmt.Fprintf(&sb, "  %-24s %5d wins  P(win) = %.3f\n", sys, w.Wins[sys], w.Probability[sys])
	}
	return sb.String()
}
