package dse

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"ppatc/internal/core"
)

// mixedAxisSpec is the memo's showcase shape: a grid-intensity axis
// crossed with systems and a clock axis, so most points differ only in
// the carbon stage's input.
func mixedAxisSpec(intensities, clocks int) *Spec {
	vals := make([]float64, intensities)
	for i := range vals {
		vals[i] = 40 + 40*float64(i)
	}
	mhz := make([]float64, clocks)
	for i := range mhz {
		mhz[i] = 500 - 40*float64(i)
	}
	return &Spec{
		Name: "memo-mixed",
		Axes: Axes{
			System:   []string{"si", "m3d"},
			Workload: []string{"huff"},
			Grid:     &GridAxis{Intensity: &NumericAxis{Values: vals}},
			ClockMHz: &NumericAxis{Values: mhz},
		},
	}
}

// TestMemoByteIdenticalNDJSON pins the tentpole contract: a memoized
// mixed-axis sweep emits byte-identical NDJSON to the non-memoized run.
func TestMemoByteIdenticalNDJSON(t *testing.T) {
	spec := mixedAxisSpec(8, 2)
	plain, err := Run(context.Background(), spec, Options{Workers: 4, NoMemo: true})
	if err != nil {
		t.Fatalf("no-memo run: %v", err)
	}
	memoized, err := Run(context.Background(), spec, Options{Workers: 4})
	if err != nil {
		t.Fatalf("memoized run: %v", err)
	}
	if a, b := ndjson(t, plain), ndjson(t, memoized); !bytes.Equal(a, b) {
		t.Fatalf("memoized NDJSON differs from non-memoized:\n--- no-memo ---\n%s--- memo ---\n%s", a, b)
	}
}

// TestMemoStageReduction pins the ≥10× incremental-work claim at the
// stage level: across a mixed-axis sweep the stage-heavy pipeline steps
// run once per (system, workload, clock) coordinate — not once per
// point — so total stage executions drop more than tenfold versus the
// non-memoized sweep.
func TestMemoStageReduction(t *testing.T) {
	spec := mixedAxisSpec(8, 6)
	plan, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	points := len(plan.Points) // 2 systems × 8 intensities × 6 clocks = 96
	memo := core.NewMemo()
	if _, err := RunPlan(context.Background(), plan, Options{Workers: 4, Memo: memo}); err != nil {
		t.Fatalf("memoized run: %v", err)
	}
	stats := memo.Stats()
	var runs int64
	for _, s := range stats {
		runs += s.Misses
	}
	// Without the memo the tuple cache still deduplicates exact tuples,
	// but every distinct tuple runs all five stages.
	plainRuns := int64(points * len(core.Stages()))
	if runs*10 > plainRuns {
		t.Fatalf("memoized sweep ran %d stage executions for %d points (non-memoized: %d); want >=10x reduction\nstats: %+v",
			runs, points, plainRuns, stats)
	}
	// The expensive stages run once per (system, clock) / (workload)
	// coordinate; only carbon tracks the grid axis.
	if got, want := stats[core.StageEmbench].Misses, int64(1); got != want {
		t.Errorf("embench ran %d times, want %d", got, want)
	}
	if got, want := stats[core.StageSynth].Misses, int64(12); got != want {
		t.Errorf("synth ran %d times, want %d (2 systems x 6 clocks)", got, want)
	}
	if got, want := stats[core.StageCarbon].Misses, int64(16); got != want {
		t.Errorf("carbon ran %d times, want %d (2 systems x 8 intensities)", got, want)
	}
}

// TestFeedOrderPreservesOutput pins that memo-locality feeding is
// invisible: every point position appears exactly once in the feed
// order, and (covered by TestMemoByteIdenticalNDJSON) output order is
// untouched.
func TestFeedOrderPreservesOutput(t *testing.T) {
	plan, err := Expand(mixedAxisSpec(5, 2))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	order := feedOrder(plan.Points)
	if len(order) != len(plan.Points) {
		t.Fatalf("feedOrder returned %d positions for %d points", len(order), len(plan.Points))
	}
	seen := make([]bool, len(plan.Points))
	for _, i := range order {
		if i < 0 || i >= len(seen) || seen[i] {
			t.Fatalf("feedOrder position %d out of range or duplicated", i)
		}
		seen[i] = true
	}
	// Grouped: each (system, workload, clock) coordinate must occupy one
	// contiguous run of the feed order.
	last := make(map[string]int)
	for rank, i := range order {
		p := plan.Points[i]
		key := fmt.Sprintf("%s|%s|%g", p.System, p.Workload, p.ClockMHz)
		if prev, ok := last[key]; ok && prev != rank-1 {
			t.Fatalf("feed order splits group %s (positions %d and %d)", key, prev, rank)
		}
		last[key] = rank
	}
}
