package dse

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// evaluator runs plan points. Points sharing a core coordinate (system,
// workload, grid, clock) share one pipeline evaluation through a
// per-sweep cache: the Monte Carlo axes — lifetime, CI_use scale, yield
// and embodied-carbon overrides — are exact post-transformations of the
// PPAtC result (Eqs. 5-8 are linear in 1/yield, CI_use and the embodied
// total), so a 10k-replica uncertainty sweep costs two pipeline runs,
// not ten thousand.
type evaluator struct {
	useGrid carbon.Grid
	m3dName string
	cache   sync.Map // core key -> *coreEntry
	// memo, when set, memoizes the individual pipeline stages underneath
	// the tuple cache: two tuples differing only in grid replay embench,
	// the eDRAM macro, synthesis and the floorplan instead of re-running
	// them. Stage outputs are pure, so memoized results are identical to
	// direct evaluation.
	memo *core.Memo
}

type coreEntry struct {
	once sync.Once
	res  *core.PPAtC
	err  error
}

func newEvaluator(useGrid carbon.Grid, memo *core.Memo) *evaluator {
	return &evaluator{useGrid: useGrid, m3dName: core.M3DSystem().Name, memo: memo}
}

// coreEval runs (or reuses) the five-stage pipeline for the point's core
// coordinate.
func (e *evaluator) coreEval(ctx context.Context, p Point) (*core.PPAtC, error) {
	key := fmt.Sprintf("%s|%s|%s|%g", p.System, p.Workload, p.Grid.Name, p.ClockMHz)
	v, _ := e.cache.LoadOrStore(key, &coreEntry{})
	entry := v.(*coreEntry)
	entry.once.Do(func() {
		sys, err := core.SystemByName(p.System)
		if err != nil {
			entry.err = err
			return
		}
		if p.ClockMHz > 0 {
			sys.Clock = units.Megahertz(p.ClockMHz)
		}
		wl, err := embench.ByName(p.Workload)
		if err != nil {
			entry.err = err
			return
		}
		if e.memo != nil {
			entry.res, entry.err = e.memo.EvaluateContext(ctx, sys, wl, p.Grid)
		} else {
			entry.res, entry.err = core.EvaluateContext(ctx, sys, wl, p.Grid)
		}
	})
	return entry.res, entry.err
}

// evaluate computes one point's Result. Evaluation failures become data
// (Error set, Feasible false for timing misses) rather than aborting the
// sweep: a sweep that straddles the feasibility boundary is the common
// case, not an exception.
func (e *evaluator) evaluate(ctx context.Context, p Point) Result {
	r := Result{
		Index:            p.Index,
		Replica:          p.Replica,
		System:           p.System,
		Workload:         p.Workload,
		Grid:             p.Grid.Name,
		GridGPerKWh:      p.Grid.Intensity.GramsPerKilowattHour(),
		ClockMHz:         p.ClockMHz,
		LifetimeMonths:   p.LifetimeMonths,
		CIUseScale:       p.CIUseScale,
		YieldD0:          p.YieldD0,
		M3DYield:         p.M3DYield,
		M3DEmbodiedScale: p.M3DEmbodiedScale,
	}
	res, err := e.coreEval(ctx, p)
	if err != nil {
		// Timing-closure misses (and any other evaluation failure) are
		// infeasible sweep points, the way core.ClockSweep treats them.
		r.Error = err.Error()
		return r
	}
	r.Feasible = true
	if r.ClockMHz == 0 {
		r.ClockMHz = res.Clock.Megahertz()
	}
	r.Cycles = res.Cycles
	r.ExecTimeS = res.ExecTime
	r.OperationalPowerMW = res.OperationalPower.Milliwatts()
	r.TotalAreaMM2 = res.TotalArea.SquareMillimeters()
	r.EmbodiedWaferKG = res.EmbodiedPerWafer.Total().Kilograms()
	r.DiesPerWafer = res.DiesPerWafer

	// Yield and embodied-carbon overrides, applied as the exact Eq. 5
	// re-amortization C_emb' = C_emb · Y/Y' (and the Fig. 6b embodied
	// scale), without re-running the pipeline.
	dp := res.DesignPoint()
	y := res.Yield
	if p.YieldD0 != nil {
		y = math.Exp(-*p.YieldD0 * res.TotalArea.SquareCentimeters())
	}
	if p.M3DYield != nil && p.System == e.m3dName {
		y = *p.M3DYield
	}
	if y <= 0 || y > 1 {
		r.Feasible = false
		r.Error = fmt.Sprintf("dse: override yield %g outside (0, 1]", y)
		return r
	}
	emb := dp.Embodied.Grams() * dp.Yield / y
	if p.M3DEmbodiedScale != nil && p.System == e.m3dName {
		emb *= *p.M3DEmbodiedScale
	}
	dp.Embodied = units.GramsCO2e(emb)
	dp.Yield = y
	r.Yield = y
	r.EmbodiedGoodDieG = emb

	scenario := tcdp.PaperScenario()
	prof := carbon.Profile(carbon.Flat(e.useGrid))
	if p.CIUseScale != 1 {
		prof = carbon.Scaled(prof, p.CIUseScale)
	}
	scenario.Profile = prof
	life := units.Months(p.LifetimeMonths)
	tc, err := tcdp.TC(dp, scenario, life)
	if err != nil {
		r.Feasible = false
		r.Error = err.Error()
		return r
	}
	r.TCG = tc.TC().Grams()
	r.TCDPGS = r.TCG * dp.ExecTime
	return r
}
