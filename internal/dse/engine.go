package dse

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"ppatc/internal/core"
	"ppatc/internal/obs"
)

// Options tunes a Run. The zero value is usable: GOMAXPROCS workers, no
// checkpoint, no hooks.
type Options struct {
	// Workers caps the evaluation concurrency (<=0 means GOMAXPROCS).
	// The worker count never changes results — only wall-clock time.
	Workers int
	// Completed holds checkpointed results keyed by point index; the
	// engine emits them verbatim without re-evaluating.
	Completed map[int]Result
	// OnComplete fires once per freshly evaluated point, in completion
	// order, before the point appears anywhere else — the checkpoint
	// hook. Calls are serialized. A non-nil error cancels the run.
	OnComplete func(Result) error
	// OnResult fires once per point in plan-index order — the streaming
	// hook. Calls are serialized. A non-nil error cancels the run.
	OnResult func(Result) error
	// EvalCounter, when set, is incremented once per freshly evaluated
	// and recorded point (checkpointed points don't count).
	EvalCounter *obs.Counter
	// MaxPoints rejects plans larger than this many points (<=0 = no
	// cap). Servers use it to bound job size.
	MaxPoints int
	// NoMemo disables stage memoization: every freshly evaluated tuple
	// re-runs all five pipeline stages. Results are identical either
	// way — the memo only skips recomputing pure stage outputs — so this
	// exists for benchmarking the memo and as an escape hatch.
	NoMemo bool
	// Memo, when set, is the stage memo to evaluate through, letting a
	// caller share stage results across runs (e.g. successive sweeps over
	// the same designs). Nil means a fresh per-run memo (unless NoMemo).
	Memo *core.Memo
}

// Run expands the spec and evaluates every point on a worker pool.
// Results are returned (and streamed via OnResult) in plan order, and
// are identical for any worker count: the plan expansion is serial, the
// per-point work is a pure function of the point, and a reorder buffer
// restores index order at the collector. Cancelling ctx stops the run
// early with ctx.Err(); points already handed to OnComplete are durable.
func Run(ctx context.Context, spec *Spec, opts Options) ([]Result, error) {
	plan, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	return RunPlan(ctx, plan, opts)
}

// RunPlan executes an already expanded plan. See Run.
func RunPlan(ctx context.Context, plan *Plan, opts Options) ([]Result, error) {
	return RunPlanRange(ctx, plan, 0, len(plan.Points), opts)
}

// RunPlanRange executes the contiguous slice [lo, hi) of an expanded
// plan's points — the shard primitive for distributed sweeps. Results
// come back (and stream via OnResult) in plan-index order within the
// range, carrying their absolute plan indices, so a coordinator can
// concatenate range outputs back into the full plan order. Checkpointed
// results in opts.Completed are keyed by absolute plan index; entries
// outside the range are ignored.
func RunPlanRange(ctx context.Context, plan *Plan, lo, hi int, opts Options) ([]Result, error) {
	if lo < 0 || hi > len(plan.Points) || lo > hi {
		return nil, fmt.Errorf("dse: range [%d, %d) outside plan of %d points", lo, hi, len(plan.Points))
	}
	points := plan.Points[lo:hi]
	total := len(points)
	if opts.MaxPoints > 0 && total > opts.MaxPoints {
		return nil, fmt.Errorf("dse: plan has %d points, cap is %d", total, opts.MaxPoints)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if total == 0 {
		return nil, fmt.Errorf("dse: empty plan")
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	ctx, span := obs.StartSpan(ctx, "sweep")
	if span != nil {
		span.SetStr("spec", plan.Spec.Name)
		span.SetFloat("points", float64(total))
		span.SetFloat("workers", float64(workers))
		defer span.End()
	}

	memo := opts.Memo
	if memo == nil && !opts.NoMemo {
		memo = core.NewMemo()
	}
	ev := newEvaluator(plan.UseGrid, memo)
	todo := make(chan Point)
	done := make(chan Result, workers)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := range todo {
				r := ev.evaluate(ctx, p)
				if ctx.Err() != nil {
					return // a cancelled evaluation is not a result
				}
				select {
				case done <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Feeder: skip checkpointed points, stop on cancellation. Points are
	// fed in memo-locality order — grouped by core tuple so points
	// sharing stage inputs run close together — which never changes
	// results or output order (the collector's reorder buffer releases
	// by plan index regardless of evaluation order).
	go func() {
		defer close(todo)
		for _, i := range feedOrder(points) {
			p := points[i]
			if _, ok := opts.Completed[p.Index]; ok {
				continue
			}
			select {
			case todo <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collector: record completions as they land (OnComplete), release
	// results in index order (OnResult) through a reorder buffer. The
	// done channel is always drained so the workers never block on send.
	// Buffer slots are range-relative; Result.Index stays absolute.
	results := make([]Result, total)
	present := make([]bool, total)
	for i, r := range opts.Completed {
		if i >= lo && i < hi {
			results[i-lo] = r
			present[i-lo] = true
		}
	}
	next := 0 // first index not yet released
	release := func() error {
		for next < total && present[next] {
			if opts.OnResult != nil {
				if err := opts.OnResult(results[next]); err != nil {
					return fmt.Errorf("dse: result hook: %w", err)
				}
			}
			next++
		}
		return nil
	}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
			cancel(err)
		}
	}
	if err := release(); err != nil {
		fail(err)
	}
	for r := range done {
		if runErr != nil {
			continue // drain
		}
		if opts.OnComplete != nil {
			if err := opts.OnComplete(r); err != nil {
				fail(fmt.Errorf("dse: checkpoint hook: %w", err))
				continue
			}
		}
		// Counted only once durably recorded, so a cancel+resume pair
		// evaluates every point exactly once between them.
		if opts.EvalCounter != nil {
			opts.EvalCounter.Add(1)
		}
		results[r.Index-lo] = r
		present[r.Index-lo] = true
		if err := release(); err != nil {
			fail(err)
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			return nil, cause
		}
		return nil, err
	}
	if next != total {
		return nil, fmt.Errorf("dse: internal: released %d of %d points", next, total)
	}
	return results, nil
}

// feedOrder returns the points' positions in evaluation-feed order:
// stable-grouped by the stage-heavy coordinate (system, workload,
// clock) in order of first occurrence. Plan expansion puts the grid
// axis between workload and clock, so a mixed grid × clock sweep would
// otherwise alternate clocks between grid steps; grouping keeps every
// point that shares embench/eDRAM/synth/floorplan memo entries
// contiguous. Deterministic, and invisible in the output: the reorder
// buffer releases results by plan index regardless of feed order.
func feedOrder(points []Point) []int {
	keys := make([]string, len(points))
	rank := make(map[string]int)
	for i, p := range points {
		k := p.System + "\x00" + p.Workload + "\x00" + strconv.FormatFloat(p.ClockMHz, 'g', -1, 64)
		keys[i] = k
		if _, ok := rank[k]; !ok {
			rank[k] = len(rank)
		}
	}
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rank[keys[order[a]]] < rank[keys[order[b]]]
	})
	return order
}
