package dse

import (
	"fmt"
	"sort"
	"strings"
)

// Frontier extracts the Pareto-optimal subset of the feasible results
// under the given objectives (each minimized unless Maximize). A point
// is kept when no other feasible point is at least as good on every
// objective and strictly better on one. The frontier is returned sorted
// by the first objective (best first); input order breaks ties, so the
// output is deterministic.
func Frontier(results []Result, objectives []Objective) ([]Result, error) {
	if len(objectives) == 0 {
		return nil, fmt.Errorf("dse: frontier needs at least one objective")
	}
	for _, o := range objectives {
		if !ValidMetric(o.Metric) {
			return nil, fmt.Errorf("dse: unknown objective metric %q", o.Metric)
		}
	}
	// Canonicalize to minimization: score = value, negated for Maximize.
	var feasible []Result
	var scores [][]float64
	for i := range results {
		if !results[i].Feasible {
			continue
		}
		row := make([]float64, len(objectives))
		for j, o := range objectives {
			v, _ := results[i].Metric(o.Metric)
			if o.Maximize {
				v = -v
			}
			row[j] = v
		}
		feasible = append(feasible, results[i])
		scores = append(scores, row)
	}
	var keep []int
	for i := range feasible {
		dominated := false
		for k := range feasible {
			if k != i && dominates(scores[k], scores[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	sort.SliceStable(keep, func(a, b int) bool {
		return scores[keep[a]][0] < scores[keep[b]][0]
	})
	front := make([]Result, len(keep))
	for i, k := range keep {
		front[i] = feasible[k]
	}
	return front, nil
}

// dominates reports whether score vector a Pareto-dominates b (all
// minimized): a is no worse everywhere and strictly better somewhere.
func dominates(a, b []float64) bool {
	better := false
	for j := range a {
		if a[j] > b[j] {
			return false
		}
		if a[j] < b[j] {
			better = true
		}
	}
	return better
}

// FormatFrontier renders the frontier as an aligned text table over the
// objective metrics plus the identifying coordinate.
func FormatFrontier(front []Result, objectives []Objective) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pareto frontier (%d points)\n", len(front))
	header := []string{"index", "system", "workload", "grid", "clock_mhz"}
	for _, o := range objectives {
		dir := "min"
		if o.Maximize {
			dir = "max"
		}
		header = append(header, fmt.Sprintf("%s(%s)", o.Metric, dir))
	}
	rows := [][]string{header}
	for i := range front {
		r := &front[i]
		row := []string{
			fmt.Sprintf("%d", r.Index), r.System, r.Workload, r.Grid,
			fmt.Sprintf("%.1f", r.ClockMHz),
		}
		for _, o := range objectives {
			v, _ := r.Metric(o.Metric)
			row = append(row, fmt.Sprintf("%.4g", v))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for j, cell := range row {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for j, cell := range row {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[j], cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
