package floorplan

import (
	"math"
	"testing"

	"ppatc/internal/units"
)

func TestComposeTableIIDies(t *testing.T) {
	// Si: two 0.068 mm² macros (≈261 µm square) plus a 0.0039 mm² core
	// must land near Table II's 0.139 mm² die.
	memSide := units.Micrometers(math.Sqrt(0.068e6)) // µm
	chip, err := Compose(memSide, memSide, units.SquareMillimeters(0.068), units.SquareMillimeters(0.0039))
	if err != nil {
		t.Fatal(err)
	}
	if got := chip.Area.SquareMillimeters(); math.Abs(got-0.139)/0.139 > 0.03 {
		t.Errorf("Si die area = %v mm², want 0.139 ± 3%%", got)
	}
	if chip.Width <= chip.Height {
		t.Error("side-by-side macros make the die wider than tall")
	}
}

func TestComposeGeometry(t *testing.T) {
	chip, err := Compose(units.Micrometers(100), units.Micrometers(50),
		units.SquareMicrometers(5000), units.SquareMicrometers(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := chip.Width.Micrometers(); math.Abs(got-200) > 1e-9 {
		t.Errorf("width = %v µm, want 200", got)
	}
	// Height = memH + coreArea/width = 50 + 1000/200 = 55.
	if got := chip.Height.Micrometers(); math.Abs(got-55) > 1e-9 {
		t.Errorf("height = %v µm, want 55", got)
	}
	// Area identity.
	if got, want := chip.Area.SquareMicrometers(), 200.0*55; math.Abs(got-want) > 1e-6 {
		t.Errorf("area = %v µm², want %v", got, want)
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := Compose(0, 1, 1, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Compose(1, 1, 0, 1); err == nil {
		t.Error("zero memory area should fail")
	}
	if _, err := Compose(1, 1, 1, 0); err == nil {
		t.Error("zero core area should fail")
	}
}
