// Package floorplan composes the chip-level physical layout of the paper's
// embedded system (Fig. 3c): the two 64 kB eDRAM macros (program and data)
// placed side by side with the Cortex-M0 core and its glue in a strip along
// one edge. The resulting die dimensions feed the die-per-wafer estimate
// (Table II reports H×W of 270×515 µm for the all-Si design and 159×334 µm
// for the M3D design).
package floorplan

import (
	"errors"

	"ppatc/internal/units"
)

// Chip is the composed die.
type Chip struct {
	// Width and Height are the die dimensions.
	Width, Height units.Length
	// Area is Width × Height.
	Area units.Area
	// MemoryArea is the footprint of one 64 kB macro.
	MemoryArea units.Area
	// CoreArea is the M0 + glue footprint.
	CoreArea units.Area
}

// Compose places two identical memory macros side by side with the core
// strip beneath them:
//
//	+-----------+-----------+
//	| program   | data      |
//	| memory    | memory    |
//	+-----------+-----------+
//	| M0 core + glue strip  |
//	+-----------------------+
func Compose(memWidth, memHeight units.Length, memArea, coreArea units.Area) (Chip, error) {
	if memWidth <= 0 || memHeight <= 0 {
		return Chip{}, errors.New("floorplan: memory dimensions must be positive")
	}
	if memArea <= 0 || coreArea <= 0 {
		return Chip{}, errors.New("floorplan: areas must be positive")
	}
	w := 2 * memWidth.Meters()
	coreH := coreArea.SquareMeters() / w
	h := memHeight.Meters() + coreH
	return Chip{
		Width:      units.Meters(w),
		Height:     units.Meters(h),
		Area:       units.SquareMeters(w * h),
		MemoryArea: memArea,
		CoreArea:   coreArea,
	}, nil
}
