// Package edram models the paper's 3-transistor (3T) gain-cell eDRAM
// (Fig. 3): one write transistor charges the storage node (SN) from the
// write bitline when the write wordline is asserted, and a two-transistor
// read stack (storage transistor gated by SN, select transistor gated by
// the read wordline) discharges the read bitline when a '1' is stored.
//
// Two implementations are characterized, mirroring Fig. 1:
//
//   - the all-Si cell, with Si FinFETs throughout — fast writes but
//     FinFET-leakage-limited retention, so the array needs refresh;
//   - the M3D cell, with an IGZO write transistor (ultra-low I_OFF →
//     > 1000 s retention, no refresh in practice) and CNFET read stack
//     (high I_EFF → fast reads), fabricated above the Si periphery.
//
// Cell dynamics (write charging, read discharge, retention droop) are
// validated with the internal/spice simulator using the internal/device
// compact models; array-level energy and latency are assembled in
// memory.go following standard memory-compiler practice.
package edram

import (
	"errors"
	"fmt"

	"ppatc/internal/device"
	"ppatc/internal/spice"
	"ppatc/internal/units"
)

// CellDesign describes one 3T bit-cell implementation.
type CellDesign struct {
	// Name identifies the design ("all-Si 3T", "M3D IGZO/CNFET 3T").
	Name string
	// Write is the write-access transistor (M1 in Fig. 3a).
	Write device.Params
	// Storage is the storage transistor whose gate is the SN (M2).
	Storage device.Params
	// Select is the read-select transistor (M3).
	Select device.Params
	// WriteW, StorageW, SelectW are the transistor widths in meters.
	WriteW, StorageW, SelectW float64
	// SNCap is the storage-node capacitance in farads (gate of M2 plus
	// parasitics).
	SNCap float64
	// CellWidth and CellHeight are the bit-cell footprint dimensions.
	CellWidth, CellHeight units.Length
	// VDD is the cell supply; VWWL is the boosted write-wordline level.
	VDD, VWWL float64
	// StackedOverPeriphery is true when the cell transistors sit in the
	// BEOL above the peripheral circuits (the M3D case), so the array
	// claims no extra footprint for periphery.
	StackedOverPeriphery bool
	// SenseMargin is the SN droop (volts) at which a stored '1' is no
	// longer reliably read; it sets retention time.
	SenseMargin float64
}

// Validate checks the design.
func (d CellDesign) Validate() error {
	switch {
	case d.WriteW <= 0 || d.StorageW <= 0 || d.SelectW <= 0:
		return fmt.Errorf("edram %s: transistor widths must be positive", d.Name)
	case d.SNCap <= 0:
		return fmt.Errorf("edram %s: storage capacitance must be positive", d.Name)
	case d.CellWidth <= 0 || d.CellHeight <= 0:
		return fmt.Errorf("edram %s: cell dimensions must be positive", d.Name)
	case d.VDD <= 0 || d.VWWL < d.VDD:
		return fmt.Errorf("edram %s: need VWWL ≥ VDD > 0", d.Name)
	case d.SenseMargin <= 0 || d.SenseMargin >= d.VDD:
		return fmt.Errorf("edram %s: sense margin must be in (0, VDD)", d.Name)
	}
	for _, p := range []device.Params{d.Write, d.Storage, d.Select} {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("edram %s: %w", d.Name, err)
		}
	}
	return nil
}

// CellArea reports the bit-cell footprint.
func (d CellDesign) CellArea() units.Area {
	return d.CellWidth.TimesLength(d.CellHeight)
}

// SiCellDesign returns the all-Si 3T cell. The write device uses the HVT
// flavour to stretch retention (the standard gain-cell design choice); the
// read stack uses RVT for speed. Dimensions are sized so a 64 kB memory
// lands at the paper's 0.068 mm² footprint (Table II) including periphery.
func SiCellDesign() CellDesign {
	return CellDesign{
		Name:     "all-Si 3T",
		Write:    device.SiNFET(device.HVT),
		Storage:  device.SiNFET(device.RVT),
		Select:   device.SiNFET(device.RVT),
		WriteW:   20e-9,
		StorageW: 30e-9,
		SelectW:  30e-9,
		// The Si cell needs an explicit MOS storage capacitor to survive
		// FinFET leakage long enough for a practical refresh rate; the
		// extra capacitor is part of why the Si cell is larger.
		SNCap:      1.60e-15,
		CellWidth:  units.Micrometers(0.28),
		CellHeight: units.Micrometers(0.40),
		VDD:        device.VDD,
		// The NMOS access device cannot pass a full '1' without gate
		// boost (SN stalls at VWWL − VT), so the Si wordline is boosted
		// too — standard gain-cell practice, smaller boost than M3D's.
		VWWL:        1.2,
		SenseMargin: 0.10,
	}
}

// M3DCellDesign returns the IGZO/CNFET 3T cell of the paper: IGZO write
// transistor driven by a boosted 1.3 V write wordline (to overcome its low
// mobility), CNFET read stack, fabricated over the Si periphery. The
// smaller footprint reflects the stacked geometry and sizes a 64 kB memory
// at the paper's 0.025 mm² (Table II).
func M3DCellDesign() CellDesign {
	return CellDesign{
		Name:    "M3D IGZO/CNFET 3T",
		Write:   device.IGZO(),
		Storage: device.CNFET(),
		Select:  device.CNFET(),
		// The IGZO write device is the widest in the cell: even with the
		// boosted wordline its low mobility makes the write the critical
		// edge, and the width buys it back under the 2 ns cycle.
		WriteW:               80e-9,
		StorageW:             30e-9,
		SelectW:              30e-9,
		SNCap:                0.30e-15,
		CellWidth:            units.Micrometers(0.20),
		CellHeight:           units.Micrometers(0.24),
		VDD:                  device.VDD,
		VWWL:                 device.WriteWordlineVoltage,
		StackedOverPeriphery: true,
		SenseMargin:          0.10,
	}
}

// AtTemperature derives the cell design at a junction temperature (°C),
// re-deriving all three device parameter sets. Retention is the quantity
// that moves: Si gain cells lose roughly an order of magnitude of hold
// time from 25 °C to 85 °C, while the IGZO cell's anchored leakage keeps
// it refresh-free across the industrial range.
func (d CellDesign) AtTemperature(tempC float64) CellDesign {
	out := d
	out.Name = fmt.Sprintf("%s @ %g°C", d.Name, tempC)
	out.Write = d.Write.AtTemperature(tempC)
	out.Storage = d.Storage.AtTemperature(tempC)
	out.Select = d.Select.AtTemperature(tempC)
	return out
}

// CellTiming is the SPICE-characterized dynamic behaviour of one cell.
type CellTiming struct {
	// WriteDelay is the time for the SN to charge to VDD − SenseMargin
	// through the write transistor, in seconds.
	WriteDelay float64
	// ReadDelay is the time for the read stack to discharge the given
	// bitline capacitance by the sense margin, in seconds.
	ReadDelay float64
	// Retention is the hold time before the SN droops by the sense
	// margin, in seconds (analytic: C·ΔV / I_hold).
	Retention float64
	// WriteEnergy is the energy drawn from the write bitline and boosted
	// wordline supplies for one cell write, in joules.
	WriteEnergy float64
}

// CharacterizeCell runs the cell's write and read transients and the
// retention analysis. blCap is the read-bitline capacitance the cell must
// discharge (from the array geometry).
func CharacterizeCell(d CellDesign, blCap float64) (CellTiming, error) {
	if err := d.Validate(); err != nil {
		return CellTiming{}, err
	}
	if blCap <= 0 {
		return CellTiming{}, errors.New("edram: bitline capacitance must be positive")
	}
	var tm CellTiming

	wd, we, err := writeTransient(d)
	if err != nil {
		return CellTiming{}, fmt.Errorf("edram %s write: %w", d.Name, err)
	}
	tm.WriteDelay, tm.WriteEnergy = wd, we

	rd, err := readTransient(d, blCap)
	if err != nil {
		return CellTiming{}, fmt.Errorf("edram %s read: %w", d.Name, err)
	}
	tm.ReadDelay = rd

	// Retention: the SN droops through the write transistor's hold-state
	// leakage. This is analytic because the time scales (µs for Si,
	// >10⁵ s for IGZO) dwarf any practical transient step.
	iHold := d.Write.HoldLeakage(d.VDD) * d.WriteW
	if iHold <= 0 {
		return CellTiming{}, errors.New("edram: hold leakage must be positive")
	}
	tm.Retention = d.SNCap * d.SenseMargin / iHold
	return tm, nil
}

// writeTransient simulates charging the SN to '1' through the write
// transistor with the boosted wordline, reporting the delay to reach
// VDD − SenseMargin and the energy drawn from the sources.
func writeTransient(d CellDesign) (delay, energy float64, err error) {
	ck := spice.NewCircuit()
	rise := 20e-12
	// Write bitline at VDD, wordline pulses to VWWL.
	if err := ck.AddV("vwbl", "wbl", spice.Ground, spice.DC(d.VDD)); err != nil {
		return 0, 0, err
	}
	wwl := spice.Pulse{V1: 0, V2: d.VWWL, Delay: 50e-12, Rise: rise, Width: 10e-9, Fall: rise}
	if err := ck.AddV("vwwl", "wwl", spice.Ground, wwl); err != nil {
		return 0, 0, err
	}
	// Write FET: drain = WBL, gate = WWL, source = SN.
	if err := ck.AddFET("mw", "wbl", "wwl", "sn", d.Write, d.WriteW); err != nil {
		return 0, 0, err
	}
	if err := ck.AddC("csn", "sn", spice.Ground, d.SNCap); err != nil {
		return 0, 0, err
	}
	// Choose the step from the expected charging time scale.
	iOn := d.Write.DrainCurrent(d.VWWL, d.VDD, d.WriteW)
	tScale := d.SNCap * d.VDD / iOn
	dt := clamp(tScale/400, 1e-13, 5e-12)
	tstop := 50e-12 + 10*tScale
	if tstop > 10e-9 {
		tstop = 10e-9
	}
	tr, err := ck.TransientFromZero(tstop, dt)
	if err != nil {
		return 0, 0, err
	}
	target := d.VDD - d.SenseMargin
	tc, err := tr.CrossingTime("sn", target, true, 50e-12)
	if err != nil {
		return 0, 0, fmt.Errorf("SN never reached %.2f V: %w", target, err)
	}
	eWBL, err := tr.SourceEnergy("vwbl")
	if err != nil {
		return 0, 0, err
	}
	eWWL, err := tr.SourceEnergy("vwwl")
	if err != nil {
		return 0, 0, err
	}
	return tc - 50e-12, eWBL + eWWL, nil
}

// readTransient simulates the read stack discharging a precharged bitline
// with a stored '1', reporting the delay for the bitline to droop by the
// sense margin.
func readTransient(d CellDesign, blCap float64) (float64, error) {
	// Time scale from the read stack's drive; weak-read cells (all-IGZO
	// topologies) need microseconds, so the wordline stays asserted for
	// the whole window.
	iRead := d.Storage.IEFF(d.VDD) * d.StorageW
	tScale := blCap * d.SenseMargin / iRead
	dt := clamp(tScale/300, 1e-13, 50e-12)
	tstop := 50e-12 + 12*tScale

	ck := spice.NewCircuit()
	// SN held at VDD by an ideal source (stored '1'); RWL pulses high.
	if err := ck.AddV("vsn", "sn", spice.Ground, spice.DC(d.VDD)); err != nil {
		return 0, err
	}
	rwl := spice.Pulse{V1: 0, V2: d.VDD, Delay: 50e-12, Rise: 20e-12, Width: tstop, Fall: 20e-12}
	if err := ck.AddV("vrwl", "rwl", spice.Ground, rwl); err != nil {
		return 0, err
	}
	// Precharge PMOS holds RBL at VDD while its gate is low, then turns
	// off at 30 ps — before the read wordline rises at 50 ps — exactly how
	// the array's precharge devices behave.
	if err := ck.AddV("vdd", "vdd", spice.Ground, spice.DC(d.VDD)); err != nil {
		return 0, err
	}
	preGate := spice.Pulse{V1: 0, V2: d.VDD, Delay: 30e-12, Rise: 10e-12, Width: 1, Fall: 10e-12}
	if err := ck.AddV("vpre", "preb", spice.Ground, preGate); err != nil {
		return 0, err
	}
	if err := ck.AddFET("mpre", "rbl", "preb", "vdd", device.SiPFET(device.RVT), 200e-9); err != nil {
		return 0, err
	}
	if err := ck.AddC("cbl", "rbl", spice.Ground, blCap); err != nil {
		return 0, err
	}
	// Read stack: RBL → select FET → mid → storage FET → gnd.
	if err := ck.AddFET("msel", "rbl", "rwl", "mid", d.Select, d.SelectW); err != nil {
		return 0, err
	}
	if err := ck.AddFET("msto", "mid", "sn", spice.Ground, d.Storage, d.StorageW); err != nil {
		return 0, err
	}
	tr, err := ck.Transient(tstop, dt)
	if err != nil {
		return 0, err
	}
	target := d.VDD - d.SenseMargin
	tc, err := tr.CrossingTime("rbl", target, false, 50e-12)
	if err != nil {
		return 0, fmt.Errorf("RBL never drooped to %.2f V: %w", target, err)
	}
	return tc - 50e-12, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
