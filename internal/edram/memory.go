package edram

import (
	"errors"
	"fmt"
	"math"

	"ppatc/internal/units"
)

// ArraySpec describes the sub-array organisation of the memory. The paper
// partitions each 64 kB memory into 2 kB sub-arrays ("each with 512 32-bit
// words, which improves timing due to relatively smaller capacitive loading
// of 2 kB sub-arrays", Sec. III-B Step 2); we fold each sub-array into a
// near-square 128×128 cell mat with 4:1 column multiplexing.
type ArraySpec struct {
	// Rows and Cols are the physical mat dimensions in cells.
	Rows, Cols int
	// WordBits is the access width (32 for the M0).
	WordBits int
	// SubArrayBytes is the capacity of one sub-array.
	SubArrayBytes int
	// TotalBytes is the memory capacity.
	TotalBytes int
	// WireCapPerMicron is the routing capacitance per micron (F/µm) used
	// for wordlines, bitlines and the global H-tree.
	WireCapPerMicron float64
	// JunctionCapPerCell is the drain-junction load each cell adds to its
	// bitline (F).
	JunctionCapPerCell float64
}

// PaperArray returns the paper's organisation: 64 kB of 2 kB sub-arrays,
// 128×128 mats, 32-bit words.
func PaperArray() ArraySpec {
	return ArraySpec{
		Rows: 128, Cols: 128,
		WordBits:           32,
		SubArrayBytes:      2 * 1024,
		TotalBytes:         64 * 1024,
		WireCapPerMicron:   0.35e-15,
		JunctionCapPerCell: 0.04e-15,
	}
}

// Validate checks the spec.
func (a ArraySpec) Validate() error {
	switch {
	case a.Rows <= 0 || a.Cols <= 0 || a.WordBits <= 0:
		return errors.New("edram: array dimensions must be positive")
	case a.SubArrayBytes <= 0 || a.TotalBytes < a.SubArrayBytes:
		return errors.New("edram: need total ≥ sub-array > 0 bytes")
	case a.Rows*a.Cols != a.SubArrayBytes*8:
		return fmt.Errorf("edram: mat %d×%d does not hold %d bytes", a.Rows, a.Cols, a.SubArrayBytes)
	case a.Cols%a.WordBits != 0:
		return errors.New("edram: columns must be a multiple of the word width")
	case a.WireCapPerMicron <= 0 || a.JunctionCapPerCell < 0:
		return errors.New("edram: wire parameters must be positive")
	}
	return nil
}

// SubArrays reports the number of sub-arrays in the memory.
func (a ArraySpec) SubArrays() int { return a.TotalBytes / a.SubArrayBytes }

// PeripheryEnergies collects the per-event energies of the peripheral
// circuits, the quantities the paper extracts from post-layout power
// analysis (Cadence Innovus) of the decoder, refresh controller, write
// drivers and sense amplifiers.
type PeripheryEnergies struct {
	// SenseAmp is the energy of one sense-amplifier evaluation (J).
	SenseAmp float64
	// DecoderPerAccess is the row/column decode energy per access (J).
	DecoderPerAccess float64
	// ControlPerAccess is the clocking/control overhead per access (J).
	// This is the calibration anchor matched to the paper's post-layout
	// power analysis; it absorbs clock tree, latches and repeaters that a
	// geometric wire model cannot see.
	ControlPerAccess float64
	// LeakagePower is the static power of the peripheral circuits (W).
	LeakagePower float64
}

// Memory is the characterized 64 kB eDRAM macro.
type Memory struct {
	// Design and Array echo the inputs.
	Design CellDesign
	Array  ArraySpec
	// Periphery echoes the peripheral energy set.
	Periphery PeripheryEnergies
	// Timing is the SPICE-characterized cell behaviour.
	Timing CellTiming
	// ReadEnergy and WriteEnergy are per 32-bit access (J).
	ReadEnergy, WriteEnergy float64
	// ReadLatency and WriteLatency are the access critical paths (s).
	ReadLatency, WriteLatency float64
	// RefreshPower is the average power spent refreshing the whole memory
	// while powered (W); zero when retention makes refresh unnecessary.
	RefreshPower float64
	// RefreshInterval is the per-row refresh period (s); +Inf when no
	// refresh is needed.
	RefreshInterval float64
	// LeakagePower is the static power of the macro (W).
	LeakagePower float64
	// Area is the macro footprint; Width and Height its dimensions.
	Area          units.Area
	Width, Height units.Length
	// BitlineCap is the read-bitline capacitance seen by a cell (F).
	BitlineCap float64
}

// refreshHorizon is the powered time (s) beyond which we treat retention
// as unlimited: cells holding longer than a day never refresh within any
// realistic duty cycle.
const refreshHorizon = 86400.0

// peripheryAreaOverhead is the footprint the row/column periphery adds to
// a planar (non-stacked) array, as a fraction of cell area.
const peripheryAreaOverhead = 0.16

// Build characterizes the memory macro: runs the cell transients, derives
// wire loads from the physical geometry, and assembles access energies,
// latencies, refresh and leakage.
func Build(d CellDesign, a ArraySpec, p PeripheryEnergies) (*Memory, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if p.SenseAmp < 0 || p.DecoderPerAccess < 0 || p.ControlPerAccess < 0 || p.LeakagePower < 0 {
		return nil, errors.New("edram: periphery energies must be non-negative")
	}

	m := &Memory{Design: d, Array: a, Periphery: p}

	// --- Geometry ---------------------------------------------------------
	cellW := d.CellWidth.Micrometers()
	cellH := d.CellHeight.Micrometers()
	matW := cellW * float64(a.Cols) // µm
	matH := cellH * float64(a.Rows)
	cellArea := d.CellArea().SquareMicrometers() * float64(a.TotalBytes*8)
	totalArea := cellArea
	if !d.StackedOverPeriphery {
		totalArea *= 1 + peripheryAreaOverhead
	}
	m.Area = units.SquareMicrometers(totalArea)
	// Near-square macro.
	side := math.Sqrt(totalArea)
	m.Width = units.Micrometers(side)
	m.Height = units.Micrometers(totalArea / side)

	// --- Wire loads -------------------------------------------------------
	// Read bitline: one mat column of wire plus per-cell junctions.
	m.BitlineCap = matH*a.WireCapPerMicron + float64(a.Rows)*a.JunctionCapPerCell
	// Wordlines: one mat row of wire plus the gate loads it drives.
	rwlCap := matW*a.WireCapPerMicron + float64(a.Cols)*d.Select.CgPerWidth*d.SelectW
	wwlCap := matW*a.WireCapPerMicron + float64(a.Cols)*d.Write.CgPerWidth*d.WriteW
	// Write bitline: same wire as read bitline, loaded by write-FET
	// junctions (reuse the junction parameter).
	wblCap := m.BitlineCap

	// --- Cell characterization ---------------------------------------------
	tm, err := CharacterizeCell(d, m.BitlineCap)
	if err != nil {
		return nil, err
	}
	m.Timing = tm

	// --- Access energies ----------------------------------------------------
	vdd := d.VDD
	// Global H-tree: write-data, read-data, address and control wires
	// routed half the macro perimeter on average, toggling with ~50%
	// activity. Wire capacitance per micron includes repeater loading.
	routeLen := (m.Width.Micrometers() + m.Height.Micrometers()) / 2
	addrBits := int(math.Ceil(math.Log2(float64(a.TotalBytes * 8 / a.WordBits))))
	htreeWires := float64(2*a.WordBits + addrBits + 4)
	htreeCap := routeLen * a.WireCapPerMicron * htreeWires
	eHtree := htreeCap * vdd * vdd * 0.5

	// Read: decode + RWL swing + all mat bitlines droop by the sense
	// margin (the whole activated row evaluates) + sense amps on the
	// selected word + H-tree + control.
	eBitlines := float64(a.Cols) * m.BitlineCap * vdd * d.SenseMargin
	eRead := p.DecoderPerAccess + rwlCap*vdd*vdd + eBitlines +
		float64(a.WordBits)*p.SenseAmp + eHtree + p.ControlPerAccess
	// Write: decode + boosted WWL swing + write bitlines driven rail to
	// rail on the selected word (half toggle on average) + cell write
	// energy + H-tree + control.
	eWrite := p.DecoderPerAccess + wwlCap*d.VWWL*d.VWWL +
		float64(a.WordBits)*wblCap*vdd*vdd*0.5 +
		float64(a.WordBits)*tm.WriteEnergy + eHtree + p.ControlPerAccess
	m.ReadEnergy, m.WriteEnergy = eRead, eWrite

	// --- Latencies ----------------------------------------------------------
	// Decode and wordline rise are modeled as fixed peripheral stages;
	// the SPICE-characterized cell/bitline transient dominates.
	const decodeDelay = 150e-12
	const senseDelay = 100e-12
	m.ReadLatency = decodeDelay + tm.ReadDelay + senseDelay
	m.WriteLatency = decodeDelay + tm.WriteDelay

	// --- Refresh -------------------------------------------------------------
	// Refresh every half retention period (guard-banded), one row at a
	// time: each row refresh is a read of the row plus a write-back.
	if tm.Retention < refreshHorizon {
		m.RefreshInterval = tm.Retention / 2
		rowsTotal := float64(a.SubArrays() * a.Rows)
		// A row refresh is an internal operation: the refresh controller
		// activates one row (read wordline + all bitlines + sense) and
		// writes it back (boosted write wordline + write bitlines + cell
		// charge). No H-tree or per-access control energy is spent — the
		// data never leaves the mat.
		eRowRefresh := p.DecoderPerAccess +
			rwlCap*vdd*vdd + wwlCap*d.VWWL*d.VWWL +
			eBitlines +
			float64(a.Cols)*(p.SenseAmp+wblCap*vdd*vdd*0.5+tm.WriteEnergy)
		m.RefreshPower = rowsTotal * eRowRefresh / m.RefreshInterval
	} else {
		m.RefreshInterval = math.Inf(1)
	}

	m.LeakagePower = p.LeakagePower
	return m, nil
}

// EnergyPerCycle reports the average memory energy per clock cycle for an
// access mix: reads and writes per cycle (fractions), at the given clock
// frequency. Refresh and leakage powers convert to per-cycle energies
// through the clock period. This is the quantity Table II reports as
// "average memory energy per cycle".
func (m *Memory) EnergyPerCycle(readsPerCycle, writesPerCycle float64, clk units.Frequency) (units.Energy, error) {
	if readsPerCycle < 0 || writesPerCycle < 0 {
		return 0, errors.New("edram: access rates must be non-negative")
	}
	if clk <= 0 {
		return 0, errors.New("edram: clock frequency must be positive")
	}
	period := clk.PeriodSeconds()
	e := readsPerCycle*m.ReadEnergy + writesPerCycle*m.WriteEnergy +
		(m.RefreshPower+m.LeakagePower)*period
	return units.Joules(e), nil
}

// MeetsTiming reports whether both access latencies fit within the clock
// period — the paper's single-cycle access constraint (Sec. III-B Step 2).
func (m *Memory) MeetsTiming(clk units.Frequency) bool {
	period := clk.PeriodSeconds()
	return m.ReadLatency <= period && m.WriteLatency <= period
}

// PaperPeriphery returns the peripheral energy set calibrated against the
// paper's post-layout power numbers. The control-per-access anchor is the
// dominant knob: it is set so that the Table II per-cycle energies
// (18.0 pJ all-Si, 15.5 pJ M3D at 500 MHz under the matmul-int access mix)
// are reproduced by the full system model in internal/core.
func PaperPeriphery(d CellDesign) PeripheryEnergies {
	// The ControlPerAccess anchor dominates: post-P&R power analysis of a
	// 64 kB macro attributes most of the access energy to the clock tree,
	// pipeline registers, refresh controller and control logic rather
	// than the array wires a geometric model can see. It is set so the
	// full-system model reproduces Table II's 18.0 / 15.5 pJ per cycle.
	p := PeripheryEnergies{
		SenseAmp:         0.030e-12,
		DecoderPerAccess: 0.50e-12,
		ControlPerAccess: 15.70e-12,
		LeakagePower:     120e-6,
	}
	if d.StackedOverPeriphery {
		// The M3D macro is ~2.7× smaller: shorter clock/control routing
		// and a more compact decoder, and its Si periphery is the only
		// leakage contributor (the IGZO/CNFET array adds ~nothing).
		p.DecoderPerAccess = 0.40e-12
		p.ControlPerAccess = 15.05e-12
		p.LeakagePower = 90e-6
	}
	return p
}
