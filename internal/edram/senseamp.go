package edram

import (
	"errors"
	"fmt"

	"ppatc/internal/device"
	"ppatc/internal/spice"
)

// Sense-amplifier characterization (Fig. 3b's SA blocks). The array's
// sense amplifiers are latch-type: a cross-coupled inverter pair that
// regenerates a small bitline differential to full rail when enabled.
// This module builds the latch netlist and characterizes its resolution
// time and energy with the SPICE engine — the periphery counterpart of
// the bit-cell transients in cell.go.

// SenseAmpSpec describes the latch and its stimulus.
type SenseAmpSpec struct {
	// NMOS and PMOS are the latch devices (Si periphery in both designs).
	NMOS, PMOS device.Params
	// NW and PW are the device widths (meters).
	NW, PW float64
	// BitlineCap loads each side of the latch.
	BitlineCap float64
	// VDD is the supply.
	VDD float64
	// InputDifferential is the initial voltage difference the latch must
	// resolve (the sense margin developed by the cell).
	InputDifferential float64
}

// PaperSenseAmp returns the latch used by both designs' periphery.
func PaperSenseAmp(blCap float64) SenseAmpSpec {
	return SenseAmpSpec{
		NMOS:              device.SiNFET(device.LVT),
		PMOS:              device.SiPFET(device.LVT),
		NW:                60e-9,
		PW:                90e-9,
		BitlineCap:        blCap,
		VDD:               device.VDD,
		InputDifferential: 0.10,
	}
}

// Validate checks the spec.
func (s SenseAmpSpec) Validate() error {
	switch {
	case s.NW <= 0 || s.PW <= 0:
		return errors.New("edram: sense-amp widths must be positive")
	case s.BitlineCap <= 0:
		return errors.New("edram: sense-amp load must be positive")
	case s.VDD <= 0:
		return errors.New("edram: sense-amp VDD must be positive")
	case s.InputDifferential <= 0 || s.InputDifferential >= s.VDD:
		return errors.New("edram: differential must be in (0, VDD)")
	}
	if err := s.NMOS.Validate(); err != nil {
		return err
	}
	return s.PMOS.Validate()
}

// SenseAmpResult is the characterized behaviour.
type SenseAmpResult struct {
	// ResolveTime is the time from enable until the high side reaches
	// 90% VDD and the low side falls below 10% VDD.
	ResolveTime float64
	// Energy is drawn from the supply during resolution (J).
	Energy float64
}

// CharacterizeSenseAmp runs the latch transient: both sides precharged
// near VDD with the input differential applied, then the foot switch
// enables regeneration.
func CharacterizeSenseAmp(s SenseAmpSpec) (SenseAmpResult, error) {
	if err := s.Validate(); err != nil {
		return SenseAmpResult{}, err
	}
	ck := spice.NewCircuit()
	if err := ck.AddV("vdd", "vdd", spice.Ground, spice.DC(s.VDD)); err != nil {
		return SenseAmpResult{}, err
	}
	// Foot enable: the latch sources tie to "foot", pulled to ground
	// through a wide enable NMOS gated at t = 100 ps.
	en := spice.Pulse{V1: 0, V2: s.VDD, Delay: 100e-12, Rise: 10e-12, Width: 1}
	if err := ck.AddV("ven", "en", spice.Ground, en); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddFET("mfoot", "foot", "en", spice.Ground, s.NMOS, 4*s.NW); err != nil {
		return SenseAmpResult{}, err
	}
	// Cross-coupled pair: left inverter drives "r", right drives "l".
	add := func(id, out, in string) error {
		if err := ck.AddFET("mp"+id, out, in, "vdd", s.PMOS, s.PW); err != nil {
			return err
		}
		return ck.AddFET("mn"+id, out, in, "foot", s.NMOS, s.NW)
	}
	if err := add("l", "l", "r"); err != nil {
		return SenseAmpResult{}, err
	}
	if err := add("r", "r", "l"); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddC("cl", "l", spice.Ground, s.BitlineCap); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddC("cr", "r", spice.Ground, s.BitlineCap); err != nil {
		return SenseAmpResult{}, err
	}
	// Initial differential: weak sources preset the nodes, releasing
	// before enable (large series resistors model released precharge).
	if err := ck.AddV("vinitl", "pl", spice.Ground, spice.Pulse{V1: s.VDD, V2: s.VDD, Width: 1}); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddV("vinitr", "pr", spice.Ground, spice.Pulse{V1: s.VDD - s.InputDifferential, V2: s.VDD - s.InputDifferential, Width: 1}); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddR("rpl", "pl", "l", 50e3); err != nil {
		return SenseAmpResult{}, err
	}
	if err := ck.AddR("rpr", "pr", "r", 50e3); err != nil {
		return SenseAmpResult{}, err
	}

	tr, err := ck.Transient(2e-9, 1e-12)
	if err != nil {
		return SenseAmpResult{}, fmt.Errorf("edram: sense amp transient: %w", err)
	}
	tLow, err := tr.CrossingTime("r", 0.1*s.VDD, false, 100e-12)
	if err != nil {
		return SenseAmpResult{}, fmt.Errorf("edram: latch never resolved low: %w", err)
	}
	res := SenseAmpResult{ResolveTime: tLow - 100e-12}
	e, err := tr.SourceEnergy("vdd")
	if err != nil {
		return SenseAmpResult{}, err
	}
	res.Energy = e
	return res, nil
}
