package edram

import (
	"math"
	"testing"

	"ppatc/internal/device"
	"ppatc/internal/spice"
	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func buildSi(t *testing.T) *Memory {
	t.Helper()
	d := SiCellDesign()
	m, err := Build(d, PaperArray(), PaperPeriphery(d))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func buildM3D(t *testing.T) *Memory {
	t.Helper()
	d := M3DCellDesign()
	m, err := Build(d, PaperArray(), PaperPeriphery(d))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCellDesignsValidate(t *testing.T) {
	for _, d := range []CellDesign{SiCellDesign(), M3DCellDesign()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	bad := SiCellDesign()
	bad.SNCap = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero SN cap should be invalid")
	}
	bad = SiCellDesign()
	bad.VWWL = 0.5 // below VDD
	if err := bad.Validate(); err == nil {
		t.Error("VWWL below VDD should be invalid")
	}
	bad = SiCellDesign()
	bad.SenseMargin = 1.0
	if err := bad.Validate(); err == nil {
		t.Error("sense margin ≥ VDD should be invalid")
	}
}

func TestArraySpecValidate(t *testing.T) {
	if err := PaperArray().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperArray()
	bad.Rows = 100 // 100×128 ≠ 2 kB
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent mat should be invalid")
	}
	bad = PaperArray()
	bad.WordBits = 33
	if err := bad.Validate(); err == nil {
		t.Error("non-divisor word width should be invalid")
	}
	if got := PaperArray().SubArrays(); got != 32 {
		t.Errorf("64 kB / 2 kB = %d sub-arrays, want 32", got)
	}
}

func TestMemoryAreasMatchTableII(t *testing.T) {
	// Table II: 64 kB memory footprint 0.068 mm² (Si), 0.025 mm² (M3D).
	si := buildSi(t)
	if got := si.Area.SquareMillimeters(); !almostEqual(got, 0.068, 0.03) {
		t.Errorf("Si 64 kB area = %v mm², want 0.068 ± 3%%", got)
	}
	m3d := buildM3D(t)
	if got := m3d.Area.SquareMillimeters(); !almostEqual(got, 0.025, 0.03) {
		t.Errorf("M3D 64 kB area = %v mm², want 0.025 ± 3%%", got)
	}
	// The area ratio drives the die economics: ≈2.7×.
	ratio := si.Area.SquareMillimeters() / m3d.Area.SquareMillimeters()
	if ratio < 2.4 || ratio > 3.0 {
		t.Errorf("Si/M3D memory area ratio = %.2f, want ≈2.7", ratio)
	}
}

func TestSingleCycleTimingAt500MHz(t *testing.T) {
	// Paper constraint: read and write complete within one 2 ns cycle.
	clk := units.Megahertz(500)
	for _, m := range []*Memory{buildSi(t), buildM3D(t)} {
		if !m.MeetsTiming(clk) {
			t.Errorf("%s: read %.3g s / write %.3g s exceed 2 ns",
				m.Design.Name, m.ReadLatency, m.WriteLatency)
		}
		if m.ReadLatency <= 0 || m.WriteLatency <= 0 {
			t.Errorf("%s: non-positive latency", m.Design.Name)
		}
	}
}

func TestRetentionRegimes(t *testing.T) {
	si := buildSi(t)
	m3d := buildM3D(t)
	// Si gain cell: microseconds-scale retention → needs refresh.
	if si.Timing.Retention > 1e-2 || si.Timing.Retention < 1e-6 {
		t.Errorf("Si retention = %.3g s, want µs-ms scale", si.Timing.Retention)
	}
	if si.RefreshPower <= 0 || math.IsInf(si.RefreshInterval, 1) {
		t.Error("Si memory must refresh")
	}
	// M3D IGZO cell: >1000 s retention (paper cites Belmonte) → no refresh.
	if m3d.Timing.Retention < 1000 {
		t.Errorf("M3D retention = %.3g s, want > 1000 s", m3d.Timing.Retention)
	}
	if m3d.RefreshPower != 0 || !math.IsInf(m3d.RefreshInterval, 1) {
		t.Error("M3D memory must not refresh")
	}
}

func TestM3DReadsFasterWritesSlower(t *testing.T) {
	// Table I trade-offs realized: the CNFET read stack beats Si; the IGZO
	// write (even overdriven) is slower than the Si write.
	si := buildSi(t)
	m3d := buildM3D(t)
	if m3d.Timing.ReadDelay >= si.Timing.ReadDelay {
		t.Errorf("CNFET read %.3g s should beat Si read %.3g s",
			m3d.Timing.ReadDelay, si.Timing.ReadDelay)
	}
	if m3d.Timing.WriteDelay <= si.Timing.WriteDelay {
		t.Errorf("IGZO write %.3g s should be slower than Si write %.3g s",
			m3d.Timing.WriteDelay, si.Timing.WriteDelay)
	}
}

func TestAccessEnergiesOrdering(t *testing.T) {
	si := buildSi(t)
	m3d := buildM3D(t)
	for _, m := range []*Memory{si, m3d} {
		if m.ReadEnergy <= 0 || m.WriteEnergy <= 0 {
			t.Fatalf("%s: non-positive access energy", m.Design.Name)
		}
		// Access energies at 64 kB/7 nm land in the picojoule decade.
		if m.ReadEnergy < 1e-12 || m.ReadEnergy > 50e-12 {
			t.Errorf("%s read energy = %.3g J, want pJ scale", m.Design.Name, m.ReadEnergy)
		}
	}
	// The smaller M3D macro must be cheaper per read (shorter wires).
	if m3d.ReadEnergy >= si.ReadEnergy {
		t.Errorf("M3D read %.3g J should beat Si %.3g J", m3d.ReadEnergy, si.ReadEnergy)
	}
}

func TestEnergyPerCycle(t *testing.T) {
	si := buildSi(t)
	clk := units.Megahertz(500)
	e, err := si.EnergyPerCycle(1.0, 0.1, clk)
	if err != nil {
		t.Fatal(err)
	}
	manual := si.ReadEnergy + 0.1*si.WriteEnergy + (si.RefreshPower+si.LeakagePower)*2e-9
	if !almostEqual(e.Joules(), manual, 1e-12) {
		t.Errorf("energy per cycle = %v, want %v", e.Joules(), manual)
	}
	if _, err := si.EnergyPerCycle(-1, 0, clk); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := si.EnergyPerCycle(1, 0, 0); err == nil {
		t.Error("zero clock should fail")
	}
	// Idle memory still pays refresh + leakage.
	idle, err := si.EnergyPerCycle(0, 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	if idle.Joules() <= 0 {
		t.Error("idle Si memory should still burn refresh+leakage energy")
	}
}

func TestCharacterizeCellErrors(t *testing.T) {
	if _, err := CharacterizeCell(SiCellDesign(), 0); err == nil {
		t.Error("zero bitline cap should fail")
	}
	bad := SiCellDesign()
	bad.WriteW = 0
	if _, err := CharacterizeCell(bad, 1e-15); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	d := SiCellDesign()
	a := PaperArray()
	if _, err := Build(CellDesign{}, a, PaperPeriphery(d)); err == nil {
		t.Error("invalid design should fail")
	}
	if _, err := Build(d, ArraySpec{}, PaperPeriphery(d)); err == nil {
		t.Error("invalid array should fail")
	}
	p := PaperPeriphery(d)
	p.SenseAmp = -1
	if _, err := Build(d, a, p); err == nil {
		t.Error("negative periphery energy should fail")
	}
}

func TestWriteEnergyScalesWithSNCap(t *testing.T) {
	small := SiCellDesign()
	big := SiCellDesign()
	big.SNCap = 2 * small.SNCap
	ts, err := CharacterizeCell(small, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := CharacterizeCell(big, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	if tb.WriteEnergy <= ts.WriteEnergy {
		t.Errorf("doubling SN cap should raise write energy: %.3g vs %.3g",
			tb.WriteEnergy, ts.WriteEnergy)
	}
	if tb.Retention <= ts.Retention {
		t.Error("doubling SN cap should lengthen retention")
	}
	if tb.WriteDelay <= ts.WriteDelay {
		t.Error("doubling SN cap should slow the write")
	}
}

func TestIGZOOverdriveRequired(t *testing.T) {
	// Without the boosted wordline the IGZO write cannot finish within a
	// small multiple of the cycle time — that is why the paper sets
	// V_WWL = 1.3 V.
	boosted := M3DCellDesign()
	flat := M3DCellDesign()
	flat.VWWL = flat.VDD
	tb, err := CharacterizeCell(boosted, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := CharacterizeCell(flat, 15e-15)
	if err == nil && tf.WriteDelay < 2*tb.WriteDelay {
		t.Errorf("unboosted IGZO write %.3g s should be ≫ boosted %.3g s",
			tf.WriteDelay, tb.WriteDelay)
	}
	// (An error is acceptable too: the unboosted SN may never reach the
	// write target, since VDD − VT leaves almost no overdrive.)
}

func TestRefreshIntervalGuardband(t *testing.T) {
	si := buildSi(t)
	if !almostEqual(si.RefreshInterval, si.Timing.Retention/2, 1e-9) {
		t.Errorf("refresh interval %v should be half the retention %v",
			si.RefreshInterval, si.Timing.Retention)
	}
}

func TestTemperatureCollapsesSiRetention(t *testing.T) {
	cold, err := CharacterizeCell(SiCellDesign().AtTemperature(25), 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := CharacterizeCell(SiCellDesign().AtTemperature(85), 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Retention >= cold.Retention/3 {
		t.Errorf("85°C retention %.3g s should be far below 25°C %.3g s",
			hot.Retention, cold.Retention)
	}
	// The M3D cell still holds for hours at 85°C (the anchored IGZO
	// leakage doubles every 25 K but starts ~9 orders below the Si cell).
	m3dHot, err := CharacterizeCell(M3DCellDesign().AtTemperature(85), 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	if m3dHot.Retention < 3600 {
		t.Errorf("M3D retention at 85°C = %.3g s, want hours", m3dHot.Retention)
	}
	if m3dHot.Retention < 100*hot.Retention {
		t.Error("hot M3D retention should still dwarf hot Si retention")
	}
}

func TestSenseAmpResolves(t *testing.T) {
	sa := PaperSenseAmp(15e-15)
	res, err := CharacterizeSenseAmp(sa)
	if err != nil {
		t.Fatal(err)
	}
	// A 7 nm latch resolving 15 fF loads lands well under a nanosecond and
	// must fit the sense stage of the 2 ns access budget.
	if res.ResolveTime <= 0 || res.ResolveTime > 500e-12 {
		t.Errorf("resolve time = %.3g s, want (0, 500 ps]", res.ResolveTime)
	}
	if res.Energy <= 0 || res.Energy > 1e-13 {
		t.Errorf("sense energy = %.3g J, want small positive", res.Energy)
	}
}

func TestSenseAmpLargerDifferentialFaster(t *testing.T) {
	small := PaperSenseAmp(15e-15)
	small.InputDifferential = 0.05
	big := PaperSenseAmp(15e-15)
	big.InputDifferential = 0.20
	rs, err := CharacterizeSenseAmp(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := CharacterizeSenseAmp(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.ResolveTime >= rs.ResolveTime {
		t.Errorf("larger differential should resolve faster: %.3g vs %.3g",
			rb.ResolveTime, rs.ResolveTime)
	}
}

func TestSenseAmpValidation(t *testing.T) {
	bad := PaperSenseAmp(15e-15)
	bad.NW = 0
	if _, err := CharacterizeSenseAmp(bad); err == nil {
		t.Error("zero width should fail")
	}
	bad = PaperSenseAmp(0)
	if _, err := CharacterizeSenseAmp(bad); err == nil {
		t.Error("zero load should fail")
	}
	bad = PaperSenseAmp(15e-15)
	bad.InputDifferential = 1.0
	if _, err := CharacterizeSenseAmp(bad); err == nil {
		t.Error("differential ≥ VDD should fail")
	}
}

// TestReadIsNonDestructive verifies the 3T topology's key property (paper
// Sec. III-A: high endurance, charge-based, non-destructive reads): the
// storage node barely moves while the read stack discharges the bitline.
// The SN floats on its capacitor during the read; only gate-coupling
// through the storage transistor can disturb it.
func TestReadIsNonDestructive(t *testing.T) {
	d := M3DCellDesign()
	ck := spice.NewCircuit()
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// SN pre-charged to VDD on its own capacitor (floating — no source).
	mustOK(ck.AddC("csn", "sn", spice.Ground, d.SNCap))
	mustOK(ck.AddI("preset", spice.Ground, "sn", spice.Pulse{
		V1: 0, V2: d.SNCap * d.VDD / 50e-12, Delay: 1e-12, Rise: 0, Width: 50e-12, Fall: 0}))
	// Read wordline pulses after the preset completes.
	rwl := spice.Pulse{V1: 0, V2: d.VDD, Delay: 100e-12, Rise: 20e-12, Width: 1e-9, Fall: 20e-12}
	mustOK(ck.AddV("vrwl", "rwl", spice.Ground, rwl))
	mustOK(ck.AddV("vdd", "vdd", spice.Ground, spice.DC(d.VDD)))
	preGate := spice.Pulse{V1: 0, V2: d.VDD, Delay: 80e-12, Rise: 10e-12, Width: 1}
	mustOK(ck.AddV("vpre", "preb", spice.Ground, preGate))
	mustOK(ck.AddFET("mpre", "rbl", "preb", "vdd", device.SiPFET(device.RVT), 200e-9))
	mustOK(ck.AddC("cbl", "rbl", spice.Ground, 15e-15))
	mustOK(ck.AddFET("msel", "rbl", "rwl", "mid", d.Select, d.SelectW))
	mustOK(ck.AddFET("msto", "mid", "sn", spice.Ground, d.Storage, d.StorageW))

	tr, err := ck.TransientFromZero(1.2e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	snBefore, err := tr.At("sn", 90e-12)
	if err != nil {
		t.Fatal(err)
	}
	snAfter, err := tr.At("sn", 1.1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if snBefore < 0.9*d.VDD {
		t.Fatalf("SN preset failed: %v V", snBefore)
	}
	droop := snBefore - snAfter
	if droop > 0.03 {
		t.Errorf("read disturbed SN by %.3f V, want < 30 mV (non-destructive)", droop)
	}
	// Meanwhile the bitline must actually have drooped (the read worked).
	rbl, err := tr.At("rbl", 1.1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rbl > d.VDD-0.05 {
		t.Errorf("bitline never discharged (%.3f V): read did not happen", rbl)
	}
}

func TestRefreshInterference(t *testing.T) {
	si := buildSi(t)
	clk := units.Megahertz(500)
	ri, err := si.Interference(clk, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if ri.RowRefreshesPerSecond <= 0 {
		t.Fatal("Si macro must refresh rows")
	}
	// Distributed refresh on a 32-mat macro barely collides — the penalty
	// must be tiny but nonzero.
	if ri.CollisionProbability <= 0 || ri.CollisionProbability > 0.01 {
		t.Errorf("collision probability = %v, want small positive", ri.CollisionProbability)
	}
	if ri.EffectiveCPIPenalty >= 0.01 {
		t.Errorf("CPI penalty = %v, want < 1%%", ri.EffectiveCPIPenalty)
	}
	// The M3D macro has zero interference.
	m3d := buildM3D(t)
	rm, err := m3d.Interference(clk, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if rm.BusyFraction != 0 || rm.EffectiveCPIPenalty != 0 {
		t.Error("refresh-free macro must have zero interference")
	}
	// Validation.
	if _, err := si.Interference(0, 0.5); err == nil {
		t.Error("zero clock should fail")
	}
	if _, err := si.Interference(clk, 1.5); err == nil {
		t.Error("access rate > 1 should fail")
	}
}

func TestTwoT0CTopologyTradeOffs(t *testing.T) {
	d := TwoT0CCellDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	tm, err := CharacterizeCell(d, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	m3dTiming, err := CharacterizeCell(M3DCellDesign(), 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller cell than the 3T IGZO/CNFET design.
	if d.CellArea() >= M3DCellDesign().CellArea() {
		t.Error("2T0C cell should be smaller than the 3T cell")
	}
	// Retention stays in the no-refresh regime (IGZO hold leakage).
	if tm.Retention < 1000 {
		t.Errorf("2T0C retention = %.3g s, want > 1000 s", tm.Retention)
	}
	// The IGZO read is orders of magnitude slower than the CNFET stack —
	// the quantified reason the paper pays for CNFETs in the read path.
	if tm.ReadDelay < 20*m3dTiming.ReadDelay {
		t.Errorf("2T0C read %.3g s should be ≫ 3T read %.3g s", tm.ReadDelay, m3dTiming.ReadDelay)
	}
	// And it misses the paper's 2 ns single-cycle contract.
	if tm.ReadDelay < 2e-9 {
		t.Errorf("2T0C read %.3g s unexpectedly meets 2 ns — check IGZO drive", tm.ReadDelay)
	}
}
