package edram

import (
	"errors"
	"math"

	"ppatc/internal/units"
)

// Refresh interference analysis. A refreshing sub-array cannot serve an
// access in the same cycle, so refresh steals both energy (already in
// RefreshPower) and availability. For the single-cycle-access contract of
// the paper's system, a collision means a stall cycle. This module
// quantifies the expected stall rate and the resulting effective CPI
// penalty — the availability side of the refresh tax the M3D design
// avoids entirely.

// RefreshInterference summarizes the availability cost.
type RefreshInterference struct {
	// RowRefreshesPerSecond is the total row-refresh rate of the macro.
	RowRefreshesPerSecond float64
	// BusyFraction is the fraction of time some sub-array is refreshing.
	BusyFraction float64
	// CollisionProbability is the chance a random access hits a
	// refreshing sub-array.
	CollisionProbability float64
	// StallCyclesPerAccess is the expected added cycles per access.
	StallCyclesPerAccess float64
	// EffectiveCPIPenalty is the CPI increase at the given access rate.
	EffectiveCPIPenalty float64
}

// Interference computes the expected refresh/access interference at a
// clock frequency and per-cycle access rate. Refreshes are spread evenly
// (distributed refresh); each row refresh occupies its sub-array for one
// cycle, and a colliding access stalls one cycle.
func (m *Memory) Interference(clk units.Frequency, accessesPerCycle float64) (RefreshInterference, error) {
	if clk <= 0 {
		return RefreshInterference{}, errors.New("edram: clock must be positive")
	}
	if accessesPerCycle < 0 || accessesPerCycle > 1 {
		return RefreshInterference{}, errors.New("edram: access rate must be in [0, 1]")
	}
	var out RefreshInterference
	if math.IsInf(m.RefreshInterval, 1) {
		return out, nil // no refresh, no interference
	}
	rows := float64(m.Array.SubArrays() * m.Array.Rows)
	out.RowRefreshesPerSecond = rows / m.RefreshInterval
	// Each row refresh holds its sub-array for one cycle.
	cyclesPerSecond := clk.Hertz()
	busyCyclesPerSecond := out.RowRefreshesPerSecond
	out.BusyFraction = busyCyclesPerSecond / cyclesPerSecond
	if out.BusyFraction > 1 {
		out.BusyFraction = 1
	}
	// A random access targets one of the sub-arrays; a refresh busies one
	// sub-array at a time under distributed scheduling.
	out.CollisionProbability = out.BusyFraction / float64(m.Array.SubArrays())
	out.StallCyclesPerAccess = out.CollisionProbability // one stall cycle
	out.EffectiveCPIPenalty = out.StallCyclesPerAccess * accessesPerCycle
	return out, nil
}
