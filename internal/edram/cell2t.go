package edram

import (
	"ppatc/internal/device"
	"ppatc/internal/units"
)

// Alternative memory-cell topology — the first item on the paper's list of
// extensions ("alternative memory cell topologies"): the capacitorless
// 2T0C IGZO gain cell of the paper's references [13]/[23]/[33] (Belmonte
// et al., Su et al.). Both transistors are IGZO: the write device charges
// the storage node, which is nothing but the read device's gate (zero
// explicit capacitor — hence 2T0C), and the read device discharges the
// read bitline directly.
//
// Against the paper's 3T IGZO/CNFET cell the trade is clean and the
// characterization quantifies it:
//
//   - smaller cell (two devices, no CNT tier needed → one fewer BEOL tier),
//   - even lower standby power (no CNFET metallic-CNT leakage anywhere),
//   - but the read is driven by the *IGZO* channel: ~100× less read
//     current than the CNFET stack, so the read misses the paper's 2 ns
//     single-cycle contract at the 64 kB bitline loading — the reason the
//     paper's design pays for CNFETs in the read path.

// TwoT0CCellDesign returns the all-IGZO 2T0C cell. The CellDesign shape is
// reused: Storage is the read transistor (its gate is the storage node)
// and Select is a cascode/wordline device folded into the same IGZO tier;
// SNCap is just the read device's gate capacitance plus parasitics.
func TwoT0CCellDesign() CellDesign {
	igzo := device.IGZO()
	return CellDesign{
		Name:     "2T0C IGZO",
		Write:    igzo,
		Storage:  igzo,
		Select:   igzo,
		WriteW:   80e-9,
		StorageW: 120e-9, // widened read device, still IGZO-slow
		SelectW:  120e-9,
		// Storage node = read-gate capacitance only (capacitorless).
		SNCap:                0.12e-15,
		CellWidth:            units.Micrometers(0.14),
		CellHeight:           units.Micrometers(0.20),
		VDD:                  device.VDD,
		VWWL:                 device.WriteWordlineVoltage,
		StackedOverPeriphery: true,
		SenseMargin:          0.10,
	}
}
