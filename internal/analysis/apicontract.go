package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
)

// APIContract enforces the HTTP surface's two documented contracts.
//
// Handler discipline: every handler-shaped function (one taking an
// http.ResponseWriter and an *http.Request) must set Content-Type
// before its first direct write or WriteHeader — Go silently drops
// headers set after the status line — and must report errors through
// the shared JSON error writer, never http.Error's text/plain.
//
// Schema parity: structs marked //ppatc:schema serialize to committed
// or dumped artifacts (flight NDJSON events, BENCH_*.json reports);
// every json tag they carry must be documented in DATA_SCHEMA.md, so
// adding a field without documenting it is a vet finding, not a silent
// drift.
var APIContract = &Analyzer{
	Name: "apicontract",
	Doc:  "handlers set Content-Type before writing; //ppatc:schema tags match DATA_SCHEMA.md",
	Run:  runAPIContract,
}

// schemaMarker marks a struct whose json tags are cross-checked
// against DATA_SCHEMA.md.
const schemaMarker = "//ppatc:schema"

// schemaTagsCache memoizes the DATA_SCHEMA.md token scan per module
// root — the suite runs many passes over one module.
var (
	schemaTagsMu    sync.Mutex
	schemaTagsCache = map[string]map[string]bool{}
)

func runAPIContract(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				if w := responseWriterParam(pass.Pkg.Info, d); w != nil {
					checkHandlerWrites(pass, d, w)
				}
			case *ast.GenDecl:
				checkSchemaStructs(pass, d)
			}
		}
	}
}

// responseWriterParam returns the http.ResponseWriter parameter object
// of a handler-shaped function (it must also take an *http.Request),
// or nil.
func responseWriterParam(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	var w types.Object
	hasReq := false
	for _, p := range fn.Type.Params.List {
		t := exprType(info, p.Type)
		switch {
		case isResponseWriter(t):
			if len(p.Names) == 1 {
				w = info.Defs[p.Names[0]]
			}
		case isHTTPRequestPtr(t):
			hasReq = true
		}
	}
	if !hasReq {
		return nil
	}
	return w
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "ResponseWriter" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkHandlerWrites walks a handler body in source order and verifies
// the Content-Type contract on every direct use of the response
// writer. Delegating writers (writeJSON, writeError, serve* helpers)
// set their own headers and are not direct uses.
func checkHandlerWrites(pass *Pass, fn *ast.FuncDecl, w types.Object) {
	info := pass.Pkg.Info
	usesW := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == w
	}

	// First pass: every position where the handler explicitly sets
	// Content-Type on w's header map.
	var ctSets []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Set" || len(call.Args) < 1 {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		innerSel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok || innerSel.Sel.Name != "Header" || !usesW(innerSel.X) {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if v, err := strconv.Unquote(lit.Value); err == nil && v == "Content-Type" {
				ctSets = append(ctSets, call.Pos())
			}
		}
		return true
	})
	ctSetBefore := func(pos token.Pos) bool {
		for _, p := range ctSets {
			if p < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			switch {
			case funcPkgPath(fn) == "net/http" && fn.Name() == "Error":
				pass.Reportf(call.Pos(),
					"http.Error writes text/plain; use the shared JSON error writer")
				return true
			case funcPkgPath(fn) == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") &&
				len(call.Args) > 0 && usesW(call.Args[0]):
				if !ctSetBefore(call.Pos()) {
					pass.Reportf(call.Pos(),
						"response write before Content-Type is set; the client gets a sniffed type")
				}
				return true
			case funcPkgPath(fn) == "io" && fn.Name() == "WriteString" &&
				len(call.Args) > 0 && usesW(call.Args[0]):
				if !ctSetBefore(call.Pos()) {
					pass.Reportf(call.Pos(),
						"response write before Content-Type is set; the client gets a sniffed type")
				}
				return true
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !usesW(sel.X) {
			return true
		}
		switch sel.Sel.Name {
		case "WriteHeader":
			if !ctSetBefore(call.Pos()) {
				pass.Reportf(call.Pos(),
					"WriteHeader before Content-Type is set; headers set after the status line are dropped")
			}
		case "Write":
			if !ctSetBefore(call.Pos()) {
				pass.Reportf(call.Pos(),
					"response write before Content-Type is set; the client gets a sniffed type")
			}
		}
		return true
	})
}

// checkSchemaStructs cross-checks the json tags of //ppatc:schema
// structs against the field names documented in DATA_SCHEMA.md.
func checkSchemaStructs(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if !hasSchemaMarker(d.Doc) && !hasSchemaMarker(ts.Doc) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			pass.Reportf(ts.Pos(), "%s marks %s, which is not a struct", schemaMarker, ts.Name.Name)
			continue
		}
		documented, err := documentedSchemaTags(pass.Pkg.Dir)
		if err != nil {
			pass.Reportf(ts.Pos(), "%s on %s but DATA_SCHEMA.md is unreadable: %v", schemaMarker, ts.Name.Name, err)
			continue
		}
		for _, field := range st.Fields.List {
			name, ok := jsonTagName(field)
			if !ok {
				continue
			}
			if !documented[name] {
				pass.Reportf(field.Pos(),
					"json tag %q of %s is not documented in DATA_SCHEMA.md; document the field or drop it",
					name, ts.Name.Name)
			}
		}
	}
}

// hasSchemaMarker reports whether a doc comment group carries the
// //ppatc:schema marker line.
func hasSchemaMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == schemaMarker || strings.HasPrefix(text, schemaMarker+" ") {
			return true
		}
	}
	return false
}

// jsonTagName extracts the serialized name from a field's json tag.
// Untagged fields, `json:"-"`, and empty names report ok=false.
func jsonTagName(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	name := tag
	if i := strings.IndexByte(name, ','); i >= 0 {
		name = name[:i]
	}
	if name == "" || name == "-" {
		return "", false
	}
	return name, true
}

// documentedSchemaTags scans DATA_SCHEMA.md at the module root for
// backticked field tokens (`field_name`). Table rows that document a
// group of fields inline — "`queue_wait_ns`, `compute_ns`, …" — parse
// the same as one-field rows, so the extraction is layout-agnostic.
// Results are cached per module root for the life of the process.
func documentedSchemaTags(pkgDir string) (map[string]bool, error) {
	root, err := moduleRoot(pkgDir)
	if err != nil {
		return nil, err
	}
	schemaTagsMu.Lock()
	defer schemaTagsMu.Unlock()
	if tags, ok := schemaTagsCache[root]; ok {
		return tags, nil
	}
	data, err := os.ReadFile(filepath.Join(root, "DATA_SCHEMA.md"))
	if err != nil {
		return nil, err
	}
	tags := make(map[string]bool)
	s := string(data)
	for {
		open := strings.IndexByte(s, '`')
		if open < 0 {
			break
		}
		s = s[open+1:]
		closeIdx := strings.IndexByte(s, '`')
		if closeIdx < 0 {
			break
		}
		token := s[:closeIdx]
		s = s[closeIdx+1:]
		if token != "" && isTagToken(token) {
			tags[token] = true
		}
	}
	schemaTagsCache[root] = tags
	return tags, nil
}

// isTagToken reports whether a backticked token looks like a JSON
// field name (lowercase snake_case), filtering out code snippets and
// file paths the document also backticks.
func isTagToken(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}
