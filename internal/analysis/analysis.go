// Package analysis is ppatc's domain-specific static-analysis layer: a
// stdlib-only (go/ast, go/parser, go/types) driver plus a suite of
// analyzers that enforce the invariants the carbon/energy model rests
// on — dimensional correctness of the units math, deterministic output
// in the export/encode paths, no exact float comparisons in the yield
// and carbon math, and no allocation-heavy calls in functions marked
// //ppatc:hotpath.
//
// The suite runs as `go run ./cmd/ppatcvet ./...` and exits nonzero on
// any unsuppressed finding. Deliberate violations are suppressed in
// place with a reasoned directive:
//
//	//ppatcvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive covers its own source line and the line immediately
// below it, so it works both as a trailing comment and as a comment on
// the line above the flagged code. Directives without a reason, naming
// an unknown analyzer, or suppressing nothing are themselves findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// An Analyzer checks one domain invariant over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable
	// flags, and //ppatcvet:ignore directives.
	Name string
	// Doc is the one-line description printed by `ppatcvet -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		UnitCast,
		Determinism,
		FloatCmp,
		HotPath,
		CtxFlow,
		LockSafe,
		GoLeak,
		APIContract,
	}
}

// ByName resolves an analyzer name; ok is false for unknown names.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// inspect walks every file of the pass's package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
