package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

const ignorePrefix = "//ppatcvet:ignore"

// pseudoAnalyzer names the findings the driver itself emits about
// malformed or stale //ppatcvet:ignore directives.
const pseudoAnalyzer = "ppatcvet"

// An ignoreDirective is one parsed //ppatcvet:ignore comment. It
// suppresses the named analyzers on its own line and the line
// immediately below, so it can trail the flagged statement or sit on
// the line above it.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
	used      bool
}

// covers reports whether the directive suppresses analyzer a at line.
func (d *ignoreDirective) covers(a string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, name := range d.analyzers {
		if name == a {
			return true
		}
	}
	return false
}

// collectIgnores parses every //ppatcvet:ignore directive in the
// package. Malformed directives (no analyzer, no reason, or an unknown
// analyzer name) are reported as findings immediately — a suppression
// that silently failed to parse would otherwise hide the very
// diagnostics it looks like it addresses.
func collectIgnores(pkg *Package, report func(Diagnostic)) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := parseIgnore(pkg, c, report)
				if d != nil {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func parseIgnore(pkg *Package, c *ast.Comment, report func(Diagnostic)) *ignoreDirective {
	pos := pkg.Fset.Position(c.Pos())
	bad := func(msg string) *ignoreDirective {
		report(Diagnostic{
			Analyzer: pseudoAnalyzer,
			File:     pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg,
		})
		return nil
	}
	rest := strings.TrimPrefix(c.Text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //ppatcvet:ignoreX — not ours.
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return bad("malformed ignore directive: missing analyzer name (want //ppatcvet:ignore <analyzer> <reason>)")
	}
	names := strings.Split(fields[0], ",")
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			return bad(fmt.Sprintf("ignore directive names unknown analyzer %q", n))
		}
	}
	if len(fields) < 2 {
		return bad("ignore directive for " + fields[0] + " has no reason (want //ppatcvet:ignore <analyzer> <reason>)")
	}
	return &ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: names}
}

// applyIgnores drops the diagnostics covered by a directive and marks
// the directives that earned their keep. enabled guards the staleness
// check: a directive naming only disabled analyzers cannot prove
// itself used, so it is left alone.
func applyIgnores(diags []Diagnostic, directives []*ignoreDirective, enabled map[string]bool, report func(Diagnostic)) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.file == d.File && dir.covers(d.Analyzer, d.Line) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		if dir.used {
			continue
		}
		allEnabled := true
		for _, name := range dir.analyzers {
			if !enabled[name] {
				allEnabled = false
			}
		}
		if !allEnabled {
			continue
		}
		report(Diagnostic{
			Analyzer: pseudoAnalyzer,
			File:     dir.file, Line: dir.line, Col: 1,
			Message: "ignore directive for " + strings.Join(dir.analyzers, ",") + " suppresses nothing; delete it",
		})
	}
	return kept
}
