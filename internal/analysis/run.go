package analysis

// Run executes the given analyzers over the loaded packages, applies
// //ppatcvet:ignore suppressions, and returns the surviving findings
// in a stable file/line order. Malformed and stale ignore directives
// surface as findings under the "ppatcvet" pseudo-analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	var meta []Diagnostic
	collectMeta := func(d Diagnostic) { meta = append(meta, d) }

	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		directives = append(directives, collectIgnores(pkg, collectMeta)...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: collect}
			a.Run(pass)
		}
	}

	diags = applyIgnores(diags, directives, enabled, collectMeta)
	diags = append(diags, meta...)
	sortDiagnostics(diags)
	return diags
}
