package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point values in the math
// packages (yield, carbon, tcdp). Exact float equality already bit
// this codebase once — yield.GoodDies truncated N·Y products landing
// ulps under an integer — and the paper's Eqs. 1–8 flow through long
// float chains where "equal" is almost never exact. Comparisons
// against the literal 0 are exempt (division guards and zero-value
// sentinels), as is the x != x NaN idiom.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact float equality comparisons in the yield/carbon/tcdp math packages",
	Run:  runFloatCmp,
}

// floatCmpPackages scopes the analyzer by package-path tail.
var floatCmpPackages = map[string]bool{
	"yield":  true,
	"carbon": true,
	"tcdp":   true,
}

func runFloatCmp(pass *Pass) {
	if !floatCmpPackages[pathTail(pass.Pkg.ImportPath)] {
		return
	}
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		xt, yt := info.Types[bin.X], info.Types[bin.Y]
		if !isFloatType(xt.Type) || !isFloatType(yt.Type) {
			return true
		}
		if isZeroConstant(xt) || isZeroConstant(yt) {
			return true // division guards and zero-value sentinels
		}
		if sameObject(info, bin.X, bin.Y) {
			return true // x != x is the NaN idiom
		}
		pass.Reportf(bin.OpPos, "exact float comparison (%s); compare with a tolerance or suppress with a reason", bin.Op)
		return true
	})
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroConstant reports whether the expression is a compile-time
// constant equal to zero.
func isZeroConstant(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// sameObject reports whether x and y are uses of one identifier.
func sameObject(info *types.Info, x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	xo, yo := info.Uses[xi], info.Uses[yi]
	return xo != nil && xo == yo
}
