package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathTail returns the last slash-separated element of an import path.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeFunc resolves the static callee of a call expression: a
// package-level function, a method, or nil for indirect calls,
// conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isConversion reports whether call is a type conversion and returns
// the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// unitNamed returns t as a defined unit type — a named type whose
// underlying type is a float and whose defining package is the units
// package — or nil.
func unitNamed(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || pathTail(obj.Pkg().Path()) != "units" {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return nil
	}
	return named
}

// isFloat64 reports whether t is the plain (unnamed) float64 type.
func isFloat64(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// exprType returns the type recorded for e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// funcPkgPath returns the import path of the package defining fn, or
// "" when fn is nil or has no package.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
