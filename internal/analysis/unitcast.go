package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitCast flags float64 round-trips and conversions that cross the
// dimensions of the internal/units defined types. The defined types
// make unit errors a compile failure only while values stay typed; a
// single float64(x) cast erases the dimension, and these casts are
// exactly where the carbon/energy math (Eqs. 1–8) goes silently wrong.
var UnitCast = &Analyzer{
	Name: "unitcast",
	Doc:  "flag float64 casts, conversions and literals that cross units dimensions",
	Run:  runUnitCast,
}

func runUnitCast(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkUnitConversion(pass, n)
			checkUnitConstructor(pass, n)
			checkUnitSuffixedParams(pass, n)
		case *ast.BinaryExpr:
			checkUnitArithmetic(pass, info, n)
		}
		return true
	})
}

// checkUnitConversion flags T(x) and T(float64(x)) where T and the
// type of x are distinct unit dimensions, plus the pointless
// same-dimension float64 round-trip.
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	target, ok := isConversion(info, call)
	if !ok {
		return
	}
	to := unitNamed(target)
	if to == nil {
		return
	}
	arg := ast.Unparen(call.Args[0])

	// Direct rebrand: units.Energy(p) where p is a units.Power.
	if from := unitNamed(exprType(info, arg)); from != nil && from != to {
		pass.Reportf(call.Pos(), "conversion rebrands %s as %s without an accessor; dimensions differ",
			typeName(from), typeName(to))
		return
	}

	// Round-trip through float64: units.Energy(float64(x)).
	if inner, ok := arg.(*ast.CallExpr); ok {
		if innerTarget, ok := isConversion(info, inner); ok && isFloat64(innerTarget) {
			if from := unitNamed(exprType(info, ast.Unparen(inner.Args[0]))); from != nil {
				if from != to {
					pass.Reportf(call.Pos(), "float64 round-trip erases the %s dimension and rebrands it as %s",
						typeName(from), typeName(to))
				} else {
					pass.Reportf(call.Pos(), "redundant float64 round-trip on %s; use the value directly",
						typeName(to))
				}
			}
		}
	}
}

// checkUnitConstructor flags units constructor calls — Joules, Watts,
// GramsCO2e, … — whose argument is a dimension-erasing cast or an
// accessor of the wrong dimension or scale.
func checkUnitConstructor(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || pathTail(fn.Pkg().Path()) != "units" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return
	}
	if !isFloat64(sig.Params().At(0).Type()) {
		return
	}
	to := unitNamed(sig.Results().At(0).Type())
	if to == nil || len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])

	// units.Joules(float64(x)) — the cast erased x's dimension.
	if inner, ok := arg.(*ast.CallExpr); ok {
		if innerTarget, ok := isConversion(info, inner); ok && isFloat64(innerTarget) {
			if from := unitNamed(exprType(info, ast.Unparen(inner.Args[0]))); from != nil {
				if from != to {
					pass.Reportf(call.Pos(), "units.%s(float64(…)) feeds a %s value across dimensions into %s",
						fn.Name(), typeName(from), typeName(to))
				} else {
					pass.Reportf(call.Pos(), "units.%s(float64(…)) round-trips a %s through float64; use the value directly",
						fn.Name(), typeName(to))
				}
				return
			}
		}
		// units.Joules(p.Watts()) — accessor of the wrong dimension or
		// scale feeds the constructor.
		if acc := unitAccessor(info, inner); acc != nil {
			from := unitNamed(acc.recv)
			switch {
			case from != to:
				pass.Reportf(call.Pos(), "units.%s(%s.%s()) crosses dimensions: %s accessor feeds a %s constructor",
					fn.Name(), typeName(from), acc.name, typeName(from), typeName(to))
			case acc.name != fn.Name():
				pass.Reportf(call.Pos(), "units.%s(%s.%s()) mixes scales: accessor yields %s, constructor expects %s",
					fn.Name(), typeName(from), acc.name, scaleWord(acc.name), scaleWord(fn.Name()))
			default:
				pass.Reportf(call.Pos(), "units.%s(x.%s()) is a redundant round-trip; use x directly",
					fn.Name(), acc.name)
			}
		}
	}
}

// accessor describes a no-argument float64-returning method on a unit
// type (Joules(), Watts(), Picojoules(), …).
type accessor struct {
	recv types.Type
	name string
}

func unitAccessor(info *types.Info, call *ast.CallExpr) *accessor {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return nil
	}
	if !isFloat64(sig.Results().At(0).Type()) {
		return nil
	}
	if unitNamed(sig.Recv().Type()) == nil {
		return nil
	}
	return &accessor{recv: sig.Recv().Type(), name: fn.Name()}
}

// checkUnitArithmetic flags x*y and x/y where both operands carry the
// same unit type: the result is typed as that unit but its dimension
// is the square (or a dimensionless ratio), so the type no longer
// tells the truth. Scaling by a constant is fine.
func checkUnitArithmetic(pass *Pass, info *types.Info, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL && bin.Op != token.QUO {
		return
	}
	xt, yt := info.Types[bin.X], info.Types[bin.Y]
	if xt.Value != nil || yt.Value != nil { // constant scaling
		return
	}
	xu, yu := unitNamed(xt.Type), unitNamed(yt.Type)
	if xu == nil || xu != yu {
		return
	}
	what := "their squared dimension"
	if bin.Op == token.QUO {
		what = "a dimensionless ratio"
	}
	pass.Reportf(bin.OpPos, "%s %s %s yields %s but stays typed %s; convert through accessors",
		typeName(xu), bin.Op, typeName(yu), what, typeName(xu))
}

// unitParamSuffixes maps lowercase parameter-name suffixes to the
// units type the parameter should probably be.
var unitParamSuffixes = map[string]string{
	"joules": "Energy", "pj": "Energy", "kwh": "Energy",
	"watts": "Power", "mw": "Power",
	"grams": "Carbon", "gco2e": "Carbon",
	"hz": "Frequency", "mhz": "Frequency", "ghz": "Frequency",
	"mm2": "Area", "um2": "Area",
}

// checkUnitSuffixedParams flags bare numeric literals passed for
// float64 parameters whose names carry a unit suffix (powerMW,
// epaKWh, …) in functions outside the units package — the literal's
// scale is unchecked where a units value would have carried it.
func checkUnitSuffixedParams(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || pathTail(fn.Pkg().Path()) == "units" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return
	}
	n := sig.Params().Len()
	if n != len(call.Args) {
		return
	}
	for i := 0; i < n; i++ {
		param := sig.Params().At(i)
		if !isFloat64(param.Type()) {
			continue
		}
		suffix, unit := unitSuffix(param.Name())
		if unit == "" {
			continue
		}
		if !isBareNumericLiteral(call.Args[i]) {
			continue
		}
		pass.Reportf(call.Args[i].Pos(),
			"bare literal for unit-suffixed parameter %q (%s); build a units.%s and pass an accessor",
			param.Name(), suffix, unit)
	}
}

// unitSuffix matches a parameter name against unitParamSuffixes,
// honoring word boundaries: powerMW and epa_kwh match, growthz does
// not.
func unitSuffix(name string) (suffix, unit string) {
	lower := strings.ToLower(name)
	for s, u := range unitParamSuffixes {
		if !strings.HasSuffix(lower, s) {
			continue
		}
		if len(name) == len(s) {
			return s, u
		}
		boundary := len(name) - len(s)
		prev := rune(name[boundary-1])
		first := rune(name[boundary])
		if prev == '_' || (unicode.IsUpper(first) && !unicode.IsUpper(prev)) {
			return s, u
		}
	}
	return "", ""
}

func isBareNumericLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && (lit.Kind == token.INT || lit.Kind == token.FLOAT)
}

// typeName renders a unit type as units.Name.
func typeName(named *types.Named) string {
	if named == nil {
		return "<nil>"
	}
	return "units." + named.Obj().Name()
}

// scaleWord renders a constructor/accessor name for the scale-mismatch
// message.
func scaleWord(name string) string { return strings.ToLower(name[:1]) + name[1:] }
