package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak flags fire-and-forget goroutines in the server, cluster, and
// store layers: a `go` statement whose body (followed transitively
// through same-package callees) touches no context, no channel, and no
// WaitGroup has no way to learn the component is draining — it runs
// until the process dies, holding whatever it captured. Every goroutine
// in those layers must be tied to a lifetime: a ctx.Done(), a stop/done
// channel, or a WaitGroup the closer waits on.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in server/cluster/store need a ctx, stop channel, or WaitGroup",
	Run:  runGoLeak,
}

// goLeakPackages scopes the analyzer by import-path tail to the
// long-running components with an explicit drain sequence.
var goLeakPackages = map[string]bool{
	"server":  true,
	"cluster": true,
	"store":   true,
}

func runGoLeak(pass *Pass) {
	if !goLeakPackages[pathTail(pass.Pkg.ImportPath)] {
		return
	}
	info := pass.Pkg.Info

	// Index the package's function declarations so `go s.method()` can
	// be judged by the method's body, not just the call site.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasStopHook(info, decls, gs) {
				pass.Reportf(gs.Pos(),
					"fire-and-forget goroutine: no context, channel, or WaitGroup in its body; it cannot observe drain")
			}
			return true
		})
	}
}

// goroutineHasStopHook reports whether the goroutine launched by gs
// can observe shutdown. The goroutine's arguments and its body — the
// function literal's, or the resolved same-package declaration's,
// followed transitively through same-package calls — are searched for
// any context.Context value, any channel-typed expression, or any
// sync.WaitGroup use.
func goroutineHasStopHook(info *types.Info, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) bool {
	// Arguments evaluated at spawn: a ctx or channel handed in counts.
	for _, arg := range gs.Call.Args {
		if t := exprType(info, arg); t != nil && isStopHookType(t) {
			return true
		}
	}
	visited := map[ast.Node]bool{}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyHasStopHook(info, decls, fun.Body, visited)
	default:
		if fn := calleeFunc(info, gs.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				return bodyHasStopHook(info, decls, fd.Body, visited)
			}
		}
	}
	// An unresolvable target (cross-package call, method value) is
	// given the benefit of the doubt — flagging what we cannot see
	// would punish every stdlib helper.
	return true
}

// isStopHookType reports whether t can carry a shutdown signal: a
// context, a channel, or a WaitGroup.
func isStopHookType(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
	}
	return false
}

// bodyHasStopHook searches one function body — and, transitively, the
// bodies of same-package functions it calls — for a stop hook.
func bodyHasStopHook(info *types.Info, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[ast.Node]bool) bool {
	if body == nil || visited[body] {
		return false
	}
	visited[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				if v, ok := obj.(*types.Var); ok && isStopHookType(v.Type()) {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if t := exprType(info, e); t != nil && isStopHookType(t) {
				found = true
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, e)
			if fn == nil {
				return true
			}
			// Done()/Err() on a context, or any WaitGroup method,
			// counts directly; same-package callees are followed.
			if fd, ok := decls[fn]; ok {
				if bodyHasStopHook(info, decls, fd.Body, visited) {
					found = true
				}
			}
		}
		return true
	})
	return found
}
