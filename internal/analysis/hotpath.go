package analysis

import (
	"go/ast"
	"strings"
)

// HotPath flags allocation- and reflection-heavy calls inside
// functions annotated //ppatc:hotpath. The server's cache-hit path is
// budgeted at 43 allocations per request (TestCacheHitAllocBudget);
// one stray fmt.Sprintf or reflect-driven json.Marshal on that path
// blows the budget silently until the benchmark regresses. The
// annotation goes in the function's doc comment:
//
//	// evaluateKey is the cache key of one evaluation tuple.
//	//
//	//ppatc:hotpath
//	func evaluateKey(system, workload, grid string) string { … }
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag fmt/sha256/reflect/json calls inside functions annotated //ppatc:hotpath",
	Run:  runHotPath,
}

const hotPathMarker = "//ppatc:hotpath"

// hotPathPackages maps offending import paths to the reason the call
// family is banned on annotated paths.
var hotPathPackages = map[string]string{
	"fmt":           "boxes operands and allocates",
	"crypto/sha256": "hashes are overkill for hot-path keys",
	"crypto/sha1":   "hashes are overkill for hot-path keys",
	"crypto/md5":    "hashes are overkill for hot-path keys",
	"reflect":       "reflection defeats the allocation budget",
	"encoding/json": "reflect-driven encoding allocates heavily",
}

func runHotPath(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !isHotPath(fd) {
			return true
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			path := funcPkgPath(fn)
			if reason, banned := hotPathPackages[path]; banned {
				pass.Reportf(call.Pos(), "%s.%s on //ppatc:hotpath function %s: %s",
					pathTail(path), fn.Name(), name, reason)
			}
			return true
		})
		return true
	})
}

// isHotPath reports whether the function's doc comment carries the
// //ppatc:hotpath marker.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathMarker {
			return true
		}
	}
	return false
}
