package analysis

import (
	"fmt"
	"sort"
)

// A Diagnostic is one finding: where, what, and which analyzer said so.
// The JSON shape is the contract consumed by CI annotations and
// editors; cmd/ppatcvet's -json output is a JSON array of these.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, then position, then
// analyzer, then message — a stable order regardless of the order the
// analyzers ran in.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
