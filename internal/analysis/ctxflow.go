package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces request-path cancellability in the serving and
// cluster code: work done on behalf of a request (or any function
// handed a context) must stop when that context does. Blocking channel
// operations and selects must carry a ctx.Done() escape, time.Sleep
// has no business on a cancellable path, outbound HTTP must use a
// ctx-aware constructor, context.Background()/TODO() may only mint
// lifetime roots inside constructors, and a context stored in a struct
// field — the classic way a request context outlives its request — is
// flagged wherever it appears.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-scoped code in server/cluster must be cancellable via ctx.Done()",
	Run:  runCtxFlow,
}

// ctxflowPackages scopes the analyzer by import-path tail: the
// serving layer and the cluster membership/routing layer, where every
// blocking operation sits on a request or drain path.
var ctxflowPackages = map[string]bool{
	"server":  true,
	"cluster": true,
}

func runCtxFlow(pass *Pass) {
	if !ctxflowPackages[pathTail(pass.Pkg.ImportPath)] {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				ctxStructFields(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				// context.Background()/TODO() are checked in every
				// function of the scoped packages — a background context
				// deep in a helper is exactly how gossip and forwarding
				// escape cancellation — except in constructors
				// (New*/Start*/Open*/main), which legitimately mint the
				// process- or component-lifetime root.
				if !isLifetimeRootFunc(d.Name.Name) {
					checkBackgroundCtx(pass, info, d.Body)
				}
				if hasCtxOrRequestParam(info, d) {
					checkCancellableBody(pass, info, d.Body)
				}
			}
		}
	}
}

// isLifetimeRootFunc reports whether name identifies a constructor
// allowed to call context.Background(): the place lifetime roots are
// minted.
func isLifetimeRootFunc(name string) bool {
	return name == "main" ||
		strings.HasPrefix(name, "New") ||
		strings.HasPrefix(name, "Start") ||
		strings.HasPrefix(name, "Open")
}

// ctxStructFields flags context.Context stored in struct fields.
// Contexts are call-scoped values; a field keeps one alive past its
// caller and silently decouples the work from the cancellation that
// was supposed to bound it. Deliberate lifetime roots (a server's base
// context) carry a reasoned //ppatcvet:ignore.
func ctxStructFields(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !isContextType(exprType(pass.Pkg.Info, field.Type)) {
				continue
			}
			name := "embedded"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			pass.Reportf(field.Pos(),
				"context.Context stored in struct field %s.%s; pass contexts through call paths instead",
				ts.Name.Name, name)
		}
	}
}

// hasCtxOrRequestParam reports whether fn is request-scoped: it takes
// a context.Context or an *http.Request, so everything it does happens
// on behalf of a cancellable caller.
func hasCtxOrRequestParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, p := range fn.Type.Params.List {
		t := exprType(info, p.Type)
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isHTTPRequestPtr reports whether t is *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Request" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkBackgroundCtx flags context.Background() and context.TODO()
// calls in body.
func checkBackgroundCtx(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if funcPkgPath(fn) != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() outside a constructor; derive from the caller's or the component's lifetime context",
				fn.Name())
		}
		return true
	})
}

// checkCancellableBody walks a request-scoped function body and flags
// blocking constructs that cannot be interrupted by context
// cancellation: bare channel sends/receives, range-over-channel,
// selects with neither a default nor a <-Done() case, time.Sleep, and
// non-context HTTP constructors.
func checkCancellableBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// inSelect marks the channel operations that appear as select
	// communication clauses — judged via their select, not on their own.
	inSelect := map[ast.Node]bool{}
	// inDefer marks deferred function literals: cleanup paths (releasing
	// a semaphore slot you hold, closing what you opened) run after the
	// work and don't block a live request.
	var deferred []ast.Node

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				inSelect[cc.Comm] = true
				if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					inSelect[ast.Unparen(as.Rhs[0])] = true
				}
				if es, ok := cc.Comm.(*ast.ExprStmt); ok {
					inSelect[ast.Unparen(es.X)] = true
				}
			}
		case *ast.DeferStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				deferred = append(deferred, lit)
			}
		}
		return true
	})
	inDeferred := func(n ast.Node) bool {
		for _, d := range deferred {
			if d.Pos() <= n.Pos() && n.End() <= d.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			if !inSelect[s] && !inDeferred(s) {
				pass.Reportf(s.Pos(),
					"blocking channel send outside a select with a ctx.Done() case; a cancelled request would block here")
			}
		case *ast.UnaryExpr:
			if s.Op.String() != "<-" {
				return true
			}
			if !inSelect[s] && !inDeferred(s) {
				pass.Reportf(s.Pos(),
					"blocking channel receive outside a select with a ctx.Done() case; a cancelled request would block here")
			}
		case *ast.RangeStmt:
			if t := exprType(info, s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(s.Pos(),
						"range over a channel blocks until it closes; use a select with a ctx.Done() case")
				}
			}
		case *ast.SelectStmt:
			if !selectIsCancellable(info, s) && !inDeferred(s) {
				pass.Reportf(s.Pos(),
					"select has neither a default nor a ctx.Done() case; a cancelled request would block here")
			}
		case *ast.CallExpr:
			checkBlockingCall(pass, info, s)
		}
		return true
	})
}

// selectIsCancellable reports whether sel can always make progress
// under cancellation: it has a default clause (non-blocking) or one of
// its cases receives from a Done() channel.
func selectIsCancellable(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default clause
		}
		var recv ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			continue
		}
		if call, ok := ast.Unparen(ue.X).(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true
			}
		}
	}
	return false
}

// checkBlockingCall flags time.Sleep and the context-free outbound
// HTTP constructors inside request-scoped functions.
func checkBlockingCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		if fn.Name() == "Sleep" {
			pass.Reportf(call.Pos(),
				"time.Sleep in a request-scoped function ignores cancellation; select on ctx.Done() and a timer instead")
		}
	case "net/http":
		// Package-level functions only: Header.Get and friends are
		// methods in the same package and are not outbound HTTP.
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head":
			pass.Reportf(call.Pos(),
				"http.%s has no context; build the request with http.NewRequestWithContext", fn.Name())
		case "NewRequest":
			pass.Reportf(call.Pos(),
				"http.NewRequest drops the caller's context; use http.NewRequestWithContext")
		}
	}
}
