package analysis

import (
	"os"
	"strings"
	"testing"
)

// TestSchemaDriftGate runs the apicontract analyzer over the two
// packages whose structs serialize to committed or dumped artifacts —
// flight NDJSON events and BENCH_*.json reports. Adding a json tag to
// a //ppatc:schema struct without documenting it in DATA_SCHEMA.md
// fails here, so the schema file cannot drift silently.
func TestSchemaDriftGate(t *testing.T) {
	pkgs, err := Load("../..", "./internal/obs/flight", "./internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, []*Analyzer{APIContract}) {
		t.Errorf("schema drift: %s", d)
	}
}

// TestSchemaStructsAreMarked guards the gate itself: if the marker
// comments were dropped, TestSchemaDriftGate would pass while checking
// nothing.
func TestSchemaStructsAreMarked(t *testing.T) {
	for path, want := range map[string]int{
		"../obs/flight/flight.go": 1,  // Event
		"../bench/report.go":      10, // Engine … Report
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if got := strings.Count(string(data), schemaMarker); got != want {
			t.Errorf("%s carries %d %s markers, want %d", path, got, schemaMarker, want)
		}
	}
}

// TestDocumentedSchemaTags pins the DATA_SCHEMA.md token extraction:
// known flight and bench field names parse out as documented, and a
// name absent from the document stays undocumented.
func TestDocumentedSchemaTags(t *testing.T) {
	tags, err := documentedSchemaTags(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seq", "compute_ns", "queue_wait_ns", "cache_hits", "target", "requests"} {
		if !tags[want] {
			t.Errorf("documented tag %q not extracted from DATA_SCHEMA.md", want)
		}
	}
	if tags["zz_not_documented"] {
		t.Error("zz_not_documented reported as documented; the fixture's negative case is dead")
	}
}
