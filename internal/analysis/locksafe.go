package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe checks mutex discipline in the concurrent service code:
// no blocking operation while a lock is held, no copying of
// lock-bearing values, no early return between an explicit Lock and
// its Unlock, no mixing sync/atomic with plain access on one field,
// and WaitGroup.Add on the spawning side of a goroutine, never inside
// it (Add inside the goroutine races Wait).
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "mutex held across blocking ops, lock copies, early returns, atomic/plain mixing",
	Run:  runLockSafe,
}

// lockSafePackages scopes the analyzer by import-path tail to the
// layers built on shared mutable state.
var lockSafePackages = map[string]bool{
	"server":  true,
	"cluster": true,
	"store":   true,
	"flight":  true,
	"obs":     true,
}

func runLockSafe(pass *Pass) {
	if !lockSafePackages[pathTail(pass.Pkg.ImportPath)] {
		return
	}
	info := pass.Pkg.Info
	atomicFields := map[types.Object]token.Pos{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockRegions(pass, info, fd)
			checkLockCopies(pass, info, fd)
			checkWaitGroupAddInGoroutine(pass, info, fd.Body)
			collectAtomicFields(info, fd.Body, atomicFields)
		}
	}
	if len(atomicFields) > 0 {
		for _, f := range pass.Pkg.Files {
			checkPlainAccessToAtomicFields(pass, info, f, atomicFields)
		}
	}
}

// lockRegion is one positional Lock→Unlock span: from the Lock call to
// the first matching Unlock on the same receiver text (or the function
// end when the unlock is deferred). Positional regions over-approximate
// branches modestly, which is the right bias for a gate: the code that
// confuses the approximation also confuses the reader.
type lockRegion struct {
	recv     string
	lockPos  token.Pos
	start    token.Pos
	end      token.Pos
	deferred bool
}

// checkLockRegions finds every sync.Mutex/RWMutex Lock in fn, pairs it
// with its unlock, and scans the held span for blocking operations and
// early returns.
func checkLockRegions(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	type lockCall struct {
		recv string
		call *ast.CallExpr
		name string // Lock, RLock, Unlock, RUnlock
		dfr  bool
	}
	var calls []lockCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		// Lock state inside a nested function literal is its own story —
		// it runs on its own goroutine or at defer time, not under the
		// enclosing function's locks.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := syncLockMethod(info, call)
		if ok {
			calls = append(calls, lockCall{recv: recv, call: call, name: name})
		}
		return true
	})
	// Deferred unlocks extend their region to the function end.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for i := range calls {
			if calls[i].call == ds.Call {
				calls[i].dfr = true
			}
		}
		return true
	})

	var regions []lockRegion
	for i, c := range calls {
		if c.name != "Lock" && c.name != "RLock" {
			continue
		}
		unlock := "Unlock"
		if c.name == "RLock" {
			unlock = "RUnlock"
		}
		region := lockRegion{recv: c.recv, lockPos: c.call.Pos(), start: c.call.End(), end: fn.Body.End()}
		found := false
		for _, u := range calls[i+1:] {
			if u.recv != c.recv || u.name != unlock {
				continue
			}
			found = true
			if u.dfr {
				region.deferred = true
			} else {
				region.end = u.call.Pos()
			}
			break
		}
		if !found {
			// Look for a defer registered before the Lock (the common
			// `mu.Lock(); defer mu.Unlock()` order is also covered above
			// since defers appear after; this catches defer-then-lock).
			for _, u := range calls[:i] {
				if u.recv == c.recv && u.name == unlock && u.dfr {
					found, region.deferred = true, true
					break
				}
			}
		}
		if !found {
			pass.Reportf(c.call.Pos(), "%s.%s() with no matching %s in this function", c.recv, c.name, unlock)
			continue
		}
		regions = append(regions, region)
	}
	for _, r := range regions {
		scanHeldRegion(pass, info, fn, r)
	}
}

// syncLockMethod matches a call to a sync.Mutex/RWMutex lock method and
// returns the receiver expression's source text plus the method name.
func syncLockMethod(info *types.Info, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn := calleeFunc(info, call)
	if funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	return exprText(sel.X), sel.Sel.Name, true
}

// exprText renders a selector/ident chain ("s.mu", "co.mu") for
// receiver matching; other shapes get a stable placeholder.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "?"
}

// scanHeldRegion flags blocking operations and (for explicit unlocks)
// early returns positioned inside a held region.
func scanHeldRegion(pass *Pass, info *types.Info, fn *ast.FuncDecl, r lockRegion) {
	in := func(n ast.Node) bool { return r.start <= n.Pos() && n.Pos() < r.end }
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs outside the lock's dynamic extent
		}
		if n == nil || !in(n) {
			return true
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			if !sendInNonBlockingSelect(fn.Body, s) {
				pass.Reportf(s.Pos(), "channel send while holding %s; a blocked receiver stalls every other locker", r.recv)
			}
		case *ast.SelectStmt:
			if !selectHasDefault(s) {
				pass.Reportf(s.Pos(), "blocking select while holding %s; every other locker stalls until a case fires", r.recv)
			}
			return false // cases already judged via the select itself
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				pass.Reportf(s.Pos(), "channel receive while holding %s; a quiet sender stalls every other locker", r.recv)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, s); fn != nil {
				switch {
				case funcPkgPath(fn) == "time" && fn.Name() == "Sleep":
					pass.Reportf(s.Pos(), "time.Sleep while holding %s", r.recv)
				case funcPkgPath(fn) == "sync" && fn.Name() == "Wait" && !isCondWait(info, s):
					pass.Reportf(s.Pos(), "WaitGroup.Wait while holding %s; the waited goroutines may need the same lock", r.recv)
				case isOutboundHTTP(fn):
					pass.Reportf(s.Pos(), "outbound HTTP while holding %s; a slow peer stalls every other locker", r.recv)
				}
			}
		case *ast.ReturnStmt:
			if !r.deferred {
				pass.Reportf(s.Pos(), "return while %s is held with no deferred unlock; this path leaks the lock", r.recv)
			}
		}
		return true
	})
}

// sendInNonBlockingSelect reports whether send appears as a comm
// clause of a select that has a default (the publish-or-drop idiom).
func sendInNonBlockingSelect(body *ast.BlockStmt, send *ast.SendStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectStmt)
		if !isSel || !selectHasDefault(sel) {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, isCC := clause.(*ast.CommClause); isCC && cc.Comm == send {
				ok = true
			}
		}
		return true
	})
	return ok
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isOutboundHTTP reports whether fn performs an HTTP round trip: a
// net/http package-level request function, or a Do/Get/Post/PostForm/
// Head method on http.Client. Header.Get and the other same-package
// accessor methods do not count.
func isOutboundHTTP(fn *types.Func) bool {
	if funcPkgPath(fn) != "net/http" {
		return false
	}
	switch fn.Name() {
	case "Get", "Post", "PostForm", "Head", "Do":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return true // package-level http.Get and friends
	}
	t := recv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj() != nil && named.Obj().Name() == "Client"
}

// isCondWait reports whether call is sync.Cond.Wait — which releases
// the lock while waiting and is exempt by design.
func isCondWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := exprType(info, sel.X)
	if t == nil {
		return false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "Cond" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// containsLock reports whether t (not a pointer to it) transitively
// contains a sync lock type, so copying a value of t copies lock state.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
		return containsLockDepth(named.Underlying(), depth+1)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// checkLockCopies flags value receivers, value parameters, plain-value
// assignments, and range value variables whose type carries a lock.
func checkLockCopies(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	flagField := func(f *ast.Field, kind string) {
		t := exprType(info, f.Type)
		if t == nil || !containsLock(t) {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		pass.Reportf(f.Pos(), "%s copies a lock-bearing %s value; use a pointer", kind, types.TypeString(t, nil))
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			flagField(f, "value receiver")
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			flagField(f, "parameter")
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if lockCopyExpr(info, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies a lock-bearing value; use a pointer")
				}
			}
		case *ast.RangeStmt:
			if s.Value == nil {
				return true
			}
			// A `:=` range defines its value variable, so the ident lives
			// in Defs rather than Types; a `=` range reuses one, in Types.
			t := exprType(info, s.Value)
			if id, ok := s.Value.(*ast.Ident); ok && t == nil {
				if obj := info.Defs[id]; obj != nil {
					t = obj.Type()
				}
			}
			if t != nil && containsLock(t) {
				pass.Reportf(s.Value.Pos(), "range copies lock-bearing %s values; iterate by index or store pointers", types.TypeString(t, nil))
			}
		}
		return true
	})
}

// lockCopyExpr reports whether e reads an existing lock-bearing value
// (as opposed to constructing a fresh zero/composite one).
func lockCopyExpr(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := exprType(info, e)
	return t != nil && containsLock(t)
}

// checkWaitGroupAddInGoroutine flags WaitGroup.Add calls inside the
// body of a spawned goroutine: the spawner may reach Wait before the
// goroutine is scheduled, so Add must happen on the spawning side.
func checkWaitGroupAddInGoroutine(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			if fn := calleeFunc(info, call); funcPkgPath(fn) == "sync" && isWaitGroupRecv(info, sel.X) {
				pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait; call Add before the go statement")
			}
			return true
		})
		return true
	})
}

func isWaitGroupRecv(info *types.Info, e ast.Expr) bool {
	t := exprType(info, e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "WaitGroup" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// collectAtomicFields records struct fields whose address is passed to
// a sync/atomic function.
func collectAtomicFields(info *types.Info, body *ast.BlockStmt, out map[types.Object]token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); funcPkgPath(fn) != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			if obj := fieldObject(info, ue.X); obj != nil {
				out[obj] = call.Pos()
			}
		}
		return true
	})
}

// fieldObject resolves a selector expression to the struct field it
// names, or nil.
func fieldObject(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// checkPlainAccessToAtomicFields flags non-atomic writes to fields the
// package elsewhere accesses through sync/atomic: mixing the two
// publishes torn state to the atomic readers.
func checkPlainAccessToAtomicFields(pass *Pass, info *types.Info, f *ast.File, fields map[types.Object]token.Pos) {
	flag := func(e ast.Expr) {
		if obj := fieldObject(info, e); obj != nil {
			if _, ok := fields[obj]; ok {
				pass.Reportf(e.Pos(), "plain write to field %s, which is accessed with sync/atomic elsewhere; use the atomic API for every access", obj.Name())
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(s.X)
		}
		return true
	})
}
