package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis. File positions in Fset are module-root-relative.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds soft type-check errors. Analysis still runs on a
	// package with type errors, but findings there may be incomplete.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (go list syntax, e.g.
// "./...") from the module rooted at or above dir, parses their
// non-test sources, and type-checks them. Imports — standard library
// and module-internal alike — are resolved from compiler export data
// produced by `go list -export`, so no package is type-checked from
// source more than once.
//
// Explicit paths into testdata directories work (the go tool only
// skips testdata when expanding wildcards), which is how the analyzer
// tests load their fixture packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}

	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, root, t, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and checks one target package from source.
func typeCheck(fset *token.FileSet, root string, t *listedPackage, imp types.Importer) (*Package, error) {
	pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
	for _, name := range t.GoFiles {
		full := filepath.Join(t.Dir, name)
		display := full
		if rel, err := filepath.Rel(root, full); err == nil && !strings.HasPrefix(rel, "..") {
			display = filepath.ToSlash(rel)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", display, err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, err := cfg.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	if tp == nil && err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", t.ImportPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}

// goList shells out to `go list -e -deps -export -json` and decodes
// the JSON stream.
func goList(root string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}
