// Package apicontract is the apicontract analyzer's fixture: handler
// shapes exercising the Content-Type ordering rule, and a marked
// schema struct with one tag DATA_SCHEMA.md does not document.
package apicontract

import (
	"fmt"
	"net/http"
)

// handlerBad writes in every order the contract forbids.
func handlerBad(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot)           // flagged: status line before Content-Type
	fmt.Fprintln(w, "hello")                   // flagged: write before Content-Type
	http.Error(w, "no", http.StatusBadRequest) // flagged: text/plain error path
}

// handlerGood sets Content-Type first; nothing to flag.
func handlerGood(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{}"))
}

// notAHandler writes without taking a request; the contract only
// applies to handler-shaped functions.
func notAHandler(w http.ResponseWriter) {
	_, _ = w.Write([]byte("raw"))
}

// event mirrors one serialized artifact row.
//
//ppatc:schema
type event struct {
	Seq      uint64 `json:"seq"`               // documented in DATA_SCHEMA.md: ok
	Mystery  int    `json:"zz_not_documented"` // flagged: undocumented tag
	Internal int    `json:"-"`                 // never serialized: ok
	plain    int    // untagged: ok
}

var (
	_ = handlerBad
	_ = handlerGood
	_ = notAHandler
	_ = event{}
)
