// Package store is the goleak analyzer's fixture: its import-path
// tail puts it in the analyzer's scope. Functions here spawn
// goroutines with and without a way to observe shutdown.
package store

import "context"

// leak spawns a literal with no context, channel, or WaitGroup in its
// body — nothing can ever stop it.
func leak(work []int) {
	go func() { // flagged
		n := 0
		for _, w := range work {
			n += w
		}
		_ = n
	}()
}

// leakNamed spawns a named function whose resolved body is equally
// unstoppable.
func leakNamed() {
	go spin() // flagged
}

func spin() {
	n := 0
	for i := 0; i < 1e6; i++ {
		n += i
	}
	_ = n
}

// okCtx ties the goroutine to the caller's context.
func okCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// okArg hands the stop channel in as a spawn argument.
func okArg(stop chan struct{}) {
	go waitOn(stop)
}

func waitOn(stop chan struct{}) {
	<-stop
}

// poller's loop observes the stop channel through its receiver — the
// transitive same-package resolution follows start → loop.
type poller struct {
	stop chan struct{}
}

func (p *poller) start() {
	go p.loop()
}

func (p *poller) loop() {
	<-p.stop
}

var (
	_ = leak
	_ = leakNamed
	_ = okCtx
	_ = okArg
	_ = (*poller).start
)
