// Package directives exercises //ppatcvet:ignore parsing: trailing and
// line-above suppression, malformed forms, unknown analyzers, and
// stale directives.
package directives

import "ppatc/internal/units"

// Trailing suppresses a finding on its own line.
func Trailing() units.Energy {
	p := units.Watts(1)
	return units.Energy(p) //ppatcvet:ignore unitcast fixture: rebrand is the point of this test
}

// Above suppresses a finding on the next line.
func Above() units.Energy {
	p := units.Watts(1)
	//ppatcvet:ignore unitcast fixture: rebrand on the next line is intentional
	return units.Energy(p)
}

// Broken holds the malformed and stale forms; each is itself a finding.
func Broken() {
	//ppatcvet:ignore
	//ppatcvet:ignore floatcmp
	//ppatcvet:ignore nosuch because the analyzer name is wrong
	//ppatcvet:ignore unitcast stale: nothing below needs suppressing
}
