// Package dse is the determinism analyzer's fixture. Its import-path
// tail "dse" puts every file in the reproducible-output scope.
package dse

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Stamp reads the wall clock inside a reproducible-output package.
func Stamp() int64 {
	return time.Now().Unix()
}

// Jitter draws from the process-global, unseeded rand source.
func Jitter() float64 {
	return rand.Float64()
}

// Seeded draws from an explicitly seeded source: allowed.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// EncodeCounts writes output from inside a map iteration.
func EncodeCounts(w *strings.Builder, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys builds a key slice in map order and returns it unsorted.
func Keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts: the canonical fix, not flagged.
func SortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is commutative aggregation over a map: order washes out.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// BuildKey concatenates a cache key in map order.
func BuildKey(m map[string]string) string {
	key := ""
	for k, v := range m {
		key += k + "=" + v + ";"
	}
	return key
}
