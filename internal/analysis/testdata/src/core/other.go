package core

import "time"

// Uptime reads the wall clock outside export.go: not in scope.
func Uptime() time.Time {
	return time.Now()
}
