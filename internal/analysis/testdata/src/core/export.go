// Package core is the determinism analyzer's file-scope fixture: only
// export.go of a package whose import-path tail is "core" is in scope.
package core

import "time"

// ExportStamp reads the wall clock inside the export path: flagged.
func ExportStamp() int64 {
	return time.Now().Unix()
}
