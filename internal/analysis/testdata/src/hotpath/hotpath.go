// Package hotpath is the hotpath analyzer's fixture.
package hotpath

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"reflect"
)

// key builds a cache key on the request hot path.
//
//ppatc:hotpath
func key(a, b string) string {
	k := fmt.Sprintf("%s|%s", a, b)
	sum := sha256.Sum256([]byte(k))
	blob, _ := json.Marshal(k)
	_ = reflect.TypeOf(a)
	_ = blob
	return k + string(sum[:])
}

// slowKey is unannotated and may allocate freely.
func slowKey(a, b string) string {
	return fmt.Sprintf("%s|%s", a, b)
}

var _ = key("a", "b")
var _ = slowKey("a", "b")
