// Package yield is the floatcmp analyzer's fixture. Its import-path
// tail "yield" puts it in the math-package scope.
package yield

import "math"

// Equalish compares two computed floats exactly: flagged.
func Equalish(a, b float64) bool {
	return a == b
}

// Different is the != form: flagged.
func Different(a, b float64) bool {
	return a != b
}

// Guard compares against the literal zero: a division guard, exempt.
func Guard(x float64) bool {
	return x == 0
}

// IsNaN is the x != x idiom: exempt.
func IsNaN(x float64) bool {
	return x != x
}

// Whole tests integrality with an exact comparison: flagged.
func Whole(v float64) bool {
	return v == math.Trunc(v)
}

// Sentinel compares against a nonzero constant: flagged.
func Sentinel(v float64) bool {
	return v == -1
}

// Narrow shows float32 is covered too: flagged.
func Narrow(a, b float32) bool {
	return a == b
}

// Suppressed carries a reasoned ignore: not reported.
func Suppressed(a, b float64) bool {
	return a == b //ppatcvet:ignore floatcmp exact tie-break semantics are intended here
}
