// Package unitcast is the unitcast analyzer's fixture: every construct
// the analyzer must flag, next to the legitimate patterns it must not.
package unitcast

import "ppatc/internal/units"

// setPowerMW has a unit-suffixed float64 parameter; bare literals fed
// to it lose their scale.
func setPowerMW(powerMW float64) float64 { return powerMW }

// setBudget has no unit suffix; literals are fine.
func setBudget(budget float64) float64 { return budget }

func bad() {
	p := units.Watts(5)
	e := units.Joules(10)

	_ = units.Energy(p)              // direct cross-dimension rebrand
	_ = units.Joules(float64(p))     // cross-dimension through float64
	_ = units.Joules(float64(e))     // redundant constructor round-trip
	_ = units.Energy(float64(p))     // conversion round-trip, cross
	_ = units.Energy(float64(e))     // conversion round-trip, same
	_ = units.Joules(p.Watts())      // accessor feeds wrong dimension
	_ = units.Joules(e.Picojoules()) // accessor/constructor scale mismatch
	_ = units.Joules(e.Joules())     // redundant accessor round-trip
	_ = p * p                        // W² typed as Power
	_ = e / e                        // dimensionless ratio typed as Energy
	_ = setPowerMW(3.5)              // bare literal for unit-suffixed param
}

func good() {
	p := units.Watts(5)
	e := units.Joules(10)

	_ = p * 2                        // constant scaling keeps the dimension
	_ = units.Watts(e.Joules() / 60) // derived expression, not a bare accessor
	_ = setPowerMW(p.Milliwatts())   // accessor names the scale at the call site
	_ = setBudget(7)                 // no unit suffix on the parameter
	_ = float64(e) * 0.5             // erasure inside arithmetic is not a round-trip
}
