// Package cluster is the locksafe analyzer's fixture: its import-path
// tail puts it in the analyzer's scope. No function takes a context or
// a request, so the ctxflow analyzer (which shares the cluster scope)
// stays quiet and the golden is purely lock discipline.
package cluster

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

type table struct {
	mu sync.Mutex
	n  int
}

// sleepHeld blocks every other locker for the sleep's duration.
func sleepHeld(t *table) {
	t.mu.Lock()
	time.Sleep(time.Millisecond) // flagged
	t.mu.Unlock()
}

// sendHeld holds the lock across a channel send; the non-blocking
// publish-or-drop select below it is the accepted idiom.
func sendHeld(t *table, ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch <- t.n // flagged
	select {  // ok: has a default
	case ch <- t.n:
	default:
	}
}

// recvHeld parks under the lock until a sender shows up.
func recvHeld(t *table, ch chan int) {
	t.mu.Lock()
	t.n = <-ch // flagged
	t.mu.Unlock()
}

// fetchHeld performs an HTTP round trip under the lock.
func fetchHeld(t *table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := http.Get("http://peer/x") // flagged
	if err == nil {
		resp.Body.Close()
	}
}

// waitHeld waits on goroutines that may need the same lock.
func waitHeld(t *table, wg *sync.WaitGroup) {
	t.mu.Lock()
	wg.Wait() // flagged
	t.mu.Unlock()
}

// earlyReturn leaves on a path that never reaches the Unlock.
func earlyReturn(t *table, bad bool) {
	t.mu.Lock()
	if bad {
		return // flagged: leaks the lock
	}
	t.mu.Unlock()
}

// noUnlock never releases at all.
func noUnlock(t *table) {
	t.mu.Lock() // flagged: no matching Unlock
	t.n++
}

// byValue copies the mutex with the receiver.
func (t table) byValue() int { return t.n } // flagged

// copies exercises the parameter, assignment, and range copy checks.
func copies(t *table, ts []table) int {
	u := *t // flagged: assignment copies the lock
	n := u.n
	for _, v := range ts { // flagged: range copies each element's lock
		n += v.n
	}
	return n
}

// addInGoroutine races the spawner's Wait.
func addInGoroutine(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // flagged: Add belongs before the go statement
		defer wg.Done()
	}()
}

type stats struct {
	hits int64
}

// bump accesses hits atomically; reset then writes it plainly.
func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func reset(s *stats) {
	s.hits = 0 // flagged: mixes plain and atomic access
}

var (
	_ = sleepHeld
	_ = sendHeld
	_ = recvHeld
	_ = fetchHeld
	_ = waitHeld
	_ = earlyReturn
	_ = noUnlock
	_ = table.byValue
	_ = copies
	_ = addInGoroutine
	_ = bump
	_ = reset
)
