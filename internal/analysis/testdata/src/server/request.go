// Package server is the ctxflow analyzer's fixture: its import-path
// tail puts it in the analyzer's scope, and every function exercises
// one cancellability rule. The file is named request.go so it stays
// outside the determinism analyzer's server file list.
package server

import (
	"context"
	"net/http"
	"time"
)

// widget stores a context in a struct field — flagged wherever it
// appears, parameters or not.
type widget struct {
	ctx context.Context
	n   int
}

// process is request-scoped (ctx parameter): every blocking construct
// in it must be cancellable.
func process(ctx context.Context, ch chan int) {
	ch <- 1 // bare send: flagged
	v := <-ch
	_ = v // bare receive: flagged
	for range ch {
		// range over a channel: flagged
	}
	select { // no default, no Done case: flagged
	case ch <- 2:
	}
	select { // has a ctx.Done() case: ok
	case ch <- 3:
	case <-ctx.Done():
	}
	select { // has a default: ok
	case ch <- 4:
	default:
	}
	time.Sleep(time.Millisecond) // flagged
	_, _ = http.Get("http://peer/x")
	_, _ = http.NewRequest(http.MethodGet, "http://peer/x", nil)
	defer func() { <-ch }() // deferred cleanup: ok
}

// helper has no ctx parameter, but context.Background() is still
// flagged: only constructors mint lifetime roots.
func helper() context.Context {
	return context.Background()
}

// NewWidget is a constructor: Background is the component's lifetime
// root here, not a cancellation escape.
func NewWidget() *widget {
	return &widget{ctx: context.Background()}
}

// idle takes neither a ctx nor a request, so its bare send is not
// judged — it is not request-scoped.
func idle(ch chan int) {
	ch <- 9
}

var (
	_ = process
	_ = helper
	_ = idle
)
