package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// runFixture loads one testdata fixture package and runs the full
// suite over it.
func runFixture(t *testing.T, fixture string) []Diagnostic {
	t.Helper()
	pkgs, err := Load(".", "./internal/analysis/testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("Load(%s): %v", fixture, err)
	}
	return Run(pkgs, Analyzers())
}

// golden compares rendered diagnostics against the pinned golden file.
func golden(t *testing.T, fixture string, diags []Diagnostic) {
	t.Helper()
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	got := sb.String()
	path := filepath.Join("testdata", "golden", fixture+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestUnitCastGolden(t *testing.T)    { golden(t, "unitcast", runFixture(t, "unitcast")) }
func TestDeterminismGolden(t *testing.T) { golden(t, "dse", runFixture(t, "dse")) }
func TestDeterminismFileScope(t *testing.T) {
	diags := runFixture(t, "core")
	golden(t, "core", diags)
	for _, d := range diags {
		if strings.Contains(d.File, "other.go") {
			t.Errorf("other.go is outside the core determinism scope, got %s", d)
		}
	}
}
func TestFloatCmpGolden(t *testing.T)   { golden(t, "yield", runFixture(t, "yield")) }
func TestHotPathGolden(t *testing.T)    { golden(t, "hotpath", runFixture(t, "hotpath")) }
func TestDirectivesGolden(t *testing.T) { golden(t, "directives", runFixture(t, "directives")) }
func TestCtxFlowGolden(t *testing.T)    { golden(t, "server", runFixture(t, "server")) }
func TestLockSafeGolden(t *testing.T)   { golden(t, "cluster", runFixture(t, "cluster")) }
func TestGoLeakGolden(t *testing.T)     { golden(t, "store", runFixture(t, "store")) }
func TestAPIContractGolden(t *testing.T) {
	golden(t, "apicontract", runFixture(t, "apicontract"))
}

// TestFixturesExitNonzero pins the acceptance criterion that every
// analyzer's fixture produces findings.
func TestFixturesExitNonzero(t *testing.T) {
	for _, fixture := range []string{
		"unitcast", "dse", "core", "yield", "hotpath", "directives",
		"server", "cluster", "store", "apicontract",
	} {
		if len(runFixture(t, fixture)) == 0 {
			t.Errorf("fixture %s produced no findings", fixture)
		}
	}
}

// TestSuppressionsHonored checks the two working directive forms in the
// directives fixture: the suppressed unitcast findings must be absent
// while the directive diagnostics remain.
func TestSuppressionsHonored(t *testing.T) {
	for _, d := range runFixture(t, "directives") {
		if d.Analyzer == "unitcast" {
			t.Errorf("suppressed unitcast finding leaked through: %s", d)
		}
	}
}

// TestRepoClean pins the invariant that the tree at HEAD carries no
// unsuppressed findings — the same gate CI enforces via cmd/ppatcvet.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every package in the module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) > 0 {
		for _, d := range diags {
			t.Errorf("unsuppressed finding at HEAD: %s", d)
		}
	}
}

// TestStableOrder runs the suite twice over a fixture with findings
// from several analyzers and requires byte-identical ordering.
func TestStableOrder(t *testing.T) {
	a, b := runFixture(t, "dse"), runFixture(t, "dse")
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("diagnostic %d differs between runs: %s vs %s", i, a[i], b[i])
		}
	}
}
