package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags nondeterminism sources inside the packages that
// promise byte-identical reproducible output: wall-clock reads,
// package-global (unseeded) math/rand, and map iteration that feeds
// writers, encoders or key builders. The dse engine's NDJSON streams,
// checkpoint files and spec hashes — and the server's cache keys —
// must not depend on scheduling or map order.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag time.Now, global math/rand and ordered output from map iteration in reproducible-output packages",
	Run:  runDeterminism,
}

// deterministicFiles scopes the analyzer: package-path tail → the file
// basenames that promise reproducible output (nil means every file).
var deterministicFiles = map[string][]string{
	"dse":    nil,
	"tcdp":   nil,
	"core":   {"export.go"},
	"server": {"cache.go", "batch.go"},
}

// inDeterministicScope reports whether the file at pos is covered.
func inDeterministicScope(pkg *Package, pos token.Pos) bool {
	files, ok := deterministicFiles[pathTail(pkg.ImportPath)]
	if !ok {
		return false
	}
	if files == nil {
		return true
	}
	name := pathTail(pkg.Fset.Position(pos).Filename)
	for _, f := range files {
		if f == name {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if !inDeterministicScope(pass.Pkg, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkDeterministicFunc(pass, info, fd)
			return true
		})
	}
}

func checkDeterministicFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	sorted := sortedObjects(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkClockAndRand(pass, info, n)
		case *ast.RangeStmt:
			checkMapRange(pass, info, n, sorted)
		}
		return true
	})
}

// checkClockAndRand flags time.Now and the package-global math/rand
// source. Methods on an explicitly seeded *rand.Rand are fine.
func checkClockAndRand(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch funcPkgPath(fn) {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a reproducible-output package; inject the clock or timestamp outside the deterministic path")
		}
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() != nil {
			return // method on a seeded *rand.Rand
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(), "package-global math/rand (%s.%s) is unseeded and process-global; use a seeded *rand.Rand", pathTail(funcPkgPath(fn)), fn.Name())
	}
}

// checkMapRange flags `for … range m` over a map whose body emits
// ordered output: writes to a writer or encoder, appends to a slice
// declared outside the loop, or string concatenation onto an outer
// variable. The collect-then-sort idiom is exempt — if the appended-to
// slice is later passed to a sort call in the same function, iteration
// order washes out.
func checkMapRange(pass *Pass, info *types.Info, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	t := exprType(info, rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sinkName, ok := writeSink(info, n); ok {
				pass.Reportf(rng.Pos(), "map iteration order is random but the loop writes output via %s; collect and sort the keys first", sinkName)
				reported = true
			}
		case *ast.AssignStmt:
			if obj, kind := outerAccumulation(info, n, rng); obj != nil && !sorted[obj] {
				pass.Reportf(rng.Pos(), "map iteration order is random but the loop %s %q declared outside it; collect and sort the keys first", kind, obj.Name())
				reported = true
			}
		}
		return !reported
	})
}

// writeSink recognizes calls that emit ordered output: the fmt
// Fprint/Print family and any method named Write*, Encode* or
// String-building WriteString/WriteByte/WriteRune.
func writeSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if funcPkgPath(fn) == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + name, true
		}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") {
			return name, true
		}
	}
	return "", false
}

// outerAccumulation reports the object accumulated into by assign when
// it is an append (x = append(x, …)) or string += targeting a
// variable declared outside the range statement. kind describes the
// accumulation for the message.
func outerAccumulation(info *types.Info, assign *ast.AssignStmt, rng *ast.RangeStmt) (types.Object, string) {
	if len(assign.Lhs) != 1 {
		return nil, ""
	}
	ident, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := info.Uses[ident]
	if obj == nil {
		obj = info.Defs[ident]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil, ""
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil, "" // loop-local accumulation
	}
	switch assign.Tok {
	case token.ADD_ASSIGN:
		if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			return obj, "concatenates onto"
		}
	case token.ASSIGN:
		if len(assign.Rhs) != 1 {
			return nil, ""
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil, ""
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, shadowed := info.Uses[id].(*types.Func); !shadowed {
				return obj, "appends to"
			}
		}
	}
	return nil, ""
}

// sortedObjects collects the slice objects passed to a sort or slices
// package call anywhere in body — accumulating into these is ordered
// later, so map-range appends to them are deterministic in effect.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		switch funcPkgPath(fn) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
