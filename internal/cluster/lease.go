package cluster

import (
	"fmt"
	"sync"
	"time"
)

// LeaseTable shards a plan of total points into contiguous [Lo, Hi)
// ranges and tracks who is working on each. A range is claimable when
// it is not done and either unleased or its lease has expired — so a
// worker that dies mid-range loses the lease and another worker steals
// the range, while a live worker's range is protected from duplicate
// execution. Complete is first-wins: exactly one completion per range
// is accepted, which (with the engine's determinism) preserves the
// "no point evaluated twice" invariant at range granularity even when
// a presumed-dead worker turns out to still be running.
type LeaseTable struct {
	mu     sync.Mutex
	ranges []RangeLease
	done   int
	// now is the clock, swappable by tests to force expiry.
	now func() time.Time
}

// RangeLease is one shard's state snapshot.
type RangeLease struct {
	Lo, Hi int
	// Owner is the worker holding the lease ("" when unleased).
	Owner string
	// Expiry is when the lease lapses and the range becomes stealable.
	Expiry time.Time
	// Done marks an accepted completion.
	Done bool
	// Claims counts how many times the range was handed out — 1 in the
	// happy path, more when a lease expired and the range was stolen.
	Claims int
}

// NewLeaseTable shards total points into ranges of rangeSize (minimum
// 1; the final range may be shorter).
func NewLeaseTable(total, rangeSize int) *LeaseTable {
	if rangeSize < 1 {
		rangeSize = 1
	}
	t := &LeaseTable{now: time.Now}
	for lo := 0; lo < total; lo += rangeSize {
		hi := lo + rangeSize
		if hi > total {
			hi = total
		}
		t.ranges = append(t.ranges, RangeLease{Lo: lo, Hi: hi})
	}
	return t
}

// Claim hands worker the first claimable range under a ttl-long lease.
// ok is false when nothing is claimable right now — either every range
// is done (check Done) or the remaining ranges are validly leased to
// other workers (retry after a lease interval).
func (t *LeaseTable) Claim(worker string, ttl time.Duration) (lo, hi int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for i := range t.ranges {
		r := &t.ranges[i]
		if r.Done {
			continue
		}
		if r.Owner != "" && now.Before(r.Expiry) {
			continue // validly leased to someone else (or to worker itself)
		}
		r.Owner = worker
		r.Expiry = now.Add(ttl)
		r.Claims++
		return r.Lo, r.Hi, true
	}
	return 0, 0, false
}

// Complete records the completion of [lo, hi). The first completion
// wins; a duplicate (the original lease holder finishing after its
// range was stolen and completed) returns false and must be discarded
// by the caller. An unknown range is an error.
func (t *LeaseTable) Complete(lo, hi int) (accepted bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ranges {
		r := &t.ranges[i]
		if r.Lo != lo || r.Hi != hi {
			continue
		}
		if r.Done {
			return false, nil
		}
		r.Done = true
		t.done++
		return true, nil
	}
	return false, fmt.Errorf("cluster: no range [%d, %d) in lease table", lo, hi)
}

// Done reports whether every range has completed.
func (t *LeaseTable) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == len(t.ranges)
}

// Remaining reports the count of ranges not yet completed.
func (t *LeaseTable) Remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ranges) - t.done
}

// Snapshot copies the table's current state (status endpoints, tests).
func (t *LeaseTable) Snapshot() []RangeLease {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RangeLease(nil), t.ranges...)
}

// setClock swaps the lease clock (tests).
func (t *LeaseTable) setClock(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}
