package cluster

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// quietLogger drops membership chatter in tests.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testNode starts a node backed by an httptest server that mounts the
// gossip endpoint, mirroring how ppatcd wires the handler.
func testNode(t *testing.T, id string, seeds ...string) (*Node, *httptest.Server) {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	n, err := StartNode(NodeConfig{
		ID:             id,
		Advertise:      ts.URL,
		GossipInterval: time.Hour, // ticks driven manually via Gossip()
		Logger:         quietLogger(),
	}, seeds)
	if err != nil {
		t.Fatalf("StartNode(%s): %v", id, err)
	}
	t.Cleanup(n.Close)
	mux.HandleFunc("POST "+GossipPath, func(w http.ResponseWriter, r *http.Request) {
		var msg GossipMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.HandleGossip(msg))
	})
	return n, ts
}

func TestMembershipJoin(t *testing.T) {
	a, tsA := testNode(t, "node-a")
	b, _ := testNode(t, "node-b", tsA.URL)

	b.Gossip() // b pushes to seed a; reply merges a's view into b

	for _, n := range []*Node{a, b} {
		if got := n.AliveCount(); got != 2 {
			t.Errorf("%s AliveCount = %d, want 2", n.ID(), got)
		}
		if got := n.Ring().Len(); got != 2 {
			t.Errorf("%s ring has %d members, want 2", n.ID(), got)
		}
	}
	// Both nodes agree on every key's owner.
	for _, k := range ringKeys(1000) {
		ownerA, _, okA := a.Owner(k)
		ownerB, _, okB := b.Owner(k)
		if !okA || !okB || ownerA.ID != ownerB.ID {
			t.Fatalf("owner disagreement on %q: a=%v b=%v", k, ownerA.ID, ownerB.ID)
		}
		if ownerA.URL == "" {
			t.Fatalf("owner of %q has no URL", k)
		}
	}
	peers := a.AlivePeers()
	if len(peers) != 1 || peers[0].ID != "node-b" {
		t.Errorf("a.AlivePeers() = %+v, want [node-b]", peers)
	}
}

func TestMembershipTransitiveGossip(t *testing.T) {
	a, tsA := testNode(t, "node-a")
	b, _ := testNode(t, "node-b", tsA.URL)
	c, _ := testNode(t, "node-c", tsA.URL)

	// b and c each only seed a; a's merged table spreads them to each
	// other on their next exchange.
	b.Gossip()
	c.Gossip()
	b.Gossip()

	for _, n := range []*Node{a, b, c} {
		if got := n.AliveCount(); got != 3 {
			t.Errorf("%s AliveCount = %d, want 3", n.ID(), got)
		}
	}
}

// TestMembershipLeave pins the drain ordering contract: Leave pushes
// the leaving state to peers synchronously, so by the time it returns
// the peer has already dropped the leaver from its ring.
func TestMembershipLeave(t *testing.T) {
	a, tsA := testNode(t, "node-a")
	b, _ := testNode(t, "node-b", tsA.URL)
	b.Gossip()
	if a.Ring().Len() != 2 {
		t.Fatal("join did not converge")
	}

	b.Leave()

	if got := a.AliveCount(); got != 1 {
		t.Errorf("a.AliveCount = %d after b left, want 1", got)
	}
	if got := a.Ring().Len(); got != 1 {
		t.Errorf("a ring has %d members after b left, want 1", got)
	}
	for _, k := range ringKeys(100) {
		if owner, _, ok := a.Owner(k); !ok || owner.ID != "node-a" {
			t.Fatalf("key %q routed to %v after the only peer left", k, owner.ID)
		}
	}
	// A second Leave is a no-op, and b still knows its own state.
	b.Leave()
	if got := b.AliveCount(); got != 1 { // only a remains alive in b's view
		t.Errorf("b.AliveCount = %d after leaving, want 1 (peer a)", got)
	}
}

// TestMembershipExpiry pins TTL-based failure detection: a peer whose
// heartbeat stops advancing is declared dead and drops off the ring.
func TestMembershipExpiry(t *testing.T) {
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	defer ts.Close()
	a, err := StartNode(NodeConfig{
		ID:             "node-a",
		Advertise:      ts.URL,
		GossipInterval: time.Hour,
		PeerTTL:        50 * time.Millisecond,
		Logger:         quietLogger(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Inject a peer directly, then let its TTL lapse with no heartbeats.
	a.merge([]Member{{ID: "node-ghost", URL: "http://127.0.0.1:0", State: StateAlive, Heartbeat: 1}})
	if a.AliveCount() != 2 {
		t.Fatal("ghost did not join")
	}
	time.Sleep(60 * time.Millisecond)
	a.Gossip()
	if got := a.AliveCount(); got != 1 {
		t.Errorf("AliveCount = %d after ghost expiry, want 1", got)
	}
	if got := a.Ring().Len(); got != 1 {
		t.Errorf("ring has %d members after ghost expiry, want 1", got)
	}
}

func TestMembershipStaleSelfEcho(t *testing.T) {
	a, _ := testNode(t, "node-a")
	// A peer echoing a stale "leaving" record for us must not flip our
	// own state; the node bumps past the echoed heartbeat instead.
	a.merge([]Member{{ID: "node-a", URL: a.Advertise(), State: StateLeaving, Heartbeat: 99}})
	members := a.Members()
	if len(members) != 1 || members[0].State != StateAlive {
		t.Fatalf("self state = %+v after stale echo, want alive", members)
	}
	if members[0].Heartbeat <= 99 {
		t.Errorf("self heartbeat = %d, want > 99 to outrun the echo", members[0].Heartbeat)
	}
}

func TestStartNodeValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{Advertise: "http://x"}, nil); err == nil {
		t.Error("StartNode without ID succeeded")
	}
	if _, err := StartNode(NodeConfig{ID: "x"}, nil); err == nil {
		t.Error("StartNode without advertise URL succeeded")
	}
}

// TestCloseAbortsInFlightGossip pins the shutdown contract: Close
// cancels the node's lifetime context, so a gossip exchange stuck on a
// hung peer aborts immediately instead of running out its full
// HTTPTimeout. Regression test for the exchange deriving its per-call
// timeout from context.Background().
func TestCloseAbortsInFlightGossip(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		// Hold the exchange open until the test is done asserting. The
		// client gives up on its own when Close cancels the node context;
		// the handler is released separately so hang.Close can drain.
		<-release
	}))
	defer hang.Close()
	defer close(release)

	n, err := StartNode(NodeConfig{
		ID:             "node-hang",
		Advertise:      "http://127.0.0.1:0", // never contacted: the hung seed is the only peer
		GossipInterval: time.Hour,            // the exchange is driven manually below
		HTTPTimeout:    30 * time.Second,     // far above the test's own deadline
		Logger:         quietLogger(),
	}, []string{hang.URL})
	if err != nil {
		t.Fatal(err)
	}

	gossipDone := make(chan struct{})
	go func() {
		n.Gossip() // blocks inside exchange() on the hung peer
		close(gossipDone)
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		n.Close()
		close(closed)
	}()
	for _, step := range []struct {
		name string
		ch   <-chan struct{}
	}{{"Close", closed}, {"in-flight gossip", gossipDone}} {
		select {
		case <-step.ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s still blocked on a hung peer after Close; the exchange is not tied to the node's lifetime context", step.name)
		}
	}
}
