package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Member states. A member is routable (on the ring) only while alive;
// leaving is gossiped by a draining node so peers stop routing to it
// before its listener closes, and dead is a local verdict reached when
// a member's heartbeat hasn't advanced within the TTL.
const (
	StateAlive   = "alive"
	StateLeaving = "leaving"
	StateDead    = "dead"
)

// GossipPath is the membership exchange endpoint every node mounts.
const GossipPath = "/cluster/v1/gossip"

// Member is one node's view of a cluster participant, as it rides the
// gossip wire.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// State is alive, leaving, or dead.
	State string `json:"state"`
	// Heartbeat is the member's own monotonic counter; the highest
	// heartbeat seen for an ID wins a merge, so fresher state always
	// overwrites staler state regardless of gossip path.
	Heartbeat uint64 `json:"heartbeat"`
}

// GossipMsg is one membership exchange: the sender's identity plus its
// full member table. The receiver merges and replies with its own
// table, so a single round trip synchronizes both directions.
type GossipMsg struct {
	From    Member   `json:"from"`
	Members []Member `json:"members"`
}

// NodeConfig shapes a cluster node. Zero values take the documented
// defaults.
type NodeConfig struct {
	// ID is this node's unique identity (required).
	ID string
	// Advertise is the base URL peers reach this node at (required).
	Advertise string
	// VNodes is the ring's virtual-node count per member (default 128).
	VNodes int
	// GossipInterval paces the gossip loop (default 1s).
	GossipInterval time.Duration
	// PeerTTL marks a member dead when its heartbeat hasn't advanced
	// for this long (default 5×GossipInterval).
	PeerTTL time.Duration
	// HTTPTimeout bounds one peer HTTP call (default 5s).
	HTTPTimeout time.Duration
	// Logger receives membership transitions (default slog.Default()).
	Logger *slog.Logger
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.PeerTTL <= 0 {
		c.PeerTTL = 5 * c.GossipInterval
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// memberEntry is the node's local bookkeeping around a Member.
type memberEntry struct {
	Member
	lastSeen time.Time
}

// Node is one cluster participant: the local membership table, the
// ring derived from it, and the gossip loop keeping both in sync with
// peers. All methods are safe for concurrent use.
type Node struct {
	cfg    NodeConfig
	client *http.Client
	ring   atomic.Pointer[Ring]

	mu        sync.Mutex
	members   map[string]*memberEntry // keyed by ID; includes self
	seeds     []string                // join URLs not yet matched to a member
	heartbeat uint64                  // self heartbeat
	leaving   bool

	// baseCtx bounds every outbound gossip exchange to the node's
	// lifetime: Close cancels it, so an exchange stuck on a hung peer
	// aborts immediately instead of running out its full HTTPTimeout
	// while Close waits on the gossip loop.
	//ppatcvet:ignore ctxflow node lifetime root, cancelled by Close; gossip exchanges derive their per-call timeout from it
	baseCtx context.Context
	cancel  context.CancelFunc

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartNode brings up a cluster node and begins gossiping with the
// seed URLs (the -join list; may be empty for the first node).
func StartNode(cfg NodeConfig, seeds []string) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: node needs an advertise URL")
	}
	n := &Node{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.HTTPTimeout},
		members: make(map[string]*memberEntry),
		stop:    make(chan struct{}),
	}
	n.baseCtx, n.cancel = context.WithCancel(context.Background())
	for _, s := range seeds {
		if s != "" && s != cfg.Advertise {
			n.seeds = append(n.seeds, s)
		}
	}
	n.members[cfg.ID] = &memberEntry{
		Member:   Member{ID: cfg.ID, URL: cfg.Advertise, State: StateAlive, Heartbeat: 1},
		lastSeen: time.Now(),
	}
	n.heartbeat = 1
	n.rebuildRingLocked()
	n.wg.Add(1)
	go n.gossipLoop()
	return n, nil
}

// ID returns this node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Advertise returns this node's advertised base URL.
func (n *Node) Advertise() string { return n.cfg.Advertise }

// Client returns the shared peer HTTP client (forwarding, sweep
// distribution) so every cross-node call obeys the same timeout.
func (n *Node) Client() *http.Client { return n.client }

// Ring returns the current routing ring (alive members only).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Owner resolves the member owning key on the current ring. self
// reports whether that member is this node.
func (n *Node) Owner(key string) (m Member, self bool, ok bool) {
	id, ok := n.Ring().Owner(key)
	if !ok {
		return Member{}, false, false
	}
	if id == n.cfg.ID {
		return Member{ID: id, URL: n.cfg.Advertise, State: StateAlive}, true, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	e, found := n.members[id]
	if !found {
		return Member{}, false, false
	}
	return e.Member, false, true
}

// Members returns the full membership table, sorted by ID.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, e := range n.members {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AliveCount reports the number of alive members, this node included —
// the ppatcd_cluster_peers gauge.
func (n *Node) AliveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, e := range n.members {
		if e.State == StateAlive {
			c++
		}
	}
	return c
}

// AlivePeers returns the alive members other than this node, sorted by
// ID — the work-distribution fan-out set.
func (n *Node) AlivePeers() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []Member
	for _, e := range n.members {
		if e.ID != n.cfg.ID && e.State == StateAlive {
			out = append(out, e.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HandleGossip merges an incoming exchange and returns this node's
// view — the server mounts it behind POST /cluster/v1/gossip.
func (n *Node) HandleGossip(msg GossipMsg) GossipMsg {
	n.merge(append(msg.Members, msg.From))
	return n.snapshotMsg()
}

// snapshotMsg builds the outgoing gossip message.
func (n *Node) snapshotMsg() GossipMsg {
	n.mu.Lock()
	self := n.members[n.cfg.ID].Member
	n.mu.Unlock()
	return GossipMsg{From: self, Members: n.Members()}
}

// merge folds remote member views in: higher heartbeat wins per ID,
// new IDs join the table, and the ring rebuilds when routability
// changed. Self entries are special — a stale echo of us can never
// overwrite our own state, but if a peer somehow holds a higher
// heartbeat for us we jump past it so our next gossip wins.
func (n *Node) merge(remote []Member) {
	n.mu.Lock()
	changed := false
	now := time.Now()
	for _, m := range remote {
		if m.ID == "" || m.State == "" {
			continue
		}
		if m.ID == n.cfg.ID {
			if m.Heartbeat > n.heartbeat {
				n.heartbeat = m.Heartbeat + 1
				self := n.members[n.cfg.ID]
				self.Heartbeat = n.heartbeat
				changed = true
			}
			continue
		}
		e, ok := n.members[m.ID]
		switch {
		case !ok:
			n.members[m.ID] = &memberEntry{Member: m, lastSeen: now}
			changed = changed || m.State == StateAlive
			n.cfg.Logger.Info("cluster member discovered", "id", m.ID, "url", m.URL, "state", m.State)
		case m.Heartbeat > e.Heartbeat:
			if e.State != m.State {
				changed = true
				n.cfg.Logger.Info("cluster member state", "id", m.ID, "from", e.State, "to", m.State)
			}
			e.Member = m
			e.lastSeen = now
		case m.Heartbeat == e.Heartbeat:
			e.lastSeen = now
		}
	}
	// Seed URLs that now correspond to a known member are resolved.
	if len(n.seeds) > 0 {
		known := make(map[string]bool, len(n.members))
		for _, e := range n.members {
			known[e.URL] = true
		}
		kept := n.seeds[:0]
		for _, s := range n.seeds {
			if !known[s] {
				kept = append(kept, s)
			}
		}
		n.seeds = kept
	}
	if changed {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()
}

// rebuildRingLocked rebuilds the routing ring from the alive members.
func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.members))
	for _, e := range n.members {
		if e.State == StateAlive {
			ids = append(ids, e.ID)
		}
	}
	n.ring.Store(NewRing(n.cfg.VNodes, ids...))
}

// gossipLoop drives periodic exchanges and TTL expiry until Close.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			n.tick()
		case <-n.stop:
			return
		}
	}
}

// tick advances our heartbeat, expires silent members, and exchanges
// views with every alive peer plus any unresolved seed URL. Small
// clusters (the design target) tolerate full fan-out; the exchange is
// one small JSON body per peer per interval.
func (n *Node) tick() {
	n.mu.Lock()
	if !n.leaving {
		n.heartbeat++
		n.members[n.cfg.ID].Heartbeat = n.heartbeat
		n.members[n.cfg.ID].lastSeen = time.Now()
	}
	changed := false
	now := time.Now()
	var urls []string
	for _, e := range n.members {
		if e.ID == n.cfg.ID {
			continue
		}
		if e.State == StateAlive && now.Sub(e.lastSeen) > n.cfg.PeerTTL {
			e.State = StateDead
			changed = true
			n.cfg.Logger.Warn("cluster member expired", "id", e.ID, "url", e.URL)
		}
		if e.State == StateAlive {
			urls = append(urls, e.URL)
		}
	}
	urls = append(urls, n.seeds...)
	if changed {
		n.rebuildRingLocked()
	}
	n.mu.Unlock()

	msg := n.snapshotMsg()
	for _, u := range urls {
		if reply, err := n.exchange(u, msg); err == nil {
			n.merge(append(reply.Members, reply.From))
		}
	}
}

// exchange POSTs one gossip message to a peer URL and decodes the
// reply.
func (n *Node) exchange(baseURL string, msg GossipMsg) (GossipMsg, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return GossipMsg{}, err
	}
	ctx, cancel := context.WithTimeout(n.baseCtx, n.cfg.HTTPTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+GossipPath, bytes.NewReader(body))
	if err != nil {
		return GossipMsg{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return GossipMsg{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return GossipMsg{}, fmt.Errorf("cluster: gossip to %s: %s", baseURL, resp.Status)
	}
	var reply GossipMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return GossipMsg{}, err
	}
	return reply, nil
}

// Gossip forces one immediate gossip round (tests, join acceleration).
func (n *Node) Gossip() { n.tick() }

// Leave marks this node leaving and pushes the state to every alive
// peer synchronously (best effort), so load balancers and ring lookups
// on other nodes stop routing here before the listener drains. Call
// before http.Server.Shutdown.
func (n *Node) Leave() {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return
	}
	n.leaving = true
	n.heartbeat++
	self := n.members[n.cfg.ID]
	self.Heartbeat = n.heartbeat
	self.State = StateLeaving
	n.rebuildRingLocked()
	var urls []string
	for _, e := range n.members {
		if e.ID != n.cfg.ID && e.State == StateAlive {
			urls = append(urls, e.URL)
		}
	}
	n.mu.Unlock()

	msg := n.snapshotMsg()
	for _, u := range urls {
		if _, err := n.exchange(u, msg); err != nil {
			n.cfg.Logger.Warn("cluster leave gossip failed", "url", u, "error", err)
		}
	}
}

// Close stops the gossip loop and aborts any exchange still in flight.
// It does not gossip leaving — call Leave first when draining
// gracefully.
func (n *Node) Close() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.cancel()
	})
	n.wg.Wait()
}
