package cluster

import (
	"testing"
	"time"
)

func TestLeaseTableSharding(t *testing.T) {
	tbl := NewLeaseTable(10, 4)
	snap := tbl.Snapshot()
	want := []RangeLease{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 8}, {Lo: 8, Hi: 10}}
	if len(snap) != len(want) {
		t.Fatalf("got %d ranges, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].Lo != w.Lo || snap[i].Hi != w.Hi {
			t.Errorf("range %d = [%d, %d), want [%d, %d)", i, snap[i].Lo, snap[i].Hi, w.Lo, w.Hi)
		}
	}
	if NewLeaseTable(5, 0).Remaining() != 5 {
		t.Error("rangeSize 0 should clamp to 1")
	}
	if !NewLeaseTable(0, 4).Done() {
		t.Error("empty table should be done")
	}
}

func TestLeaseClaimCompleteLifecycle(t *testing.T) {
	tbl := NewLeaseTable(6, 3)
	lo, hi, ok := tbl.Claim("w1", time.Minute)
	if !ok || lo != 0 || hi != 3 {
		t.Fatalf("first claim = [%d, %d) ok=%v, want [0, 3)", lo, hi, ok)
	}
	lo, hi, ok = tbl.Claim("w2", time.Minute)
	if !ok || lo != 3 || hi != 6 {
		t.Fatalf("second claim = [%d, %d) ok=%v, want [3, 6)", lo, hi, ok)
	}
	// Everything leased and unexpired: nothing claimable.
	if _, _, ok := tbl.Claim("w3", time.Minute); ok {
		t.Fatal("claim on a fully leased table succeeded")
	}
	if acc, err := tbl.Complete(0, 3); err != nil || !acc {
		t.Fatalf("Complete(0, 3) = %v, %v", acc, err)
	}
	if acc, err := tbl.Complete(3, 6); err != nil || !acc {
		t.Fatalf("Complete(3, 6) = %v, %v", acc, err)
	}
	if !tbl.Done() || tbl.Remaining() != 0 {
		t.Errorf("Done=%v Remaining=%d after completing all", tbl.Done(), tbl.Remaining())
	}
}

// TestLeaseStealAfterExpiry pins the work-stealing behavior: a range
// leased by a worker that went silent becomes claimable once the lease
// expires, and the claim count records the steal.
func TestLeaseStealAfterExpiry(t *testing.T) {
	tbl := NewLeaseTable(4, 4)
	clock := time.Now()
	tbl.setClock(func() time.Time { return clock })

	if _, _, ok := tbl.Claim("ghost", 30*time.Second); !ok {
		t.Fatal("initial claim failed")
	}
	if _, _, ok := tbl.Claim("thief", 30*time.Second); ok {
		t.Fatal("stole an unexpired lease")
	}
	clock = clock.Add(31 * time.Second)
	lo, hi, ok := tbl.Claim("thief", 30*time.Second)
	if !ok || lo != 0 || hi != 4 {
		t.Fatalf("steal = [%d, %d) ok=%v, want [0, 4)", lo, hi, ok)
	}
	if claims := tbl.Snapshot()[0].Claims; claims != 2 {
		t.Errorf("Claims = %d after a steal, want 2", claims)
	}
}

// TestLeaseCompleteFirstWins pins exactly-once completion: when a
// stolen range is completed by the thief and later by the resurrected
// original owner, only the first completion is accepted.
func TestLeaseCompleteFirstWins(t *testing.T) {
	tbl := NewLeaseTable(4, 4)
	if acc, err := tbl.Complete(0, 4); err != nil || !acc {
		t.Fatalf("first Complete = %v, %v", acc, err)
	}
	acc, err := tbl.Complete(0, 4)
	if err != nil {
		t.Fatalf("duplicate Complete errored: %v", err)
	}
	if acc {
		t.Fatal("duplicate Complete was accepted")
	}
	if _, err := tbl.Complete(1, 2); err == nil {
		t.Fatal("Complete of an unknown range did not error")
	}
}
