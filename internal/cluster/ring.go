// Package cluster turns N ppatcd processes into one service: a
// consistent-hash ring routing canonical cache keys to owner nodes, a
// gossip-based membership table feeding the ring, and a lease table
// sharding deterministic sweep plans into contiguous ranges that
// workers claim, steal, and complete exactly once.
//
// Everything is stdlib-only and transport-agnostic where possible: the
// ring and lease table are pure data structures; membership speaks
// plain HTTP JSON so any node can join with a single -join flag.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 128 vnodes keep
// the max/min key share within ~25% of fair for small clusters while
// the ring stays a few KB per node.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring mapping keys to node IDs.
// Every node builds the same ring from the same member set (the hash
// is content-derived, no process state), so any two nodes agree on
// every key's owner without coordination. Rebuild on membership change
// with NewRing; lookups are lock-free.
type Ring struct {
	points []ringPoint // ascending by hash
	nodes  []string    // sorted member IDs
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring of the given nodes with vnodes virtual points
// each (<=0 selects DefaultVNodes). Node order doesn't matter; the
// ring is a pure function of the member set.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, vnodes*len(nodes)),
		nodes:  append([]string(nil), nodes...),
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-64-bit hash collision between vnode labels is
		// vanishingly unlikely; break the tie deterministically anyway
		// so every process sorts identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hash64 is the ring's position hash: the first 8 bytes of SHA-256.
// Speed is irrelevant here (rings rebuild on membership change, keys
// hash once per cache miss); uniformity is what keeps shares balanced.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the node owning key: the first ring point at or after
// the key's hash, wrapping at the top. Empty rings own nothing.
func (r *Ring) Owner(key string) (node string, ok bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Nodes returns the member IDs on the ring, sorted.
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.nodes...)
}

// Len reports the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.nodes)
}
