package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates a deterministic key population shaped like the
// server's canonical cache keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("evaluate|sys-%d|workload-%d|grid-%d", i%17, i%29, i)
	}
	return keys
}

// TestRingBalance pins the balance property the vnode count was chosen
// for: at 128 vnodes, every node's key share stays within 25% of fair.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(100_000)
	for _, nNodes := range []int{2, 3, 5, 8} {
		nodes := make([]string, nNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		r := NewRing(DefaultVNodes, nodes...)
		counts := make(map[string]int, nNodes)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("Owner(%q) not ok on a %d-node ring", k, nNodes)
			}
			counts[owner]++
		}
		fair := float64(len(keys)) / float64(nNodes)
		for _, n := range nodes {
			share := float64(counts[n])
			dev := (share - fair) / fair
			if dev < -0.25 || dev > 0.25 {
				t.Errorf("%d nodes: %s owns %d keys (%.1f%% from fair share %.0f), want within 25%%",
					nNodes, n, counts[n], dev*100, fair)
			}
		}
	}
}

// TestRingMinimalRemapOnJoin pins the consistent-hashing property: when
// a node joins an N-node ring, at most ~1/(N+1) of keys change owner
// (bounded here at 2/(N+1) for slack), and every moved key moves TO the
// new node — existing nodes never trade keys among themselves.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	keys := ringKeys(50_000)
	for _, nNodes := range []int{2, 4, 7} {
		nodes := make([]string, nNodes)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d", i)
		}
		before := NewRing(DefaultVNodes, nodes...)
		joined := fmt.Sprintf("node-%d", nNodes)
		after := NewRing(DefaultVNodes, append(append([]string(nil), nodes...), joined)...)

		moved := 0
		for _, k := range keys {
			a, _ := before.Owner(k)
			b, _ := after.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != joined {
				t.Fatalf("join of %s moved key %q from %s to %s (not to the joiner)", joined, k, a, b)
			}
		}
		limit := 2 * len(keys) / (nNodes + 1)
		if moved > limit {
			t.Errorf("join onto %d nodes moved %d/%d keys, want <= %d (2/N)", nNodes, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("join onto %d nodes moved no keys; the joiner owns nothing", nNodes)
		}
	}
}

// TestRingMinimalRemapOnLeave pins the inverse: removing a node moves
// exactly that node's keys and nothing else.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	keys := ringKeys(50_000)
	nodes := []string{"node-0", "node-1", "node-2", "node-3"}
	before := NewRing(DefaultVNodes, nodes...)
	after := NewRing(DefaultVNodes, nodes[:3]...)
	for _, k := range keys {
		a, _ := before.Owner(k)
		b, _ := after.Owner(k)
		if a == "node-3" {
			if b == "node-3" {
				t.Fatalf("key %q still owned by removed node", k)
			}
			continue
		}
		if a != b {
			t.Fatalf("leave of node-3 moved key %q from %s to %s; only the leaver's keys may move", k, a, b)
		}
	}
}

// TestRingDeterministic pins that two rings built from the same member
// set (in any order) agree on every key — the property that lets nodes
// route without coordination.
func TestRingDeterministic(t *testing.T) {
	r1 := NewRing(DefaultVNodes, "a", "b", "c")
	r2 := NewRing(DefaultVNodes, "c", "a", "b")
	for _, k := range ringKeys(10_000) {
		o1, _ := r1.Owner(k)
		o2, _ := r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("rings built from reordered member sets disagree on %q: %s vs %s", k, o1, o2)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes.
func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Error("empty ring claimed an owner")
	}
	var nilRing *Ring
	if _, ok := nilRing.Owner("k"); ok {
		t.Error("nil ring claimed an owner")
	}
	single := NewRing(0, "only")
	for _, k := range ringKeys(100) {
		if o, ok := single.Owner(k); !ok || o != "only" {
			t.Fatalf("single-node ring returned (%q, %v)", o, ok)
		}
	}
	if single.Len() != 1 {
		t.Errorf("Len() = %d, want 1", single.Len())
	}
}
