package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
)

func TestFig2cDriver(t *testing.T) {
	out, err := Fig2c()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"US", "Coal", "Solar", "Taiwan", "average", "1.31"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2c output missing %q", want)
		}
	}
}

func TestFig2dDriver(t *testing.T) {
	out, err := Fig2d()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lithography (EUV)", "dry etch", "EPA total", "fixed FEOL"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2d output missing %q", want)
		}
	}
}

func TestTable1Driver(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Si NMOS", "CNFET", "IGZO", "IEFF"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig4Driver(t *testing.T) {
	out, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"HVT", "RVT", "LVT", "SLVT"} {
		if !strings.Contains(out, f) {
			t.Errorf("fig4 output missing %q", f)
		}
	}
}

func TestTable2AndFigureDrivers(t *testing.T) {
	// Use the sieve workload to keep the driver tests fast; the anchors
	// are checked elsewhere with matmult-int.
	si, m3d, text, err := Table2(embench.Sieve(), carbon.GridUS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "sieve") {
		t.Error("table2 text missing workload name")
	}
	out, err := Fig5(si, m3d, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dominates until") || !strings.Contains(out, "ratio") {
		t.Error("fig5 output incomplete")
	}
	out, err = Fig6a(si, m3d, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "isoline") {
		t.Error("fig6a output missing isoline")
	}
	out, err = Fig6b(si, m3d, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "lifetime +6 months", "M3D yield 10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6b output missing %q", want)
		}
	}
}

func TestSuiteDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("suite evaluates every workload twice")
	}
	rows, err := Suite(carbon.GridUS)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("suite has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TCDPRatio24 < 0.9 || r.TCDPRatio24 > 1.1 {
			t.Errorf("%s: tCDP ratio %v outside the expected band", r.Workload, r.TCDPRatio24)
		}
		if r.SiMemPJ <= r.M3DMemPJ {
			t.Errorf("%s: Si memory energy should exceed M3D", r.Workload)
		}
	}
	out := FormatSuite(rows)
	if !strings.Contains(out, "matmult-int") || !strings.Contains(out, "tCDP ratio") {
		t.Error("suite table incomplete")
	}
}

func TestWriteMarkdownReport(t *testing.T) {
	var buf strings.Builder
	if err := WriteMarkdownReport(&buf, embench.Sieve(), carbon.GridUS, 24); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# PPAtC report", "## Fig. 2c", "## Table II", "## Fig. 6b",
		"## Headline", "tCDP(all-Si)/tCDP(M3D)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestJSONExport(t *testing.T) {
	si, m3d := headline(t)
	var buf strings.Builder
	if err := WriteJSON(&buf, si, m3d); err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("JSON has %d entries", len(back))
	}
	if back[0]["system"] != "all-Si" || back[1]["system"] != "M3D IGZO/CNFET/Si" {
		t.Error("system names wrong in JSON")
	}
	if v := back[0]["memory_pj_per_cycle"].(float64); math.Abs(v-18.0) > 0.2 {
		t.Errorf("Si memory pJ in JSON = %v", v)
	}
	if v := back[1]["yield"].(float64); v != 0.5 {
		t.Errorf("M3D yield in JSON = %v", v)
	}
	if err := WriteJSON(&buf, nil); err == nil {
		t.Error("nil result should fail")
	}
}

func TestLifetimeCSVExport(t *testing.T) {
	si, m3d := headline(t)
	s := tcdp.PaperScenario()
	sa, err := tcdp.Lifetime(si.DesignPoint(), s, 6)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tcdp.Lifetime(m3d.DesignPoint(), s, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteLifetimeCSV(&buf, sa, sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("CSV has %d lines, want header + 6", len(lines))
	}
	if !strings.HasPrefix(lines[0], "month,all-Si_embodied_g") {
		t.Errorf("header = %q", lines[0])
	}
	if got := strings.Count(lines[1], ","); got != 8 {
		t.Errorf("row has %d commas, want 8", got)
	}
	if err := WriteLifetimeCSV(&buf); err == nil {
		t.Error("empty export should fail")
	}
	short := sa
	short.Months = short.Months[:2]
	if err := WriteLifetimeCSV(&buf, sa, short); err == nil {
		t.Error("mismatched series should fail")
	}
}
