package core

import (
	"context"
	"reflect"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/obs"
	"ppatc/internal/units"
)

// TestMemoMatchesDirect pins the memo's defining property: evaluations
// through a warm memo are identical — provenance included — to direct
// evaluation. The memo replays pure stage outputs; it must never change
// a number.
func TestMemoMatchesDirect(t *testing.T) {
	ctx := obs.WithProvenanceEnabled(context.Background())
	grids := []carbon.Grid{carbon.GridUS, carbon.GridCoal}
	m := NewMemo()
	for _, sys := range Systems() {
		for _, w := range embench.Workloads() {
			for _, grid := range grids {
				direct, err := EvaluateContext(ctx, sys, w, grid)
				if err != nil {
					t.Fatalf("direct %s/%s/%s: %v", sys.Name, w.Name, grid.Name, err)
				}
				// Twice per tuple: first fills stage entries, second replays
				// every stage from the memo.
				for pass := 0; pass < 2; pass++ {
					got, err := m.EvaluateContext(ctx, sys, w, grid)
					if err != nil {
						t.Fatalf("memo %s/%s/%s pass %d: %v", sys.Name, w.Name, grid.Name, pass, err)
					}
					if !reflect.DeepEqual(got, direct) {
						t.Errorf("memo %s/%s/%s pass %d: result differs from direct evaluation",
							sys.Name, w.Name, grid.Name, pass)
					}
				}
			}
		}
	}
}

// TestMemoReusesStages pins the incremental behaviour on a grid-axis
// sweep: after the first tuple, only the carbon stage re-runs.
func TestMemoReusesStages(t *testing.T) {
	ctx := context.Background()
	sys := AllSiSystem()
	w := embench.Workloads()[0]
	m := NewMemo()
	grids := []carbon.Grid{
		carbon.GridUS, carbon.GridCoal, carbon.GridSolar,
		carbon.CustomGrid("grid-123", units.GramsPerKilowattHour(123)),
	}
	for _, grid := range grids {
		if _, err := m.EvaluateContext(ctx, sys, w, grid); err != nil {
			t.Fatalf("%s: %v", grid.Name, err)
		}
	}
	stats := m.Stats()
	for _, stage := range []string{StageEmbench, StageEDRAM, StageSynth, StageFloorplan} {
		if got := stats[stage].Misses; got != 1 {
			t.Errorf("stage %s ran %d times across the grid sweep, want 1", stage, got)
		}
		if got := stats[stage].Hits; got != int64(len(grids)-1) {
			t.Errorf("stage %s: %d memo hits, want %d", stage, got, len(grids)-1)
		}
	}
	if got := stats[StageCarbon].Misses; got != int64(len(grids)) {
		t.Errorf("carbon stage ran %d times, want %d (once per grid intensity)", got, len(grids))
	}
}

// TestMemoDoesNotCacheCancellation: a cancelled evaluation must not
// poison a stage key for later callers.
func TestMemoDoesNotCacheCancellation(t *testing.T) {
	m := NewMemo()
	sys := AllSiSystem()
	w := embench.Workloads()[0]
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// The pre-stage ctx.Err check rejects this before any stage runs; go
	// through memoDo directly to exercise the cache-refusal path.
	if _, err := memoDo(m, memoStageEmbench, "poison", func() (any, error) {
		return nil, cancelled.Err()
	}); err == nil {
		t.Fatal("expected cancellation error")
	}
	if got := m.misses[memoStageEmbench].Load(); got != 0 {
		t.Fatalf("cancelled run was cached (misses=%d)", got)
	}
	if _, err := m.EvaluateContext(context.Background(), sys, w, carbon.GridUS); err != nil {
		t.Fatalf("evaluation after cancelled run: %v", err)
	}
}
