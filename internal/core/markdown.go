package core

import (
	"fmt"
	"io"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// WriteMarkdownReport generates a self-contained markdown artifact with
// every experiment of the paper — the machine-written counterpart of
// EXPERIMENTS.md, regenerated from the current models so drift between
// code and documentation is impossible.
func WriteMarkdownReport(w io.Writer, workload embench.Workload, grid carbon.Grid, months int) error {
	pr := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := pr("# PPAtC report\n\nWorkload: `%s` · grid: %s (%s) · lifetime: %d months\n\n",
		workload.Name, grid.Name, grid.Intensity, months); err != nil {
		return err
	}

	section := func(title, body string) error {
		return pr("## %s\n\n```\n%s```\n\n", title, body)
	}

	fig2c, err := Fig2c()
	if err != nil {
		return err
	}
	if err := section("Fig. 2c — embodied carbon per wafer", fig2c); err != nil {
		return err
	}
	fig2d, err := Fig2d()
	if err != nil {
		return err
	}
	if err := section("Fig. 2d — Eq. 4 step-energy matrix", fig2d); err != nil {
		return err
	}
	if err := section("Table I — FET comparison", Table1()); err != nil {
		return err
	}
	fig4, err := Fig4()
	if err != nil {
		return err
	}
	if err := section("Fig. 4 — M0 synthesis sweep", fig4); err != nil {
		return err
	}

	si, m3d, t2, err := Table2(workload, grid)
	if err != nil {
		return err
	}
	if err := section("Table II — PPAtC summary", t2); err != nil {
		return err
	}
	fig5, err := Fig5(si, m3d, months)
	if err != nil {
		return err
	}
	if err := section("Fig. 5 — tC and tCDP vs lifetime", fig5); err != nil {
		return err
	}
	fig6a, err := Fig6a(si, m3d, months)
	if err != nil {
		return err
	}
	if err := section("Fig. 6a — tCDP benefit map", fig6a); err != nil {
		return err
	}
	fig6b, err := Fig6b(si, m3d, months)
	if err != nil {
		return err
	}
	if err := section("Fig. 6b — isoline uncertainty", fig6b); err != nil {
		return err
	}

	// Headline summary table.
	ratio, err := tcdp.Ratio(si.DesignPoint(), m3d.DesignPoint(), tcdp.PaperScenario(), units.Months(months))
	if err != nil {
		return err
	}
	if err := pr("## Headline\n\n| quantity | all-Si | M3D |\n|---|---|---|\n"); err != nil {
		return err
	}
	rows := [][3]string{
		{"memory energy per cycle", fmt.Sprintf("%.1f pJ", si.MemPerCycle.Picojoules()), fmt.Sprintf("%.1f pJ", m3d.MemPerCycle.Picojoules())},
		{"embodied carbon per good die", fmt.Sprintf("%.2f g", si.EmbodiedPerGoodDie.Grams()), fmt.Sprintf("%.2f g", m3d.EmbodiedPerGoodDie.Grams())},
		{"operational power", si.OperationalPower.String(), m3d.OperationalPower.String()},
	}
	for _, r := range rows {
		if err := pr("| %s | %s | %s |\n", r[0], r[1], r[2]); err != nil {
			return err
		}
	}
	return pr("\ntCDP(all-Si)/tCDP(M3D) at %d months = **%.3f** (paper: 1.02 at 24 months).\n",
		months, ratio)
}
