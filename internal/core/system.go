// Package core is the PPAtC engine: it ties every substrate together to
// evaluate a complete embedded system — ARM Cortex-M0 plus two 64 kB eDRAM
// macros — in a chosen fabrication technology, reproducing the paper's
// five-step design flow (Sec. III-B):
//
//  1. memory sizing (fixed at the paper's 64 kB program + 64 kB data),
//  2. eDRAM schematic & physical design (internal/edram, SPICE-validated),
//  3. M0 synthesis and timing closure (internal/synth),
//  4. application-dependent energy from ISA simulation (internal/embench),
//  5. total carbon per good die (internal/process, wafer, yield, carbon).
//
// The output of Evaluate is a PPAtC report — the rows of the paper's
// Table II — which the tcdp package turns into lifetime and carbon-
// efficiency analyses (Figs. 5 and 6).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ppatc/internal/carbon"
	"ppatc/internal/device"
	"ppatc/internal/edram"
	"ppatc/internal/embench"
	"ppatc/internal/floorplan"
	"ppatc/internal/obs"
	"ppatc/internal/process"
	"ppatc/internal/synth"
	"ppatc/internal/units"
	"ppatc/internal/wafer"
	"ppatc/internal/yield"
)

// Stage names of the five-step flow, as they appear in trace spans,
// provenance records, and the daemon's per-stage latency histograms.
const (
	StageEmbench   = "embench"
	StageEDRAM     = "edram"
	StageSynth     = "synth"
	StageFloorplan = "floorplan"
	StageCarbon    = "carbon"
)

// Stages lists the pipeline stage names in execution order.
func Stages() []string {
	return []string{StageEmbench, StageEDRAM, StageSynth, StageFloorplan, StageCarbon}
}

// SystemDesign is one technology realization of the embedded system.
type SystemDesign struct {
	// Name identifies the design ("all-Si", "M3D IGZO/CNFET/Si").
	Name string
	// Flow is the fabrication process.
	Flow *process.Flow
	// Cell is the eDRAM bit-cell implementation.
	Cell edram.CellDesign
	// Array is the memory organization (shared by both macros).
	Array edram.ArraySpec
	// Periphery is the memory peripheral energy set.
	Periphery edram.PeripheryEnergies
	// Core is the M0 synthesis model.
	Core synth.Design
	// CoreFlavor is the VT flavour the core is implemented in.
	CoreFlavor device.VTFlavor
	// Clock is the system clock (500 MHz in the case study).
	Clock units.Frequency
	// Yield is the die-yield model.
	Yield yield.Model
	// Wafer is the wafer specification.
	Wafer wafer.Spec
	// DieSpacing is the scribe spacing between dies.
	DieSpacing units.Length
	// HasCNT and HasIGZO flag the beyond-Si films for MPA accounting.
	HasCNT, HasIGZO bool
}

// PaperClock is the case study's clock frequency.
var PaperClock = units.Megahertz(500)

// AllSiSystem returns the baseline design of Fig. 1c.
func AllSiSystem() SystemDesign {
	cell := edram.SiCellDesign()
	return SystemDesign{
		Name:       AllSiName,
		Flow:       process.AllSi7nm(),
		Cell:       cell,
		Array:      edram.PaperArray(),
		Periphery:  edram.PaperPeriphery(cell),
		Core:       synth.CortexM0(),
		CoreFlavor: device.RVT,
		Clock:      PaperClock,
		Yield:      yield.PaperAllSi,
		Wafer:      wafer.Paper300mm(),
		DieSpacing: units.Millimeters(0.1),
	}
}

// M3DSystem returns the monolithic-3D design of Fig. 1b.
func M3DSystem() SystemDesign {
	cell := edram.M3DCellDesign()
	return SystemDesign{
		Name:       M3DName,
		Flow:       process.M3D7nm(),
		Cell:       cell,
		Array:      edram.PaperArray(),
		Periphery:  edram.PaperPeriphery(cell),
		Core:       synth.CortexM0(),
		CoreFlavor: device.RVT,
		Clock:      PaperClock,
		Yield:      yield.PaperM3D,
		Wafer:      wafer.Paper300mm(),
		DieSpacing: units.Millimeters(0.1),
		HasCNT:     true,
		HasIGZO:    true,
	}
}

// Systems returns the bundled system designs in the paper's order.
func Systems() []SystemDesign {
	return []SystemDesign{AllSiSystem(), M3DSystem()}
}

// Canonical names of the bundled designs, as they appear in reports and
// cache keys.
const (
	AllSiName = "all-Si"
	M3DName   = "M3D IGZO/CNFET/Si"
)

// CanonicalSystemName resolves a design name or shorthand to its
// canonical form without constructing the design. Request validation and
// cache-key building on serving hot paths use this; the full (and much
// more expensive) SystemByName construction is deferred to cache misses.
func CanonicalSystemName(name string) (string, error) {
	switch strings.ToLower(name) {
	case "si", "all-si", "allsi":
		return AllSiName, nil
	case "m3d":
		return M3DName, nil
	}
	if strings.EqualFold(name, AllSiName) {
		return AllSiName, nil
	}
	if strings.EqualFold(name, M3DName) {
		return M3DName, nil
	}
	return "", fmt.Errorf("core: unknown system %q (valid: %s, %s, or the shorthands si, m3d)",
		name, AllSiName, M3DName)
}

// SystemByName looks up a bundled design by its full name, case-insensitively,
// also accepting the shorthands "si", "all-si" and "m3d".
func SystemByName(name string) (SystemDesign, error) {
	canonical, err := CanonicalSystemName(name)
	if err != nil {
		return SystemDesign{}, err
	}
	if canonical == AllSiName {
		return AllSiSystem(), nil
	}
	return M3DSystem(), nil
}

// Validate checks the design is complete.
func (s SystemDesign) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("core: design must be named")
	case s.Flow == nil:
		return errors.New("core: design needs a process flow")
	case s.Yield == nil:
		return errors.New("core: design needs a yield model")
	case s.Clock <= 0:
		return errors.New("core: clock must be positive")
	case s.DieSpacing < 0:
		return errors.New("core: die spacing must be non-negative")
	}
	return nil
}

// PPAtC is the full evaluation result — the paper's Table II plus the
// intermediate quantities behind it.
type PPAtC struct {
	// System echoes the design name; Workload the application.
	System, Workload string
	// Clock is the operating frequency.
	Clock units.Frequency

	// --- Performance ---
	// Cycles is the cycle count of one application execution.
	Cycles uint64
	// ExecTime is Cycles / Clock.
	ExecTime float64

	// --- Power / energy ---
	// M0DynamicPerCycle is the core's dynamic energy per cycle.
	M0DynamicPerCycle units.Energy
	// MemPerCycle is the combined program+data memory energy per cycle
	// (accesses, refresh and leakage).
	MemPerCycle units.Energy
	// M0LeakagePower is the core's static power.
	M0LeakagePower units.Power
	// OperationalPower is the total power while running (Eq. 6).
	OperationalPower units.Power

	// --- Area ---
	// MemoryArea is one 64 kB macro footprint.
	MemoryArea units.Area
	// TotalArea is the die area; DieWidth/DieHeight its dimensions.
	TotalArea           units.Area
	DieWidth, DieHeight units.Length

	// --- Carbon ---
	// EPA is the fabrication energy per wafer.
	EPA units.Energy
	// EmbodiedPerWafer is the per-wafer embodied carbon breakdown.
	EmbodiedPerWafer carbon.EmbodiedBreakdown
	// DiesPerWafer and Yield size the good-die amortization.
	DiesPerWafer int
	Yield        float64
	// EmbodiedPerGoodDie is Eq. 5's result.
	EmbodiedPerGoodDie units.Carbon

	// --- Memory details ---
	// Program and Data are the characterized macros (identical hardware,
	// different access mixes).
	Memory *edram.Memory
	// ProgramReadsPerCycle, DataReadsPerCycle and DataWritesPerCycle are
	// the workload's per-cycle memory access rates.
	ProgramReadsPerCycle, DataReadsPerCycle, DataWritesPerCycle float64

	// Provenance records the intermediate quantity each stage produced,
	// so any Table-2 number can be audited back to its inputs. Collected
	// only when the evaluation context asks for it via
	// obs.WithProvenanceEnabled; nil otherwise.
	Provenance []obs.Field
}

// Evaluate runs the full design flow for a system and workload on a grid.
func Evaluate(sys SystemDesign, w embench.Workload, grid carbon.Grid) (*PPAtC, error) {
	return EvaluateContext(context.Background(), sys, w, grid)
}

// EvaluateContext is Evaluate with cancellation: the flow checks ctx between
// its expensive stages (ISA simulation, eDRAM characterization, synthesis)
// so callers serving many evaluations — the ppatcd daemon in particular —
// can abandon work whose requester has gone away or timed out.
func EvaluateContext(ctx context.Context, sys SystemDesign, w embench.Workload, grid carbon.Grid) (*PPAtC, error) {
	return evaluateWithMemo(ctx, nil, sys, w, grid)
}

// evaluateWithMemo is the five-stage flow shared by the direct path
// (m == nil: every stage runs) and the stage-memoized incremental path
// (m != nil: each stage runs once per distinct input slice and is
// replayed from the memo afterwards). Both paths assemble the PPAtC
// from the same stage outputs, so their results — and anything encoded
// from them — are identical.
func evaluateWithMemo(ctx context.Context, m *Memo, sys SystemDesign, w embench.Workload, grid carbon.Grid) (*PPAtC, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Observability is opt-in per context and free when absent: spans are
	// nil no-ops without a trace, and prov stays a nil no-op collector
	// unless provenance was requested. Stage spans open inside the memo
	// closures, so a memo hit — a stage that did not run — emits no span.
	ctx, evalSpan := obs.StartSpan(ctx, "evaluate")
	defer evalSpan.End()
	evalSpan.SetStr("system", sys.Name)
	evalSpan.SetStr("workload", w.Name)
	evalSpan.SetStr("grid", grid.Name)
	var prov *obs.Provenance
	if obs.ProvenanceEnabled(ctx) {
		prov = obs.NewProvenance()
	}

	// Step 4 first: the workload's cycle count and access mix. The only
	// input is the workload itself (the cycle budget is fixed), so the
	// memo key is the workload name.
	run, err := memoEmbench(ctx, m, w)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prov.Record(StageEmbench, "cycles", float64(run.Cycles), "cycles")
	prov.Record(StageEmbench, "instructions", float64(run.Instructions), "insns")
	prov.Record(StageEmbench, "program_reads_per_cycle", run.ProgramReadsPerCycle(), "")
	prov.Record(StageEmbench, "data_reads_per_cycle", run.DataReadsPerCycle(), "")
	prov.Record(StageEmbench, "data_writes_per_cycle", run.DataWritesPerCycle(), "")

	// Step 2: characterize the eDRAM macro. The build depends only on
	// the design's cell/array/periphery (identified by the system name);
	// the timing check depends on the clock too, so it runs per call,
	// outside the memo.
	mem, err := memoEDRAM(ctx, m, sys)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !mem.MeetsTiming(sys.Clock) {
		return nil, fmt.Errorf("core: %s memory misses timing at %v", sys.Name, sys.Clock)
	}
	accessDelay := mem.ReadLatency
	if mem.WriteLatency > accessDelay {
		accessDelay = mem.WriteLatency
	}
	timingMarginPS := (sys.Clock.PeriodSeconds() - accessDelay) * 1e12
	prov.Record(StageEDRAM, "macro_area_mm2", mem.Area.SquareMillimeters(), "mm2")
	prov.Record(StageEDRAM, "read_energy_pj", mem.ReadEnergy*1e12, "pJ")
	prov.Record(StageEDRAM, "write_energy_pj", mem.WriteEnergy*1e12, "pJ")
	prov.Record(StageEDRAM, "refresh_power_mw", mem.RefreshPower*1e3, "mW")
	prov.Record(StageEDRAM, "leakage_power_mw", mem.LeakagePower*1e3, "mW")
	prov.Record(StageEDRAM, "timing_margin_ps", timingMarginPS, "ps")

	// Step 3: synthesize the core at the target clock (memo key: core
	// flavour + clock, via the system name).
	cRes, err := memoSynth(ctx, m, sys)
	if err != nil {
		return nil, err
	}
	if !cRes.Closed {
		return nil, fmt.Errorf("core: %s M0 fails timing closure at %v", sys.Name, sys.Clock)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prov.Record(StageSynth, "dynamic_energy_pj_per_cycle", cRes.DynamicEnergy.Picojoules(), "pJ")
	prov.Record(StageSynth, "leakage_power_mw", cRes.LeakagePower.Milliwatts(), "mW")
	prov.Record(StageSynth, "critical_path_ps", cRes.CriticalPath*1e12, "ps")
	prov.Record(StageSynth, "sizing", cRes.Sizing, "x")
	prov.Record(StageSynth, "core_area_mm2", sys.Core.Area().SquareMillimeters(), "mm2")

	// Memory energy: program macro serves fetches; data macro serves
	// loads/stores; both pay refresh + leakage every cycle.
	progE, err := mem.EnergyPerCycle(run.ProgramReadsPerCycle(), 0, sys.Clock)
	if err != nil {
		return nil, err
	}
	dataE, err := mem.EnergyPerCycle(run.DataReadsPerCycle(), run.DataWritesPerCycle(), sys.Clock)
	if err != nil {
		return nil, err
	}
	memPerCycle := progE + dataE
	prov.Record(StageEDRAM, "memory_pj_per_cycle", memPerCycle.Picojoules(), "pJ")

	// Floorplan: two macros plus the core. Inputs are the macro
	// dimensions (a function of the design) and the fixed core area, so
	// the memo key is the system name.
	chip, err := memoFloorplan(ctx, m, sys, mem)
	if err != nil {
		return nil, err
	}
	prov.Record(StageFloorplan, "die_width_um", chip.Width.Micrometers(), "um")
	prov.Record(StageFloorplan, "die_height_um", chip.Height.Micrometers(), "um")
	prov.Record(StageFloorplan, "die_area_mm2", chip.Area.SquareMillimeters(), "mm2")

	// Step 5: carbon. The embodied chain (EPA → GPA → MPA → per-wafer →
	// yield → per-good-die) depends on the design, the die, and the
	// fabrication grid's carbon intensity — the memo key — while Eq. 6's
	// operational power also folds in the workload's memory energy, so
	// it is cheap arithmetic done per call.
	res, err := memoCarbon(ctx, m, sys, grid, chip)
	if err != nil {
		return nil, err
	}
	opPower := carbon.OperationalPower(cRes.LeakagePower, cRes.DynamicEnergy, memPerCycle, sys.Clock)
	prov.Record(StageCarbon, "epa_kwh_per_wafer", res.epa.KilowattHours(), "kWh")
	prov.Record(StageCarbon, "epa_facility_kwh_per_wafer", res.breakdown.EPAFacility.KilowattHours(), "kWh")
	prov.Record(StageCarbon, "gpa_kg_per_wafer", res.breakdown.Gases.Kilograms(), "kg")
	prov.Record(StageCarbon, "mpa_kg_per_wafer", res.breakdown.Materials.Kilograms(), "kg")
	prov.Record(StageCarbon, "electricity_kg_per_wafer", res.breakdown.Electricity.Kilograms(), "kg")
	prov.Record(StageCarbon, "embodied_per_wafer_kg", res.breakdown.Total().Kilograms(), "kg")
	prov.Record(StageCarbon, "dies_per_wafer", float64(res.dies), "dies")
	prov.Record(StageCarbon, "yield", res.yield, "")
	prov.Record(StageCarbon, "embodied_per_good_die_g", res.perGood.Grams(), "g")
	prov.Record(StageCarbon, "operational_power_mw", opPower.Milliwatts(), "mW")

	return &PPAtC{
		System:               sys.Name,
		Workload:             w.Name,
		Clock:                sys.Clock,
		Cycles:               run.Cycles,
		ExecTime:             float64(run.Cycles) * sys.Clock.PeriodSeconds(),
		M0DynamicPerCycle:    cRes.DynamicEnergy,
		MemPerCycle:          memPerCycle,
		M0LeakagePower:       cRes.LeakagePower,
		OperationalPower:     opPower,
		MemoryArea:           mem.Area,
		TotalArea:            chip.Area,
		DieWidth:             chip.Width,
		DieHeight:            chip.Height,
		EPA:                  res.epa,
		EmbodiedPerWafer:     res.breakdown,
		DiesPerWafer:         res.dies,
		Yield:                res.yield,
		EmbodiedPerGoodDie:   res.perGood,
		Memory:               mem,
		ProgramReadsPerCycle: run.ProgramReadsPerCycle(),
		DataReadsPerCycle:    run.DataReadsPerCycle(),
		DataWritesPerCycle:   run.DataWritesPerCycle(),
		Provenance:           prov.Fields(),
	}, nil
}

// carbonResult is the embodied-carbon output bundle of carbonChain: the
// workload-independent part of Step 5 (everything except Eq. 6's
// operational power), which is what the stage memo caches per
// (design, grid) pair.
type carbonResult struct {
	epa       units.Energy
	breakdown carbon.EmbodiedBreakdown
	dies      int
	yield     float64
	perGood   units.Carbon
}

// carbonChain runs the EPA → GPA → MPA → embodied → yield → per-good-die
// chain. It is a pure function of the design, the grid's fabrication
// carbon intensity, and the floorplanned die.
func carbonChain(sys SystemDesign, grid carbon.Grid, chip floorplan.Chip) (carbonResult, error) {
	var out carbonResult
	epa, err := sys.Flow.EPA(process.DefaultEnergyTable())
	if err != nil {
		return out, err
	}
	gpa, err := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
	if err != nil {
		return out, err
	}
	waferArea := sys.Wafer.Area()
	var films []process.FilmMaterial
	if sys.HasCNT {
		f, err := process.CNTMaterial(process.PaperCNTFilm(waferArea))
		if err != nil {
			return out, err
		}
		films = append(films, f)
	}
	if sys.HasIGZO {
		f, err := process.IGZOMaterial(process.PaperIGZOFilm(waferArea))
		if err != nil {
			return out, err
		}
		films = append(films, f)
	}
	mpa, err := process.MPAWithFilms(waferArea, films...)
	if err != nil {
		return out, err
	}
	breakdown, err := carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
		MPA: mpa, GPA: gpa, EPA: epa,
		CIFab: grid.Intensity, WaferArea: waferArea,
	})
	if err != nil {
		return out, err
	}

	die := wafer.Die{Width: chip.Width, Height: chip.Height, Spacing: sys.DieSpacing}
	dies, err := wafer.EstimateGeometric(sys.Wafer, die)
	if err != nil {
		return out, err
	}
	yieldVal, err := sys.Yield.Yield(chip.Area)
	if err != nil {
		return out, err
	}
	perGood, err := carbon.PerGoodDie(breakdown.Total(), dies, yieldVal)
	if err != nil {
		return out, err
	}

	out = carbonResult{epa: epa, breakdown: breakdown, dies: dies, yield: yieldVal, perGood: perGood}
	return out, nil
}
