package core

import (
	"context"
	"math"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/obs"
)

// evalWithProvenance runs one all-Si evaluation with provenance enabled.
func evalWithProvenance(t *testing.T) *PPAtC {
	t.Helper()
	w, err := embench.ByName("crc32")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	grid, err := carbon.GridByName("US")
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	ctx := obs.WithProvenanceEnabled(context.Background())
	res, err := EvaluateContext(ctx, AllSiSystem(), w, grid)
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	return res
}

// TestProvenanceCoversEveryStage asserts the satellite requirement that
// every pipeline stage contributes at least one provenance field.
func TestProvenanceCoversEveryStage(t *testing.T) {
	res := evalWithProvenance(t)
	got := obs.Stages(res.Provenance)
	have := make(map[string]bool, len(got))
	for _, s := range got {
		have[s] = true
	}
	for _, stage := range Stages() {
		if !have[stage] {
			t.Errorf("stage %q contributed no provenance fields (got stages %v)", stage, got)
		}
	}
}

// TestProvenanceGoldenAllSi cross-checks recorded intermediates against
// the final PPAtC numbers on the Table-2 all-Si design: the provenance
// record must describe the run that actually happened.
func TestProvenanceGoldenAllSi(t *testing.T) {
	res := evalWithProvenance(t)
	checks := []struct {
		stage, name string
		want        float64
	}{
		{StageEmbench, "cycles", float64(res.Cycles)},
		{StageEDRAM, "macro_area_mm2", res.MemoryArea.SquareMillimeters()},
		{StageEDRAM, "memory_pj_per_cycle", res.MemPerCycle.Picojoules()},
		{StageSynth, "dynamic_energy_pj_per_cycle", res.M0DynamicPerCycle.Picojoules()},
		{StageSynth, "leakage_power_mw", res.M0LeakagePower.Milliwatts()},
		{StageFloorplan, "die_area_mm2", res.TotalArea.SquareMillimeters()},
		{StageCarbon, "epa_kwh_per_wafer", res.EPA.KilowattHours()},
		{StageCarbon, "dies_per_wafer", float64(res.DiesPerWafer)},
		{StageCarbon, "yield", res.Yield},
		{StageCarbon, "embodied_per_good_die_g", res.EmbodiedPerGoodDie.Grams()},
		{StageCarbon, "operational_power_mw", res.OperationalPower.Milliwatts()},
	}
	for _, c := range checks {
		f, ok := obs.Lookup(res.Provenance, c.stage, c.name)
		if !ok {
			t.Errorf("provenance missing %s/%s", c.stage, c.name)
			continue
		}
		if math.Abs(f.Value-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s/%s = %g, want %g (final result disagrees with its provenance)",
				c.stage, c.name, f.Value, c.want)
		}
	}
	// The all-Si paper design yields 90% good dies; a drifting pipeline
	// would surface here before the Table-2 golden files catch it.
	if y, ok := obs.Lookup(res.Provenance, StageCarbon, "yield"); !ok || y.Value != 0.9 {
		t.Errorf("all-Si yield provenance = %v, want 0.9", y.Value)
	}
}

// TestEvaluateWithoutProvenanceIsBare: the default path records nothing.
func TestEvaluateWithoutProvenanceIsBare(t *testing.T) {
	w, err := embench.ByName("crc32")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	grid, err := carbon.GridByName("US")
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	res, err := Evaluate(AllSiSystem(), w, grid)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Provenance != nil {
		t.Fatalf("Evaluate without provenance recorded %d fields, want none", len(res.Provenance))
	}
}

// TestEvaluateTraceSpans asserts that a traced evaluation produces one
// "evaluate" root whose children are exactly the pipeline stages in
// order.
func TestEvaluateTraceSpans(t *testing.T) {
	w, err := embench.ByName("crc32")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	grid, err := carbon.GridByName("US")
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := EvaluateContext(ctx, M3DSystem(), w, grid); err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "evaluate" {
		t.Fatalf("want one 'evaluate' root, got %+v", tree)
	}
	var kids []string
	for _, c := range tree[0].Children {
		kids = append(kids, c.Name)
	}
	want := Stages()
	if len(kids) != len(want) {
		t.Fatalf("stage spans = %v, want %v", kids, want)
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("stage spans = %v, want %v", kids, want)
		}
	}
}

// TestSuiteTraceSpans asserts SuiteContext groups per-workload spans
// under one "suite" root without interleaving.
func TestSuiteTraceSpans(t *testing.T) {
	grid, err := carbon.GridByName("US")
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	tr := obs.NewTrace("")
	ctx := obs.WithTrace(context.Background(), tr)
	rows, err := SuiteContext(ctx, grid)
	if err != nil {
		t.Fatalf("SuiteContext: %v", err)
	}
	tree := tr.Tree()
	if len(tree) != 1 || tree[0].Name != "suite" {
		t.Fatalf("want one 'suite' root, got %d roots", len(tree))
	}
	if got := len(tree[0].Children); got != len(rows) {
		t.Fatalf("suite has %d workload spans, want %d", got, len(rows))
	}
	for _, wl := range tree[0].Children {
		if wl.Name != "workload" {
			t.Fatalf("unexpected child span %q under suite", wl.Name)
		}
		// Each workload runs two designs → two evaluate spans, each with
		// the full stage set nested beneath.
		if len(wl.Children) != 2 {
			t.Fatalf("workload span has %d evaluations, want 2", len(wl.Children))
		}
		for _, ev := range wl.Children {
			if ev.Name != "evaluate" || len(ev.Children) != len(Stages()) {
				t.Fatalf("evaluation span %q has %d stages, want %d", ev.Name, len(ev.Children), len(Stages()))
			}
		}
	}
}
