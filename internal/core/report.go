package core

import (
	"fmt"
	"strings"

	"ppatc/internal/device"
	"ppatc/internal/stdcell"
)

// stdcellFor builds the library corner for a flavour (indirection point for
// tests that want to substitute corners).
func stdcellFor(f device.VTFlavor) stdcell.Library { return stdcell.New(f) }

// FormatTable2 renders two PPAtC evaluations side by side in the shape of
// the paper's Table II.
func FormatTable2(a, b *PPAtC) string {
	var sb strings.Builder
	row := func(label, va, vb string) {
		fmt.Fprintf(&sb, "%-40s %22s %22s\n", label, va, vb)
	}
	row("System", a.System, b.System)
	row("clock frequency", a.Clock.String(), b.Clock.String())
	row("M0 dynamic energy per cycle",
		fmt.Sprintf("%.2f pJ", a.M0DynamicPerCycle.Picojoules()),
		fmt.Sprintf("%.2f pJ", b.M0DynamicPerCycle.Picojoules()))
	row("average memory energy per cycle",
		fmt.Sprintf("%.1f pJ", a.MemPerCycle.Picojoules()),
		fmt.Sprintf("%.1f pJ", b.MemPerCycle.Picojoules()))
	row(fmt.Sprintf("clock cycles to run %q", a.Workload),
		fmt.Sprintf("%d", a.Cycles), fmt.Sprintf("%d", b.Cycles))
	row("64 kB memory area footprint",
		fmt.Sprintf("%.3f mm²", a.MemoryArea.SquareMillimeters()),
		fmt.Sprintf("%.3f mm²", b.MemoryArea.SquareMillimeters()))
	row("total area footprint (memory + M0)",
		fmt.Sprintf("%.3f mm²", a.TotalArea.SquareMillimeters()),
		fmt.Sprintf("%.3f mm²", b.TotalArea.SquareMillimeters()))
	row("  die H × W",
		fmt.Sprintf("%.0f × %.0f µm", a.DieHeight.Micrometers(), a.DieWidth.Micrometers()),
		fmt.Sprintf("%.0f × %.0f µm", b.DieHeight.Micrometers(), b.DieWidth.Micrometers()))
	row("embodied carbon per wafer",
		fmt.Sprintf("%.0f kgCO2e", a.EmbodiedPerWafer.Total().Kilograms()),
		fmt.Sprintf("%.0f kgCO2e", b.EmbodiedPerWafer.Total().Kilograms()))
	row("total die count per 300 mm wafer",
		fmt.Sprintf("%d", a.DiesPerWafer), fmt.Sprintf("%d", b.DiesPerWafer))
	row("yield",
		fmt.Sprintf("%.0f%%", a.Yield*100), fmt.Sprintf("%.0f%%", b.Yield*100))
	row("embodied carbon per good die",
		fmt.Sprintf("%.2f gCO2e", a.EmbodiedPerGoodDie.Grams()),
		fmt.Sprintf("%.2f gCO2e", b.EmbodiedPerGoodDie.Grams()))
	row("operational power while running",
		a.OperationalPower.String(), b.OperationalPower.String())
	return sb.String()
}
