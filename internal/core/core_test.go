package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/units"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// evaluateOnce caches the two headline evaluations; the full pipeline runs
// the 20M-cycle workload, so tests share one run.
var (
	evalOnce   sync.Once
	siResult   *PPAtC
	m3dResult  *PPAtC
	evalErrMsg string
)

func headline(t *testing.T) (*PPAtC, *PPAtC) {
	t.Helper()
	evalOnce.Do(func() {
		w := embench.MatmultInt()
		a, err := Evaluate(AllSiSystem(), w, carbon.GridUS)
		if err != nil {
			evalErrMsg = err.Error()
			return
		}
		b, err := Evaluate(M3DSystem(), w, carbon.GridUS)
		if err != nil {
			evalErrMsg = err.Error()
			return
		}
		siResult, m3dResult = a, b
	})
	if evalErrMsg != "" {
		t.Fatal(evalErrMsg)
	}
	return siResult, m3dResult
}

// TestTable2Anchors verifies the headline reproduction of the paper's
// Table II, row by row.
func TestTable2Anchors(t *testing.T) {
	si, m3d := headline(t)

	// Clock: 500 MHz both.
	if si.Clock != units.Megahertz(500) || m3d.Clock != units.Megahertz(500) {
		t.Error("clock must be 500 MHz")
	}
	// M0 dynamic energy per cycle: 1.42 pJ both (same Si core).
	for _, r := range []*PPAtC{si, m3d} {
		if got := r.M0DynamicPerCycle.Picojoules(); !almostEqual(got, 1.42, 0.03) {
			t.Errorf("%s M0 energy = %v pJ, want 1.42 ± 3%%", r.System, got)
		}
	}
	if si.M0DynamicPerCycle != m3d.M0DynamicPerCycle {
		t.Error("both designs share the Si M0: identical core energy expected")
	}
	// Average memory energy per cycle: 18.0 / 15.5 pJ.
	if got := si.MemPerCycle.Picojoules(); !almostEqual(got, 18.0, 0.01) {
		t.Errorf("Si memory energy = %v pJ/cycle, want 18.0 ± 1%%", got)
	}
	if got := m3d.MemPerCycle.Picojoules(); !almostEqual(got, 15.5, 0.01) {
		t.Errorf("M3D memory energy = %v pJ/cycle, want 15.5 ± 1%%", got)
	}
	// Cycles to run matmul-int: 20,047,348.
	for _, r := range []*PPAtC{si, m3d} {
		if !almostEqual(float64(r.Cycles), 20047348, 0.001) {
			t.Errorf("%s cycles = %d, want ≈20,047,348", r.System, r.Cycles)
		}
	}
	// Memory footprints: 0.068 / 0.025 mm².
	if got := si.MemoryArea.SquareMillimeters(); !almostEqual(got, 0.068, 0.03) {
		t.Errorf("Si memory area = %v mm², want 0.068", got)
	}
	if got := m3d.MemoryArea.SquareMillimeters(); !almostEqual(got, 0.025, 0.03) {
		t.Errorf("M3D memory area = %v mm², want 0.025", got)
	}
	// Total areas: 0.139 / 0.053 mm².
	if got := si.TotalArea.SquareMillimeters(); !almostEqual(got, 0.139, 0.03) {
		t.Errorf("Si total area = %v mm², want 0.139", got)
	}
	if got := m3d.TotalArea.SquareMillimeters(); !almostEqual(got, 0.053, 0.03) {
		t.Errorf("M3D total area = %v mm², want 0.053", got)
	}
	// Embodied carbon per wafer (US grid): 837 / 1100 kg.
	if got := si.EmbodiedPerWafer.Total().Kilograms(); !almostEqual(got, 837, 0.01) {
		t.Errorf("Si wafer carbon = %v kg, want 837 ± 1%%", got)
	}
	if got := m3d.EmbodiedPerWafer.Total().Kilograms(); !almostEqual(got, 1100, 0.01) {
		t.Errorf("M3D wafer carbon = %v kg, want 1100 ± 1%%", got)
	}
	// Dies per wafer: 299,127 / 606,238 within 5%; ratio within 1%.
	if !almostEqual(float64(si.DiesPerWafer), 299127, 0.05) {
		t.Errorf("Si dies = %d, want ≈299,127", si.DiesPerWafer)
	}
	if !almostEqual(float64(m3d.DiesPerWafer), 606238, 0.05) {
		t.Errorf("M3D dies = %d, want ≈606,238", m3d.DiesPerWafer)
	}
	ratio := float64(m3d.DiesPerWafer) / float64(si.DiesPerWafer)
	if !almostEqual(ratio, 606238.0/299127.0, 0.02) {
		t.Errorf("die ratio = %.3f, want ≈2.027", ratio)
	}
	// Embodied carbon per good die: 3.11 / 3.63 g within 6%; the M3D/Si
	// ratio (1.17×, Sec. III-C) within 1.5%.
	if !almostEqual(si.EmbodiedPerGoodDie.Grams(), 3.11, 0.06) {
		t.Errorf("Si per good die = %v g, want ≈3.11", si.EmbodiedPerGoodDie.Grams())
	}
	if !almostEqual(m3d.EmbodiedPerGoodDie.Grams(), 3.63, 0.06) {
		t.Errorf("M3D per good die = %v g, want ≈3.63", m3d.EmbodiedPerGoodDie.Grams())
	}
	gRatio := m3d.EmbodiedPerGoodDie.Grams() / si.EmbodiedPerGoodDie.Grams()
	if !almostEqual(gRatio, 1.17, 0.015) {
		t.Errorf("per-good-die ratio = %.3f, want 1.17 ± 1.5%%", gRatio)
	}
}

func TestOperationalPowerAnchors(t *testing.T) {
	// Table II implies P_op ≈ (1.42 + 18.0) pJ / 2 ns = 9.71 mW (Si) and
	// (1.42 + 15.5) pJ / 2 ns = 8.46 mW (M3D); the model adds small core
	// leakage on top.
	si, m3d := headline(t)
	if got := si.OperationalPower.Milliwatts(); !almostEqual(got, 9.71, 0.01) {
		t.Errorf("Si operational power = %v mW, want ≈9.71", got)
	}
	if got := m3d.OperationalPower.Milliwatts(); !almostEqual(got, 8.46, 0.01) {
		t.Errorf("M3D operational power = %v mW, want ≈8.46", got)
	}
}

func TestAreaRatioSecIIIC(t *testing.T) {
	// Sec. III-C: "the area per die of the all-Si design is 2.72× larger
	// than the M3D design".
	si, m3d := headline(t)
	ratio := si.TotalArea.SquareMillimeters() / m3d.TotalArea.SquareMillimeters()
	if !almostEqual(ratio, 2.72, 0.06) {
		t.Errorf("area ratio = %.3f, want ≈2.72", ratio)
	}
	// "...but produces 1.13× more good dies per wafer" (M3D over all-Si).
	goodSi := float64(si.DiesPerWafer) * si.Yield
	goodM3D := float64(m3d.DiesPerWafer) * m3d.Yield
	if !almostEqual(goodM3D/goodSi, 1.13, 0.02) {
		t.Errorf("good-die ratio = %.3f, want ≈1.13", goodM3D/goodSi)
	}
}

func TestExecTimeAndWorkloadEcho(t *testing.T) {
	si, _ := headline(t)
	wantT := float64(si.Cycles) * 2e-9
	if !almostEqual(si.ExecTime, wantT, 1e-12) {
		t.Errorf("exec time = %v, want %v", si.ExecTime, wantT)
	}
	if si.Workload != "matmult-int" || si.System != "all-Si" {
		t.Errorf("echo fields wrong: %q %q", si.Workload, si.System)
	}
}

func TestFormatTable2(t *testing.T) {
	si, m3d := headline(t)
	out := FormatTable2(si, m3d)
	for _, want := range []string{
		"all-Si", "M3D IGZO/CNFET/Si", "clock frequency",
		"memory energy per cycle", "embodied carbon per good die",
		"matmult-int",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestValidation(t *testing.T) {
	w := embench.Sieve()
	bad := AllSiSystem()
	bad.Name = ""
	if _, err := Evaluate(bad, w, carbon.GridUS); err == nil {
		t.Error("unnamed system should fail")
	}
	bad = AllSiSystem()
	bad.Flow = nil
	if _, err := Evaluate(bad, w, carbon.GridUS); err == nil {
		t.Error("missing flow should fail")
	}
	bad = AllSiSystem()
	bad.Clock = 0
	if _, err := Evaluate(bad, w, carbon.GridUS); err == nil {
		t.Error("zero clock should fail")
	}
	// Clock beyond timing closure should fail loudly.
	bad = AllSiSystem()
	bad.Clock = units.Gigahertz(40)
	if _, err := Evaluate(bad, w, carbon.GridUS); err == nil {
		t.Error("unclosable clock should fail")
	}
}

func TestOtherWorkloadsRun(t *testing.T) {
	// Every bundled workload flows through the full pipeline.
	sys := M3DSystem()
	for _, w := range embench.Workloads() {
		if w.Name == "matmult-int" {
			continue // covered by the headline
		}
		r, err := Evaluate(sys, w, carbon.GridUS)
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if r.MemPerCycle <= 0 || r.Cycles == 0 {
			t.Errorf("%s: degenerate result", w.Name)
		}
	}
}

func TestGridAffectsOnlyEmbodiedElectricity(t *testing.T) {
	w := embench.Sieve()
	us, err := Evaluate(AllSiSystem(), w, carbon.GridUS)
	if err != nil {
		t.Fatal(err)
	}
	solar, err := Evaluate(AllSiSystem(), w, carbon.GridSolar)
	if err != nil {
		t.Fatal(err)
	}
	if us.EmbodiedPerWafer.Materials != solar.EmbodiedPerWafer.Materials {
		t.Error("materials carbon should not depend on grid")
	}
	if us.EmbodiedPerWafer.Electricity <= solar.EmbodiedPerWafer.Electricity {
		t.Error("US-grid fab electricity carbon should exceed solar")
	}
	if us.MemPerCycle != solar.MemPerCycle {
		t.Error("energy model should not depend on grid")
	}
}

func TestClockSweepFindsCarbonOptimum(t *testing.T) {
	w := embench.Sieve()
	freqs := []units.Frequency{
		units.Megahertz(100), units.Megahertz(300), units.Megahertz(500),
		units.Megahertz(600), units.Gigahertz(40),
	}
	pts, err := ClockSweep(M3DSystem(), w, carbon.GridUS, 24, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(freqs) {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	// 40 GHz cannot close timing; the others can. (800 MHz would already
	// fail: the IGZO write at 1.57 ns misses a 1.25 ns period — the
	// physical reason the paper operates at 500 MHz.)
	if pts[4].Feasible {
		t.Error("40 GHz should fail timing")
	}
	for i := 0; i < 4; i++ {
		if !pts[i].Feasible {
			t.Errorf("%v should be feasible", freqs[i])
		}
		if pts[i].TCDP <= 0 {
			t.Errorf("%v: non-positive tCDP", freqs[i])
		}
	}
	// Execution time scales inversely with frequency.
	if pts[0].ExecTime <= pts[3].ExecTime {
		t.Error("exec time must shrink with frequency")
	}
	best, err := BestClock(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible || best.TCDP > pts[0].TCDP || best.TCDP > pts[3].TCDP {
		t.Errorf("best point %v inconsistent", best.Clock)
	}
	// Faster clocks amortize the fixed embodied carbon over less delay:
	// within the feasible range tCDP must fall with frequency.
	for i := 1; i < 4; i++ {
		if pts[i].TCDP >= pts[i-1].TCDP {
			t.Errorf("tCDP should fall from %v to %v", freqs[i-1], freqs[i])
		}
	}
	out, err := FormatClockSweep("m3d", pts, "m3d", pts)
	if err != nil || !strings.Contains(out, "fail") {
		t.Errorf("formatted sweep missing failure marker: %v", err)
	}
}

func TestClockSweepValidation(t *testing.T) {
	w := embench.Sieve()
	if _, err := ClockSweep(M3DSystem(), w, carbon.GridUS, 24, nil); err == nil {
		t.Error("empty sweep should fail")
	}
	if _, err := ClockSweep(M3DSystem(), w, carbon.GridUS, 24, []units.Frequency{0}); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := BestClock([]ClockSweepPoint{{Feasible: false}}); err == nil {
		t.Error("all-infeasible sweep should fail")
	}
}
