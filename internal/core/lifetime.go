package core

import "ppatc/internal/tcdp"

// DesignPoint summarizes the evaluation for lifetime/carbon-efficiency
// analysis in the tcdp package (Figs. 5 and 6).
func (p *PPAtC) DesignPoint() tcdp.DesignPoint {
	return tcdp.DesignPoint{
		Name:     p.System,
		Embodied: p.EmbodiedPerGoodDie,
		Power:    p.OperationalPower,
		ExecTime: p.ExecTime,
		Yield:    p.Yield,
	}
}
