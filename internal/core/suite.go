package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/obs"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// SuiteRow is one workload's comparison across the two designs. The JSON
// tags define the stable machine-readable shape shared by `ppatc suite
// -json` and the daemon's /v1/suite endpoint.
type SuiteRow struct {
	// Workload names the kernel.
	Workload string `json:"workload"`
	// Cycles is the execution length (identical for both designs).
	Cycles uint64 `json:"cycles"`
	// SiMemPJ and M3DMemPJ are the per-cycle memory energies (pJ).
	SiMemPJ  float64 `json:"si_memory_pj_per_cycle"`
	M3DMemPJ float64 `json:"m3d_memory_pj_per_cycle"`
	// SiPowerMW and M3DPowerMW are the operating powers (mW).
	SiPowerMW  float64 `json:"si_power_mw"`
	M3DPowerMW float64 `json:"m3d_power_mw"`
	// TCDPRatio24 is tCDP(all-Si)/tCDP(M3D) at 24 months (>1 → M3D wins).
	TCDPRatio24 float64 `json:"tcdp_ratio_24mo"`
}

// Suite evaluates every bundled workload through the full PPAtC pipeline
// on both designs — the paper's "variety of applications ... well
// represented by the workloads in Embench" framing, made concrete.
func Suite(grid carbon.Grid) ([]SuiteRow, error) {
	return SuiteContext(context.Background(), grid)
}

// SuiteContext is Suite with cancellation between workloads. When the
// context carries an obs trace, each workload gets a span enclosing its
// two evaluations, so the exported trace shows where the suite's
// wall-clock went.
func SuiteContext(ctx context.Context, grid carbon.Grid) ([]SuiteRow, error) {
	scenario := tcdp.PaperScenario()
	var rows []SuiteRow
	sctx, suiteSpan := obs.StartSpan(ctx, "suite")
	defer suiteSpan.End()
	suiteSpan.SetStr("grid", grid.Name)
	for _, w := range embench.Workloads() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wctx, wSpan := obs.StartSpan(sctx, "workload")
		wSpan.SetStr("name", w.Name)
		si, err := EvaluateContext(wctx, AllSiSystem(), w, grid)
		if err != nil {
			wSpan.End()
			return nil, fmt.Errorf("core: suite %s: %w", w.Name, err)
		}
		m3d, err := EvaluateContext(wctx, M3DSystem(), w, grid)
		wSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: suite %s: %w", w.Name, err)
		}
		ratio, err := tcdp.Ratio(si.DesignPoint(), m3d.DesignPoint(), scenario, units.Months(24))
		if err != nil {
			return nil, err
		}
		rows = append(rows, SuiteRow{
			Workload:    w.Name,
			Cycles:      si.Cycles,
			SiMemPJ:     si.MemPerCycle.Picojoules(),
			M3DMemPJ:    m3d.MemPerCycle.Picojoules(),
			SiPowerMW:   si.OperationalPower.Milliwatts(),
			M3DPowerMW:  m3d.OperationalPower.Milliwatts(),
			TCDPRatio24: ratio,
		})
	}
	return rows, nil
}

// FormatSuite renders the suite comparison table.
func FormatSuite(rows []SuiteRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %10s %10s %10s %10s %12s\n",
		"workload", "cycles", "Si pJ/cyc", "M3D pJ/cyc", "Si mW", "M3D mW", "tCDP ratio")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %10.2f %10.2f %10.3f %10.3f %12.4f\n",
			r.Workload, r.Cycles, r.SiMemPJ, r.M3DMemPJ,
			r.SiPowerMW, r.M3DPowerMW, r.TCDPRatio24)
	}
	return sb.String()
}

// WriteSuiteJSON emits the suite comparison as an indented JSON array —
// the one encoder behind both the CLI's -json flag and /v1/suite.
func WriteSuiteJSON(w io.Writer, rows []SuiteRow) error {
	if rows == nil {
		rows = []SuiteRow{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
