package core

import (
	"fmt"
	"strings"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// SuiteRow is one workload's comparison across the two designs.
type SuiteRow struct {
	// Workload names the kernel.
	Workload string
	// Cycles is the execution length (identical for both designs).
	Cycles uint64
	// SiMemPJ and M3DMemPJ are the per-cycle memory energies (pJ).
	SiMemPJ, M3DMemPJ float64
	// SiPowerMW and M3DPowerMW are the operating powers (mW).
	SiPowerMW, M3DPowerMW float64
	// TCDPRatio24 is tCDP(all-Si)/tCDP(M3D) at 24 months (>1 → M3D wins).
	TCDPRatio24 float64
}

// Suite evaluates every bundled workload through the full PPAtC pipeline
// on both designs — the paper's "variety of applications ... well
// represented by the workloads in Embench" framing, made concrete.
func Suite(grid carbon.Grid) ([]SuiteRow, error) {
	scenario := tcdp.PaperScenario()
	var rows []SuiteRow
	for _, w := range embench.Workloads() {
		si, err := Evaluate(AllSiSystem(), w, grid)
		if err != nil {
			return nil, fmt.Errorf("core: suite %s: %w", w.Name, err)
		}
		m3d, err := Evaluate(M3DSystem(), w, grid)
		if err != nil {
			return nil, fmt.Errorf("core: suite %s: %w", w.Name, err)
		}
		ratio, err := tcdp.Ratio(si.DesignPoint(), m3d.DesignPoint(), scenario, units.Months(24))
		if err != nil {
			return nil, err
		}
		rows = append(rows, SuiteRow{
			Workload:    w.Name,
			Cycles:      si.Cycles,
			SiMemPJ:     si.MemPerCycle.Picojoules(),
			M3DMemPJ:    m3d.MemPerCycle.Picojoules(),
			SiPowerMW:   si.OperationalPower.Milliwatts(),
			M3DPowerMW:  m3d.OperationalPower.Milliwatts(),
			TCDPRatio24: ratio,
		})
	}
	return rows, nil
}

// FormatSuite renders the suite comparison table.
func FormatSuite(rows []SuiteRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %10s %10s %10s %10s %12s\n",
		"workload", "cycles", "Si pJ/cyc", "M3D pJ/cyc", "Si mW", "M3D mW", "tCDP ratio")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %10.2f %10.2f %10.3f %10.3f %12.4f\n",
			r.Workload, r.Cycles, r.SiMemPJ, r.M3DMemPJ,
			r.SiPowerMW, r.M3DPowerMW, r.TCDPRatio24)
	}
	return sb.String()
}
