package core

import (
	"context"
	"fmt"
	"strings"

	"ppatc/internal/carbon"
	"ppatc/internal/device"
	"ppatc/internal/embench"
	"ppatc/internal/process"
	"ppatc/internal/synth"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// This file hosts the experiment drivers: one function per table/figure of
// the paper, each returning the rows/series the paper reports as formatted
// text. The cmd/ppatc CLI and the repository's benchmark harness both call
// these, so the reproduction is regenerated identically everywhere.

// embodiedWaferFor evaluates Eq. 2 per wafer for a flow on a grid,
// including the beyond-Si film materials when the flow has device tiers.
func embodiedWaferFor(flow *process.Flow, grid carbon.Grid) (carbon.EmbodiedBreakdown, error) {
	tbl := process.DefaultEnergyTable()
	epa, err := flow.EPA(tbl)
	if err != nil {
		return carbon.EmbodiedBreakdown{}, err
	}
	gpa, err := carbon.GPAScaled(epa, process.IN7Reference(), process.IN7GPA())
	if err != nil {
		return carbon.EmbodiedBreakdown{}, err
	}
	waferArea := units.SquareCentimeters(706.858)
	var films []process.FilmMaterial
	if strings.Contains(flow.Name, "M3D") {
		cnt, err := process.CNTMaterial(process.PaperCNTFilm(waferArea))
		if err != nil {
			return carbon.EmbodiedBreakdown{}, err
		}
		igzo, err := process.IGZOMaterial(process.PaperIGZOFilm(waferArea))
		if err != nil {
			return carbon.EmbodiedBreakdown{}, err
		}
		films = append(films, cnt, igzo)
	}
	mpa, err := process.MPAWithFilms(waferArea, films...)
	if err != nil {
		return carbon.EmbodiedBreakdown{}, err
	}
	return carbon.EmbodiedPerWafer(carbon.EmbodiedInputs{
		MPA: mpa, GPA: gpa, EPA: epa, CIFab: grid.Intensity, WaferArea: waferArea,
	})
}

// Fig2c regenerates Fig. 2c: embodied carbon per wafer for the all-Si and
// M3D processes across the four energy grids, plus the average ratio the
// abstract headlines (1.31×).
func Fig2c() (string, error) {
	flows := []*process.Flow{process.AllSi7nm(), process.M3D7nm()}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %18s %18s %8s\n", "grid", "all-Si (kgCO2e)", "M3D (kgCO2e)", "ratio")
	var ratioSum float64
	for _, g := range carbon.Grids() {
		var totals [2]float64
		for i, f := range flows {
			b, err := embodiedWaferFor(f, g)
			if err != nil {
				return "", err
			}
			totals[i] = b.Total().Kilograms()
		}
		ratio := totals[1] / totals[0]
		ratioSum += ratio
		fmt.Fprintf(&sb, "%-10s %18.0f %18.0f %8.3f\n", g.Name, totals[0], totals[1], ratio)
	}
	fmt.Fprintf(&sb, "%-10s %18s %18s %8.3f  (paper: 1.31)\n", "average", "", "", ratioSum/float64(len(carbon.Grids())))
	return sb.String(), nil
}

// Fig2d regenerates Fig. 2d's view: the Eq. 4 matrix of step categories,
// per-step energies, and per-flow step counts, with the resulting EPA.
func Fig2d() (string, error) {
	flows := []*process.Flow{process.AllSi7nm(), process.M3D7nm()}
	rows, fixed, err := process.Eq4Matrix(process.DefaultEnergyTable(), flows...)
	if err != nil {
		return "", err
	}
	return process.FormatEq4(rows, fixed, flows), nil
}

// Table1 regenerates the quantitative backing of Table I: I_EFF and I_OFF
// of each FET family at the paper's operating voltages.
func Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %16s %16s %s\n", "device", "IEFF (µA/µm)", "IOFF (nA/µm)", "notes")
	rows := []struct {
		p    device.Params
		note string
	}{
		{device.SiNFET(device.RVT), "bottom tier only (high-temp FEOL)"},
		{device.CNFET(), "BEOL-compatible; metallic-CNT leakage floor"},
		{device.IGZO(), "BEOL-compatible; hold leakage anchored to 3e-21 A/µm"},
	}
	for _, r := range rows {
		ioff := r.p.IOFF(device.VDD) * 1e3 // A/m → nA/µm
		if r.p.IOFFSpec > 0 {
			ioff = r.p.IOFFSpec * 1e3
		}
		fmt.Fprintf(&sb, "%-14s %16.2f %16.3g %s\n", r.p.Name, r.p.IEFF(device.VDD), ioff, r.note)
	}
	return sb.String()
}

// Table2 regenerates Table II for a workload on a grid.
func Table2(w embench.Workload, grid carbon.Grid) (*PPAtC, *PPAtC, string, error) {
	return Table2Context(context.Background(), w, grid)
}

// Table2Context is Table2 with cancellation and observability: tracing
// and provenance flags carried by ctx (see internal/obs) flow into both
// evaluations.
func Table2Context(ctx context.Context, w embench.Workload, grid carbon.Grid) (*PPAtC, *PPAtC, string, error) {
	si, err := EvaluateContext(ctx, AllSiSystem(), w, grid)
	if err != nil {
		return nil, nil, "", err
	}
	m3d, err := EvaluateContext(ctx, M3DSystem(), w, grid)
	if err != nil {
		return nil, nil, "", err
	}
	return si, m3d, FormatTable2(si, m3d), nil
}

// Fig4 regenerates Fig. 4: M0 energy per cycle vs. target clock for the
// four VT flavours, marking failed closures the way the paper's curves
// simply end.
func Fig4() (string, error) {
	results, err := synth.PaperSweep(synth.CortexM0())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %16s %16s %10s\n", "flavor", "f (MHz)", "E/cycle (pJ)", "crit path (ps)", "sizing")
	for _, r := range results {
		if !r.Closed {
			fmt.Fprintf(&sb, "%-8s %10.0f %16s %16s %10s\n",
				r.Flavor, r.TargetClock.Megahertz(), "—", "—", "fail")
			continue
		}
		fmt.Fprintf(&sb, "%-8s %10.0f %16.3f %16.1f %10.2f\n",
			r.Flavor, r.TargetClock.Megahertz(),
			r.EnergyPerCycle().Picojoules(), r.CriticalPath*1e12, r.Sizing)
	}
	return sb.String(), nil
}

// Fig5 regenerates Fig. 5: tC and tCDP per month for both designs, with
// the embodied/operational crossovers and the highlighted tCDP ratios.
func Fig5(si, m3d *PPAtC, months int) (string, error) {
	s := tcdp.PaperScenario()
	a := si.DesignPoint()
	b := m3d.DesignPoint()
	sa, err := tcdp.Lifetime(a, s, months)
	if err != nil {
		return "", err
	}
	sbSeries, err := tcdp.Lifetime(b, s, months)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %12s %12s %12s %12s %12s %12s %8s\n",
		"month", "Si emb", "Si op", "Si tC", "M3D emb", "M3D op", "M3D tC", "ratio")
	for i := range sa.Months {
		ratio := sa.TCDPSeries[i] / sbSeries.TCDPSeries[i]
		fmt.Fprintf(&sb, "%6.0f %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f %8.4f\n",
			sa.Months[i], sa.Embodied[i], sa.Operational[i], sa.TCSeries[i],
			sbSeries.Embodied[i], sbSeries.Operational[i], sbSeries.TCSeries[i], ratio)
	}
	if c, err := tcdp.EmbodiedOperationalCrossover(a, s); err == nil {
		fmt.Fprintf(&sb, "all-Si C_embodied dominates until %.1f months (paper: 14)\n", float64(c))
	}
	if c, err := tcdp.EmbodiedOperationalCrossover(b, s); err == nil {
		fmt.Fprintf(&sb, "M3D    C_embodied dominates until %.1f months (paper: 19)\n", float64(c))
	}
	if c, err := tcdp.DesignCrossover(a, b, s); err == nil {
		fmt.Fprintf(&sb, "tC curves cross at %.1f months\n", float64(c))
	}
	if r, err := tcdp.Ratio(a, b, s, units.Months(months)); err == nil {
		fmt.Fprintf(&sb, "tCDP(all-Si)/tCDP(M3D) at %d months = %.3f (paper: 1.02 at 24)\n", months, r)
	}
	return sb.String(), nil
}

// Fig6a regenerates Fig. 6a: the tCDP-benefit colormap and the isoline.
func Fig6a(si, m3d *PPAtC, months int) (string, error) {
	s := tcdp.PaperScenario()
	embScales := []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}
	opScales := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	m, err := tcdp.Map(m3d.DesignPoint(), si.DesignPoint(), s, units.Months(months), embScales, opScales)
	if err != nil {
		return "", err
	}
	iso, err := tcdp.Isoline(m3d.DesignPoint(), si.DesignPoint(), s, units.Months(months))
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "tCDP benefit of M3D vs all-Si (>1 means M3D wins), %d-month lifetime\n", months)
	fmt.Fprintf(&sb, "%8s", "op\\emb")
	for _, x := range embScales {
		fmt.Fprintf(&sb, " %6.2f", x)
	}
	sb.WriteByte('\n')
	for i, y := range opScales {
		fmt.Fprintf(&sb, "%8.2f", y)
		for j := range embScales {
			fmt.Fprintf(&sb, " %6.3f", m.Benefit[i][j])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "isoline (embodied scale where the designs tie):\n")
	for _, y := range opScales {
		fmt.Fprintf(&sb, "  op scale %.2f → embodied scale %.3f\n", y, iso(y))
	}
	return sb.String(), nil
}

// Fig6b regenerates Fig. 6b: the isoline family under uncertainty.
func Fig6b(si, m3d *PPAtC, months int) (string, error) {
	s := tcdp.PaperScenario()
	vars, err := tcdp.UncertaintySet(m3d.DesignPoint(), si.DesignPoint(), s, units.Months(months))
	if err != nil {
		return "", err
	}
	opScales := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s", "variant\\op scale")
	for _, y := range opScales {
		fmt.Fprintf(&sb, " %7.2f", y)
	}
	sb.WriteByte('\n')
	for _, v := range vars {
		fmt.Fprintf(&sb, "%-20s", v.Name)
		for _, y := range opScales {
			fmt.Fprintf(&sb, " %7.3f", v.Isoline(y))
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
