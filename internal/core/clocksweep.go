package core

import (
	"errors"
	"fmt"
	"strings"

	"ppatc/internal/carbon"
	"ppatc/internal/embench"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// ClockSweepPoint is one operating point of the carbon-vs-frequency sweep.
type ClockSweepPoint struct {
	// Clock is the target frequency.
	Clock units.Frequency
	// Feasible reports whether both the memory and the core close timing.
	Feasible bool
	// ExecTime is the application execution time (s).
	ExecTime float64
	// Power is the operating power.
	Power units.Power
	// TCDP is the 24-month total-carbon-delay product (gCO2e·s).
	TCDP float64
}

// ClockSweep extends the paper's fixed-500 MHz case study: it sweeps the
// system clock and evaluates tCDP at each feasible point, exposing the
// carbon-optimal operating frequency. Faster clocks shorten execution
// (less delay in the product) but raise power and force upsizing; slower
// clocks waste lifetime leakage and refresh energy against a fixed
// embodied cost. Evaluation reuses one workload run (cycle counts do not
// depend on frequency in this in-order, single-cycle-memory system).
func ClockSweep(sys SystemDesign, w embench.Workload, grid carbon.Grid, life units.Months, freqs []units.Frequency) ([]ClockSweepPoint, error) {
	if len(freqs) == 0 {
		return nil, errors.New("core: clock sweep needs frequencies")
	}
	out := make([]ClockSweepPoint, 0, len(freqs))
	scenario := tcdp.PaperScenario()
	for _, f := range freqs {
		if f <= 0 {
			return nil, errors.New("core: frequencies must be positive")
		}
		s := sys
		s.Clock = f
		pt := ClockSweepPoint{Clock: f}
		res, err := Evaluate(s, w, grid)
		if err != nil {
			// Timing-closure failures are sweep data, not errors.
			if strings.Contains(err.Error(), "timing") {
				out = append(out, pt)
				continue
			}
			return nil, err
		}
		pt.Feasible = true
		pt.ExecTime = res.ExecTime
		pt.Power = res.OperationalPower
		dp := res.DesignPoint()
		v, err := tcdp.TCDP(dp, scenario, life)
		if err != nil {
			return nil, err
		}
		pt.TCDP = v
		out = append(out, pt)
	}
	return out, nil
}

// FormatClockSweep renders sweep results side by side for two systems.
func FormatClockSweep(name1 string, a []ClockSweepPoint, name2 string, b []ClockSweepPoint) (string, error) {
	if len(a) != len(b) {
		return "", errors.New("core: sweeps must cover the same frequencies")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %16s %16s    (tCDP in gCO2e·s, 24-month lifetime)\n", "f (MHz)", name1, name2)
	for i := range a {
		cell := func(p ClockSweepPoint) string {
			if !p.Feasible {
				return "fail"
			}
			return fmt.Sprintf("%.4f", p.TCDP)
		}
		fmt.Fprintf(&sb, "%10.0f %16s %16s\n", a[i].Clock.Megahertz(), cell(a[i]), cell(b[i]))
	}
	return sb.String(), nil
}

// BestClock reports the feasible point with the lowest tCDP.
func BestClock(points []ClockSweepPoint) (ClockSweepPoint, error) {
	best := ClockSweepPoint{}
	found := false
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if !found || p.TCDP < best.TCDP {
			best = p
			found = true
		}
	}
	if !found {
		return ClockSweepPoint{}, errors.New("core: no feasible sweep point")
	}
	return best, nil
}
