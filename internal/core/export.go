package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"ppatc/internal/obs"
	"ppatc/internal/tcdp"
)

// Machine-readable exports: JSON for evaluation results and CSV for the
// lifetime series, so the regenerated figures can be plotted or diffed by
// downstream tooling without scraping the text tables.

// exportedPPAtC is the stable JSON shape of an evaluation (flattened
// units: pJ, mm², µm, kgCO2e, gCO2e, mW).
type exportedPPAtC struct {
	System               string  `json:"system"`
	Workload             string  `json:"workload"`
	ClockMHz             float64 `json:"clock_mhz"`
	Cycles               uint64  `json:"cycles"`
	ExecTimeSeconds      float64 `json:"exec_time_s"`
	M0DynamicPJPerCycle  float64 `json:"m0_dynamic_pj_per_cycle"`
	MemPJPerCycle        float64 `json:"memory_pj_per_cycle"`
	OperationalPowerMW   float64 `json:"operational_power_mw"`
	MemoryAreaMM2        float64 `json:"memory_area_mm2"`
	TotalAreaMM2         float64 `json:"total_area_mm2"`
	DieWidthUM           float64 `json:"die_width_um"`
	DieHeightUM          float64 `json:"die_height_um"`
	EPAKWhPerWafer       float64 `json:"epa_kwh_per_wafer"`
	EmbodiedWaferKG      float64 `json:"embodied_per_wafer_kg"`
	DiesPerWafer         int     `json:"dies_per_wafer"`
	Yield                float64 `json:"yield"`
	EmbodiedPerGoodDieG  float64 `json:"embodied_per_good_die_g"`
	ProgramReadsPerCycle float64 `json:"program_reads_per_cycle"`
	DataReadsPerCycle    float64 `json:"data_reads_per_cycle"`
	DataWritesPerCycle   float64 `json:"data_writes_per_cycle"`
	// Provenance is present only when the evaluation collected it
	// (obs.WithProvenanceEnabled): the per-stage intermediate quantities.
	Provenance []obs.Field `json:"provenance,omitempty"`
}

func exportOne(r *PPAtC) exportedPPAtC {
	return exportedPPAtC{
		System:               r.System,
		Workload:             r.Workload,
		ClockMHz:             r.Clock.Megahertz(),
		Cycles:               r.Cycles,
		ExecTimeSeconds:      r.ExecTime,
		M0DynamicPJPerCycle:  r.M0DynamicPerCycle.Picojoules(),
		MemPJPerCycle:        r.MemPerCycle.Picojoules(),
		OperationalPowerMW:   r.OperationalPower.Milliwatts(),
		MemoryAreaMM2:        r.MemoryArea.SquareMillimeters(),
		TotalAreaMM2:         r.TotalArea.SquareMillimeters(),
		DieWidthUM:           r.DieWidth.Micrometers(),
		DieHeightUM:          r.DieHeight.Micrometers(),
		EPAKWhPerWafer:       r.EPA.KilowattHours(),
		EmbodiedWaferKG:      r.EmbodiedPerWafer.Total().Kilograms(),
		DiesPerWafer:         r.DiesPerWafer,
		Yield:                r.Yield,
		EmbodiedPerGoodDieG:  r.EmbodiedPerGoodDie.Grams(),
		ProgramReadsPerCycle: r.ProgramReadsPerCycle,
		DataReadsPerCycle:    r.DataReadsPerCycle,
		DataWritesPerCycle:   r.DataWritesPerCycle,
		Provenance:           r.Provenance,
	}
}

// WriteJSON emits one or more evaluations as a JSON array.
func WriteJSON(w io.Writer, results ...*PPAtC) error {
	out := make([]exportedPPAtC, 0, len(results))
	for _, r := range results {
		if r == nil {
			return fmt.Errorf("core: nil result in JSON export")
		}
		out = append(out, exportOne(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteJSONOne emits a single evaluation as a JSON object (the shape the
// ppatcd daemon's /v1/evaluate endpoint returns).
func WriteJSONOne(w io.Writer, r *PPAtC) error {
	if r == nil {
		return fmt.Errorf("core: nil result in JSON export")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exportOne(r))
}

// WriteLifetimeCSV emits the Fig. 5 series of one or more designs as CSV
// with a shared month column — directly loadable by any plotting tool.
func WriteLifetimeCSV(w io.Writer, series ...tcdp.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("core: no series to export")
	}
	n := len(series[0].Months)
	header := "month"
	for _, s := range series {
		if len(s.Months) != n {
			return fmt.Errorf("core: series %q has %d points, want %d", s.Name, len(s.Months), n)
		}
		header += fmt.Sprintf(",%s_embodied_g,%s_operational_g,%s_tc_g,%s_tcdp_gs",
			s.Name, s.Name, s.Name, s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		line := strconv.FormatFloat(series[0].Months[i], 'g', -1, 64)
		for _, s := range series {
			line += fmt.Sprintf(",%.6g,%.6g,%.6g,%.6g",
				s.Embodied[i], s.Operational[i], s.TCSeries[i], s.TCDPSeries[i])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
