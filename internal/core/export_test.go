package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"ppatc/internal/carbon"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// syntheticResult builds a PPAtC with distinct, exactly-representable
// values in every exported field, so round-trip mismatches are
// unambiguous.
func syntheticResult() *PPAtC {
	return &PPAtC{
		System:            "all-Si",
		Workload:          "matmult-int",
		Clock:             units.Megahertz(500),
		Cycles:            20047423,
		ExecTime:          0.0400948,
		M0DynamicPerCycle: units.Picojoules(1.5),
		MemPerCycle:       units.Picojoules(18),
		M0LeakagePower:    units.Microwatts(25),
		OperationalPower:  units.Milliwatts(9.75),
		MemoryArea:        units.SquareMillimeters(0.0625),
		TotalArea:         units.SquareMillimeters(0.140625),
		DieWidth:          units.Micrometers(515),
		DieHeight:         units.Micrometers(270),
		EPA:               units.KilowattHours(705),
		EmbodiedPerWafer: carbon.EmbodiedBreakdown{
			Materials:   units.KilogramsCO2e(350),
			Gases:       units.KilogramsCO2e(112),
			Electricity: units.KilogramsCO2e(376),
		},
		DiesPerWafer:         285897,
		Yield:                0.90,
		EmbodiedPerGoodDie:   units.GramsCO2e(3.2578125),
		ProgramReadsPerCycle: 0.75,
		DataReadsPerCycle:    0.25,
		DataWritesPerCycle:   0.125,
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := syntheticResult()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("got %d elements, want 2", len(decoded))
	}
	checkExportedFields(t, decoded[0], r)
	checkExportedFields(t, decoded[1], r)
}

func TestWriteJSONOneRoundTrip(t *testing.T) {
	r := syntheticResult()
	var buf bytes.Buffer
	if err := WriteJSONOne(&buf, r); err != nil {
		t.Fatalf("WriteJSONOne: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkExportedFields(t, decoded, r)

	// The object form must match the array form element-for-element.
	var arr bytes.Buffer
	if err := WriteJSON(&arr, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var fromArr []map[string]any
	if err := json.Unmarshal(arr.Bytes(), &fromArr); err != nil {
		t.Fatalf("decode array: %v", err)
	}
	for k, v := range fromArr[0] {
		if decoded[k] != v {
			t.Errorf("object/array forms disagree on %q: %v vs %v", k, decoded[k], v)
		}
	}
}

func checkExportedFields(t *testing.T, got map[string]any, r *PPAtC) {
	t.Helper()
	wantNum := map[string]float64{
		"clock_mhz":               r.Clock.Megahertz(),
		"cycles":                  float64(r.Cycles),
		"exec_time_s":             r.ExecTime,
		"m0_dynamic_pj_per_cycle": r.M0DynamicPerCycle.Picojoules(),
		"memory_pj_per_cycle":     r.MemPerCycle.Picojoules(),
		"operational_power_mw":    r.OperationalPower.Milliwatts(),
		"memory_area_mm2":         r.MemoryArea.SquareMillimeters(),
		"total_area_mm2":          r.TotalArea.SquareMillimeters(),
		"die_width_um":            r.DieWidth.Micrometers(),
		"die_height_um":           r.DieHeight.Micrometers(),
		"epa_kwh_per_wafer":       r.EPA.KilowattHours(),
		"embodied_per_wafer_kg":   r.EmbodiedPerWafer.Total().Kilograms(),
		"dies_per_wafer":          float64(r.DiesPerWafer),
		"yield":                   r.Yield,
		"embodied_per_good_die_g": r.EmbodiedPerGoodDie.Grams(),
		"program_reads_per_cycle": r.ProgramReadsPerCycle,
		"data_reads_per_cycle":    r.DataReadsPerCycle,
		"data_writes_per_cycle":   r.DataWritesPerCycle,
	}
	for key, want := range wantNum {
		v, ok := got[key]
		if !ok {
			t.Errorf("missing field %q", key)
			continue
		}
		f, ok := v.(float64)
		if !ok {
			t.Errorf("field %q is %T, want number", key, v)
			continue
		}
		if math.Abs(f-want) > math.Abs(want)*1e-12 {
			t.Errorf("field %q = %v, want %v", key, f, want)
		}
	}
	if got["system"] != r.System {
		t.Errorf("system = %v, want %v", got["system"], r.System)
	}
	if got["workload"] != r.Workload {
		t.Errorf("workload = %v, want %v", got["workload"], r.Workload)
	}
}

func TestWriteJSONNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err == nil {
		t.Error("WriteJSON(nil) should fail")
	}
	if err := WriteJSONOne(&buf, nil); err == nil {
		t.Error("WriteJSONOne(nil) should fail")
	}
}

func syntheticSeries(name string, scale float64) tcdp.Series {
	s := tcdp.Series{Name: name}
	for m := 1; m <= 4; m++ {
		s.Months = append(s.Months, float64(m))
		s.Embodied = append(s.Embodied, 3.25*scale)
		s.Operational = append(s.Operational, 0.25*scale*float64(m))
		s.TCSeries = append(s.TCSeries, 3.25*scale+0.25*scale*float64(m))
		s.TCDPSeries = append(s.TCDPSeries, (3.25*scale+0.25*scale*float64(m))*0.04)
	}
	return s
}

func TestWriteLifetimeCSVRoundTrip(t *testing.T) {
	a := syntheticSeries("all-Si", 1)
	b := syntheticSeries("M3D", 1.25)
	var buf bytes.Buffer
	if err := WriteLifetimeCSV(&buf, a, b); err != nil {
		t.Fatalf("WriteLifetimeCSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("parse CSV: %v", err)
	}
	if len(records) != 1+len(a.Months) {
		t.Fatalf("got %d rows, want %d", len(records), 1+len(a.Months))
	}
	header := records[0]
	wantHeader := []string{
		"month",
		"all-Si_embodied_g", "all-Si_operational_g", "all-Si_tc_g", "all-Si_tcdp_gs",
		"M3D_embodied_g", "M3D_operational_g", "M3D_tc_g", "M3D_tcdp_gs",
	}
	if len(header) != len(wantHeader) {
		t.Fatalf("header has %d columns, want %d", len(header), len(wantHeader))
	}
	for i, h := range wantHeader {
		if header[i] != h {
			t.Errorf("header[%d] = %q, want %q", i, header[i], h)
		}
	}
	for i, rec := range records[1:] {
		want := []float64{
			a.Months[i],
			a.Embodied[i], a.Operational[i], a.TCSeries[i], a.TCDPSeries[i],
			b.Embodied[i], b.Operational[i], b.TCSeries[i], b.TCDPSeries[i],
		}
		for j, cell := range rec {
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("row %d col %d %q: %v", i, j, cell, err)
			}
			// The writer prints %.6g, so compare at that precision.
			if math.Abs(f-want[j]) > math.Abs(want[j])*1e-5 {
				t.Errorf("row %d col %d = %v, want %v", i, j, f, want[j])
			}
		}
	}
}

func TestWriteLifetimeCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLifetimeCSV(&buf); err == nil {
		t.Error("WriteLifetimeCSV() with no series should fail")
	}
	a := syntheticSeries("a", 1)
	short := syntheticSeries("b", 1)
	short.Months = short.Months[:2]
	if err := WriteLifetimeCSV(&buf, a, short); err == nil {
		t.Error("mismatched series lengths should fail")
	}
}
