package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ppatc/internal/carbon"
	"ppatc/internal/edram"
	"ppatc/internal/embench"
	"ppatc/internal/floorplan"
	"ppatc/internal/obs"
	"ppatc/internal/synth"
)

// Memo is a stage-memoized incremental evaluator: it caches each of the
// five pipeline stages keyed on that stage's own input slice, so an
// evaluation re-runs only the stages whose inputs actually changed. A
// mixed-axis sweep that varies the grid's carbon intensity re-runs the
// carbon chain per point but replays embench cycles, the eDRAM macro,
// synthesis and the floorplan from the memo — the stage DAG that
// Stages() and the provenance records already reify:
//
//	embench   ← workload
//	edram     ← design cell/array/periphery (timing checked per clock)
//	synth     ← design core + VT flavour + clock
//	floorplan ← design macro dims + core area
//	carbon    ← design flow/wafer/yield + die + grid CI_fab
//
// The memoized path assembles results from the same pure stage outputs
// as the direct path, so results — and bytes encoded from them — are
// identical. Keys identify bundled designs by name (every construction
// site goes through SystemByName); callers evaluating hand-modified
// SystemDesigns beyond the Clock override must not share a Memo across
// them.
//
// A Memo is safe for concurrent use and unbounded: it is meant to live
// for one sweep (a few designs × workloads × clocks), not forever.
type Memo struct {
	entries [numMemoStages]sync.Map // stage key -> *memoEntry
	hits    [numMemoStages]atomic.Int64
	misses  [numMemoStages]atomic.Int64
}

// NewMemo returns an empty stage memo.
func NewMemo() *Memo { return &Memo{} }

// EvaluateContext is core.EvaluateContext through the memo: stages whose
// keyed inputs were already evaluated are replayed instead of re-run.
func (m *Memo) EvaluateContext(ctx context.Context, sys SystemDesign, w embench.Workload, grid carbon.Grid) (*PPAtC, error) {
	return evaluateWithMemo(ctx, m, sys, w, grid)
}

// Memo stage indices, in Stages() order.
const (
	memoStageEmbench = iota
	memoStageEDRAM
	memoStageSynth
	memoStageFloorplan
	memoStageCarbon
	numMemoStages
)

// MemoStageStats is one stage's memo traffic: Misses counts the times
// the stage actually ran, Hits the times it was replayed.
type MemoStageStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats reports per-stage memo hit/miss counters, keyed by the Stages()
// names.
func (m *Memo) Stats() map[string]MemoStageStats {
	out := make(map[string]MemoStageStats, numMemoStages)
	for i, name := range Stages() {
		out[name] = MemoStageStats{Hits: m.hits[i].Load(), Misses: m.misses[i].Load()}
	}
	return out
}

// memoEntry holds one stage evaluation. The mutex doubles as
// single-flight: concurrent misses of the same key serialize, and all
// but the first replay the winner's result.
type memoEntry struct {
	mu   sync.Mutex
	done bool
	val  any
	err  error
}

// memoDo returns the memoized value for (stage, key), running fn on the
// first call. With a nil memo it degenerates to fn(). Context
// cancellations are returned but never cached — a cancelled caller must
// not poison the key for later evaluations.
func memoDo(m *Memo, stage int, key string, fn func() (any, error)) (any, error) {
	if m == nil {
		return fn()
	}
	v, _ := m.entries[stage].LoadOrStore(key, &memoEntry{})
	e := v.(*memoEntry)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		m.hits[stage].Add(1)
		return e.val, e.err
	}
	val, err := fn()
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return val, err
	}
	e.val, e.err, e.done = val, err, true
	m.misses[stage].Add(1)
	return val, err
}

// memoEmbench runs (or replays) Step 4: the ISA simulation. Key: the
// workload name (the cycle budget is fixed).
func memoEmbench(ctx context.Context, m *Memo, w embench.Workload) (embench.Result, error) {
	v, err := memoDo(m, memoStageEmbench, w.Name, func() (any, error) {
		_, sp := obs.StartSpan(ctx, StageEmbench)
		run, err := embench.Run(w, 1<<34)
		sp.End()
		if err != nil {
			return embench.Result{}, err
		}
		sp.SetFloat("cycles", float64(run.Cycles))
		return run, nil
	})
	if err != nil {
		return embench.Result{}, err
	}
	return v.(embench.Result), nil
}

// memoEDRAM runs (or replays) Step 2: the eDRAM macro build. Key: the
// design name (cell, array and periphery are functions of the design;
// the clock-dependent timing check stays outside the memo). The
// returned Memory is shared between evaluations and must be treated as
// read-only — which every consumer already does.
func memoEDRAM(ctx context.Context, m *Memo, sys SystemDesign) (*edram.Memory, error) {
	v, err := memoDo(m, memoStageEDRAM, sys.Name, func() (any, error) {
		_, sp := obs.StartSpan(ctx, StageEDRAM)
		mem, err := edram.Build(sys.Cell, sys.Array, sys.Periphery)
		sp.End()
		if err != nil {
			return (*edram.Memory)(nil), err
		}
		sp.SetFloat("area_mm2", mem.Area.SquareMillimeters())
		return mem, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*edram.Memory), nil
}

// memoSynth runs (or replays) Step 3: core synthesis and timing
// closure. Key: design name, VT flavour and target clock.
func memoSynth(ctx context.Context, m *Memo, sys SystemDesign) (synth.Result, error) {
	key := fmt.Sprintf("%s|%d|%g", sys.Name, sys.CoreFlavor, sys.Clock.Megahertz())
	v, err := memoDo(m, memoStageSynth, key, func() (any, error) {
		_, sp := obs.StartSpan(ctx, StageSynth)
		cRes, err := synth.Close(sys.Core, stdcellFor(sys.CoreFlavor), sys.Clock)
		sp.End()
		if err != nil {
			return synth.Result{}, err
		}
		sp.SetFloat("dynamic_pj_per_cycle", cRes.DynamicEnergy.Picojoules())
		return cRes, nil
	})
	if err != nil {
		return synth.Result{}, err
	}
	return v.(synth.Result), nil
}

// memoFloorplan runs (or replays) the floorplan composition. Key: the
// design name (macro dimensions and the core area are functions of the
// design).
func memoFloorplan(ctx context.Context, m *Memo, sys SystemDesign, mem *edram.Memory) (floorplan.Chip, error) {
	v, err := memoDo(m, memoStageFloorplan, sys.Name, func() (any, error) {
		_, sp := obs.StartSpan(ctx, StageFloorplan)
		chip, err := floorplan.Compose(mem.Width, mem.Height, mem.Area, sys.Core.Area())
		sp.End()
		if err != nil {
			return floorplan.Chip{}, err
		}
		sp.SetFloat("die_area_mm2", chip.Area.SquareMillimeters())
		return chip, nil
	})
	if err != nil {
		return floorplan.Chip{}, err
	}
	return v.(floorplan.Chip), nil
}

// memoCarbon runs (or replays) the embodied half of Step 5. Key: the
// design name plus the grid's fabrication carbon intensity — custom
// grids with equal intensity share an entry by value, not by name.
func memoCarbon(ctx context.Context, m *Memo, sys SystemDesign, grid carbon.Grid, chip floorplan.Chip) (carbonResult, error) {
	key := fmt.Sprintf("%s|%g", sys.Name, grid.Intensity.GramsPerKilowattHour())
	v, err := memoDo(m, memoStageCarbon, key, func() (any, error) {
		_, sp := obs.StartSpan(ctx, StageCarbon)
		res, err := carbonChain(sys, grid, chip)
		sp.End()
		if err != nil {
			return carbonResult{}, err
		}
		sp.SetFloat("embodied_per_good_die_g", res.perGood.Grams())
		return res, nil
	})
	if err != nil {
		return carbonResult{}, err
	}
	return v.(carbonResult), nil
}
