package thumb

import (
	"fmt"
	"strings"
)

// Disassemble renders an instruction stream as one mnemonic per halfword
// (BL pairs consume two). Offsets in branches are rendered as absolute
// byte targets, so a listing can be cross-checked against the assembler's
// label table.
func Disassemble(halfwords []uint16) []string {
	var out []string
	for i := 0; i < len(halfwords); i++ {
		pc := uint32(2 * i)
		instr := halfwords[i]
		if instr>>11 == 0b11110 && i+1 < len(halfwords) && halfwords[i+1]>>11 == 0b11111 {
			lo := halfwords[i+1]
			hi := int32(instr&0x7FF) << 21 >> 21
			off := hi<<12 | int32(lo&0x7FF)<<1
			out = append(out, fmt.Sprintf("bl 0x%x", int32(pc+4)+off))
			out = append(out, "; (bl suffix)")
			i++
			continue
		}
		out = append(out, disasmOne(pc, instr))
	}
	return out
}

// DisassembleOne renders a single halfword at a program counter.
func DisassembleOne(pc uint32, instr uint16) string { return disasmOne(pc, instr) }

var aluNames = [16]string{
	"ands", "eors", "lsls", "lsrs", "asrs", "adcs", "sbcs", "rors",
	"tst", "negs", "cmp", "cmn", "orrs", "muls", "bics", "mvns",
}

var condNames = [14]string{
	"beq", "bne", "bcs", "bcc", "bmi", "bpl", "bvs", "bvc",
	"bhi", "bls", "bge", "blt", "bgt", "ble",
}

func disasmOne(pc uint32, instr uint16) string {
	r := func(n uint16) string { return fmt.Sprintf("r%d", n) }
	switch {
	case instr == 0xBF00:
		return "nop"
	case instr>>8 == 0xBE:
		return fmt.Sprintf("bkpt #%d", instr&0xFF)
	case instr>>13 == 0b000 && instr>>11 != 0b00011:
		op := []string{"lsls", "lsrs", "asrs"}[instr>>11&3]
		imm := instr >> 6 & 31
		if instr>>11&3 == 0 && imm == 0 {
			return fmt.Sprintf("movs %s, %s", r(instr&7), r(instr>>3&7))
		}
		return fmt.Sprintf("%s %s, %s, #%d", op, r(instr&7), r(instr>>3&7), imm)
	case instr>>11 == 0b00011:
		op := "adds"
		if instr&0x0200 != 0 {
			op = "subs"
		}
		if instr&0x0400 == 0 {
			return fmt.Sprintf("%s %s, %s, %s", op, r(instr&7), r(instr>>3&7), r(instr>>6&7))
		}
		return fmt.Sprintf("%s %s, %s, #%d", op, r(instr&7), r(instr>>3&7), instr>>6&7)
	case instr>>13 == 0b001:
		op := []string{"movs", "cmp", "adds", "subs"}[instr>>11&3]
		return fmt.Sprintf("%s %s, #%d", op, r(instr>>8&7), instr&0xFF)
	case instr>>10 == 0b010000:
		name := aluNames[instr>>6&0xF]
		return fmt.Sprintf("%s %s, %s", name, r(instr&7), r(instr>>3&7))
	case instr>>10 == 0b010001:
		rd := instr&7 | instr>>4&8
		rm := instr >> 3 & 0xF
		switch instr >> 8 & 3 {
		case 0:
			return fmt.Sprintf("add %s, %s", r(rd), r(rm))
		case 1:
			return fmt.Sprintf("cmp %s, %s", r(rd), r(rm))
		case 2:
			return fmt.Sprintf("mov %s, %s", r(rd), r(rm))
		default:
			if instr&0x80 != 0 {
				return fmt.Sprintf("blx %s", r(rm))
			}
			return fmt.Sprintf("bx %s", r(rm))
		}
	case instr>>11 == 0b01001:
		return fmt.Sprintf("ldr %s, [pc, #%d]", r(instr>>8&7), uint32(instr&0xFF)*4)
	case instr>>12 == 0b0101:
		ops := [8]string{"str", "strh", "strb", "ldrsb", "ldr", "ldrh", "ldrb", "ldrsh"}
		return fmt.Sprintf("%s %s, [%s, %s]", ops[instr>>9&7], r(instr&7), r(instr>>3&7), r(instr>>6&7))
	case instr>>13 == 0b011:
		imm := uint32(instr >> 6 & 31)
		switch instr >> 11 & 3 {
		case 0:
			return fmt.Sprintf("str %s, [%s, #%d]", r(instr&7), r(instr>>3&7), imm*4)
		case 1:
			return fmt.Sprintf("ldr %s, [%s, #%d]", r(instr&7), r(instr>>3&7), imm*4)
		case 2:
			return fmt.Sprintf("strb %s, [%s, #%d]", r(instr&7), r(instr>>3&7), imm)
		default:
			return fmt.Sprintf("ldrb %s, [%s, #%d]", r(instr&7), r(instr>>3&7), imm)
		}
	case instr>>12 == 0b1000:
		op := "strh"
		if instr&0x0800 != 0 {
			op = "ldrh"
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", op, r(instr&7), r(instr>>3&7), uint32(instr>>6&31)*2)
	case instr>>12 == 0b1001:
		op := "str"
		if instr&0x0800 != 0 {
			op = "ldr"
		}
		return fmt.Sprintf("%s %s, [sp, #%d]", op, r(instr>>8&7), uint32(instr&0xFF)*4)
	case instr>>12 == 0b1010:
		if instr&0x0800 == 0 {
			return fmt.Sprintf("adr r%d, 0x%x", instr>>8&7, ((pc+4)&^3)+uint32(instr&0xFF)*4)
		}
		return fmt.Sprintf("add %s, sp, #%d", r(instr>>8&7), uint32(instr&0xFF)*4)
	case instr>>8 == 0b10110000:
		if instr&0x80 == 0 {
			return fmt.Sprintf("add sp, #%d", uint32(instr&0x7F)*4)
		}
		return fmt.Sprintf("sub sp, #%d", uint32(instr&0x7F)*4)
	case instr>>6 == 0b1011001000:
		return fmt.Sprintf("sxth %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011001001:
		return fmt.Sprintf("sxtb %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011001010:
		return fmt.Sprintf("uxth %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011001011:
		return fmt.Sprintf("uxtb %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011101000:
		return fmt.Sprintf("rev %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011101001:
		return fmt.Sprintf("rev16 %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>6 == 0b1011101011:
		return fmt.Sprintf("revsh %s, %s", r(instr&7), r(instr>>3&7))
	case instr>>9 == 0b1011010:
		return fmt.Sprintf("push %s", regListString(instr&0xFF, instr&0x100 != 0, "lr"))
	case instr>>9 == 0b1011110:
		return fmt.Sprintf("pop %s", regListString(instr&0xFF, instr&0x100 != 0, "pc"))
	case instr>>11 == 0b11000:
		return fmt.Sprintf("stmia %s!, %s", r(instr>>8&7), regListString(instr&0xFF, false, ""))
	case instr>>11 == 0b11001:
		return fmt.Sprintf("ldmia %s!, %s", r(instr>>8&7), regListString(instr&0xFF, false, ""))
	case instr>>12 == 0b1101 && instr>>8&0xF < 14:
		off := int32(int8(instr&0xFF)) * 2
		return fmt.Sprintf("%s 0x%x", condNames[instr>>8&0xF], int32(pc+4)+off)
	case instr>>11 == 0b11100:
		off := int32(instr&0x7FF) << 21 >> 21 * 2
		return fmt.Sprintf("b 0x%x", int32(pc+4)+off)
	default:
		return fmt.Sprintf(".hword 0x%04x ; ???", instr)
	}
}

// regListString renders {r0, r2-r4, lr}.
func regListString(list uint16, special bool, specialName string) string {
	var parts []string
	for r := 0; r < 8; r++ {
		if list&(1<<r) == 0 {
			continue
		}
		hi := r
		for hi+1 < 8 && list&(1<<(hi+1)) != 0 {
			hi++
		}
		if hi > r+1 {
			parts = append(parts, fmt.Sprintf("r%d-r%d", r, hi))
			r = hi
		} else {
			parts = append(parts, fmt.Sprintf("r%d", r))
		}
	}
	if special {
		parts = append(parts, specialName)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
