package thumb

import (
	"errors"
	"fmt"
)

// CPU is a Cortex-M0-class ARMv6-M Thumb core with cycle-accurate timing:
// single-cycle data processing and multiply, two-cycle loads and stores,
// three-cycle taken branches (two-stage refill plus issue), and
// four-cycle BL — the timing table of the Cortex-M0 TRM.
type CPU struct {
	// R holds the register file; R[13] is SP, R[14] LR, R[15] PC.
	R [16]uint32
	// Flags.
	N, Z, C, V bool
	// Mem is the memory system.
	Mem *Memory
	// Cycles and Instructions count execution progress.
	Cycles       uint64
	Instructions uint64
	// Halted is set by BKPT.
	Halted bool
	// HaltCode is the BKPT immediate.
	HaltCode uint8
}

// NewCPU returns a CPU reset to the program base with a full stack.
func NewCPU(mem *Memory) *CPU {
	c := &CPU{Mem: mem}
	c.R[13] = StackTop
	c.R[15] = ProgramBase
	return c
}

// ErrCycleBudget is returned by Run when the cycle budget is exhausted
// before the program halts.
var ErrCycleBudget = errors.New("thumb: cycle budget exhausted")

// Run executes until BKPT or until the cycle budget is exceeded.
func (c *CPU) Run(maxCycles uint64) error {
	for !c.Halted {
		if c.Cycles >= maxCycles {
			return ErrCycleBudget
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (c *CPU) Step() error {
	pc := c.R[15]
	instr, err := c.Mem.fetch16(pc)
	if err != nil {
		return err
	}
	c.Mem.Stats.ProgramReads++
	c.R[15] = pc + 2
	c.Instructions++

	switch {
	case instr>>13 == 0b000 && instr>>11 != 0b00011: // shift by immediate
		c.execShiftImm(instr)
		c.Cycles++
	case instr>>11 == 0b00011: // add/sub register or imm3
		c.execAddSub(instr)
		c.Cycles++
	case instr>>13 == 0b001: // mov/cmp/add/sub imm8
		c.execImm8(instr)
		c.Cycles++
	case instr>>10 == 0b010000: // ALU register
		c.execALU(instr)
		c.Cycles++
	case instr>>10 == 0b010001: // hi-reg add/cmp/mov/bx
		return c.execHiReg(instr)
	case instr>>11 == 0b01001: // LDR literal
		base := (pc + 4) &^ 3
		addr := base + uint32(instr&0xFF)*4
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return err
		}
		c.R[instr>>8&7] = v
		c.Cycles += 2
	case instr>>12 == 0b0101: // load/store register offset
		return c.execMemReg(instr)
	case instr>>13 == 0b011 || instr>>12 == 0b1000: // load/store immediate
		return c.execMemImm(instr)
	case instr>>12 == 0b1001: // SP-relative load/store
		return c.execMemSP(instr)
	case instr>>12 == 0b1010: // ADR / ADD rd, sp
		rd := instr >> 8 & 7
		if instr&0x0800 == 0 {
			c.R[rd] = ((pc + 4) &^ 3) + uint32(instr&0xFF)*4
		} else {
			c.R[rd] = c.R[13] + uint32(instr&0xFF)*4
		}
		c.Cycles++
	case instr>>12 == 0b1011: // misc
		return c.execMisc(instr)
	case instr>>12 == 0b1100: // LDMIA/STMIA
		return c.execMultiple(instr)
	case instr>>12 == 0b1101: // conditional branch
		cond := instr >> 8 & 0xF
		if cond == 0xF {
			return fmt.Errorf("thumb: SVC unsupported at %#x", pc)
		}
		if c.condition(uint8(cond)) {
			off := int32(int8(instr&0xFF)) * 2
			c.R[15] = uint32(int32(pc+4) + off)
			c.Cycles += 3
		} else {
			c.Cycles++
		}
	case instr>>11 == 0b11100: // unconditional branch
		off := int32(instr&0x7FF) << 21 >> 21 * 2
		c.R[15] = uint32(int32(pc+4) + off)
		c.Cycles += 3
	case instr>>11 == 0b11110: // BL prefix
		lo, err := c.Mem.fetch16(pc + 2)
		if err != nil {
			return err
		}
		if lo>>11 != 0b11111 {
			return fmt.Errorf("thumb: broken BL pair at %#x", pc)
		}
		c.Mem.Stats.ProgramReads++
		hi := int32(instr&0x7FF) << 21 >> 21 // sign-extended
		off := hi<<12 | int32(lo&0x7FF)<<1
		c.R[14] = (pc + 4) | 1
		c.R[15] = uint32(int32(pc+4) + off)
		c.Cycles += 4
	default:
		return fmt.Errorf("thumb: undefined instruction %#04x at %#x", instr, pc)
	}
	return nil
}

// setNZ updates the N and Z flags from a result.
func (c *CPU) setNZ(v uint32) {
	c.N = v&0x80000000 != 0
	c.Z = v == 0
}

// addWithCarry is the ARM ADC primitive, returning result and flags.
func addWithCarry(a, b uint32, carry bool) (r uint32, cOut, vOut bool) {
	ci := uint64(0)
	if carry {
		ci = 1
	}
	sum := uint64(a) + uint64(b) + ci
	r = uint32(sum)
	cOut = sum > 0xFFFFFFFF
	vOut = (a^r)&(b^r)&0x80000000 != 0
	return r, cOut, vOut
}

func (c *CPU) execShiftImm(instr uint16) {
	op := instr >> 11 & 3
	imm := uint32(instr >> 6 & 31)
	rm := c.R[instr>>3&7]
	rd := instr & 7
	var res uint32
	switch op {
	case 0: // LSL (imm 0 = MOVS, C unchanged)
		res = rm
		if imm > 0 {
			c.C = rm&(1<<(32-imm)) != 0
			res = rm << imm
		}
	case 1: // LSR (imm 0 means 32)
		if imm == 0 {
			c.C = rm&0x80000000 != 0
			res = 0
		} else {
			c.C = rm&(1<<(imm-1)) != 0
			res = rm >> imm
		}
	case 2: // ASR (imm 0 means 32)
		if imm == 0 {
			c.C = rm&0x80000000 != 0
			res = uint32(int32(rm) >> 31)
		} else {
			c.C = rm&(1<<(imm-1)) != 0
			res = uint32(int32(rm) >> imm)
		}
	}
	c.R[rd] = res
	c.setNZ(res)
}

func (c *CPU) execAddSub(instr uint16) {
	rn := c.R[instr>>3&7]
	rd := instr & 7
	var operand uint32
	if instr&0x0400 == 0 {
		operand = c.R[instr>>6&7]
	} else {
		operand = uint32(instr >> 6 & 7)
	}
	var res uint32
	if instr&0x0200 == 0 { // ADD
		res, c.C, c.V = addWithCarry(rn, operand, false)
	} else { // SUB
		res, c.C, c.V = addWithCarry(rn, ^operand, true)
	}
	c.R[rd] = res
	c.setNZ(res)
}

func (c *CPU) execImm8(instr uint16) {
	op := instr >> 11 & 3
	rd := instr >> 8 & 7
	imm := uint32(instr & 0xFF)
	switch op {
	case 0: // MOVS
		c.R[rd] = imm
		c.setNZ(imm)
	case 1: // CMP
		res, cf, vf := addWithCarry(c.R[rd], ^imm, true)
		c.setNZ(res)
		c.C, c.V = cf, vf
	case 2: // ADDS
		res, cf, vf := addWithCarry(c.R[rd], imm, false)
		c.R[rd] = res
		c.setNZ(res)
		c.C, c.V = cf, vf
	case 3: // SUBS
		res, cf, vf := addWithCarry(c.R[rd], ^imm, true)
		c.R[rd] = res
		c.setNZ(res)
		c.C, c.V = cf, vf
	}
}

func (c *CPU) execALU(instr uint16) {
	op := instr >> 6 & 0xF
	rd := instr & 7
	rm := c.R[instr>>3&7]
	rdv := c.R[rd]
	store := true
	var res uint32
	switch op {
	case 0x0:
		res = rdv & rm
	case 0x1:
		res = rdv ^ rm
	case 0x2: // LSL reg
		sh := rm & 0xFF
		res = rdv
		if sh > 0 {
			if sh < 32 {
				c.C = rdv&(1<<(32-sh)) != 0
				res = rdv << sh
			} else if sh == 32 {
				c.C = rdv&1 != 0
				res = 0
			} else {
				c.C = false
				res = 0
			}
		}
	case 0x3: // LSR reg
		sh := rm & 0xFF
		res = rdv
		if sh > 0 {
			if sh < 32 {
				c.C = rdv&(1<<(sh-1)) != 0
				res = rdv >> sh
			} else if sh == 32 {
				c.C = rdv&0x80000000 != 0
				res = 0
			} else {
				c.C = false
				res = 0
			}
		}
	case 0x4: // ASR reg
		sh := rm & 0xFF
		res = rdv
		if sh > 0 {
			if sh < 32 {
				c.C = rdv&(1<<(sh-1)) != 0
				res = uint32(int32(rdv) >> sh)
			} else {
				c.C = rdv&0x80000000 != 0
				res = uint32(int32(rdv) >> 31)
			}
		}
	case 0x5: // ADC
		res, c.C, c.V = addWithCarry(rdv, rm, c.C)
	case 0x6: // SBC
		res, c.C, c.V = addWithCarry(rdv, ^rm, c.C)
	case 0x7: // ROR
		sh := rm & 0xFF
		res = rdv
		if sh > 0 {
			sh &= 31
			if sh == 0 {
				c.C = rdv&0x80000000 != 0
			} else {
				res = rdv>>sh | rdv<<(32-sh)
				c.C = res&0x80000000 != 0
			}
		}
	case 0x8: // TST
		res = rdv & rm
		store = false
	case 0x9: // RSB (NEG)
		res, c.C, c.V = addWithCarry(^rm, 0, true)
	case 0xA: // CMP
		var cf, vf bool
		res, cf, vf = addWithCarry(rdv, ^rm, true)
		c.C, c.V = cf, vf
		store = false
	case 0xB: // CMN
		var cf, vf bool
		res, cf, vf = addWithCarry(rdv, rm, false)
		c.C, c.V = cf, vf
		store = false
	case 0xC:
		res = rdv | rm
	case 0xD: // MUL (single-cycle multiplier configuration)
		res = rdv * rm
	case 0xE:
		res = rdv &^ rm
	case 0xF:
		res = ^rm
	}
	if store {
		c.R[rd] = res
	}
	c.setNZ(res)
}

func (c *CPU) execHiReg(instr uint16) error {
	op := instr >> 8 & 3
	rm := int(instr >> 3 & 0xF)
	rd := int(instr&7 | instr>>4&8)
	switch op {
	case 0: // ADD (no flags)
		c.R[rd] += c.R[rm]
		if rd == 15 {
			c.R[15] &^= 1
			c.Cycles += 3
		} else {
			c.Cycles++
		}
	case 1: // CMP
		res, cf, vf := addWithCarry(c.R[rd], ^c.R[rm], true)
		c.setNZ(res)
		c.C, c.V = cf, vf
		c.Cycles++
	case 2: // MOV (no flags)
		v := c.R[rm]
		if rm == 15 {
			v += 2 // PC reads as instruction address + 4
		}
		c.R[rd] = v
		if rd == 15 {
			c.R[15] &^= 1
			c.Cycles += 3
		} else {
			c.Cycles++
		}
	case 3: // BX / BLX
		target := c.R[rm]
		if instr&0x80 != 0 { // BLX
			c.R[14] = c.R[15] | 1
		}
		c.R[15] = target &^ 1
		c.Cycles += 3
	}
	return nil
}

func (c *CPU) execMemReg(instr uint16) error {
	op := instr >> 9 & 7
	addr := c.R[instr>>3&7] + c.R[instr>>6&7]
	rd := instr & 7
	c.Cycles += 2
	switch op {
	case 0:
		return c.Mem.Write32(addr, c.R[rd])
	case 1:
		return c.Mem.Write16(addr, uint16(c.R[rd]))
	case 2:
		return c.Mem.Write8(addr, byte(c.R[rd]))
	case 3:
		v, err := c.Mem.Read8(addr)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(int32(int8(v)))
	case 4:
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return err
		}
		c.R[rd] = v
	case 5:
		v, err := c.Mem.Read16(addr)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(v)
	case 6:
		v, err := c.Mem.Read8(addr)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(v)
	case 7:
		v, err := c.Mem.Read16(addr)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(int32(int16(v)))
	}
	return nil
}

func (c *CPU) execMemImm(instr uint16) error {
	rd := instr & 7
	rn := c.R[instr>>3&7]
	imm := uint32(instr >> 6 & 31)
	c.Cycles += 2
	switch {
	case instr>>11 == 0b01100:
		return c.Mem.Write32(rn+imm*4, c.R[rd])
	case instr>>11 == 0b01101:
		v, err := c.Mem.Read32(rn + imm*4)
		if err != nil {
			return err
		}
		c.R[rd] = v
	case instr>>11 == 0b01110:
		return c.Mem.Write8(rn+imm, byte(c.R[rd]))
	case instr>>11 == 0b01111:
		v, err := c.Mem.Read8(rn + imm)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(v)
	case instr>>11 == 0b10000:
		return c.Mem.Write16(rn+imm*2, uint16(c.R[rd]))
	case instr>>11 == 0b10001:
		v, err := c.Mem.Read16(rn + imm*2)
		if err != nil {
			return err
		}
		c.R[rd] = uint32(v)
	}
	return nil
}

func (c *CPU) execMemSP(instr uint16) error {
	rd := instr >> 8 & 7
	addr := c.R[13] + uint32(instr&0xFF)*4
	c.Cycles += 2
	if instr&0x0800 == 0 {
		return c.Mem.Write32(addr, c.R[rd])
	}
	v, err := c.Mem.Read32(addr)
	if err != nil {
		return err
	}
	c.R[rd] = v
	return nil
}

func (c *CPU) execMisc(instr uint16) error {
	switch {
	case instr>>8 == 0b10110000: // ADD/SUB SP
		imm := uint32(instr&0x7F) * 4
		if instr&0x80 == 0 {
			c.R[13] += imm
		} else {
			c.R[13] -= imm
		}
		c.Cycles++
	case instr>>9 == 0b1011010: // PUSH
		list := instr & 0xFF
		lr := instr&0x100 != 0
		n := popCount(list)
		if lr {
			n++
		}
		sp := c.R[13] - 4*uint32(n)
		c.R[13] = sp
		addr := sp
		for r := 0; r < 8; r++ {
			if list&(1<<r) != 0 {
				if err := c.Mem.Write32(addr, c.R[r]); err != nil {
					return err
				}
				addr += 4
			}
		}
		if lr {
			if err := c.Mem.Write32(addr, c.R[14]); err != nil {
				return err
			}
		}
		c.Cycles += 1 + uint64(n)
	case instr>>9 == 0b1011110: // POP
		list := instr & 0xFF
		pc := instr&0x100 != 0
		addr := c.R[13]
		n := popCount(list)
		for r := 0; r < 8; r++ {
			if list&(1<<r) != 0 {
				v, err := c.Mem.Read32(addr)
				if err != nil {
					return err
				}
				c.R[r] = v
				addr += 4
			}
		}
		if pc {
			v, err := c.Mem.Read32(addr)
			if err != nil {
				return err
			}
			c.R[15] = v &^ 1
			addr += 4
			n++
			c.Cycles += 4 + uint64(popCount(list))
		} else {
			c.Cycles += 1 + uint64(n)
		}
		c.R[13] = addr
	case instr>>8 == 0b10111110: // BKPT
		c.Halted = true
		c.HaltCode = uint8(instr & 0xFF)
		c.Cycles++
	case instr == 0xBF00: // NOP
		c.Cycles++
	case instr>>8 == 0b10110010: // SXTH/SXTB/UXTH/UXTB
		rm := c.R[instr>>3&7]
		rd := instr & 7
		switch instr >> 6 & 3 {
		case 0:
			c.R[rd] = uint32(int32(int16(rm)))
		case 1:
			c.R[rd] = uint32(int32(int8(rm)))
		case 2:
			c.R[rd] = rm & 0xFFFF
		case 3:
			c.R[rd] = rm & 0xFF
		}
		c.Cycles++
	case instr>>8 == 0b10111010: // REV/REV16/REVSH
		rm := c.R[instr>>3&7]
		rd := instr & 7
		switch instr >> 6 & 3 {
		case 0: // REV
			c.R[rd] = rm<<24 | rm>>8&0xFF00 | rm<<8&0xFF0000 | rm>>24
		case 1: // REV16
			c.R[rd] = rm<<8&0xFF00FF00 | rm>>8&0x00FF00FF
		case 3: // REVSH
			h := rm<<8&0xFF00 | rm>>8&0xFF
			c.R[rd] = uint32(int32(int16(h)))
		default:
			return fmt.Errorf("thumb: undefined misc instruction %#04x", instr)
		}
		c.Cycles++
	default:
		return fmt.Errorf("thumb: undefined misc instruction %#04x", instr)
	}
	return nil
}

// execMultiple handles LDMIA/STMIA (load/store multiple, increment after).
func (c *CPU) execMultiple(instr uint16) error {
	rn := int(instr >> 8 & 7)
	list := instr & 0xFF
	if list == 0 {
		return fmt.Errorf("thumb: empty register list in LDM/STM %#04x", instr)
	}
	addr := c.R[rn]
	load := instr&0x0800 != 0
	n := popCount(list)
	rnInList := list&(1<<rn) != 0
	for r := 0; r < 8; r++ {
		if list&(1<<r) == 0 {
			continue
		}
		if load {
			v, err := c.Mem.Read32(addr)
			if err != nil {
				return err
			}
			c.R[r] = v
		} else {
			if err := c.Mem.Write32(addr, c.R[r]); err != nil {
				return err
			}
		}
		addr += 4
	}
	// Writeback unless an LDM reloaded the base register.
	if !(load && rnInList) {
		c.R[rn] = addr
	}
	c.Cycles += 1 + uint64(n)
	return nil
}

// condition evaluates a branch condition against the flags.
func (c *CPU) condition(cond uint8) bool {
	switch cond {
	case 0x0:
		return c.Z
	case 0x1:
		return !c.Z
	case 0x2:
		return c.C
	case 0x3:
		return !c.C
	case 0x4:
		return c.N
	case 0x5:
		return !c.N
	case 0x6:
		return c.V
	case 0x7:
		return !c.V
	case 0x8:
		return c.C && !c.Z
	case 0x9:
		return !c.C || c.Z
	case 0xA:
		return c.N == c.V
	case 0xB:
		return c.N != c.V
	case 0xC:
		return !c.Z && c.N == c.V
	case 0xD:
		return c.Z || c.N != c.V
	default:
		return true
	}
}

func popCount(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
