package thumb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Execution profiling: a per-PC cycle histogram collected while running,
// with hotspot reporting against the disassembly. This is the
// profile-guided view behind workload calibration — it shows exactly
// where matmult-int's 20M cycles go.

// Profile accumulates per-address execution statistics.
type Profile struct {
	// cycles[pc] is the total cycles attributed to the instruction at pc.
	cycles map[uint32]uint64
	// executions[pc] counts how many times the instruction ran.
	executions map[uint32]uint64
	// TotalCycles mirrors the CPU cycle counter over the profiled run.
	TotalCycles uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{cycles: map[uint32]uint64{}, executions: map[uint32]uint64{}}
}

// RunProfiled executes the CPU until halt (or budget), attributing every
// cycle to the instruction address that consumed it.
func RunProfiled(cpu *CPU, maxCycles uint64) (*Profile, error) {
	p := NewProfile()
	for !cpu.Halted {
		if cpu.Cycles >= maxCycles {
			return p, ErrCycleBudget
		}
		pc := cpu.R[15]
		before := cpu.Cycles
		if err := cpu.Step(); err != nil {
			return p, err
		}
		spent := cpu.Cycles - before
		p.cycles[pc] += spent
		p.executions[pc]++
		p.TotalCycles += spent
	}
	return p, nil
}

// HotSpot is one ranked profile entry.
type HotSpot struct {
	// PC is the instruction address.
	PC uint32
	// Cycles and Executions are the accumulated counts.
	Cycles, Executions uint64
	// Fraction is Cycles / TotalCycles.
	Fraction float64
}

// Top returns the n hottest instructions by cycle count.
func (p *Profile) Top(n int) []HotSpot {
	out := make([]HotSpot, 0, len(p.cycles))
	for pc, c := range p.cycles {
		out = append(out, HotSpot{
			PC: pc, Cycles: c, Executions: p.executions[pc],
			Fraction: float64(c) / float64(p.TotalCycles),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// CoveragePC reports how many distinct instruction addresses executed.
func (p *Profile) CoveragePC() int { return len(p.executions) }

// FormatHotSpots renders the top-n entries annotated with disassembly from
// the program image.
func (p *Profile) FormatHotSpots(prog *Program, n int) (string, error) {
	if prog == nil {
		return "", errors.New("thumb: need the program for disassembly")
	}
	if p.TotalCycles == 0 {
		return "", errors.New("thumb: empty profile")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %12s %12s %7s  %s\n", "pc", "cycles", "execs", "%", "instruction")
	for _, h := range p.Top(n) {
		idx := int(h.PC / 2)
		dis := "(outside program)"
		if idx >= 0 && idx < len(prog.Halfwords) {
			dis = DisassembleOne(h.PC, prog.Halfwords[idx])
		}
		fmt.Fprintf(&sb, "%#10x %12d %12d %6.2f%%  %s\n",
			h.PC, h.Cycles, h.Executions, 100*h.Fraction, dis)
	}
	return sb.String(), nil
}
