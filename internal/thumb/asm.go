// Package thumb implements an ARMv6-M Thumb-1 assembler and a
// cycle-counting CPU simulator for the ARM Cortex-M0 of the paper's case
// study. It stands in for the RTL simulation step of the paper's flow
// (Sec. III-B, Step 4): running a compiled Embench application to obtain
// the exact number of clock cycles and the exact number of memory accesses.
//
// The assembler is two-pass with labels, a `.word` data directive, and an
// `li` pseudo-instruction that expands to a movs/lsls/adds sequence for
// arbitrary 32-bit immediates (Thumb-1 has no 32-bit move). The simulator
// implements the Thumb-1 integer ISA with Cortex-M0 cycle timing and
// counts program fetches and data reads/writes — the inputs the eDRAM
// energy model needs.
package thumb

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled Thumb binary.
type Program struct {
	// Halfwords is the little-endian instruction stream.
	Halfwords []uint16
	// Labels maps label names to byte offsets from the program base.
	Labels map[string]uint32
}

// Bytes renders the program as little-endian bytes.
func (p *Program) Bytes() []byte {
	out := make([]byte, 2*len(p.Halfwords))
	for i, h := range p.Halfwords {
		out[2*i] = byte(h)
		out[2*i+1] = byte(h >> 8)
	}
	return out
}

// asmError annotates an assembly error with its source line.
type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string {
	return fmt.Sprintf("thumb: line %d: %s", e.line, e.msg)
}

// item is one parsed source statement.
type item struct {
	line     int
	label    string
	mnemonic string
	operands []string
}

// Assemble translates Thumb-1 assembly source into a Program. Supported
// syntax: one statement per line, optional `label:` prefixes, `;` / `@` /
// `//` comments, decimal and 0x immediates with `#` prefixes optional,
// registers r0-r15 with sp/lr/pc aliases, the `.word`, `.align` and
// `.equ NAME, value` directives, and the `li rd, imm32` pseudo-instruction.
func Assemble(src string) (*Program, error) {
	items, equs, err := parse(src)
	if err != nil {
		return nil, err
	}

	// Pass 1: fix statement sizes and label offsets.
	labels := make(map[string]uint32)
	offset := uint32(0)
	sizes := make([]uint32, len(items))
	for i, it := range items {
		if it.label != "" {
			if _, dup := labels[it.label]; dup {
				return nil, &asmError{it.line, "duplicate label " + it.label}
			}
			labels[it.label] = offset
		}
		if it.mnemonic == "" {
			continue
		}
		sz, err := statementSize(it, equs)
		if err != nil {
			return nil, err
		}
		sizes[i] = sz
		offset += sz
	}

	// Pass 2: encode.
	enc := &encoder{labels: labels, equs: equs}
	for i, it := range items {
		if it.mnemonic == "" {
			continue
		}
		if err := enc.encode(it, sizes[i]); err != nil {
			return nil, err
		}
	}
	return &Program{Halfwords: enc.out, Labels: labels}, nil
}

// parse splits the source into statements and collects .equ constants.
func parse(src string) ([]item, map[string]int64, error) {
	var items []item
	equs := make(map[string]int64)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		for _, marker := range []string{";", "@", "//"} {
			if i := strings.Index(line, marker); i >= 0 {
				line = line[:i]
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		it := item{line: lineNo + 1}
		// Peel off labels (there may be several on one line).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			head := strings.TrimSpace(line[:colon])
			if head == "" || strings.ContainsAny(head, " \t,") {
				break
			}
			if it.label != "" {
				// Emit the previous label as its own item.
				items = append(items, item{line: it.line, label: it.label})
			}
			it.label = head
			line = strings.TrimSpace(line[colon+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			it.mnemonic = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) > 1 {
				for _, op := range splitOperands(fields[1]) {
					it.operands = append(it.operands, strings.TrimSpace(op))
				}
			}
		}
		if it.mnemonic == ".equ" {
			if len(it.operands) != 2 {
				return nil, nil, &asmError{it.line, ".equ needs NAME, value"}
			}
			v, err := parseImmediate(it.operands[1], equs)
			if err != nil {
				return nil, nil, &asmError{it.line, err.Error()}
			}
			equs[strings.ToUpper(it.operands[0])] = v
			it.mnemonic = ""
			it.operands = nil
		}
		if it.label != "" || it.mnemonic != "" {
			items = append(items, it)
		}
	}
	return items, equs, nil
}

// splitOperands splits on commas that are not inside brackets, so
// "[r0, #4]" stays one operand.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// statementSize reports the size in bytes of a statement (pass 1).
func statementSize(it item, equs map[string]int64) (uint32, error) {
	switch it.mnemonic {
	case ".word":
		return 4, nil
	case ".align":
		// Resolved during encoding; size depends on current offset, so we
		// conservatively treat .align as 0 or 2. To keep pass 1 exact we
		// disallow .align except where tracking is simple: here we always
		// reserve 2 bytes and encode a NOP when already aligned... that
		// would desync labels. Instead: .align is only legal immediately
		// after an even number of halfwords; we compute nothing here and
		// handle alignment via explicit nops. Simplest correct choice:
		// reject and require explicit padding.
		return 0, &asmError{it.line, ".align unsupported; pad with nop"}
	case "li":
		if len(it.operands) != 2 {
			return 0, &asmError{it.line, "li needs rd, imm"}
		}
		v, err := parseImmediate(it.operands[1], equs)
		if err != nil {
			return 0, &asmError{it.line, err.Error()}
		}
		return 2 * uint32(len(liSequenceValues(uint32(v)))), nil
	case "bl":
		return 4, nil
	default:
		return 2, nil
	}
}

// liSequenceValues plans the movs/lsls/adds expansion of a 32-bit load,
// returning one marker per emitted halfword (the values are irrelevant;
// only the count matters for sizing).
func liSequenceValues(v uint32) []uint16 {
	bytes := []uint32{v >> 24 & 0xFF, v >> 16 & 0xFF, v >> 8 & 0xFF, v & 0xFF}
	// Drop leading zero bytes.
	first := 0
	for first < 3 && bytes[first] == 0 {
		first++
	}
	seq := []uint16{0} // movs rd, #top
	for i := first + 1; i < 4; i++ {
		seq = append(seq, 0) // lsls rd, rd, #8
		if bytes[i] != 0 {
			seq = append(seq, 0) // adds rd, #byte
		}
	}
	return seq
}

// parseImmediate parses #imm, decimal, hex, or an .equ constant.
func parseImmediate(s string, equs map[string]int64) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	if v, ok := equs[strings.ToUpper(s)]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full uint32 range in hex.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseRegister parses r0-r15 and the sp/lr/pc aliases.
func parseRegister(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return 13, nil
	case "lr":
		return 14, nil
	case "pc":
		return 15, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}
