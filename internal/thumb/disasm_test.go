package thumb

import (
	"fmt"
	"strings"
	"testing"
)

func TestExtendAndReverseOps(t *testing.T) {
	cpu := run(t, `
		li r0, 0x1234f689
		sxth r1, r0       ; 0xfffff689
		sxtb r2, r0       ; 0xffffff89
		uxth r3, r0       ; 0x0000f689
		uxtb r4, r0       ; 0x00000089
		rev r5, r0        ; 0x89f63412
		rev16 r6, r0      ; 0x341289f6
		revsh r7, r0      ; 0xffff89f6
		bkpt #0
	`)
	want := map[int]uint32{
		1: 0xFFFFF689, 2: 0xFFFFFF89, 3: 0x0000F689, 4: 0x00000089,
		5: 0x89F63412, 6: 0x341289F6, 7: 0xFFFF89F6,
	}
	for r, w := range want {
		if cpu.R[r] != w {
			t.Errorf("r%d = %#x, want %#x", r, cpu.R[r], w)
		}
	}
}

func TestLoadStoreMultiple(t *testing.T) {
	cpu := run(t, `
		li r0, 0x20000000
		movs r1, #11
		movs r2, #22
		movs r3, #33
		stmia r0!, {r1-r3}
		li r0, 0x20000000
		ldmia r0!, {r4-r6}
		bkpt #0
	`)
	if cpu.R[4] != 11 || cpu.R[5] != 22 || cpu.R[6] != 33 {
		t.Errorf("ldmia restored %d %d %d", cpu.R[4], cpu.R[5], cpu.R[6])
	}
	// Writeback: base advanced by 12.
	if cpu.R[0] != 0x2000000C {
		t.Errorf("base after ldmia = %#x, want 0x2000000c", cpu.R[0])
	}
	// LDM/STM cycle cost is 1+N: verify via total data accesses.
	if cpu.Mem.Stats.DataWrites != 3 || cpu.Mem.Stats.DataReads != 3 {
		t.Errorf("multiple transfer counts wrong: %+v", cpu.Mem.Stats)
	}
}

func TestLDMBaseInListNoWriteback(t *testing.T) {
	cpu := run(t, `
		li r0, 0x20000000
		movs r1, #99
		str r1, [r0]
		li r2, 0x20000100
		str r2, [r0, #4]
		ldmia r0!, {r1}    ; base not in list: writeback
		li r0, 0x20000000
		ldmia r0!, {r0}    ; base in list: r0 takes the loaded value
		bkpt #0
	`)
	if cpu.R[0] != 99 {
		t.Errorf("ldm with base in list: r0 = %d, want loaded 99", cpu.R[0])
	}
	if cpu.R[1] != 99 {
		t.Errorf("ldm writeback form: r1 = %d, want 99", cpu.R[1])
	}
}

func TestDisassembleWorkloadsClean(t *testing.T) {
	// Every assembled workload instruction must disassemble (no ??? holes).
	for _, src := range []string{
		"movs r0, #1\nadds r0, #2\nbkpt #0",
	} {
		prog, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range Disassemble(prog.Halfwords) {
			if strings.Contains(line, "???") {
				t.Errorf("undisassemblable instruction: %s", line)
			}
		}
	}
}

func TestDisassembleSpecificEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"movs r1, #42", "movs r1, #42"},
		{"adds r2, r3, r4", "adds r2, r3, r4"},
		{"adds r2, r3, #5", "adds r2, r3, #5"},
		{"lsls r1, r2, #7", "lsls r1, r2, #7"},
		{"movs r1, r2", "movs r1, r2"},
		{"muls r3, r4", "muls r3, r4"},
		{"cmp r1, r2", "cmp r1, r2"},
		{"mov r8, r1", "mov r8, r1"},
		{"bx lr", "bx r14"},
		{"ldr r1, [r2, #8]", "ldr r1, [r2, #8]"},
		{"strb r1, [r2, #3]", "strb r1, [r2, #3]"},
		{"ldrh r1, [r2, r3]", "ldrh r1, [r2, r3]"},
		{"str r1, [sp, #16]", "str r1, [sp, #16]"},
		{"add sp, #24", "add sp, #24"},
		{"sub sp, #16", "sub sp, #16"},
		{"push {r4-r6, lr}", "push {r4-r6, lr}"},
		{"pop {r0, r2}", "pop {r0, r2}"},
		{"stmia r1!, {r2, r3}", "stmia r1!, {r2, r3}"},
		{"sxth r1, r2", "sxth r1, r2"},
		{"rev r1, r2", "rev r1, r2"},
		{"nop", "nop"},
		{"bkpt #3", "bkpt #3"},
	}
	for _, tc := range cases {
		prog, err := Assemble(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		got := DisassembleOne(0, prog.Halfwords[0])
		if got != tc.want {
			t.Errorf("%q disassembled to %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestDisassembleBranchTargets(t *testing.T) {
	prog, err := Assemble(`
		b skip
		nop
	skip:
		beq skip
		bl skip
		bkpt #0
	`)
	if err != nil {
		t.Fatal(err)
	}
	lines := Disassemble(prog.Halfwords)
	if lines[0] != "b 0x4" {
		t.Errorf("b target = %q, want b 0x4", lines[0])
	}
	if lines[2] != "beq 0x4" {
		t.Errorf("beq target = %q, want beq 0x4", lines[2])
	}
	if lines[3] != "bl 0x4" {
		t.Errorf("bl target = %q, want bl 0x4", lines[3])
	}
}

func TestDisassembleRegListRanges(t *testing.T) {
	if got := regListString(0b01011101, true, "lr"); got != "{r0, r2-r4, r6, lr}" {
		t.Errorf("reg list = %q", got)
	}
	if got := regListString(0, true, "pc"); got != "{pc}" {
		t.Errorf("pc-only list = %q", got)
	}
}

func TestStmLdmAssemblerErrors(t *testing.T) {
	bad := []string{
		"stmia r9!, {r1}",
		"ldmia r0!, {lr}",
		"stmia r0!",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func Test64BitArithmeticCarryChain(t *testing.T) {
	// 64-bit add via adds/adcs: 0xFFFFFFFF_00000001 + 0x00000001_FFFFFFFF
	// = 0x1_00000001_00000000 (truncated to 64 bits: 0x00000001_00000000).
	cpu := run(t, `
		li r0, 0x00000001  ; a.lo
		li r1, 0xffffffff  ; a.hi
		li r2, 0xffffffff  ; b.lo
		li r3, 0x00000001  ; b.hi
		adds r0, r0, r2    ; lo sum, sets carry
		adcs r1, r3        ; hi sum + carry
		bkpt #0
	`)
	if cpu.R[0] != 0x00000000 {
		t.Errorf("low word = %#x, want 0", cpu.R[0])
	}
	if cpu.R[1] != 0x00000001 {
		t.Errorf("high word = %#x, want 1", cpu.R[1])
	}
	// 64-bit subtract via subs/sbcs: 0x1_00000000 − 1 = 0x0_FFFFFFFF.
	cpu = run(t, `
		movs r0, #0        ; a.lo
		movs r1, #1        ; a.hi
		movs r2, #1        ; b.lo
		movs r3, #0        ; b.hi
		subs r0, r0, r2
		sbcs r1, r3
		bkpt #0
	`)
	if cpu.R[0] != 0xFFFFFFFF || cpu.R[1] != 0 {
		t.Errorf("64-bit sub = %#x_%08x, want 0_ffffffff", cpu.R[1], cpu.R[0])
	}
}

func TestOverflowFlagSemantics(t *testing.T) {
	// 0x7FFFFFFF + 1 overflows signed (V set, bvs taken) but not unsigned.
	cpu := run(t, `
		li r0, 0x7fffffff
		movs r1, #1
		adds r0, r0, r1
		bvs v_set
		movs r2, #0
		b check_c
	v_set:
		movs r2, #1
	check_c:
		bcs c_set
		movs r3, #0
		b done
	c_set:
		movs r3, #1
	done:
		bkpt #0
	`)
	if cpu.R[2] != 1 {
		t.Error("signed overflow should set V")
	}
	if cpu.R[3] != 0 {
		t.Error("no unsigned carry expected")
	}
}

// Property: for branch-free instructions, disassembly is valid assembler
// input that re-encodes to the identical halfword (a full round trip).
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	rnd := func(seed *uint32) uint32 {
		*seed = *seed*1664525 + 1013904223
		return *seed
	}
	templates := []func(r uint32) string{
		func(r uint32) string { return fmt.Sprintf("movs r%d, #%d", r%8, r>>3%256) },
		func(r uint32) string { return fmt.Sprintf("adds r%d, r%d, r%d", r%8, r>>3%8, r>>6%8) },
		func(r uint32) string { return fmt.Sprintf("subs r%d, r%d, #%d", r%8, r>>3%8, r>>6%8) },
		func(r uint32) string { return fmt.Sprintf("lsls r%d, r%d, #%d", r%8, r>>3%8, 1+r>>6%31) },
		func(r uint32) string { return fmt.Sprintf("ands r%d, r%d", r%8, r>>3%8) },
		func(r uint32) string { return fmt.Sprintf("muls r%d, r%d", r%8, r>>3%8) },
		func(r uint32) string { return fmt.Sprintf("cmp r%d, #%d", r%8, r>>3%256) },
		func(r uint32) string { return fmt.Sprintf("ldr r%d, [r%d, #%d]", r%8, r>>3%8, 4*(r>>6%32)) },
		func(r uint32) string { return fmt.Sprintf("strb r%d, [r%d, #%d]", r%8, r>>3%8, r>>6%32) },
		func(r uint32) string { return fmt.Sprintf("ldrh r%d, [r%d, r%d]", r%8, r>>3%8, r>>6%8) },
		func(r uint32) string { return fmt.Sprintf("str r%d, [sp, #%d]", r%8, 4*(r>>3%256)) },
		func(r uint32) string { return fmt.Sprintf("add sp, #%d", 4*(r%128)) },
		func(r uint32) string { return fmt.Sprintf("sxtb r%d, r%d", r%8, r>>3%8) },
		func(r uint32) string { return fmt.Sprintf("rev r%d, r%d", r%8, r>>3%8) },
	}
	seed := uint32(12345)
	for i := 0; i < 400; i++ {
		src := templates[int(rnd(&seed))%len(templates)](rnd(&seed))
		prog1, err := Assemble(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		dis := DisassembleOne(0, prog1.Halfwords[0])
		prog2, err := Assemble(dis)
		if err != nil {
			t.Fatalf("disassembly %q of %q does not re-assemble: %v", dis, src, err)
		}
		if prog2.Halfwords[0] != prog1.Halfwords[0] {
			t.Fatalf("round trip %q → %#04x → %q → %#04x", src, prog1.Halfwords[0], dis, prog2.Halfwords[0])
		}
	}
}

func TestProfiledRunMatchesPlainRun(t *testing.T) {
	src := `
		movs r0, #0
		movs r1, #50
	loop:
		adds r0, r0, r1
		subs r1, #1
		bne loop
		bkpt #0
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem)
	p, err := RunProfiled(cpu, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCycles != cpu.Cycles {
		t.Errorf("profile total %d != cpu cycles %d", p.TotalCycles, cpu.Cycles)
	}
	// The loop body dominates: the bne at offset 8 (3 instrs before it at
	// 0,2 then loop at 4,6,8) runs 50 times.
	top := p.Top(3)
	if len(top) == 0 {
		t.Fatal("empty profile")
	}
	// The hottest instruction is the taken branch (3 cycles × 49 + 1).
	if top[0].PC != 8 {
		t.Errorf("hottest pc = %#x, want the bne at 0x8", top[0].PC)
	}
	if top[0].Executions != 50 {
		t.Errorf("bne ran %d times, want 50", top[0].Executions)
	}
	// Coverage: 6 distinct instructions.
	if p.CoveragePC() != 6 {
		t.Errorf("coverage = %d PCs, want 6", p.CoveragePC())
	}
	out, err := p.FormatHotSpots(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bne") && !strings.Contains(out, "subs") {
		t.Errorf("hotspot report lacks disassembly:\n%s", out)
	}
	// Sum of all fractions ≈ 1.
	var frac float64
	for _, h := range p.Top(0) {
		frac += h.Fraction
	}
	if frac < 0.999 || frac > 1.001 {
		t.Errorf("fractions sum to %v", frac)
	}
	if _, err := p.FormatHotSpots(nil, 3); err == nil {
		t.Error("nil program should fail")
	}
	if _, err := NewProfile().FormatHotSpots(prog, 3); err == nil {
		t.Error("empty profile should fail")
	}
}
