package thumb

import "fmt"

// Memory map of the embedded system (Fig. 1a): a 64 kB program memory at
// the code base and a 64 kB data memory in the SRAM region, each backed by
// one of the paper's eDRAM macros.
const (
	ProgramBase = 0x00000000
	ProgramSize = 64 * 1024
	DataBase    = 0x20000000
	DataSize    = 64 * 1024
	// StackTop is the initial SP: the top of the data memory.
	StackTop = DataBase + DataSize
)

// AccessStats counts memory traffic, the quantity the paper extracts from
// RTL waveforms to drive eDRAM energy analysis (Sec. III-B, Step 4b).
type AccessStats struct {
	// ProgramReads counts instruction fetches and literal-pool loads from
	// the program memory.
	ProgramReads uint64
	// DataReads and DataWrites count data-memory accesses.
	DataReads, DataWrites uint64
}

// Memory is the two-macro memory system.
type Memory struct {
	prog  [ProgramSize]byte
	data  [DataSize]byte
	Stats AccessStats
}

// NewMemory returns a zeroed memory system.
func NewMemory() *Memory { return &Memory{} }

// LoadProgram copies an assembled binary into program memory at offset 0.
func (m *Memory) LoadProgram(p *Program) error {
	b := p.Bytes()
	if len(b) > ProgramSize {
		return fmt.Errorf("thumb: program of %d bytes exceeds %d", len(b), ProgramSize)
	}
	copy(m.prog[:], b)
	return nil
}

// region resolves an address to its backing slice and offset.
func (m *Memory) region(addr uint32) ([]byte, uint32, error) {
	switch {
	case addr >= ProgramBase && addr < ProgramBase+ProgramSize:
		return m.prog[:], addr - ProgramBase, nil
	case addr >= DataBase && addr < DataBase+DataSize:
		return m.data[:], addr - DataBase, nil
	default:
		return nil, 0, fmt.Errorf("thumb: access to unmapped address %#x", addr)
	}
}

// count records an access against the right macro's counters.
func (m *Memory) count(addr uint32, write bool) {
	if addr < ProgramBase+ProgramSize {
		m.Stats.ProgramReads++
		return
	}
	if write {
		m.Stats.DataWrites++
	} else {
		m.Stats.DataReads++
	}
}

// fetch16 reads an instruction halfword; fetches are counted as program
// reads by the CPU (one per instruction) rather than here, so the BL
// double-fetch is attributed correctly.
func (m *Memory) fetch16(addr uint32) (uint16, error) {
	if addr%2 != 0 {
		return 0, fmt.Errorf("thumb: misaligned fetch at %#x", addr)
	}
	buf, off, err := m.region(addr)
	if err != nil {
		return 0, err
	}
	return uint16(buf[off]) | uint16(buf[off+1])<<8, nil
}

// Read32 performs a data-side word load.
func (m *Memory) Read32(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("thumb: misaligned word load at %#x", addr)
	}
	buf, off, err := m.region(addr)
	if err != nil {
		return 0, err
	}
	m.count(addr, false)
	return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24, nil
}

// Read16 performs a data-side halfword load.
func (m *Memory) Read16(addr uint32) (uint16, error) {
	if addr%2 != 0 {
		return 0, fmt.Errorf("thumb: misaligned halfword load at %#x", addr)
	}
	buf, off, err := m.region(addr)
	if err != nil {
		return 0, err
	}
	m.count(addr, false)
	return uint16(buf[off]) | uint16(buf[off+1])<<8, nil
}

// Read8 performs a data-side byte load.
func (m *Memory) Read8(addr uint32) (byte, error) {
	buf, off, err := m.region(addr)
	if err != nil {
		return 0, err
	}
	m.count(addr, false)
	return buf[off], nil
}

// Write32 performs a word store.
func (m *Memory) Write32(addr uint32, v uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("thumb: misaligned word store at %#x", addr)
	}
	buf, off, err := m.region(addr)
	if err != nil {
		return err
	}
	if addr < DataBase {
		return fmt.Errorf("thumb: store to program memory at %#x", addr)
	}
	m.count(addr, true)
	buf[off] = byte(v)
	buf[off+1] = byte(v >> 8)
	buf[off+2] = byte(v >> 16)
	buf[off+3] = byte(v >> 24)
	return nil
}

// Write16 performs a halfword store.
func (m *Memory) Write16(addr uint32, v uint16) error {
	if addr%2 != 0 {
		return fmt.Errorf("thumb: misaligned halfword store at %#x", addr)
	}
	buf, off, err := m.region(addr)
	if err != nil {
		return err
	}
	if addr < DataBase {
		return fmt.Errorf("thumb: store to program memory at %#x", addr)
	}
	m.count(addr, true)
	buf[off] = byte(v)
	buf[off+1] = byte(v >> 8)
	return nil
}

// Write8 performs a byte store.
func (m *Memory) Write8(addr uint32, v byte) error {
	buf, off, err := m.region(addr)
	if err != nil {
		return err
	}
	if addr < DataBase {
		return fmt.Errorf("thumb: store to program memory at %#x", addr)
	}
	m.count(addr, true)
	buf[off] = v
	return nil
}
