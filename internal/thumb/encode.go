package thumb

import (
	"fmt"
	"strings"
)

// encoder performs pass 2: emitting halfwords for each statement.
type encoder struct {
	out    []uint16
	labels map[string]uint32
	equs   map[string]int64
}

func (e *encoder) offset() uint32 { return 2 * uint32(len(e.out)) }

func (e *encoder) emit(h uint16) { e.out = append(e.out, h) }

// aluOpcodes are the 010000-format register ALU operations.
var aluOpcodes = map[string]uint16{
	"ands": 0x0, "eors": 0x1, "adcs": 0x5, "sbcs": 0x6,
	"rors": 0x7, "tst": 0x8, "negs": 0x9, "rsbs": 0x9, "cmn": 0xB,
	"orrs": 0xC, "muls": 0xD, "bics": 0xE, "mvns": 0xF,
}

// condCodes are the conditional-branch condition encodings.
var condCodes = map[string]uint16{
	"eq": 0x0, "ne": 0x1, "cs": 0x2, "hs": 0x2, "cc": 0x3, "lo": 0x3,
	"mi": 0x4, "pl": 0x5, "vs": 0x6, "vc": 0x7,
	"hi": 0x8, "ls": 0x9, "ge": 0xA, "lt": 0xB, "gt": 0xC, "le": 0xD,
}

// encode emits one statement. size is the byte size fixed in pass 1 and is
// used to cross-check the emission.
func (e *encoder) encode(it item, size uint32) error {
	start := len(e.out)
	err := e.encodeInner(it)
	if err != nil {
		return err
	}
	if got := uint32(2 * (len(e.out) - start)); got != size {
		return &asmError{it.line, fmt.Sprintf("internal: statement size %d != planned %d", got, size)}
	}
	return nil
}

func (e *encoder) encodeInner(it item) error {
	ops := it.operands
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	reg := func(s string) (int, error) { return parseRegister(s) }
	imm := func(s string) (int64, error) { return parseImmediate(s, e.equs) }

	switch m := it.mnemonic; m {
	case ".word":
		if len(ops) != 1 {
			return fail(".word needs one value")
		}
		if e.offset()%4 != 0 {
			return fail(".word must be 4-byte aligned; pad with nop")
		}
		v, err := imm(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		e.emit(uint16(uint32(v)))
		e.emit(uint16(uint32(v) >> 16))
		return nil

	case "nop":
		e.emit(0xBF00)
		return nil

	case "bkpt":
		v := int64(0)
		if len(ops) == 1 {
			var err error
			if v, err = imm(ops[0]); err != nil {
				return fail("%v", err)
			}
		}
		e.emit(0xBE00 | uint16(v&0xFF))
		return nil

	case "li":
		rd, err := reg(ops[0])
		if err != nil || rd > 7 {
			return fail("li needs a low register")
		}
		v, err := imm(ops[1])
		if err != nil {
			return fail("%v", err)
		}
		e.emitLI(rd, uint32(v))
		return nil

	case "movs":
		if len(ops) != 2 {
			return fail("movs needs 2 operands")
		}
		rd, err := reg(ops[0])
		if err != nil || rd > 7 {
			return fail("movs needs a low destination")
		}
		if rm, err := reg(ops[1]); err == nil {
			if rm > 7 {
				return fail("movs rm must be low")
			}
			e.emit(uint16(rm)<<3 | uint16(rd)) // LSLS rd, rm, #0
			return nil
		}
		v, err := imm(ops[1])
		if err != nil || v < 0 || v > 255 {
			return fail("movs immediate must be 0-255")
		}
		e.emit(0x2000 | uint16(rd)<<8 | uint16(v))
		return nil

	case "mov":
		if len(ops) != 2 {
			return fail("mov needs 2 operands")
		}
		rd, err1 := reg(ops[0])
		rm, err2 := reg(ops[1])
		if err1 != nil || err2 != nil {
			return fail("mov needs registers")
		}
		d := uint16(0)
		if rd > 7 {
			d = 1
		}
		e.emit(0x4600 | d<<7 | uint16(rm)<<3 | uint16(rd&7))
		return nil

	case "adds", "subs":
		return e.encodeAddSub(it, m == "subs")

	case "add":
		return e.encodeAddHi(it)

	case "sub":
		// SUB SP, #imm only.
		if len(ops) == 2 && strings.EqualFold(strings.TrimSpace(ops[0]), "sp") {
			v, err := imm(ops[1])
			if err != nil || v < 0 || v > 508 || v%4 != 0 {
				return fail("sub sp immediate must be 0-508, multiple of 4")
			}
			e.emit(0xB080 | uint16(v/4))
			return nil
		}
		return fail("sub supports only sub sp, #imm (use subs)")

	case "cmp":
		if len(ops) != 2 {
			return fail("cmp needs 2 operands")
		}
		rn, err := reg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		if rm, err := reg(ops[1]); err == nil {
			if rn <= 7 && rm <= 7 {
				e.emit(0x4280 | uint16(rm)<<3 | uint16(rn))
			} else {
				n := uint16(0)
				if rn > 7 {
					n = 1
				}
				e.emit(0x4500 | n<<7 | uint16(rm)<<3 | uint16(rn&7))
			}
			return nil
		}
		v, err := imm(ops[1])
		if err != nil || v < 0 || v > 255 || rn > 7 {
			return fail("cmp immediate must be 0-255 with a low register")
		}
		e.emit(0x2800 | uint16(rn)<<8 | uint16(v))
		return nil

	case "lsls", "lsrs", "asrs":
		return e.encodeShift(it)

	case "ands", "eors", "orrs", "bics", "adcs", "sbcs", "rors", "muls", "tst", "cmn", "mvns", "negs", "rsbs":
		if len(ops) < 2 {
			return fail("%s needs 2 operands", m)
		}
		rd, err1 := reg(ops[0])
		rm, err2 := reg(ops[len(ops)-1])
		if err1 != nil || err2 != nil || rd > 7 || rm > 7 {
			return fail("%s needs low registers", m)
		}
		e.emit(0x4000 | aluOpcodes[m]<<6 | uint16(rm)<<3 | uint16(rd))
		return nil

	case "ldr", "str", "ldrb", "strb", "ldrh", "strh", "ldrsb", "ldrsh":
		return e.encodeMem(it)

	case "adr":
		if len(ops) != 2 {
			return fail("adr needs rd, label")
		}
		rd, err := reg(ops[0])
		if err != nil || rd > 7 {
			return fail("adr needs a low register")
		}
		target, ok := e.labels[ops[1]]
		if !ok {
			return fail("unknown label %q", ops[1])
		}
		base := (e.offset() + 4) &^ 3
		if target < base || (target-base) > 1020 || (target-base)%4 != 0 {
			return fail("adr target out of range")
		}
		e.emit(0xA000 | uint16(rd)<<8 | uint16((target-base)/4))
		return nil

	case "push", "pop":
		if len(ops) == 0 {
			return fail("%s needs a register list", m)
		}
		list, special, err := parseRegList(strings.Join(ops, ","), m)
		if err != nil {
			return fail("%v", err)
		}
		op := uint16(0xB400)
		if m == "pop" {
			op = 0xBC00
		}
		e.emit(op | special<<8 | list)
		return nil

	case "sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh":
		if len(ops) != 2 {
			return fail("%s needs rd, rm", m)
		}
		rd, err1 := reg(ops[0])
		rm, err2 := reg(ops[1])
		if err1 != nil || err2 != nil || rd > 7 || rm > 7 {
			return fail("%s needs low registers", m)
		}
		base := map[string]uint16{
			"sxth": 0xB200, "sxtb": 0xB240, "uxth": 0xB280, "uxtb": 0xB2C0,
			"rev": 0xBA00, "rev16": 0xBA40, "revsh": 0xBAC0,
		}[m]
		e.emit(base | uint16(rm)<<3 | uint16(rd))
		return nil

	case "stmia", "ldmia", "stm", "ldm":
		if len(ops) < 2 {
			return fail("%s needs rn!, {list}", m)
		}
		baseOp := strings.TrimSpace(ops[0])
		baseOp = strings.TrimSuffix(baseOp, "!")
		rn, err := reg(baseOp)
		if err != nil || rn > 7 {
			return fail("%s base must be a low register", m)
		}
		list, special, err := parseRegList(strings.Join(ops[1:], ","), m)
		if err != nil || special != 0 {
			return fail("bad register list for %s", m)
		}
		op := uint16(0xC000)
		if m == "ldmia" || m == "ldm" {
			op = 0xC800
		}
		e.emit(op | uint16(rn)<<8 | list)
		return nil

	case "b":
		return e.encodeBranch(it, "", ops)

	case "bl":
		if len(ops) != 1 {
			return fail("bl needs a target")
		}
		target, ok := e.labels[ops[0]]
		if !ok {
			return fail("unknown label %q", ops[0])
		}
		off := int32(target) - int32(e.offset()+4)
		hi := uint16((off >> 12) & 0x7FF)
		lo := uint16((off >> 1) & 0x7FF)
		e.emit(0xF000 | hi)
		e.emit(0xF800 | lo)
		return nil

	case "bx":
		if len(ops) != 1 {
			return fail("bx needs a register")
		}
		rm, err := reg(ops[0])
		if err != nil {
			return fail("%v", err)
		}
		e.emit(0x4700 | uint16(rm)<<3)
		return nil

	default:
		if strings.HasPrefix(m, "b") {
			if _, ok := condCodes[m[1:]]; ok {
				return e.encodeBranch(it, m[1:], ops)
			}
		}
		return fail("unknown mnemonic %q", m)
	}
}

// emitLI expands li rd, imm32 into movs/lsls/adds.
func (e *encoder) emitLI(rd int, v uint32) {
	bytes := []uint32{v >> 24 & 0xFF, v >> 16 & 0xFF, v >> 8 & 0xFF, v & 0xFF}
	first := 0
	for first < 3 && bytes[first] == 0 {
		first++
	}
	e.emit(0x2000 | uint16(rd)<<8 | uint16(bytes[first])) // movs rd, #top
	for i := first + 1; i < 4; i++ {
		e.emit(0x0000 | uint16(8)<<6 | uint16(rd)<<3 | uint16(rd)) // lsls rd, rd, #8
		if bytes[i] != 0 {
			e.emit(0x3000 | uint16(rd)<<8 | uint16(bytes[i])) // adds rd, #byte
		}
	}
}

func (e *encoder) encodeAddSub(it item, sub bool) error {
	ops := it.operands
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	switch len(ops) {
	case 3:
		rd, err1 := parseRegister(ops[0])
		rn, err2 := parseRegister(ops[1])
		if err1 != nil || err2 != nil || rd > 7 || rn > 7 {
			return fail("adds/subs need low registers")
		}
		if rm, err := parseRegister(ops[2]); err == nil {
			if rm > 7 {
				return fail("adds/subs rm must be low")
			}
			op := uint16(0x1800)
			if sub {
				op = 0x1A00
			}
			e.emit(op | uint16(rm)<<6 | uint16(rn)<<3 | uint16(rd))
			return nil
		}
		v, err := parseImmediate(ops[2], e.equs)
		if err != nil || v < 0 || v > 7 {
			return fail("3-operand immediate must be 0-7")
		}
		op := uint16(0x1C00)
		if sub {
			op = 0x1E00
		}
		e.emit(op | uint16(v)<<6 | uint16(rn)<<3 | uint16(rd))
		return nil
	case 2:
		rd, err := parseRegister(ops[0])
		if err != nil || rd > 7 {
			return fail("adds/subs need a low destination")
		}
		if rm, err := parseRegister(ops[1]); err == nil {
			if rm > 7 {
				return fail("rm must be low")
			}
			op := uint16(0x1800)
			if sub {
				op = 0x1A00
			}
			e.emit(op | uint16(rm)<<6 | uint16(rd)<<3 | uint16(rd))
			return nil
		}
		v, err := parseImmediate(ops[1], e.equs)
		if err != nil || v < 0 || v > 255 {
			return fail("2-operand immediate must be 0-255")
		}
		op := uint16(0x3000)
		if sub {
			op = 0x3800
		}
		e.emit(op | uint16(rd)<<8 | uint16(v))
		return nil
	}
	return fail("adds/subs need 2 or 3 operands")
}

func (e *encoder) encodeAddHi(it item) error {
	ops := it.operands
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	if len(ops) == 2 && strings.EqualFold(strings.TrimSpace(ops[0]), "sp") {
		v, err := parseImmediate(ops[1], e.equs)
		if err != nil || v < 0 || v > 508 || v%4 != 0 {
			return fail("add sp immediate must be 0-508, multiple of 4")
		}
		e.emit(0xB000 | uint16(v/4))
		return nil
	}
	if len(ops) == 3 && strings.EqualFold(strings.TrimSpace(ops[1]), "sp") {
		rd, err := parseRegister(ops[0])
		if err != nil || rd > 7 {
			return fail("add rd, sp, #imm needs a low rd")
		}
		v, err := parseImmediate(ops[2], e.equs)
		if err != nil || v < 0 || v > 1020 || v%4 != 0 {
			return fail("add rd, sp immediate must be 0-1020, multiple of 4")
		}
		e.emit(0xA800 | uint16(rd)<<8 | uint16(v/4))
		return nil
	}
	if len(ops) == 2 {
		rd, err1 := parseRegister(ops[0])
		rm, err2 := parseRegister(ops[1])
		if err1 != nil || err2 != nil {
			return fail("add needs registers")
		}
		d := uint16(0)
		if rd > 7 {
			d = 1
		}
		e.emit(0x4400 | d<<7 | uint16(rm)<<3 | uint16(rd&7))
		return nil
	}
	return fail("unsupported add form")
}

func (e *encoder) encodeShift(it item) error {
	ops := it.operands
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	ops3 := len(ops) == 3
	rd, err1 := parseRegister(ops[0])
	rm, err2 := parseRegister(ops[1])
	if err1 != nil || err2 != nil || rd > 7 || rm > 7 {
		return fail("shifts need low registers")
	}
	kinds := map[string]uint16{"lsls": 0, "lsrs": 1, "asrs": 2}
	aluKinds := map[string]uint16{"lsls": 0x2, "lsrs": 0x3, "asrs": 0x4}
	k := it.mnemonic
	if ops3 {
		if rs, err := parseRegister(ops[2]); err == nil {
			// Register shift only exists as rd = rd shift rs.
			if rd != rm {
				return fail("register shift requires rd == rn")
			}
			e.emit(0x4000 | aluKinds[k]<<6 | uint16(rs)<<3 | uint16(rd))
			return nil
		}
		v, err := parseImmediate(ops[2], e.equs)
		if err != nil || v < 0 || v > 31 {
			return fail("shift immediate must be 0-31")
		}
		e.emit(kinds[k]<<11 | uint16(v)<<6 | uint16(rm)<<3 | uint16(rd))
		return nil
	}
	if len(ops) == 2 {
		// lsls rd, rs (register form).
		e.emit(0x4000 | aluKinds[k]<<6 | uint16(rm)<<3 | uint16(rd))
		return nil
	}
	return fail("shift needs 2 or 3 operands")
}

// encodeMem handles all load/store forms.
func (e *encoder) encodeMem(it item) error {
	ops := it.operands
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	if len(ops) != 2 {
		return fail("%s needs rd, [base, offset]", it.mnemonic)
	}
	rd, err := parseRegister(ops[0])
	if err != nil || rd > 7 {
		return fail("%s needs a low data register", it.mnemonic)
	}
	addr := strings.TrimSpace(ops[1])
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return fail("address must be bracketed")
	}
	parts := strings.Split(addr[1:len(addr)-1], ",")
	base := strings.ToLower(strings.TrimSpace(parts[0]))
	var off string
	if len(parts) == 2 {
		off = strings.TrimSpace(parts[1])
	} else if len(parts) > 2 {
		return fail("too many address components")
	}

	m := it.mnemonic
	// SP- and PC-relative word accesses.
	if base == "sp" && (m == "ldr" || m == "str") {
		v := int64(0)
		if off != "" {
			if v, err = parseImmediate(off, e.equs); err != nil {
				return fail("%v", err)
			}
		}
		if v < 0 || v > 1020 || v%4 != 0 {
			return fail("sp offset must be 0-1020, multiple of 4")
		}
		op := uint16(0x9000)
		if m == "ldr" {
			op = 0x9800
		}
		e.emit(op | uint16(rd)<<8 | uint16(v/4))
		return nil
	}
	if base == "pc" && m == "ldr" {
		v := int64(0)
		if off != "" {
			if v, err = parseImmediate(off, e.equs); err != nil {
				return fail("%v", err)
			}
		}
		if v < 0 || v > 1020 || v%4 != 0 {
			return fail("pc offset must be 0-1020, multiple of 4")
		}
		e.emit(0x4800 | uint16(rd)<<8 | uint16(v/4))
		return nil
	}

	rn, err := parseRegister(base)
	if err != nil || rn > 7 {
		return fail("base must be a low register")
	}
	// Register-offset forms.
	if off != "" {
		if rm, err := parseRegister(off); err == nil {
			if rm > 7 {
				return fail("offset register must be low")
			}
			opB := map[string]uint16{
				"str": 0, "strh": 1, "strb": 2, "ldrsb": 3,
				"ldr": 4, "ldrh": 5, "ldrb": 6, "ldrsh": 7,
			}
			b, ok := opB[m]
			if !ok {
				return fail("unsupported register-offset op %s", m)
			}
			e.emit(0x5000 | b<<9 | uint16(rm)<<6 | uint16(rn)<<3 | uint16(rd))
			return nil
		}
	}
	// Immediate-offset forms.
	v := int64(0)
	if off != "" {
		if v, err = parseImmediate(off, e.equs); err != nil {
			return fail("%v", err)
		}
	}
	switch m {
	case "ldr", "str":
		if v < 0 || v > 124 || v%4 != 0 {
			return fail("word offset must be 0-124, multiple of 4")
		}
		op := uint16(0x6000)
		if m == "ldr" {
			op = 0x6800
		}
		e.emit(op | uint16(v/4)<<6 | uint16(rn)<<3 | uint16(rd))
	case "ldrb", "strb":
		if v < 0 || v > 31 {
			return fail("byte offset must be 0-31")
		}
		op := uint16(0x7000)
		if m == "ldrb" {
			op = 0x7800
		}
		e.emit(op | uint16(v)<<6 | uint16(rn)<<3 | uint16(rd))
	case "ldrh", "strh":
		if v < 0 || v > 62 || v%2 != 0 {
			return fail("halfword offset must be 0-62, even")
		}
		op := uint16(0x8000)
		if m == "ldrh" {
			op = 0x8800
		}
		e.emit(op | uint16(v/2)<<6 | uint16(rn)<<3 | uint16(rd))
	default:
		return fail("%s requires a register offset", m)
	}
	return nil
}

func (e *encoder) encodeBranch(it item, cond string, ops []string) error {
	fail := func(format string, args ...any) error {
		return &asmError{it.line, fmt.Sprintf(format, args...)}
	}
	if len(ops) != 1 {
		return fail("branch needs a target label")
	}
	target, ok := e.labels[ops[0]]
	if !ok {
		return fail("unknown label %q", ops[0])
	}
	off := (int32(target) - int32(e.offset()+4)) / 2
	if cond == "" {
		if off < -1024 || off > 1023 {
			return fail("branch out of range")
		}
		e.emit(0xE000 | uint16(off&0x7FF))
		return nil
	}
	if off < -128 || off > 127 {
		return fail("conditional branch out of range")
	}
	e.emit(0xD000 | condCodes[cond]<<8 | uint16(off&0xFF))
	return nil
}

// parseRegList parses "{r0, r2-r4, lr}" returning the low-register bitmask
// and the special bit (LR for push, PC for pop).
func parseRegList(s, mnemonic string) (list uint16, special uint16, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, 0, fmt.Errorf("register list must be braced")
	}
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.ToLower(strings.TrimSpace(part))
		if part == "" {
			continue
		}
		if i := strings.Index(part, "-"); i >= 0 {
			lo, err1 := parseRegister(part[:i])
			hi, err2 := parseRegister(part[i+1:])
			if err1 != nil || err2 != nil || lo > hi || hi > 7 {
				return 0, 0, fmt.Errorf("bad register range %q", part)
			}
			for r := lo; r <= hi; r++ {
				list |= 1 << r
			}
			continue
		}
		switch part {
		case "lr":
			if mnemonic != "push" {
				return 0, 0, fmt.Errorf("lr only valid in push")
			}
			special = 1
		case "pc":
			if mnemonic != "pop" {
				return 0, 0, fmt.Errorf("pc only valid in pop")
			}
			special = 1
		default:
			r, err := parseRegister(part)
			if err != nil || r > 7 {
				return 0, 0, fmt.Errorf("bad list register %q", part)
			}
			list |= 1 << r
		}
	}
	if list == 0 && special == 0 {
		return 0, 0, fmt.Errorf("empty register list")
	}
	return list, special, nil
}
