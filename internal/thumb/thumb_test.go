package thumb

import (
	"strings"
	"testing"
	"testing/quick"
)

// run assembles and executes a source program until BKPT, returning the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem)
	if err := cpu.Run(100_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu
}

func TestMovAddSub(t *testing.T) {
	cpu := run(t, `
		movs r0, #10
		movs r1, #3
		adds r2, r0, r1   ; 13
		subs r3, r0, r1   ; 7
		adds r2, #100     ; 113
		subs r2, #13      ; 100
		bkpt #0
	`)
	if cpu.R[2] != 100 || cpu.R[3] != 7 {
		t.Errorf("r2=%d r3=%d, want 100, 7", cpu.R[2], cpu.R[3])
	}
}

func TestFlagsAndConditionalBranches(t *testing.T) {
	// Signed and unsigned comparisons choose different branches.
	cpu := run(t, `
		movs r0, #0
		subs r0, #1       ; r0 = -1 = 0xFFFFFFFF
		movs r1, #1
		cmp r0, r1
		blt signed_ok     ; -1 < 1 signed
		movs r2, #0
		b check_unsigned
	signed_ok:
		movs r2, #1
	check_unsigned:
		cmp r0, r1
		bhi unsigned_ok   ; 0xFFFFFFFF > 1 unsigned
		movs r3, #0
		b done
	unsigned_ok:
		movs r3, #1
	done:
		bkpt #0
	`)
	if cpu.R[2] != 1 {
		t.Error("signed comparison failed: -1 should be < 1")
	}
	if cpu.R[3] != 1 {
		t.Error("unsigned comparison failed: 0xFFFFFFFF should be > 1")
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 = 5050.
	cpu := run(t, `
		movs r0, #0       ; sum
		movs r1, #100     ; i
	loop:
		adds r0, r0, r1
		subs r1, #1
		bne loop
		bkpt #0
	`)
	if cpu.R[0] != 5050 {
		t.Errorf("sum = %d, want 5050", cpu.R[0])
	}
}

func TestMultiply(t *testing.T) {
	cpu := run(t, `
		movs r0, #25
		movs r1, #37
		muls r0, r1
		bkpt #0
	`)
	if cpu.R[0] != 925 {
		t.Errorf("25×37 = %d, want 925", cpu.R[0])
	}
}

func TestLIPseudoInstruction(t *testing.T) {
	values := []uint32{0, 1, 255, 256, 0x1234, 0xDEADBEEF, 0x20000000, 0x00FF00FF, 0xFFFFFFFF}
	for _, v := range values {
		cpu := run(t, `
			li r4, `+hex(v)+`
			bkpt #0
		`)
		if cpu.R[4] != v {
			t.Errorf("li %#x loaded %#x", v, cpu.R[4])
		}
	}
}

// Property: li loads any 32-bit value exactly.
func TestLIProperty(t *testing.T) {
	f := func(v uint32) bool {
		prog, err := Assemble("li r0, " + hex(v) + "\nbkpt #0\n")
		if err != nil {
			return false
		}
		mem := NewMemory()
		if err := mem.LoadProgram(prog); err != nil {
			return false
		}
		cpu := NewCPU(mem)
		if err := cpu.Run(1000); err != nil {
			return false
		}
		return cpu.R[0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftSemantics(t *testing.T) {
	cpu := run(t, `
		movs r0, #1
		lsls r1, r0, #31  ; 0x80000000
		lsrs r2, r1, #31  ; 1
		asrs r3, r1, #31  ; 0xFFFFFFFF
		movs r4, #5
		movs r5, #240
		lsrs r5, r4       ; 240 >> 5 = 7
		bkpt #0
	`)
	if cpu.R[1] != 0x80000000 {
		t.Errorf("lsl31 = %#x", cpu.R[1])
	}
	if cpu.R[2] != 1 {
		t.Errorf("lsr31 = %#x", cpu.R[2])
	}
	if cpu.R[3] != 0xFFFFFFFF {
		t.Errorf("asr31 = %#x", cpu.R[3])
	}
	if cpu.R[5] != 7 {
		t.Errorf("register shift = %d, want 7", cpu.R[5])
	}
}

func TestBitwiseOps(t *testing.T) {
	cpu := run(t, `
		movs r0, #0xF0
		movs r1, #0xCC
		movs r2, #0xF0
		ands r2, r1       ; 0xC0
		movs r3, #0xF0
		orrs r3, r1       ; 0xFC
		movs r4, #0xF0
		eors r4, r1       ; 0x3C
		movs r5, #0xF0
		bics r5, r1       ; 0x30
		mvns r6, r0       ; 0xFFFFFF0F
		bkpt #0
	`)
	want := map[int]uint32{2: 0xC0, 3: 0xFC, 4: 0x3C, 5: 0x30, 6: 0xFFFFFF0F}
	for r, w := range want {
		if cpu.R[r] != w {
			t.Errorf("r%d = %#x, want %#x", r, cpu.R[r], w)
		}
	}
}

func TestMemoryAccessAndStats(t *testing.T) {
	cpu := run(t, `
		li r0, 0x20000000
		movs r1, #42
		str r1, [r0]          ; word store
		ldr r2, [r0]          ; word load
		movs r3, #7
		strb r3, [r0, #8]     ; byte store
		ldrb r4, [r0, #8]
		movs r5, #21
		strh r5, [r0, #16]
		ldrh r6, [r0, #16]
		bkpt #0
	`)
	if cpu.R[2] != 42 || cpu.R[4] != 7 || cpu.R[6] != 21 {
		t.Errorf("loads: r2=%d r4=%d r6=%d", cpu.R[2], cpu.R[4], cpu.R[6])
	}
	st := cpu.Mem.Stats
	if st.DataWrites != 3 || st.DataReads != 3 {
		t.Errorf("data accesses: %d writes %d reads, want 3/3", st.DataWrites, st.DataReads)
	}
	if st.ProgramReads != cpu.Instructions {
		t.Errorf("program reads %d != instructions %d (no BL here)", st.ProgramReads, cpu.Instructions)
	}
}

func TestRegisterOffsetAddressing(t *testing.T) {
	cpu := run(t, `
		li r0, 0x20000000
		movs r1, #12
		movs r2, #99
		str r2, [r0, r1]
		ldr r3, [r0, r1]
		bkpt #0
	`)
	if cpu.R[3] != 99 {
		t.Errorf("register-offset load = %d, want 99", cpu.R[3])
	}
}

func TestFunctionCall(t *testing.T) {
	cpu := run(t, `
		movs r0, #6
		movs r1, #7
		bl multiply
		bkpt #0
	multiply:
		push {r4, lr}
		movs r4, r0
		muls r4, r1
		movs r0, r4
		pop {r4}
		pop {r7}      ; grab lr manually into r7
		bx r7
	`)
	if cpu.R[0] != 42 {
		t.Errorf("call result = %d, want 42", cpu.R[0])
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	cpu := run(t, `
		movs r4, #11
		movs r5, #22
		movs r6, #33
		push {r4-r6}
		movs r4, #0
		movs r5, #0
		movs r6, #0
		pop {r4-r6}
		bkpt #0
	`)
	if cpu.R[4] != 11 || cpu.R[5] != 22 || cpu.R[6] != 33 {
		t.Errorf("pop restored r4=%d r5=%d r6=%d", cpu.R[4], cpu.R[5], cpu.R[6])
	}
	if cpu.R[13] != StackTop {
		t.Errorf("SP = %#x, want restored to %#x", cpu.R[13], StackTop)
	}
}

func TestSPRelativeAccess(t *testing.T) {
	cpu := run(t, `
		sub sp, #16
		movs r0, #77
		str r0, [sp, #4]
		ldr r1, [sp, #4]
		add sp, #16
		bkpt #0
	`)
	if cpu.R[1] != 77 {
		t.Errorf("sp-relative load = %d, want 77", cpu.R[1])
	}
}

func TestCycleCountingBasics(t *testing.T) {
	// 3 single-cycle ops + BKPT(1) = 4 cycles.
	cpu := run(t, `
		movs r0, #1
		movs r1, #2
		adds r0, r0, r1
		bkpt #0
	`)
	if cpu.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", cpu.Cycles)
	}
	// Loads cost 2, taken branches 3, untaken 1.
	cpu = run(t, `
		li r0, 0x20000000 ; movs + 3×lsls = 4 cycles
		ldr r1, [r0]      ; 2
		cmp r1, #0        ; 1
		bne never         ; 1 (not taken)
		b skip            ; 3 (taken)
	never:
		movs r2, #9
	skip:
		bkpt #0           ; 1
	`)
	if cpu.Cycles != 12 {
		t.Errorf("cycles = %d, want 12", cpu.Cycles)
	}
}

func TestBLCountsTwoFetches(t *testing.T) {
	cpu := run(t, `
		bl target
	target:
		bkpt #0
	`)
	// BL is a 32-bit instruction: 2 fetches; BKPT: 1.
	if cpu.Mem.Stats.ProgramReads != 3 {
		t.Errorf("program reads = %d, want 3", cpu.Mem.Stats.ProgramReads)
	}
	if cpu.Cycles != 5 { // BL 4 + BKPT 1
		t.Errorf("cycles = %d, want 5", cpu.Cycles)
	}
}

func TestWordDirectiveAndPCRelativeLoad(t *testing.T) {
	cpu := run(t, `
		ldr r0, [pc, #4]
		b done
		nop
		nop
	value:
		.word 0x12345678
	done:
		bkpt #0
	`)
	if cpu.R[0] != 0x12345678 {
		t.Errorf("pc-relative load = %#x, want 0x12345678", cpu.R[0])
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate r0",
		"movs r9, #1",
		"movs r0, #300",
		"adds r0, r1, #9",
		"b nowhere",
		"dup: nop\ndup: nop",
		"ldr r0, [r1, #3]", // misaligned word offset
		"push {}",
		"pop {lr}",
		".word 1\nnop\n.word 2\n", // second .word misaligned? (1 word + nop = 6 bytes)
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected assembly error for %q", src)
		}
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	prog, err := Assemble(`
		li r0, 0x40000000
		ldr r1, [r0]
		bkpt #0
	`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem)
	if err := cpu.Run(1000); err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Errorf("expected unmapped access error, got %v", err)
	}
}

func TestStoreToProgramMemoryFails(t *testing.T) {
	prog, err := Assemble(`
		movs r0, #0
		movs r1, #1
		str r1, [r0]
		bkpt #0
	`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem)
	if err := cpu.Run(1000); err == nil {
		t.Error("store to program memory should fail")
	}
}

func TestCycleBudget(t *testing.T) {
	prog, err := Assemble("spin: b spin")
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	if err := mem.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(mem)
	if err := cpu.Run(100); err != ErrCycleBudget {
		t.Errorf("expected cycle budget error, got %v", err)
	}
}

// Property: adds/subs match Go's uint32 arithmetic for arbitrary inputs.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		src := `
			li r0, ` + hex(uint32(a)) + `
			li r1, ` + hex(uint32(b)) + `
			adds r2, r0, r1
			subs r3, r0, r1
			muls r0, r1
			bkpt #0
		`
		prog, err := Assemble(src)
		if err != nil {
			return false
		}
		mem := NewMemory()
		if mem.LoadProgram(prog) != nil {
			return false
		}
		cpu := NewCPU(mem)
		if cpu.Run(1000) != nil {
			return false
		}
		return cpu.R[2] == uint32(a)+uint32(b) &&
			cpu.R[3] == uint32(a)-uint32(b) &&
			cpu.R[0] == uint32(a)*uint32(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 10)
	out = append(out, '0', 'x')
	started := false
	for i := 7; i >= 0; i-- {
		d := byte(v >> (4 * i) & 0xF)
		if d != 0 || started || i == 0 {
			out = append(out, digits[d])
			started = true
		}
	}
	return string(out)
}
