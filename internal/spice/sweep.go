package spice

import (
	"errors"
	"fmt"
)

// Sweep holds a DC sweep result: one operating point per source value.
type Sweep struct {
	circuit *Circuit
	// Values are the swept source values.
	Values []float64
	// points[i] is the solution vector at Values[i].
	points [][]float64
}

// DCSweep solves the operating point for each value of the named voltage
// source, warm-starting each solve from the previous point so the sweep
// follows a continuous branch of the DC solution — the standard way to
// trace a voltage transfer characteristic.
func (c *Circuit) DCSweep(sourceID string, values []float64) (*Sweep, error) {
	if len(values) == 0 {
		return nil, errors.New("spice: sweep needs at least one value")
	}
	var src *vsource
	for _, e := range c.elems {
		if vs, ok := e.(*vsource); ok && vs.id == sourceID {
			src = vs
			break
		}
	}
	if src == nil {
		return nil, fmt.Errorf("spice: unknown voltage source %q", sourceID)
	}
	n := c.unknowns()
	if n == 0 {
		return nil, errNoNodes
	}
	saved := src.wave
	defer func() { src.wave = saved }()

	sw := &Sweep{circuit: c, Values: append([]float64{}, values...)}
	st := &stampState{x: make([]float64, n), xPrev: make([]float64, n), dcMode: true}
	for i, v := range values {
		src.wave = DC(v)
		if err := c.newton(st, n); err != nil {
			return nil, fmt.Errorf("spice: sweep point %d (%.4g V): %w", i, v, err)
		}
		pt := make([]float64, n)
		copy(pt, st.x)
		sw.points = append(sw.points, pt)
	}
	return sw, nil
}

// Voltage returns the swept node voltage trace.
func (s *Sweep) Voltage(node string) ([]float64, error) {
	idx, ok := s.circuit.nodeIndex[node]
	if !ok {
		return nil, fmt.Errorf("spice: unknown node %q", node)
	}
	out := make([]float64, len(s.points))
	if idx < 0 {
		return out, nil
	}
	for i, pt := range s.points {
		out[i] = pt[idx]
	}
	return out, nil
}

// SwitchingThreshold reports the input value at which the node crosses
// target (linear interpolation between sweep points), for VTC analysis.
func (s *Sweep) SwitchingThreshold(node string, target float64) (float64, error) {
	v, err := s.Voltage(node)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(v); i++ {
		a, b := v[i-1], v[i]
		if (a-target)*(b-target) <= 0 && a != b {
			f := (target - a) / (b - a)
			return s.Values[i-1] + f*(s.Values[i]-s.Values[i-1]), nil
		}
	}
	return 0, fmt.Errorf("spice: node %q never crosses %.3g in sweep", node, target)
}

// MaxAbsGain reports the largest |dVout/dVin| along the sweep — the VTC
// gain, which must exceed 1 for restoring logic.
func (s *Sweep) MaxAbsGain(node string) (float64, error) {
	v, err := s.Voltage(node)
	if err != nil {
		return 0, err
	}
	var g float64
	for i := 1; i < len(v); i++ {
		dx := s.Values[i] - s.Values[i-1]
		if dx == 0 {
			continue
		}
		if a := abs((v[i] - v[i-1]) / dx); a > g {
			g = a
		}
	}
	return g, nil
}
