package spice

import "fmt"

// Waveform is a time-dependent source value (volts for voltage sources,
// amperes for current sources).
type Waveform interface {
	// V reports the source value at time t (seconds).
	V(t float64) float64
}

// DC is a constant source.
type DC float64

// V implements Waveform.
func (d DC) V(float64) float64 { return float64(d) }

// Pulse is a periodic trapezoidal pulse in the style of SPICE's PULSE():
// it idles at V1, transitions to V2 after Delay over Rise, holds for
// Width, returns over Fall, and repeats with the given Period (Period = 0
// means a single pulse).
type Pulse struct {
	V1, V2                   float64
	Delay, Rise, Width, Fall float64
	Period                   float64
}

// V implements Waveform.
func (p Pulse) V(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V1
	}
	if p.Period > 0 {
		n := int(t / p.Period)
		t -= float64(n) * p.Period
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V2
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// PWL is a piecewise-linear waveform through the given (time, value)
// points; it holds the first value before the first point and the last
// value after the last point.
type PWL struct {
	Times  []float64
	Values []float64
}

// NewPWL builds a PWL waveform, validating monotone times.
func NewPWL(points ...[2]float64) (PWL, error) {
	if len(points) == 0 {
		return PWL{}, fmt.Errorf("spice: PWL needs at least one point")
	}
	w := PWL{}
	for i, pt := range points {
		if i > 0 && pt[0] <= w.Times[i-1] {
			return PWL{}, fmt.Errorf("spice: PWL times must increase (point %d)", i)
		}
		w.Times = append(w.Times, pt[0])
		w.Values = append(w.Values, pt[1])
	}
	return w, nil
}

// V implements Waveform.
func (w PWL) V(t float64) float64 {
	n := len(w.Times)
	if n == 0 {
		return 0
	}
	if t <= w.Times[0] {
		return w.Values[0]
	}
	if t >= w.Times[n-1] {
		return w.Values[n-1]
	}
	// Linear search is fine: waveforms here have a handful of points.
	for i := 1; i < n; i++ {
		if t <= w.Times[i] {
			f := (t - w.Times[i-1]) / (w.Times[i] - w.Times[i-1])
			return w.Values[i-1] + f*(w.Values[i]-w.Values[i-1])
		}
	}
	return w.Values[n-1]
}
