package spice

import (
	"testing"

	"ppatc/internal/device"
)

func vtcSweep(t *testing.T) *Sweep {
	t.Helper()
	c := buildInverter(t, DC(0), 0)
	var values []float64
	for v := 0.0; v <= device.VDD+1e-9; v += 0.01 {
		values = append(values, v)
	}
	sw, err := c.DCSweep("vin", values)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestInverterVTC(t *testing.T) {
	sw := vtcSweep(t)
	out, err := sw.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	// Rails: high output at low input, low output at high input.
	if out[0] < device.VDD-0.02 {
		t.Errorf("VTC left rail = %v, want ≈ VDD", out[0])
	}
	if out[len(out)-1] > 0.02 {
		t.Errorf("VTC right rail = %v, want ≈ 0", out[len(out)-1])
	}
	// Monotone non-increasing.
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1]+1e-6 {
			t.Fatalf("VTC not monotone at point %d", i)
		}
	}
	// Switching threshold near midrail (PMOS weaker → slightly below).
	vm, err := sw.SwitchingThreshold("out", device.VDD/2)
	if err != nil {
		t.Fatal(err)
	}
	if vm < 0.2 || vm > 0.5 {
		t.Errorf("switching threshold = %v, want 0.2-0.5 V", vm)
	}
	// Restoring logic: gain above 1 (comfortably, for a static inverter).
	g, err := sw.MaxAbsGain("out")
	if err != nil {
		t.Fatal(err)
	}
	if g < 2 {
		t.Errorf("VTC gain = %v, want > 2", g)
	}
}

func TestSweepValidationAndAccessors(t *testing.T) {
	c := buildInverter(t, DC(0), 0)
	if _, err := c.DCSweep("vin", nil); err == nil {
		t.Error("empty sweep should fail")
	}
	if _, err := c.DCSweep("nosuch", []float64{0}); err == nil {
		t.Error("unknown source should fail")
	}
	sw, err := c.DCSweep("vin", []float64{0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Voltage("nosuch"); err == nil {
		t.Error("unknown node should fail")
	}
	g, err := sw.Voltage(Ground)
	if err != nil || g[0] != 0 || g[1] != 0 {
		t.Error("ground trace must be zero")
	}
	if _, err := sw.SwitchingThreshold("out", -5); err == nil {
		t.Error("impossible threshold should fail")
	}
	// The source waveform must be restored after the sweep.
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("in")
	if v > 0.01 {
		t.Errorf("source not restored after sweep: in = %v", v)
	}
}

func TestSweepMatchesIndividualOPs(t *testing.T) {
	// The warm-started sweep must agree with independent operating points.
	for _, vin := range []float64{0.1, 0.35, 0.6} {
		c1 := buildInverter(t, DC(vin), 0)
		op, err := c1.OP()
		if err != nil {
			t.Fatal(err)
		}
		direct, _ := op.Voltage("out")

		c2 := buildInverter(t, DC(0), 0)
		sw, err := c2.DCSweep("vin", []float64{0, vin})
		if err != nil {
			t.Fatal(err)
		}
		trace, _ := sw.Voltage("out")
		if diff := abs(direct - trace[1]); diff > 1e-6 {
			t.Errorf("vin=%v: sweep %v vs direct %v", vin, trace[1], direct)
		}
	}
}

// TestRingOscillator closes the loop: a 5-stage inverter ring must
// oscillate with a period of ≈2·N stage delays — the canonical transient
// self-test of a circuit simulator (feedback, no driving source).
func TestRingOscillator(t *testing.T) {
	c := NewCircuit()
	mustNoErr(t, c.AddV("vdd", "vdd", Ground, DC(device.VDD)))
	const stages = 5
	for i := 0; i < stages; i++ {
		in := nodeName("n", i)
		out := nodeName("n", (i+1)%stages)
		mustNoErr(t, c.AddFET(nodeName("mp", i), out, in, "vdd", device.SiPFET(device.SLVT), 54e-9))
		mustNoErr(t, c.AddFET(nodeName("mn", i), out, in, Ground, device.SiNFET(device.SLVT), 36e-9))
		mustNoErr(t, c.AddC(nodeName("c", i), out, Ground, 0.5e-15))
	}
	// Kick the ring out of its metastable DC point.
	mustNoErr(t, c.AddI("kick", Ground, "n0", Pulse{V1: 0, V2: 20e-6, Delay: 1e-12, Rise: 1e-12, Width: 30e-12, Fall: 1e-12}))
	tr, err := c.Transient(3e-9, 0.5e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Count rising crossings of VDD/2 on one node in the second half
	// (after start-up).
	w, err := tr.Voltage("n0")
	if err != nil {
		t.Fatal(err)
	}
	var crossings []float64
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] < 1e-9 {
			continue
		}
		if w[i-1] < device.VDD/2 && w[i] >= device.VDD/2 {
			crossings = append(crossings, tr.Times[i])
		}
	}
	if len(crossings) < 3 {
		t.Fatalf("ring did not oscillate: %d rising crossings", len(crossings))
	}
	period := (crossings[len(crossings)-1] - crossings[0]) / float64(len(crossings)-1)
	// Period ≈ 2 × stages × stage delay; with ~0.5 fF loads at SLVT the
	// stage delay is a few ps, so expect tens of ps overall.
	if period < 10e-12 || period > 500e-12 {
		t.Errorf("oscillation period = %.3g s, want 10-500 ps", period)
	}
	// Periods are stable: max deviation between consecutive periods < 20%.
	for i := 2; i < len(crossings); i++ {
		p1 := crossings[i-1] - crossings[i-2]
		p2 := crossings[i] - crossings[i-1]
		if p2 > 1.2*p1 || p2 < 0.8*p1 {
			t.Errorf("unstable period: %.3g then %.3g", p1, p2)
		}
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
