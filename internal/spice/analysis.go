package spice

import (
	"errors"
	"fmt"
	"math"
)

// Newton-iteration controls.
const (
	maxNewtonIters = 300
	vTolerance     = 1e-9
	maxStepVolts   = 0.25 // per-iteration voltage damping
	gmin           = 1e-12
)

// OP solves the DC operating point (capacitors open, sources at t = 0).
func (c *Circuit) OP() (*Operating, error) {
	n := c.unknowns()
	if n == 0 {
		return nil, errNoNodes
	}
	x := make([]float64, n)
	st := &stampState{x: x, xPrev: make([]float64, n), dcMode: true}
	if err := c.newton(st, n); err != nil {
		return nil, fmt.Errorf("spice: DC operating point: %w", err)
	}
	return &Operating{circuit: c, x: st.x}, nil
}

// Operating holds a solved DC operating point.
type Operating struct {
	circuit *Circuit
	x       []float64
}

// Voltage reports a node voltage at the operating point.
func (o *Operating) Voltage(node string) (float64, error) {
	idx, ok := o.circuit.nodeIndex[node]
	if !ok {
		return 0, fmt.Errorf("spice: unknown node %q", node)
	}
	if idx < 0 {
		return 0, nil
	}
	return o.x[idx], nil
}

// SourceCurrent reports the branch current of a voltage source: positive
// current flows from the + terminal through the source to the − terminal
// (so a battery delivering power reports a negative current).
func (o *Operating) SourceCurrent(id string) (float64, error) {
	for _, e := range o.circuit.elems {
		if vs, ok := e.(*vsource); ok && vs.id == id {
			return o.x[vs.brIdx], nil
		}
	}
	return 0, fmt.Errorf("spice: unknown voltage source %q", id)
}

// newton runs damped Newton-Raphson until the voltage update converges.
// Two dampers keep the iteration stable: a hard per-step voltage clamp,
// and an anti-ringing limiter that halves a node's step whenever its
// update direction flips — this breaks the limit cycles that exponential
// device characteristics otherwise sustain under fixed clamping.
func (c *Circuit) newton(st *stampState, n int) error {
	sys := newSystem(n)
	prev := make([]float64, n)
	for iter := 0; iter < maxNewtonIters; iter++ {
		sys.reset()
		// gmin to ground keeps floating gate nodes well-posed.
		for i := 0; i < len(c.nodeNames); i++ {
			sys.addG(i, i, gmin)
		}
		for _, e := range c.elems {
			e.stamp(sys, st)
		}
		xNew, err := sys.solve()
		if err != nil {
			return err
		}
		var maxDelta float64
		for i := range xNew {
			d := xNew[i] - st.x[i]
			if i < len(c.nodeNames) {
				// Damp node voltages only; branch currents update freely.
				if d > maxStepVolts {
					d = maxStepVolts
				} else if d < -maxStepVolts {
					d = -maxStepVolts
				}
				if d*prev[i] < 0 {
					// Direction flip: limit to half the previous step.
					if lim := math.Abs(prev[i]) / 2; math.Abs(d) > lim {
						d = math.Copysign(lim, d)
					}
				}
				prev[i] = d
			}
			st.x[i] += d
			if a := math.Abs(d); a > maxDelta && i < len(c.nodeNames) {
				maxDelta = a
			}
		}
		if maxDelta < vTolerance {
			return nil
		}
	}
	return errors.New("newton iteration did not converge")
}

// Tran holds a transient simulation result: node voltages and voltage-
// source branch currents sampled at every accepted time point.
type Tran struct {
	circuit *Circuit
	// Times are the sample instants, starting at 0.
	Times []float64
	// nodeV[i] is the waveform of node index i.
	nodeV [][]float64
	// srcI maps source id → branch current waveform.
	srcI map[string][]float64
}

// Transient runs a fixed-step backward-Euler transient analysis from a DC
// operating point at t = 0 to tstop. Backward Euler is L-stable, which the
// stiff bit-cell retention circuits (attofarad storage nodes against
// sub-femtoampere leakages) require.
func (c *Circuit) Transient(tstop, dt float64) (*Tran, error) {
	return c.transient(tstop, dt, false)
}

// TransientFromZero runs the same analysis but skips the initial
// operating-point solve and starts from all-zero node voltages — SPICE's
// "use initial conditions" mode. Needed when the DC point is irrelevant or
// ill-conditioned (e.g. a current source charging a capacitor).
func (c *Circuit) TransientFromZero(tstop, dt float64) (*Tran, error) {
	return c.transient(tstop, dt, true)
}

func (c *Circuit) transient(tstop, dt float64, uic bool) (*Tran, error) {
	if tstop <= 0 || dt <= 0 || dt > tstop {
		return nil, errors.New("spice: need 0 < dt ≤ tstop")
	}
	n := c.unknowns()
	if n == 0 {
		return nil, errNoNodes
	}
	// Initial condition: DC operating point with sources at t = 0, unless
	// the caller asked for a zero start.
	x := make([]float64, n)
	st := &stampState{x: x, xPrev: make([]float64, n), dcMode: true, t: 0}
	if !uic {
		if err := c.newton(st, n); err != nil {
			return nil, fmt.Errorf("spice: transient initial OP: %w", err)
		}
	}
	st.dcMode = false
	st.dt = dt

	steps := int(math.Ceil(tstop/dt)) + 1
	tr := &Tran{
		circuit: c,
		Times:   make([]float64, 0, steps),
		nodeV:   make([][]float64, len(c.nodeNames)),
		srcI:    make(map[string][]float64, len(c.vsrcNames)),
	}
	record := func(t float64) {
		tr.Times = append(tr.Times, t)
		for i := range c.nodeNames {
			tr.nodeV[i] = append(tr.nodeV[i], st.x[i])
		}
		for _, e := range c.elems {
			if vs, ok := e.(*vsource); ok {
				tr.srcI[vs.id] = append(tr.srcI[vs.id], st.x[vs.brIdx])
			}
		}
	}
	record(0)

	for t := dt; t <= tstop+dt/2; t += dt {
		copy(st.xPrev, st.x)
		st.t = t
		if err := c.newton(st, n); err != nil {
			return nil, fmt.Errorf("spice: transient at t=%.3g s: %w", t, err)
		}
		record(t)
	}
	return tr, nil
}

// Voltage returns the waveform of a node.
func (tr *Tran) Voltage(node string) ([]float64, error) {
	idx, ok := tr.circuit.nodeIndex[node]
	if !ok {
		return nil, fmt.Errorf("spice: unknown node %q", node)
	}
	if idx < 0 {
		return make([]float64, len(tr.Times)), nil
	}
	return tr.nodeV[idx], nil
}

// At samples a node voltage at time t by linear interpolation.
func (tr *Tran) At(node string, t float64) (float64, error) {
	w, err := tr.Voltage(node)
	if err != nil {
		return 0, err
	}
	if len(tr.Times) == 0 {
		return 0, errors.New("spice: empty transient result")
	}
	if t <= tr.Times[0] {
		return w[0], nil
	}
	last := len(tr.Times) - 1
	if t >= tr.Times[last] {
		return w[last], nil
	}
	// Uniform grid: index directly.
	dt := tr.Times[1] - tr.Times[0]
	i := int(t / dt)
	if i >= last {
		i = last - 1
	}
	f := (t - tr.Times[i]) / dt
	return w[i] + f*(w[i+1]-w[i]), nil
}

// SourceCurrent returns the branch-current waveform of a voltage source.
func (tr *Tran) SourceCurrent(id string) ([]float64, error) {
	w, ok := tr.srcI[id]
	if !ok {
		return nil, fmt.Errorf("spice: unknown voltage source %q", id)
	}
	return w, nil
}

// SourceEnergy integrates the energy delivered by a voltage source over the
// run (trapezoidal rule). Positive values mean the source delivered energy
// to the circuit.
func (tr *Tran) SourceEnergy(id string) (float64, error) {
	i, err := tr.SourceCurrent(id)
	if err != nil {
		return 0, err
	}
	src := tr.sourceByID(id)
	var e float64
	for k := 1; k < len(tr.Times); k++ {
		dt := tr.Times[k] - tr.Times[k-1]
		// Delivered power = −V·I with branch current measured + → −.
		p0 := -src.wave.V(tr.Times[k-1]) * i[k-1]
		p1 := -src.wave.V(tr.Times[k]) * i[k]
		e += dt * (p0 + p1) / 2
	}
	return e, nil
}

func (tr *Tran) sourceByID(id string) *vsource {
	for _, e := range tr.circuit.elems {
		if vs, ok := e.(*vsource); ok && vs.id == id {
			return vs
		}
	}
	return nil
}

// CrossingTime reports the first time after tStart at which the node
// crosses the threshold in the given direction (rising when rising=true).
func (tr *Tran) CrossingTime(node string, threshold float64, rising bool, tStart float64) (float64, error) {
	w, err := tr.Voltage(node)
	if err != nil {
		return 0, err
	}
	for k := 1; k < len(tr.Times); k++ {
		if tr.Times[k] < tStart {
			continue
		}
		a, b := w[k-1], w[k]
		crossed := (rising && a < threshold && b >= threshold) ||
			(!rising && a > threshold && b <= threshold)
		if crossed {
			f := (threshold - a) / (b - a)
			return tr.Times[k-1] + f*(tr.Times[k]-tr.Times[k-1]), nil
		}
	}
	return 0, fmt.Errorf("spice: node %q never crossed %.3g V after t=%.3g", node, threshold, tStart)
}
