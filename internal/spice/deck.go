package spice

import (
	"fmt"
	"strconv"
	"strings"

	"ppatc/internal/device"
)

// ParseDeck builds a circuit and an analysis request from a SPICE-style
// netlist deck. The supported dialect covers what the eDRAM work needs:
//
//   - title line (first line, ignored)
//     R<name> n1 n2 <value>                resistor (ohms)
//     C<name> n1 n2 <value>                capacitor (farads)
//     V<name> n+ n- <value>                DC voltage source
//     V<name> n+ n- PULSE(v1 v2 td tr tf pw [per])
//     V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//     I<name> n+ n- <value>                DC current source
//     M<name> d g s <model> W=<meters>     FET (models below)
//     .model names: sinmos_hvt|rvt|lvt|slvt, sipmos_<vt>, cnfet, cnfet_p, igzo
//     .tran <dt> <tstop>                   transient request
//     .end                                 optional terminator
//
// Values accept engineering suffixes (f, p, n, u, m, k, meg, g, t).
// Comment lines start with '*'; '$' starts an inline comment.
func ParseDeck(src string) (*Circuit, *TranRequest, error) {
	ck := NewCircuit()
	var req *TranRequest
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		line := raw
		if j := strings.Index(line, "$"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") || i == 0 {
			continue // blank, comment, or title line
		}
		fields := strings.Fields(line)
		head := strings.ToLower(fields[0])
		fail := func(format string, args ...any) error {
			return fmt.Errorf("spice: deck line %d: "+format, append([]any{i + 1}, args...)...)
		}
		switch {
		case head == ".end":
			// done; ignore the rest
		case head == ".tran":
			if len(fields) != 3 {
				return nil, nil, fail(".tran needs <dt> <tstop>")
			}
			dt, err := parseEng(fields[1])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			tstop, err := parseEng(fields[2])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			req = &TranRequest{Step: dt, Stop: tstop}
		case strings.HasPrefix(head, "r"):
			if len(fields) != 4 {
				return nil, nil, fail("resistor needs 2 nodes and a value")
			}
			v, err := parseEng(fields[3])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			if err := ck.AddR(fields[0], fields[1], fields[2], v); err != nil {
				return nil, nil, fail("%v", err)
			}
		case strings.HasPrefix(head, "c"):
			if len(fields) != 4 {
				return nil, nil, fail("capacitor needs 2 nodes and a value")
			}
			v, err := parseEng(fields[3])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			if err := ck.AddC(fields[0], fields[1], fields[2], v); err != nil {
				return nil, nil, fail("%v", err)
			}
		case strings.HasPrefix(head, "v"), strings.HasPrefix(head, "i"):
			if len(fields) < 4 {
				return nil, nil, fail("source needs 2 nodes and a value")
			}
			spec := strings.Join(fields[3:], " ")
			w, err := parseWaveform(spec)
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			if strings.HasPrefix(head, "v") {
				err = ck.AddV(fields[0], fields[1], fields[2], w)
			} else {
				err = ck.AddI(fields[0], fields[1], fields[2], w)
			}
			if err != nil {
				return nil, nil, fail("%v", err)
			}
		case strings.HasPrefix(head, "m"):
			if len(fields) != 6 {
				return nil, nil, fail("FET needs d g s <model> W=<w>")
			}
			params, err := modelByName(fields[4])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			wSpec := strings.ToLower(fields[5])
			if !strings.HasPrefix(wSpec, "w=") {
				return nil, nil, fail("FET width must be W=<meters>")
			}
			w, err := parseEng(wSpec[2:])
			if err != nil {
				return nil, nil, fail("%v", err)
			}
			if err := ck.AddFET(fields[0], fields[1], fields[2], fields[3], params, w); err != nil {
				return nil, nil, fail("%v", err)
			}
		default:
			return nil, nil, fail("unrecognized element %q", fields[0])
		}
	}
	return ck, req, nil
}

// TranRequest is the .tran card of a deck.
type TranRequest struct {
	// Step and Stop are the transient step and end time (seconds).
	Step, Stop float64
}

// modelByName resolves the deck's FET model names.
func modelByName(name string) (device.Params, error) {
	flavors := map[string]device.VTFlavor{
		"hvt": device.HVT, "rvt": device.RVT, "lvt": device.LVT, "slvt": device.SLVT,
	}
	n := strings.ToLower(name)
	switch {
	case strings.HasPrefix(n, "sinmos_"):
		f, ok := flavors[strings.TrimPrefix(n, "sinmos_")]
		if !ok {
			return device.Params{}, fmt.Errorf("unknown Si NMOS flavour %q", name)
		}
		return device.SiNFET(f), nil
	case strings.HasPrefix(n, "sipmos_"):
		f, ok := flavors[strings.TrimPrefix(n, "sipmos_")]
		if !ok {
			return device.Params{}, fmt.Errorf("unknown Si PMOS flavour %q", name)
		}
		return device.SiPFET(f), nil
	case n == "cnfet":
		return device.CNFET(), nil
	case n == "cnfet_p":
		return device.CNFETPMOS(), nil
	case n == "igzo":
		return device.IGZO(), nil
	default:
		return device.Params{}, fmt.Errorf("unknown model %q", name)
	}
}

// parseWaveform parses a DC value, PULSE(...) or PWL(...).
func parseWaveform(spec string) (Waveform, error) {
	s := strings.TrimSpace(spec)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "PULSE"):
		args, err := parseArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) < 6 || len(args) > 7 {
			return nil, fmt.Errorf("PULSE needs 6-7 arguments, got %d", len(args))
		}
		p := Pulse{V1: args[0], V2: args[1], Delay: args[2], Rise: args[3], Fall: args[4], Width: args[5]}
		if len(args) == 7 {
			p.Period = args[6]
		}
		return p, nil
	case strings.HasPrefix(upper, "PWL"):
		args, err := parseArgs(s)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL needs time/value pairs")
		}
		pts := make([][2]float64, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			pts = append(pts, [2]float64{args[i], args[i+1]})
		}
		return NewPWL(pts...)
	default:
		v, err := parseEng(strings.TrimPrefix(strings.TrimPrefix(s, "DC "), "dc "))
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	}
}

// parseArgs extracts the numbers from "NAME(a b c)" or "NAME(a, b, c)".
func parseArgs(s string) ([]float64, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("malformed function %q", s)
	}
	body := strings.ReplaceAll(s[open+1:close], ",", " ")
	var out []float64
	for _, f := range strings.Fields(body) {
		v, err := parseEng(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseEng parses a number with an optional SPICE engineering suffix.
func parseEng(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, s[:len(s)-1]
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, s[:len(s)-1]
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}
