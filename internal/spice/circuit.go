// Package spice is a compact circuit simulator used to validate the eDRAM
// bit-cell and peripheral timing of the paper's case study (Sec. III-B,
// Step 2: "We validate timing using SPICE circuit simulations, with compact
// device models for Si CMOS, CNFETs, and IGZO FETs").
//
// It implements modified nodal analysis (MNA) with Newton-Raphson for the
// nonlinear FETs of internal/device, a DC operating-point solver, and a
// fixed-step backward-Euler transient solver with per-source energy
// accounting. The circuits the paper simulates — bit cells, wordline and
// bitline RC networks, write drivers, sense amplifiers — involve tens of
// nodes, so a dense LU solve is the right tool.
package spice

import (
	"errors"
	"fmt"
	"sort"

	"ppatc/internal/device"
)

// Ground is the reference node name; "0" is accepted as an alias.
const Ground = "gnd"

// Circuit is a netlist under construction. The zero value is not usable;
// call NewCircuit.
type Circuit struct {
	nodeIndex map[string]int // node name → matrix index; ground = -1
	nodeNames []string
	elems     []element
	vsrcNames []string
}

// NewCircuit returns an empty netlist.
func NewCircuit() *Circuit {
	return &Circuit{nodeIndex: map[string]int{Ground: -1, "0": -1}}
}

// Node interns a node name and returns its index (−1 for ground).
func (c *Circuit) Node(name string) int {
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// Nodes reports the non-ground node names in index order.
func (c *Circuit) Nodes() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

// element is a circuit element able to stamp itself into the MNA system.
type element interface {
	// stamp adds the element's contribution at the given solution guess x
	// and time step state.
	stamp(sys *system, st *stampState)
	// name identifies the element for error messages.
	name() string
}

// stampState carries the solver context elements may need.
type stampState struct {
	x      []float64 // current Newton guess (nodes then branch currents)
	xPrev  []float64 // solution at the previous accepted time point
	dt     float64   // current time step; 0 during DC analysis
	t      float64   // time at the point being solved
	dcMode bool      // true during operating-point analysis
}

// v reads a node voltage from the guess (ground = 0).
func (st *stampState) v(n int) float64 {
	if n < 0 {
		return 0
	}
	return st.x[n]
}

// vPrev reads a node voltage from the previous time point.
func (st *stampState) vPrev(n int) float64 {
	if n < 0 {
		return 0
	}
	return st.xPrev[n]
}

// system is the linearized MNA system G·x = b.
type system struct {
	n int
	g [][]float64
	b []float64
}

func newSystem(n int) *system {
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	return &system{n: n, g: g, b: make([]float64, n)}
}

func (s *system) reset() {
	for i := range s.g {
		for j := range s.g[i] {
			s.g[i][j] = 0
		}
		s.b[i] = 0
	}
}

// addG accumulates a conductance entry, skipping ground rows/columns.
func (s *system) addG(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.g[i][j] += v
}

// addB accumulates a RHS entry, skipping ground.
func (s *system) addB(i int, v float64) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// solve performs in-place Gaussian elimination with partial pivoting.
// The matrix and RHS are destroyed.
func (s *system) solve() ([]float64, error) {
	n := s.n
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		max := abs(s.g[col][col])
		for r := col + 1; r < n; r++ {
			if a := abs(s.g[r][col]); a > max {
				max, p = a, r
			}
		}
		if max < 1e-300 {
			return nil, fmt.Errorf("spice: singular matrix at column %d", col)
		}
		s.g[col], s.g[p] = s.g[p], s.g[col]
		s.b[col], s.b[p] = s.b[p], s.b[col]
		inv := 1 / s.g[col][col]
		for r := col + 1; r < n; r++ {
			f := s.g[r][col] * inv
			if f == 0 {
				continue
			}
			s.g[r][col] = 0
			for k := col + 1; k < n; k++ {
				s.g[r][k] -= f * s.g[col][k]
			}
			s.b[r] -= f * s.b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := s.b[r]
		for k := r + 1; k < n; k++ {
			sum -= s.g[r][k] * x[k]
		}
		x[r] = sum / s.g[r][r]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// --- Elements -------------------------------------------------------------

type resistor struct {
	id     string
	n1, n2 int
	r      float64
}

func (r *resistor) name() string { return r.id }

func (r *resistor) stamp(sys *system, st *stampState) {
	g := 1 / r.r
	sys.addG(r.n1, r.n1, g)
	sys.addG(r.n2, r.n2, g)
	sys.addG(r.n1, r.n2, -g)
	sys.addG(r.n2, r.n1, -g)
}

type capacitor struct {
	id     string
	n1, n2 int
	c      float64
}

func (c *capacitor) name() string { return c.id }

func (c *capacitor) stamp(sys *system, st *stampState) {
	if st.dcMode || st.dt == 0 {
		return // open circuit in DC
	}
	// Backward-Euler companion: i = (C/dt)·v − (C/dt)·v_prev.
	g := c.c / st.dt
	vp := st.vPrev(c.n1) - st.vPrev(c.n2)
	sys.addG(c.n1, c.n1, g)
	sys.addG(c.n2, c.n2, g)
	sys.addG(c.n1, c.n2, -g)
	sys.addG(c.n2, c.n1, -g)
	sys.addB(c.n1, g*vp)
	sys.addB(c.n2, -g*vp)
}

// vsource is a voltage source with an MNA branch-current unknown.
type vsource struct {
	id       string
	np, nn   int
	wave     Waveform
	brIdx    int // branch current index within the full unknown vector
	brOffset int // set by the circuit when assembling
}

func (v *vsource) name() string { return v.id }

func (v *vsource) stamp(sys *system, st *stampState) {
	k := v.brIdx
	sys.addG(v.np, k, 1)
	sys.addG(v.nn, k, -1)
	sys.addG(k, v.np, 1)
	sys.addG(k, v.nn, -1)
	sys.addB(k, v.wave.V(st.t))
}

type isource struct {
	id     string
	np, nn int
	wave   Waveform
}

func (i *isource) name() string { return i.id }

func (i *isource) stamp(sys *system, st *stampState) {
	cur := i.wave.V(st.t)
	// Current flows from np through the source to nn (into the circuit at nn).
	sys.addB(i.np, -cur)
	sys.addB(i.nn, cur)
}

// fet is a nonlinear FET linearized around the current Newton guess.
type fet struct {
	id      string
	d, g, s int
	params  device.Params
	w       float64
}

func (f *fet) name() string { return f.id }

func (f *fet) stamp(sys *system, st *stampState) {
	vgs := st.v(f.g) - st.v(f.s)
	vds := st.v(f.d) - st.v(f.s)
	id := f.params.DrainCurrent(vgs, vds, f.w)
	gm, gds := f.params.Conductances(vgs, vds, f.w)
	// Keep the linearization passive enough to converge.
	if gds < 1e-12 {
		gds = 1e-12
	}
	ieq := id - gm*vgs - gds*vds
	sys.addG(f.d, f.g, gm)
	sys.addG(f.d, f.d, gds)
	sys.addG(f.d, f.s, -(gm + gds))
	sys.addG(f.s, f.g, -gm)
	sys.addG(f.s, f.d, -gds)
	sys.addG(f.s, f.s, gm+gds)
	sys.addB(f.d, -ieq)
	sys.addB(f.s, ieq)
}

// --- Netlist construction --------------------------------------------------

// AddR adds a resistor between two named nodes.
func (c *Circuit) AddR(id, n1, n2 string, ohms float64) error {
	if ohms <= 0 {
		return fmt.Errorf("spice: resistor %s must have positive resistance", id)
	}
	c.elems = append(c.elems, &resistor{id: id, n1: c.Node(n1), n2: c.Node(n2), r: ohms})
	return nil
}

// AddC adds a capacitor between two named nodes.
func (c *Circuit) AddC(id, n1, n2 string, farads float64) error {
	if farads <= 0 {
		return fmt.Errorf("spice: capacitor %s must have positive capacitance", id)
	}
	c.elems = append(c.elems, &capacitor{id: id, n1: c.Node(n1), n2: c.Node(n2), c: farads})
	return nil
}

// AddV adds a voltage source from np (positive) to nn.
func (c *Circuit) AddV(id, np, nn string, w Waveform) error {
	if w == nil {
		return fmt.Errorf("spice: source %s needs a waveform", id)
	}
	c.elems = append(c.elems, &vsource{id: id, np: c.Node(np), nn: c.Node(nn), wave: w})
	c.vsrcNames = append(c.vsrcNames, id)
	return nil
}

// AddI adds a current source pushing current from np through itself to nn.
func (c *Circuit) AddI(id, np, nn string, w Waveform) error {
	if w == nil {
		return fmt.Errorf("spice: source %s needs a waveform", id)
	}
	c.elems = append(c.elems, &isource{id: id, np: c.Node(np), nn: c.Node(nn), wave: w})
	return nil
}

// AddFET adds a FET with the given drain, gate, source nodes, parameter set
// and width in meters.
func (c *Circuit) AddFET(id, drain, gate, source string, p device.Params, widthMeters float64) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("spice: FET %s: %w", id, err)
	}
	if widthMeters <= 0 {
		return fmt.Errorf("spice: FET %s must have positive width", id)
	}
	c.elems = append(c.elems, &fet{
		id: id, d: c.Node(drain), g: c.Node(gate), s: c.Node(source),
		params: p, w: widthMeters,
	})
	return nil
}

// ElementNames lists element identifiers in insertion order (for tests and
// netlist dumps).
func (c *Circuit) ElementNames() []string {
	out := make([]string, 0, len(c.elems))
	for _, e := range c.elems {
		out = append(out, e.name())
	}
	return out
}

// SourceNames lists voltage source identifiers sorted by name.
func (c *Circuit) SourceNames() []string {
	out := make([]string, len(c.vsrcNames))
	copy(out, c.vsrcNames)
	sort.Strings(out)
	return out
}

// unknowns assigns branch indices and reports the system size.
func (c *Circuit) unknowns() int {
	n := len(c.nodeNames)
	for _, e := range c.elems {
		if vs, ok := e.(*vsource); ok {
			vs.brIdx = n
			n++
		}
	}
	return n
}

var errNoNodes = errors.New("spice: circuit has no nodes")
