package spice

import (
	"math"
	"testing"
)

func TestParseEngSuffixes(t *testing.T) {
	cases := map[string]float64{
		"1k": 1e3, "2.5meg": 2.5e6, "3g": 3e9, "1t": 1e12,
		"10m": 10e-3, "5u": 5e-6, "7n": 7e-9, "15p": 15e-12, "0.3f": 0.3e-15,
		"42": 42, "-1.5": -1.5, "1e-9": 1e-9,
	}
	for in, want := range cases {
		got, err := parseEng(in)
		if err != nil {
			t.Errorf("parseEng(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("parseEng(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1x2"} {
		if _, err := parseEng(bad); err == nil {
			t.Errorf("parseEng(%q) should fail", bad)
		}
	}
}

func TestDeckRCDivider(t *testing.T) {
	deck := `* divider test deck
V1 in 0 1.0
R1 in mid 1k
R2 mid 0 3k
.end
`
	ck, req, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if req != nil {
		t.Error("no .tran requested")
	}
	op, err := ck.OP()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("mid")
	if math.Abs(v-0.75) > 1e-6 {
		t.Errorf("divider mid = %v, want 0.75", v)
	}
}

func TestDeckInverterTransient(t *testing.T) {
	deck := `* CMOS inverter, deck-driven
VDD vdd 0 0.7
VIN in 0 PULSE(0 0.7 0.2n 10p 10p 5n)
MP out in vdd sipmos_rvt W=54n
MN out in 0 sinmos_rvt W=36n
CL out 0 1f
.tran 1p 3n
.end
`
	ck, req, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if req == nil || req.Step != 1e-12 || math.Abs(req.Stop-3e-9) > 1e-18 {
		t.Fatalf("tran request = %+v", req)
	}
	tr, err := ck.Transient(req.Stop, req.Step)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := tr.CrossingTime("out", 0.35, false, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if tc <= 0.2e-9 || tc > 1e-9 {
		t.Errorf("deck inverter switched at %v", tc)
	}
}

func TestDeckBitcellModels(t *testing.T) {
	// Every model name resolves, including the beyond-Si devices.
	deck := `* model zoo
V1 d 0 0.7
V2 g 0 1.3
M1 d g 0 igzo W=80n
M2 d g 0 cnfet W=30n
M3 d g 0 cnfet_p W=30n
M4 d g 0 sinmos_hvt W=20n
M5 d g 0 sipmos_slvt W=20n
.end
`
	ck, _, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.OP(); err != nil {
		t.Fatal(err)
	}
}

func TestDeckPWLSource(t *testing.T) {
	deck := `* pwl
V1 a 0 PWL(0 0 1n 0.7 2n 0.35)
R1 a 0 1k
.tran 0.05n 2n
`
	ck, req, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ck.Transient(req.Stop, req.Step)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr.At("a", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.7) > 0.01 {
		t.Errorf("pwl at 1 ns = %v, want 0.7", v)
	}
}

func TestDeckErrors(t *testing.T) {
	bad := []string{
		"* t\nR1 a b\n",                   // missing value
		"* t\nR1 a b 1x\n",                // bad number
		"* t\nQ1 a b c\n",                 // unknown element
		"* t\nM1 d g s nosuch W=30n\n",    // unknown model
		"* t\nM1 d g s cnfet L=30n\n",     // missing W=
		"* t\nV1 a 0 PULSE(1 2 3)\n",      // short pulse
		"* t\nV1 a 0 PWL(1 2 3)\n",        // odd PWL args
		"* t\nV1 a 0 PULSE 1 2 3 4 5 6\n", // missing parens
		"* t\n.tran 1p\n",                 // short .tran
		"* t\nC1 a 0 -1p\n",               // negative capacitance
	}
	for i, deck := range bad {
		if _, _, err := ParseDeck(deck); err == nil {
			t.Errorf("deck %d should fail to parse", i)
		}
	}
}

func TestDeckCommentsAndTitle(t *testing.T) {
	deck := "this title line mentions R1 but is ignored\n" +
		"* a comment\n" +
		"V1 a 0 1.0 $ inline comment\n" +
		"R1 a 0 2k\n"
	ck, _, err := ParseDeck(deck)
	if err != nil {
		t.Fatal(err)
	}
	op, err := ck.OP()
	if err != nil {
		t.Fatal(err)
	}
	i, err := op.SourceCurrent("V1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i+0.5e-3) > 1e-9 {
		t.Errorf("source current = %v, want -0.5 mA", i)
	}
}

// TestEnergyConservationRC verifies the simulator's books balance: in a
// driven RC, the source's delivered energy equals the capacitor's stored
// energy plus the resistor's dissipation (computed independently from the
// waveforms).
func TestEnergyConservationRC(t *testing.T) {
	c := NewCircuit()
	if err := c.AddV("vs", "in", Ground, Pulse{V1: 0, V2: 1, Rise: 1e-12, Width: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r", "in", "out", 2000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("c", "out", Ground, 2e-9); err != nil {
		t.Fatal(err)
	}
	tr, err := c.Transient(40e-6, 4e-9)
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := tr.SourceEnergy("vs")
	if err != nil {
		t.Fatal(err)
	}
	vin, err := tr.Voltage("in")
	if err != nil {
		t.Fatal(err)
	}
	vout, err := tr.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	// Dissipation: ∫ (vin−vout)²/R dt (trapezoidal).
	var dissipated float64
	for i := 1; i < len(tr.Times); i++ {
		dt := tr.Times[i] - tr.Times[i-1]
		p0 := (vin[i-1] - vout[i-1]) * (vin[i-1] - vout[i-1]) / 2000
		p1 := (vin[i] - vout[i]) * (vin[i] - vout[i]) / 2000
		dissipated += dt * (p0 + p1) / 2
	}
	stored := 0.5 * 2e-9 * vout[len(vout)-1] * vout[len(vout)-1]
	balance := (stored + dissipated) / delivered
	if balance < 0.98 || balance > 1.02 {
		t.Errorf("energy books off: delivered %.4g, stored %.4g + dissipated %.4g (ratio %.4f)",
			delivered, stored, dissipated, balance)
	}
}

// TestKCLAtOperatingPoint verifies Kirchhoff's current law holds at a
// solved DC node: the three resistor currents into a star node sum to
// (numerically) zero.
func TestKCLAtOperatingPoint(t *testing.T) {
	c := NewCircuit()
	if err := c.AddV("v1", "a", Ground, DC(1.0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddV("v2", "b", Ground, DC(-0.5)); err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		id, n1, n2 string
		ohms       float64
	}{
		{"ra", "a", "star", 1000},
		{"rb", "b", "star", 2200},
		{"rc", "star", Ground, 4700},
	} {
		if err := c.AddR(r.id, r.n1, r.n2, r.ohms); err != nil {
			t.Fatal(err)
		}
	}
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	va, _ := op.Voltage("a")
	vb, _ := op.Voltage("b")
	vs, _ := op.Voltage("star")
	sum := (va-vs)/1000 + (vb-vs)/2200 + (0-vs)/4700
	if sum > 1e-9 || sum < -1e-9 {
		t.Errorf("KCL violated at star node: residual %.3g A", sum)
	}
}
