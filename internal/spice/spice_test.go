package spice

import (
	"math"
	"testing"
	"testing/quick"

	"ppatc/internal/device"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestVoltageDividerOP(t *testing.T) {
	c := NewCircuit()
	if err := c.AddV("vin", "in", Ground, DC(1.0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r1", "in", "mid", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("r2", "mid", Ground, 3000); err != nil {
		t.Fatal(err)
	}
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	v, err := op.Voltage("mid")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 0.75, 1e-6) {
		t.Errorf("divider mid = %v, want 0.75", v)
	}
	i, err := op.SourceCurrent("vin")
	if err != nil {
		t.Fatal(err)
	}
	// 1 V over 4 kΩ: 0.25 mA leaves the + terminal, so branch current is −0.25 mA.
	if !almostEqual(i, -0.25e-3, 1e-6) {
		t.Errorf("source current = %v, want -0.25 mA", i)
	}
	if _, err := op.Voltage("nosuch"); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := op.SourceCurrent("nosuch"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestGroundAliases(t *testing.T) {
	c := NewCircuit()
	if c.Node("gnd") != -1 || c.Node("0") != -1 {
		t.Fatal("ground aliases must map to -1")
	}
}

func TestRCChargeMatchesAnalytic(t *testing.T) {
	// Series RC driven by a step: v_c(t) = V·(1 − e^{−t/RC}).
	c := NewCircuit()
	r, cap := 1000.0, 1e-9 // τ = 1 µs
	mustNoErr(t, c.AddV("vs", "in", Ground, Pulse{V1: 0, V2: 1, Delay: 0, Rise: 1e-12, Width: 1, Fall: 1e-12}))
	mustNoErr(t, c.AddR("r", "in", "out", r))
	mustNoErr(t, c.AddC("c", "out", Ground, cap))
	tr, err := c.Transient(5e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	tau := r * cap
	for _, tm := range []float64{0.5e-6, 1e-6, 2e-6, 4e-6} {
		got, err := tr.At("out", tm)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("v_c(%.2g) = %.4f, want %.4f", tm, got, want)
		}
	}
	// Crossing time of 50%: t = τ·ln2.
	tc, err := tr.CrossingTime("out", 0.5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tc, tau*math.Ln2, 0.01) {
		t.Errorf("50%% crossing at %v, want %v", tc, tau*math.Ln2)
	}
}

func TestSourceEnergyRCCharge(t *testing.T) {
	// Charging a capacitor to V through a resistor draws E = C·V² from the
	// source (half stored, half dissipated).
	c := NewCircuit()
	mustNoErr(t, c.AddV("vs", "in", Ground, Pulse{V1: 0, V2: 1, Rise: 1e-12, Width: 1}))
	mustNoErr(t, c.AddR("r", "in", "out", 1000))
	mustNoErr(t, c.AddC("c", "out", Ground, 1e-9))
	tr, err := c.Transient(20e-6, 2e-9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tr.SourceEnergy("vs")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 1e-9, 0.02) {
		t.Errorf("source energy = %v J, want C·V² = 1e-9", e)
	}
}

func TestCurrentSourceIntoCap(t *testing.T) {
	// A constant current into a capacitor ramps linearly: v = I·t/C.
	c := NewCircuit()
	mustNoErr(t, c.AddI("is", Ground, "out", DC(1e-6)))
	mustNoErr(t, c.AddC("c", "out", Ground, 1e-9))
	tr, err := c.TransientFromZero(1e-3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.At("out", 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 0.01) {
		t.Errorf("ramp at 0.5 ms = %v, want 0.5 V", got)
	}
}

// buildInverter wires a CMOS inverter with the given input source.
func buildInverter(t *testing.T, in Waveform, loadF float64) *Circuit {
	t.Helper()
	c := NewCircuit()
	mustNoErr(t, c.AddV("vdd", "vdd", Ground, DC(device.VDD)))
	mustNoErr(t, c.AddV("vin", "in", Ground, in))
	mustNoErr(t, c.AddFET("mp", "out", "in", "vdd", device.SiPFET(device.RVT), 54e-9))
	mustNoErr(t, c.AddFET("mn", "out", "in", Ground, device.SiNFET(device.RVT), 36e-9))
	if loadF > 0 {
		mustNoErr(t, c.AddC("cl", "out", Ground, loadF))
	}
	return c
}

func TestInverterStaticLevels(t *testing.T) {
	// Input low → output within a few mV of VDD; input high → near 0.
	low := buildInverter(t, DC(0), 0)
	op, err := low.OP()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := op.Voltage("out")
	if v < device.VDD-0.02 {
		t.Errorf("out with low input = %v, want ≈ VDD", v)
	}
	high := buildInverter(t, DC(device.VDD), 0)
	op, err = high.OP()
	if err != nil {
		t.Fatal(err)
	}
	v, _ = op.Voltage("out")
	if v > 0.02 {
		t.Errorf("out with high input = %v, want ≈ 0", v)
	}
}

func TestInverterTransientSwitch(t *testing.T) {
	in := Pulse{V1: 0, V2: device.VDD, Delay: 0.2e-9, Rise: 10e-12, Width: 5e-9, Fall: 10e-12}
	c := buildInverter(t, in, 1e-15)
	tr, err := c.Transient(3e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Output must fall below VDD/2 shortly after the input rises.
	tc, err := tr.CrossingTime("out", device.VDD/2, false, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	delay := tc - (0.2e-9 + 5e-12) // from input 50% point
	if delay <= 0 || delay > 0.5e-9 {
		t.Errorf("inverter fall delay = %v s, want (0, 0.5 ns]", delay)
	}
}

func TestNetlistValidation(t *testing.T) {
	c := NewCircuit()
	if err := c.AddR("r", "a", "b", 0); err == nil {
		t.Error("zero resistance should fail")
	}
	if err := c.AddC("c", "a", "b", -1); err == nil {
		t.Error("negative capacitance should fail")
	}
	if err := c.AddV("v", "a", "b", nil); err == nil {
		t.Error("nil waveform should fail")
	}
	if err := c.AddI("i", "a", "b", nil); err == nil {
		t.Error("nil current waveform should fail")
	}
	if err := c.AddFET("m", "d", "g", "s", device.Params{}, 1e-6); err == nil {
		t.Error("invalid FET params should fail")
	}
	if err := c.AddFET("m", "d", "g", "s", device.SiNFET(device.RVT), 0); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := (&Circuit{nodeIndex: map[string]int{}}).OP(); err == nil {
		t.Error("empty circuit should fail")
	}
	if _, err := NewCircuit().Transient(0, 1); err == nil {
		t.Error("zero tstop should fail")
	}
}

func TestPulseWaveform(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1, Period: 10}
	cases := map[float64]float64{
		0: 0, 1: 0, 1.5: 0.5, 2: 1, 3.9: 1, 4.5: 0.5, 6: 0,
		11.5: 0.5, 12.5: 1, // second period
	}
	for tm, want := range cases {
		if got := p.V(tm); !almostEqual(got, want, 1e-9) {
			t.Errorf("pulse(%v) = %v, want %v", tm, got, want)
		}
	}
	// Zero rise/fall are steps.
	step := Pulse{V1: 0, V2: 1, Width: 1}
	if step.V(0) != 1 {
		t.Errorf("zero-rise pulse at t=0 = %v, want 1", step.V(0))
	}
}

func TestPWLWaveform(t *testing.T) {
	w, err := NewPWL([2]float64{0, 0}, [2]float64{1, 1}, [2]float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]float64{-1: 0, 0: 0, 0.5: 0.5, 1: 1, 1.5: 0.75, 2: 0.5, 3: 0.5}
	for tm, want := range cases {
		if got := w.V(tm); !almostEqual(got, want, 1e-9) {
			t.Errorf("pwl(%v) = %v, want %v", tm, got, want)
		}
	}
	if _, err := NewPWL([2]float64{1, 0}, [2]float64{1, 1}); err == nil {
		t.Error("non-increasing PWL times should fail")
	}
	if _, err := NewPWL(); err == nil {
		t.Error("empty PWL should fail")
	}
}

func TestTranAccessors(t *testing.T) {
	c := NewCircuit()
	mustNoErr(t, c.AddV("vs", "a", Ground, DC(1)))
	mustNoErr(t, c.AddR("r", "a", Ground, 1000))
	tr, err := c.Transient(1e-6, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Voltage("zzz"); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := tr.SourceCurrent("zzz"); err == nil {
		t.Error("unknown source should fail")
	}
	g, err := tr.Voltage(Ground)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g {
		if v != 0 {
			t.Fatal("ground waveform must be identically zero")
		}
	}
	if _, err := tr.CrossingTime("a", 2.0, true, 0); err == nil {
		t.Error("impossible crossing should fail")
	}
}

// Property: a resistive ladder of random positive resistances always yields
// node voltages within the source range (passivity / no overshoot in DC).
func TestLadderPassivity(t *testing.T) {
	f := func(r1, r2, r3 uint16) bool {
		c := NewCircuit()
		res := []float64{float64(r1%9000) + 100, float64(r2%9000) + 100, float64(r3%9000) + 100}
		if c.AddV("v", "n0", Ground, DC(1)) != nil {
			return false
		}
		nodes := []string{"n0", "n1", "n2", Ground}
		for i := 0; i < 3; i++ {
			if c.AddR("r"+nodes[i], nodes[i], nodes[i+1], res[i]) != nil {
				return false
			}
		}
		op, err := c.OP()
		if err != nil {
			return false
		}
		for _, n := range []string{"n1", "n2"} {
			v, err := op.Voltage(n)
			if err != nil || v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacitor voltage in the RC charge never exceeds the source
// voltage (BE is monotone for this circuit).
func TestRCNoOvershoot(t *testing.T) {
	c := NewCircuit()
	mustNoErr(t, c.AddV("vs", "in", Ground, Pulse{V1: 0, V2: 1, Rise: 1e-12, Width: 1}))
	mustNoErr(t, c.AddR("r", "in", "out", 1000))
	mustNoErr(t, c.AddC("c", "out", Ground, 1e-9))
	tr, err := c.Transient(10e-6, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tr.Voltage("out")
	for i, v := range w {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("overshoot at sample %d: %v", i, v)
		}
		if i > 0 && v < w[i-1]-1e-9 {
			t.Fatalf("non-monotone charge at sample %d", i)
		}
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
