// Package stdcell models an ASAP7-class 7 nm standard-cell library in the
// four threshold flavours (HVT/RVT/LVT/SLVT) the paper sweeps. It derives
// each flavour's speed and leakage from the internal/device compact models,
// so the library is consistent with the transistors used in the eDRAM
// simulations, and exposes the quantities logic synthesis needs: FO4 delay,
// switched capacitance per gate, and leakage per gate.
package stdcell

import (
	"errors"
	"fmt"

	"ppatc/internal/device"
)

// Library is one VT corner of the cell library.
type Library struct {
	// Flavor is the threshold flavour.
	Flavor device.VTFlavor
	// VDD is the library's nominal supply.
	VDD float64
	// FO4 is the fanout-of-4 inverter delay in seconds, the canonical
	// speed unit of logical-effort timing.
	FO4 float64
	// SwitchedCapPerGate is the average capacitance switched by one
	// NAND2-equivalent gate including local wiring, in farads.
	SwitchedCapPerGate float64
	// LeakagePerGate is the average static leakage current of one
	// NAND2-equivalent gate, in amperes.
	LeakagePerGate float64
	// NMOS and PMOS are the underlying device parameter sets.
	NMOS, PMOS device.Params
}

// Gate geometry assumptions for the NAND2-equivalent average cell.
const (
	// unitNMOSWidth is the unit-drive NMOS *effective* width (meters):
	// a 3-fin FinFET device contributes ≈2·H_fin + W_fin of channel per
	// fin, so the electrical width is several times the drawn footprint.
	unitNMOSWidth = 81e-9
	// pnRatio is the PMOS/NMOS width ratio.
	pnRatio = 1.5
	// wireCapFraction scales gate capacitance to include local wiring.
	wireCapFraction = 0.8
	// leakingWidthPerGate is the effective total leaking transistor width
	// per gate (meters): roughly one off NMOS plus one off PMOS path at
	// the 3-fin effective width.
	leakingWidthPerGate = 300e-9
	// fo4Calibration converts effective drive (A/m) to FO4 delay such
	// that the RVT corner lands at ≈13 ps, the ASAP7 envelope.
	fo4Calibration = 4.0e-9
)

// New builds the library corner for a flavour at the ASAP7 nominal supply.
func New(f device.VTFlavor) Library {
	n := device.SiNFET(f)
	p := device.SiPFET(f)
	vdd := device.VDD
	// Speed: the drive-limited FO4 delay tracks 1/IEFF of the weaker
	// device (PMOS pull-up sets the worst edge after P/N sizing).
	ieffN := n.IEFF(vdd)
	ieffP := p.IEFF(vdd) * pnRatio // PMOS widened by the P/N ratio
	ieff := ieffN
	if ieffP < ieff {
		ieff = ieffP
	}
	// Capacitance of the NAND2-equivalent: two N + two P gates.
	cg := 2*n.CgPerWidth*unitNMOSWidth + 2*p.CgPerWidth*unitNMOSWidth*pnRatio
	// Leakage: averaged off-state paths at VDD.
	leak := (n.IOFF(vdd) + p.IOFF(vdd)) / 2 * leakingWidthPerGate
	return Library{
		Flavor:             f,
		VDD:                vdd,
		FO4:                fo4Calibration / ieff,
		SwitchedCapPerGate: cg * (1 + wireCapFraction),
		LeakagePerGate:     leak,
		NMOS:               n,
		PMOS:               p,
	}
}

// All returns the four corners in canonical order.
func All() []Library {
	out := make([]Library, 0, 4)
	for _, f := range device.VTFlavors() {
		out = append(out, New(f))
	}
	return out
}

// Validate checks the library corner.
func (l Library) Validate() error {
	switch {
	case l.VDD <= 0:
		return fmt.Errorf("stdcell %s: VDD must be positive", l.Flavor)
	case l.FO4 <= 0:
		return fmt.Errorf("stdcell %s: FO4 must be positive", l.Flavor)
	case l.SwitchedCapPerGate <= 0:
		return fmt.Errorf("stdcell %s: switched capacitance must be positive", l.Flavor)
	case l.LeakagePerGate < 0:
		return fmt.Errorf("stdcell %s: leakage must be non-negative", l.Flavor)
	}
	return nil
}

// DynamicEnergyPerSwitch reports the CV² energy of one gate transition.
func (l Library) DynamicEnergyPerSwitch() float64 {
	return l.SwitchedCapPerGate * l.VDD * l.VDD
}

// LeakagePower reports the static power of n gates at this corner.
func (l Library) LeakagePower(gates int) (float64, error) {
	if gates < 0 {
		return 0, errors.New("stdcell: gate count must be non-negative")
	}
	return float64(gates) * l.LeakagePerGate * l.VDD, nil
}
