package stdcell

import (
	"math"
	"testing"

	"ppatc/internal/device"
)

func TestCornersOrdered(t *testing.T) {
	libs := All()
	if len(libs) != 4 {
		t.Fatalf("corners = %d, want 4", len(libs))
	}
	for i := 1; i < len(libs); i++ {
		if libs[i].FO4 >= libs[i-1].FO4 {
			t.Errorf("%s FO4 %.3g should beat %s %.3g",
				libs[i].Flavor, libs[i].FO4, libs[i-1].Flavor, libs[i-1].FO4)
		}
		if libs[i].LeakagePerGate <= libs[i-1].LeakagePerGate {
			t.Errorf("%s leakage should exceed %s", libs[i].Flavor, libs[i-1].Flavor)
		}
	}
}

func TestSwitchedCapFlavorIndependent(t *testing.T) {
	// VT implants change threshold, not geometry: capacitance is shared.
	base := New(device.HVT).SwitchedCapPerGate
	for _, f := range device.VTFlavors() {
		if got := New(f).SwitchedCapPerGate; got != base {
			t.Errorf("%s switched cap %v differs from HVT %v", f, got, base)
		}
	}
}

func TestDynamicEnergyPerSwitch(t *testing.T) {
	lib := New(device.RVT)
	want := lib.SwitchedCapPerGate * lib.VDD * lib.VDD
	if got := lib.DynamicEnergyPerSwitch(); math.Abs(got-want) > 1e-24 {
		t.Errorf("CV² = %v, want %v", got, want)
	}
	// Per-gate switching energy at 7 nm lands in the 0.1-1 fJ decade.
	if got := lib.DynamicEnergyPerSwitch(); got < 1e-16 || got > 1e-14 {
		t.Errorf("per-switch energy = %v J, want 0.1-10 fJ", got)
	}
}

func TestLeakagePowerScaling(t *testing.T) {
	lib := New(device.SLVT)
	p1, err := lib.LeakagePower(1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lib.LeakagePower(2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2-2*p1) > 1e-18 {
		t.Errorf("leakage not linear in gates: %v vs 2×%v", p2, p1)
	}
	if _, err := lib.LeakagePower(-5); err == nil {
		t.Error("negative gates should fail")
	}
	z, err := lib.LeakagePower(0)
	if err != nil || z != 0 {
		t.Errorf("zero gates = %v, %v", z, err)
	}
}

func TestValidateCatchesCorruptCorners(t *testing.T) {
	good := New(device.RVT)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Library){
		func(l *Library) { l.VDD = 0 },
		func(l *Library) { l.FO4 = 0 },
		func(l *Library) { l.SwitchedCapPerGate = -1 },
		func(l *Library) { l.LeakagePerGate = -1 },
	} {
		l := New(device.RVT)
		mutate(&l)
		if err := l.Validate(); err == nil {
			t.Error("corrupt corner should fail validation")
		}
	}
}

func TestFO4TracksDeviceIEFF(t *testing.T) {
	// The library's speed must come from the device model: FO4 × min
	// effective drive is the calibration constant for every corner.
	for _, f := range device.VTFlavors() {
		lib := New(f)
		n := device.SiNFET(f)
		p := device.SiPFET(f)
		ieff := math.Min(n.IEFF(device.VDD), p.IEFF(device.VDD)*1.5)
		if got := lib.FO4 * ieff; math.Abs(got-4.0e-9) > 1e-12 {
			t.Errorf("%s: FO4×IEFF = %v, want the 4e-9 calibration constant", f, got)
		}
	}
}
