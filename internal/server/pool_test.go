package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppatc/internal/obs/flight"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() { ran.Add(1) }); err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Error("no jobs ran")
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-block })
	<-started // the single worker is now busy

	// Fill the queue slot, then the next submission must be rejected.
	queued := make(chan error, 1)
	go func() { queued <- p.Do(context.Background(), func() {}) }()
	// Wait until the queued job occupies the slot.
	for i := 0; p.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Do with full queue = %v, want ErrQueueFull", err)
	}

	close(block)
	if err := <-queued; err != nil {
		t.Errorf("queued job: %v", err)
	}
}

func TestPoolSkipsCanceledJobs(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() { close(started); <-block })
	<-started

	// Queue a job, then cancel it before the worker can pick it up.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	errc := make(chan error, 1)
	go func() { errc <- p.Do(ctx, func() { ran.Store(true) }) }()
	for i := 0; p.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Do = %v, want context.Canceled", err)
	}
	close(block)
	p.Close() // drain: the canceled job must have been skipped, not run
	if ran.Load() {
		t.Error("worker ran a job whose context was already canceled")
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2, 2)
	var ran atomic.Int64
	for i := 0; i < 2; i++ {
		go p.Do(context.Background(), func() { ran.Add(1) })
	}
	time.Sleep(10 * time.Millisecond)
	p.Close()
	p.Close() // idempotent
	if err := p.Do(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Do after Close = %v, want ErrPoolClosed", err)
	}
}

func TestLRU(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "3" {
		t.Errorf("c = %q, %v", v, ok)
	}
	c.Put("a", []byte("updated"))
	if v, _ := c.Get("a"); string(v) != "updated" {
		t.Errorf("a after update = %q", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestRequestKeyDistinct(t *testing.T) {
	a := RequestKey("evaluate", "all-Si", "crc32", "US")
	b := RequestKey("evaluate", "all-Si", "crc32", "Coal")
	c := RequestKey("suite", "all-Si", "crc32", "US")
	if a == b || a == c {
		t.Errorf("keys should differ: %q %q %q", a, b, c)
	}
	if a != RequestKey("evaluate", "all-Si", "crc32", "US") {
		t.Error("key is not deterministic")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var executions atomic.Int64
	block := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	shareds := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			v, _, shared, err := g.Do(context.Background(), "key", func() ([]byte, flight.Breakdown, error) {
				executions.Add(1)
				<-block
				return []byte("result"), flight.Breakdown{}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[slot] = v
			shareds[slot] = shared
		}(i)
	}
	// Let every caller either become the leader or park as a waiter.
	for i := 0; executions.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(block)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	leaders := 0
	for i := range results {
		if string(results[i]) != "result" {
			t.Errorf("caller %d got %q", i, results[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
}

func TestFlightGroupWaiterCancel(t *testing.T) {
	g := newFlightGroup()
	block := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "key", func() ([]byte, flight.Breakdown, error) {
		close(started)
		<-block
		return nil, flight.Breakdown{}, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, shared, err := g.Do(ctx, "key", func() ([]byte, flight.Breakdown, error) { return nil, flight.Breakdown{}, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter: shared=%v err=%v", shared, err)
	}
	close(block)
}
