package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppatc/internal/dse"
)

// smokeSweep is the smallest interesting sweep: both systems on the
// cheapest kernel, 2 points.
const smokeSweep = `{"name": "smoke", "axes": {"workload": ["huff"]}}`

func sweepConfig(dir string) Config {
	cfg := quietConfig()
	cfg.SweepDir = dir
	return cfg
}

func newSweepServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// waitSweep polls a job until it reaches a terminal state.
func waitSweep(t *testing.T, ts *httptest.Server, id string) sweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, ts, "/v1/sweeps/"+id)
		var st sweepStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("bad status body %s: %v", body, err)
		}
		if sweepTerminal(st.Status) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return sweepStatus{}
}

// TestSweepLifecycle walks the whole async API: POST → poll → stream
// NDJSON → analyses → metrics.
func TestSweepLifecycle(t *testing.T) {
	srv, ts := newSweepServer(t, sweepConfig(""))

	resp, body := post(t, ts, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != 2 {
		t.Fatalf("unexpected job envelope: %+v", st)
	}

	final := waitSweep(t, ts, st.ID)
	if final.Status != SweepDone || final.Completed != 2 {
		t.Fatalf("final status %+v", final)
	}

	// Results stream: 2 NDJSON lines, indices in order.
	_, raw := get(t, ts, "/v1/sweeps/"+st.ID+"/results")
	results, err := dse.ReadNDJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("results stream: %v (%s)", err, raw)
	}
	if len(results) != 2 || results[0].Index != 0 || results[1].Index != 1 {
		t.Fatalf("results %+v", results)
	}
	for _, r := range results {
		if !r.Feasible || r.TCG <= 0 {
			t.Fatalf("empty result %+v", r)
		}
	}

	// A second stream of a done job replays byte-identically.
	_, raw2 := get(t, ts, "/v1/sweeps/"+st.ID+"/results")
	if !bytes.Equal(raw, raw2) {
		t.Error("replayed results differ")
	}

	// Analyses of the finished sweep.
	resp, body = get(t, ts, "/v1/sweeps/"+st.ID+"/frontier")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier: %d %s", resp.StatusCode, body)
	}
	var analyses struct {
		Frontier []dse.Result `json:"frontier"`
	}
	if err := json.Unmarshal(body, &analyses); err != nil {
		t.Fatal(err)
	}
	if len(analyses.Frontier) == 0 {
		t.Error("empty frontier")
	}

	// Idempotent POST: the same spec maps to the same (done) job.
	resp, body = post(t, ts, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-POST: %d %s", resp.StatusCode, body)
	}
	var again sweepStatus
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID || again.Status != SweepDone {
		t.Fatalf("re-POST landed on %+v, want done job %s", again, st.ID)
	}

	// The job shows up in the listing and in /metrics.
	_, body = get(t, ts, "/v1/sweeps")
	if !strings.Contains(string(body), st.ID) {
		t.Errorf("job %s missing from listing %s", st.ID, body)
	}
	if got := srv.Metrics().SweepPoints.Load(); got != 2 {
		t.Errorf("sweep points counter = %d, want 2", got)
	}
	_, body = get(t, ts, "/metrics")
	for _, want := range []string{"ppatcd_sweep_points_total 2", `ppatcd_sweep_jobs_total{status="done"} 1`, "ppatcd_sweep_queue_depth"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSweepRestartResume: a daemon restart (new Server, same checkpoint
// dir) resumes a completed sweep from disk without re-evaluating.
func TestSweepRestartResume(t *testing.T) {
	dir := t.TempDir()

	srv1 := New(sweepConfig(dir))
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := post(t, ts1, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitSweep(t, ts1, st.ID)
	if got := srv1.Metrics().SweepPoints.Load(); got != 2 {
		t.Fatalf("first daemon evaluated %d points, want 2", got)
	}
	ts1.Close()
	srv1.Close()

	// "Restart": a fresh server over the same checkpoint directory.
	srv2, ts2 := newSweepServer(t, sweepConfig(dir))
	resp, body = post(t, ts2, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("re-POST after restart: %d %s", resp.StatusCode, body)
	}
	final := waitSweep(t, ts2, st.ID)
	if final.Status != SweepDone || final.Completed != 2 {
		t.Fatalf("resumed job: %+v", final)
	}
	if final.Resumed != 2 {
		t.Errorf("resumed %d points from checkpoint, want 2", final.Resumed)
	}
	if got := srv2.Metrics().SweepPoints.Load(); got != 0 {
		t.Errorf("restarted daemon re-evaluated %d points, want 0", got)
	}
}

// TestSweepCancelQueued: DELETE on a queued job cancels it before it
// runs.
func TestSweepCancelQueued(t *testing.T) {
	// No runners pick jobs up: SweepRunners=1 but the runner is starved
	// by pointing the queue at a job that never finishes is fragile;
	// instead cancel in the queued window by stopping the runner pool —
	// simplest deterministic route: a server whose base context is
	// already cancelled leaves every job queued.
	cfg := sweepConfig("")
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := New(cfg)
	srv.cancel() // runners exit; jobs stay queued
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var cancelled sweepStatus
	if err := json.Unmarshal(b, &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.Status != SweepCancelled {
		t.Fatalf("status after DELETE = %q, want cancelled", cancelled.Status)
	}
}

// TestSweepValidation: bad specs and unknown jobs map to 4xx.
func TestSweepValidation(t *testing.T) {
	_, ts := newSweepServer(t, sweepConfig(""))
	resp, _ := post(t, ts, "/v1/sweeps", `{"axes": {"system": ["vacuum-tube"]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown system: %d, want 400", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/v1/sweeps/no-such-job")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	cfg := sweepConfig("")
	cfg.SweepMaxPoints = 1
	_, ts2 := newSweepServer(t, cfg)
	resp, body := post(t, ts2, "/v1/sweeps", smokeSweep)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "cap is 1") {
		t.Errorf("oversized sweep: %d %s, want 400 with cap message", resp.StatusCode, body)
	}
}
