// Package server exposes the PPAtC engine as a long-lived JSON service:
// the evaluation pipeline behind cmd/ppatc, wrapped in a bounded worker
// pool, an LRU result cache with single-flight coalescing, and a
// Prometheus-style metrics surface. The pipeline is deterministic, so
// identical requests are exact cache hits and return byte-identical
// responses.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
	"ppatc/internal/obs"
	"ppatc/internal/obs/flight"
	"ppatc/internal/store"
	"ppatc/internal/tcdp"
	"ppatc/internal/units"
)

// Config sizes the daemon. Zero values take the documented defaults.
type Config struct {
	// Workers is the evaluation concurrency (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting requests per admission class before
	// 503s (default 64). Interactive and bulk work queue separately, so
	// a cold batch filling the bulk queue cannot starve (or reject)
	// single evaluations.
	QueueDepth int
	// BatchChunk bounds one sub-unit of a cold /v1/batch fan-out: a
	// bulk batch's misses are split into chunks of this many items that
	// run sequentially, so one batch occupies at most misses/chunk pool
	// slots at a time and concurrent batches interleave (default 16).
	BatchChunk int
	// CacheEntries bounds the LRU result cache (default 512).
	CacheEntries int
	// CacheShards stripes the result cache across this many mutex-guarded
	// shards, rounded up to a power of two (default 16), so hot-path cache
	// lookups from concurrent requests don't serialize on one lock.
	CacheShards int
	// RequestTimeout caps one evaluation (default 2 minutes).
	RequestTimeout time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for CPU,
	// heap and goroutine profiling of a live daemon.
	EnablePprof bool

	// SweepQueue bounds sweep jobs waiting for a runner (default 8).
	SweepQueue int
	// SweepRunners is the number of sweeps executing concurrently
	// (default 1; each sweep parallelizes internally across Workers).
	SweepRunners int
	// SweepDir, when set, holds per-job checkpoint files so a restarted
	// daemon resumes interrupted sweeps instead of recomputing them.
	SweepDir string
	// SweepMaxPoints rejects sweep specs expanding beyond this many
	// points (default 100000).
	SweepMaxPoints int

	// StoreDir, when set, opens a persistent result store under this
	// directory: evaluate/suite/tcdp responses, sweep point sets and
	// per-point results write through and survive restarts.
	StoreDir string
	// StoreBackend selects the on-disk layout: "segment" (default,
	// append-only NDJSON segments) or "cas" (content-addressed, dedups
	// identical results across keys).
	StoreBackend string
	// StoreMaxSegmentBytes caps one segment file of the segment backend
	// (0 = 8 MiB).
	StoreMaxSegmentBytes int64
	// Store injects a caller-built ResultStore (tests, embedding); it
	// takes precedence over StoreDir and is closed with the server.
	Store store.ResultStore

	// ClusterGossipInterval paces cluster membership gossip (default 1s;
	// only meaningful after StartCluster).
	ClusterGossipInterval time.Duration
	// ClusterPeerTTL declares a silent peer dead (default 5× the gossip
	// interval).
	ClusterPeerTTL time.Duration
	// ClusterLeaseTTL bounds one distributed-sweep range lease; a worker
	// silent longer than this loses the range to work-stealing (default
	// 30s).
	ClusterLeaseTTL time.Duration
	// ClusterRangeSize fixes the distributed-sweep shard size in points
	// (default: plan size / (members × 4), minimum 1).
	ClusterRangeSize int

	// FlightRecentSlots sizes the flight recorder's recent-events ring
	// (rounded up to a power of two; default 1024).
	FlightRecentSlots int
	// FlightSlowSlots sizes the ring retaining slow requests (default 256).
	FlightSlowSlots int
	// SlowThreshold marks requests at or above this latency as slow:
	// they are retained in the slow ring and logged at Warn (default
	// 100ms; negative disables).
	SlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.SweepQueue <= 0 {
		c.SweepQueue = 8
	}
	if c.SweepRunners <= 0 {
		c.SweepRunners = 1
	}
	if c.SweepMaxPoints <= 0 {
		c.SweepMaxPoints = 100000
	}
	if c.ClusterGossipInterval <= 0 {
		c.ClusterGossipInterval = time.Second
	}
	if c.ClusterLeaseTTL <= 0 {
		c.ClusterLeaseTTL = 30 * time.Second
	}
	if c.FlightRecentSlots <= 0 {
		c.FlightRecentSlots = 1024
	}
	if c.FlightSlowSlots <= 0 {
		c.FlightSlowSlots = 256
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0
	}
	return c
}

// Server is the PPAtC evaluation service.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pool     *Pool
	cache    *LRU
	flight   *flightGroup
	sweeps   *sweepManager
	store    store.ResultStore
	persist  persistStatus
	metrics  *Metrics
	recorder *flight.Recorder
	log      *slog.Logger
	//ppatcvet:ignore ctxflow server lifetime root: Close cancels it to stop detached computations and sweep runners
	base    context.Context
	cancel  context.CancelFunc
	started time.Time

	// cluster is set by StartCluster (nil in single-node mode);
	// draining flips on BeginShutdown so /healthz reports not-ready
	// before the listener starts refusing connections.
	cluster  atomic.Pointer[clusterState]
	draining atomic.Bool

	// gridsBody and workloadsBody are the static discovery responses,
	// encoded once at startup and written verbatim per request.
	gridsBody     []byte
	workloadsBody []byte
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		pool:    NewPool(cfg.Workers, cfg.QueueDepth),
		cache:   NewShardedLRU(cfg.CacheEntries, cfg.CacheShards),
		flight:  newFlightGroup(),
		metrics: NewMetrics(),
		log:     cfg.Logger,
		started: time.Now(),
	}
	s.recorder = flight.NewRecorder(cfg.FlightRecentSlots, cfg.FlightSlowSlots, cfg.SlowThreshold)
	s.encodeStaticBodies()
	s.base, s.cancel = context.WithCancel(context.Background())
	s.metrics.queueDepth = s.pool.QueueDepth
	s.metrics.queueDepthInteractive = func() int64 { return s.pool.QueueDepthClass(ClassInteractive) }
	s.metrics.queueDepthBulk = func() int64 { return s.pool.QueueDepthClass(ClassBulk) }
	s.metrics.cacheLen = s.cache.Len
	s.metrics.flightDropped = s.recorder.Dropped
	s.metrics.streamSubs = s.recorder.Hub().Subscribers

	s.persist.SweepDir = "ok"
	if cfg.SweepDir == "" {
		s.persist.SweepDir = "disabled"
	}
	if err := ensureSweepDir(cfg.SweepDir); err != nil {
		// A broken checkpoint path shouldn't keep the daemon down —
		// sweeps degrade to checkpoint-free, and /healthz carries the
		// degradation so operators see it (silent clearing hid it).
		s.log.Error("sweep checkpoint dir unavailable; checkpointing disabled",
			"dir", cfg.SweepDir, "error", err)
		s.persist.SweepDir = "degraded: " + err.Error()
		s.cfg.SweepDir = ""
	}
	s.openStore(cfg)
	s.sweeps = newSweepManager(cfg.SweepQueue)
	s.metrics.sweepQueue = func() int { return len(s.sweeps.queue) }
	for i := 0; i < cfg.SweepRunners; i++ {
		go s.runSweeps()
	}

	s.mux.HandleFunc("POST /v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("POST /v1/suite", s.instrument("suite", s.handleSuite))
	s.mux.HandleFunc("POST /v1/tcdp", s.instrument("tcdp", s.handleTCDP))
	s.mux.HandleFunc("POST /v1/sweeps", s.instrument("sweep_create", s.handleSweepCreate))
	s.mux.HandleFunc("GET /v1/sweeps", s.instrument("sweep_list", s.handleSweepList))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.instrument("sweep_status", s.handleSweepStatus))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.instrument("sweep_results", s.handleSweepResults))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/frontier", s.instrument("sweep_frontier", s.handleSweepFrontier))
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.instrument("sweep_cancel", s.handleSweepCancel))
	s.mux.HandleFunc("GET /v1/results", s.instrument("result_list", s.handleResultList))
	s.mux.HandleFunc("GET /v1/results/{key}", s.instrument("result_get", s.handleResultGet))
	s.mux.HandleFunc("GET /v1/grids", s.instrument("grids", s.handleGrids))
	s.mux.HandleFunc("GET /v1/workloads", s.instrument("workloads", s.handleWorkloads))
	// The stream and flight-dump endpoints are deliberately outside
	// instrument(): a stream lives as long as its client, which would
	// read as one enormous "slow request" in its own recorder.
	s.mux.HandleFunc("GET /v1/metrics/stream", s.handleMetricsStream)
	// Cluster control plane: mounted unconditionally, 503 until
	// StartCluster. Outside instrument() like the stream endpoints —
	// gossip chatter would drown the request telemetry.
	s.mux.HandleFunc("POST /cluster/v1/gossip", s.handleClusterGossip)
	s.mux.HandleFunc("POST /cluster/v1/sweeps/work", s.handleClusterWork)
	s.mux.HandleFunc("POST /cluster/v1/sweeps/{id}/claim", s.handleClusterClaim)
	s.mux.HandleFunc("POST /cluster/v1/sweeps/{id}/complete", s.handleClusterComplete)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /livez", s.handleLive)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (read-mostly; used by tests and
// the /metrics endpoint).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains the worker pool, cancels any computation still keyed to
// the server's base context, and closes the result store. Call after
// the HTTP listener has shut down.
func (s *Server) Close() {
	s.cancel()
	s.pool.Close()
	if c := s.cluster.Load(); c != nil {
		c.node.Close()
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.log.Error("result store close", "error", err)
		}
	}
}

// statusWriter captures the status code for logging and metrics, and
// carries the request's latency attribution: embedding the Attribution
// in the writer the request already allocates keeps the telemetry from
// costing a second per-request allocation.
type statusWriter struct {
	http.ResponseWriter
	status int
	att    flight.Attribution
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// attributionOf recovers the request's Attribution from the response
// writer instrument() wrapped. Handlers invoked outside instrument()
// (tests calling them directly) get a throwaway so the timing calls
// stay unconditional.
//
//ppatc:hotpath
func attributionOf(w http.ResponseWriter) *flight.Attribution {
	if sw, ok := w.(*statusWriter); ok {
		return &sw.att
	}
	return &flight.Attribution{}
}

// instrument wraps a handler with the request's whole observability
// story: it assigns (or adopts, via X-Request-ID) a trace ID, echoes it
// on the response, and emits one log record carrying the endpoint,
// status, latency, cache disposition and trace ID together — one line
// tells the whole request story.
//
// The request ID lives on the response header (set before the handler
// runs) rather than in a context value: handlers that need it read it
// back from there, which spares the hot path a context allocation and a
// request clone per request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewID()
		}
		w.Header().Set("X-Request-ID", rid)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.att.Endpoint = endpoint
		sw.att.RequestID = rid
		// Pool depth at admission: the head-of-line pressure this request
		// walked into, stamped before any of its own work queued.
		sw.att.PoolDepth = s.pool.QueueDepth()
		h(sw, r)
		d := time.Since(start)
		s.metrics.Observe(endpoint, d)
		s.metrics.ObserveDisposition(endpoint, sw.att.DispositionOrNone(), d, rid)
		ev := sw.att.Finish(start, d, sw.status)
		s.recorder.Record(ev)
		if s.recorder.IsSlow(d) {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				slog.String("endpoint", endpoint),
				slog.String("request_id", rid),
				slog.Float64("duration_ms", float64(d.Microseconds())/1e3),
				slog.String("cache", ev.Disposition),
				slog.Int("batch_size", ev.BatchSize),
				slog.Int64("pool_depth", ev.PoolDepth),
				slog.Float64("queue_wait_ms", float64(ev.QueueWaitNS)/1e6),
				slog.Float64("compute_ms", float64(ev.ComputeNS)/1e6),
				slog.Float64("encode_ms", float64(ev.EncodeNS)/1e6),
				slog.Float64("store_write_ms", float64(ev.StoreWriteNS)/1e6),
			)
		}
		if s.log.Enabled(r.Context(), slog.LevelInfo) {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Float64("duration_ms", float64(d.Microseconds())/1e3),
				slog.String("cache", sw.Header().Get("X-Cache")),
				slog.String("request_id", rid),
			)
		}
	}
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// workFn is one evaluation's encoder: it computes under ctx and writes
// the JSON body into buf, which the caller owns (it comes from a reused
// buffer pool — implementations must not retain buf or its bytes).
// encodeNS reports the time spent serializing the result (as opposed to
// computing it), so attribution can split the two.
type workFn func(ctx context.Context, buf *bytes.Buffer) (encodeNS int64, err error)

// encodePool recycles the encode buffers that workFns write into; the
// cache copies what it stores, so a buffer is free for reuse the moment
// its computation returns.
var encodePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getEncodeBuf() *bytes.Buffer {
	return encodePool.Get().(*bytes.Buffer)
}

func putEncodeBuf(buf *bytes.Buffer) {
	// Don't let one multi-megabyte suite response pin its buffer forever.
	if buf.Cap() > 1<<20 {
		return
	}
	buf.Reset()
	encodePool.Put(buf)
}

// compute serves key from the cache, or runs work on the worker pool
// (coalescing concurrent identical requests) and caches the encoded
// result. The returned bytes are exactly what was first computed, so
// repeated requests are byte-identical; they are shared with the cache
// and must not be mutated. disposition reports how the request was
// served: "HIT", "MISS" (this request led the computation),
// "COALESCED" (piggybacked on an identical in-flight computation),
// "STORE" (served from the persistent result store after eviction or a
// restart, without recomputation) or "REMOTE" (cluster mode: the key's
// owning peer served it; fwd is nil outside cluster mode and on every
// serve-locally path, and concurrent misses of a routed key coalesce
// onto a single forward).
//
//ppatc:hotpath
func (s *Server) compute(ctx context.Context, key string, work workFn, att *flight.Attribution, fwd *forwardSpec) (body []byte, disposition string, err error) {
	lookupStart := time.Now()
	if b, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		att.CacheLookupNS += time.Since(lookupStart).Nanoseconds()
		return b, "HIT", nil
	}
	s.metrics.CacheMisses.Add(1)
	// The persistent store is the second cache tier; its lookup time is
	// cache_lookup like the LRU's.
	if b, ok := s.storeLookup(key); ok {
		att.CacheLookupNS += time.Since(lookupStart).Nanoseconds()
		return b, "STORE", nil
	}
	att.CacheLookupNS += time.Since(lookupStart).Nanoseconds()
	// rid and the admission class are captured before the detached
	// goroutine: the leader's response header must not be touched after
	// the handler returns, and the class decides which pool queue the
	// computation enters.
	rid := att.RequestID
	class := ClassInteractive
	if att.Class == "bulk" {
		class = ClassBulk
	}
	b, bd, shared, err := s.flight.Do(ctx, key, func() ([]byte, flight.Breakdown, error) {
		// The computation runs under the server's lifetime, not any
		// requester's context, so a canceled requester cannot poison
		// coalesced waiters; the pool enforces queue bounds.
		jctx, cancel := context.WithTimeout(s.base, s.cfg.RequestTimeout)
		defer cancel()
		var forwardNS int64
		if fwd != nil {
			body, fbd, ok := s.computeForward(jctx, key, fwd)
			if ok {
				return body, fbd, nil
			}
			// Forward failed: fall through and compute locally, keeping
			// the time already spent forwarding attributed to peer_forward.
			forwardNS = fbd.PeerForwardNS
		}
		buf := getEncodeBuf()
		defer putEncodeBuf(buf)
		var werr error
		var encodeNS int64
		bd := flight.Breakdown{PeerForwardNS: forwardNS}
		// Every real computation runs under a trace so its stage spans
		// feed the per-stage latency histograms; the trace itself is
		// discarded (the ?trace=1 path returns one to the caller).
		tr := obs.NewTrace("")
		tctx := obs.WithTrace(jctx, tr)
		workStart := time.Now()
		wait, perr := s.pool.DoClassMeasured(jctx, class, func() { encodeNS, werr = work(tctx, buf) })
		if perr != nil {
			return nil, bd, perr
		}
		// The pool-measured wait is queue_wait; what the worker actually
		// ran splits into compute and the workFn's self-reported encode.
		s.metrics.ObserveQueueWait(class.String(), wait)
		bd.QueueWaitNS = wait.Nanoseconds()
		bd.ComputeNS = time.Since(workStart).Nanoseconds() - bd.QueueWaitNS - encodeNS
		if bd.ComputeNS < 0 {
			bd.ComputeNS = 0
		}
		bd.EncodeNS = encodeNS
		s.metrics.ObserveStages(tr)
		if werr != nil {
			return nil, bd, werr
		}
		// Put copies buf's bytes and returns the cache-owned copy; the
		// buffer itself goes straight back to the pool. The stored copy
		// also writes through to the persistent store, so the result
		// survives both eviction and restart.
		storeStart := time.Now()
		stored := s.cache.Put(key, buf.Bytes())
		s.persistResultFor(key, stored, rid)
		bd.StoreWriteNS = time.Since(storeStart).Nanoseconds()
		return stored, bd, nil
	})
	att.AddBreakdown(bd)
	if shared {
		s.metrics.Coalesced.Add(1)
		return b, "COALESCED", err
	}
	if bd.Remote {
		return b, "REMOTE", err
	}
	return b, "MISS", err
}

// writeComputeError maps evaluation errors onto the HTTP status space
// shared by every computing endpoint.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.Rejections.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled), errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// serveComputed runs compute and writes the JSON body with cache and
// backpressure semantics shared by every evaluation endpoint. With
// ?trace=1 the request bypasses the cache, computes fresh under a trace
// rooted at its request ID, and returns the span tree inline alongside
// the result.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, key string, work workFn, fwd *forwardSpec) {
	// Query() allocates its map; the common request has no query string
	// at all, so don't parse one unless it's there.
	if r.URL.RawQuery != "" {
		if q := r.URL.Query().Get("trace"); q == "1" || q == "true" {
			s.serveTraced(w, r, work)
			return
		}
	}
	if s.cluster.Load() != nil && s.refuseForwardLoop(w, r) {
		return
	}
	att := attributionOf(w)
	// Single evaluations are interactive by endpoint: the client is
	// waiting on exactly one request-sized result.
	att.Class = ClassInteractive.String()
	body, disposition, err := s.compute(r.Context(), key, work, att, fwd)
	att.Disposition = disposition
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", disposition)
	_, _ = w.Write(body)
}

// tracedResponse is the ?trace=1 envelope: the normal result plus the
// span tree of the computation that produced it.
type tracedResponse struct {
	RequestID string          `json:"request_id"`
	Result    json.RawMessage `json:"result"`
	Trace     tracedTrace     `json:"trace"`
}

type tracedTrace struct {
	ID    string         `json:"id"`
	Spans []obs.SpanNode `json:"spans"`
}

// serveTraced computes fresh (no cache, no coalescing — timings are the
// point) on the worker pool under a trace whose ID is the request ID,
// read back from the response header instrument set.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request, work workFn) {
	rid := w.Header().Get("X-Request-ID")
	att := attributionOf(w)
	att.Disposition = "BYPASS"
	jctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tr := obs.NewTrace(rid)
	tctx := obs.WithTrace(jctx, tr)
	buf := getEncodeBuf()
	defer putEncodeBuf(buf)
	var werr error
	var encodeNS int64
	workStart := time.Now()
	wait, perr := s.pool.DoMeasured(jctx, func() { encodeNS, werr = work(tctx, buf) })
	if perr != nil {
		s.writeComputeError(w, perr)
		return
	}
	att.QueueWaitNS += wait.Nanoseconds()
	att.EncodeNS += encodeNS
	if c := time.Since(workStart).Nanoseconds() - wait.Nanoseconds() - encodeNS; c > 0 {
		att.ComputeNS += c
	}
	s.metrics.ObserveStages(tr)
	if werr != nil {
		s.writeComputeError(w, werr)
		return
	}
	w.Header().Set("X-Cache", "BYPASS")
	writeJSON(w, tracedResponse{
		RequestID: rid,
		Result:    buf.Bytes(),
		Trace:     tracedTrace{ID: tr.ID, Spans: tr.Tree()},
	})
}

// evaluateRequest asks for one full PPAtC evaluation.
type evaluateRequest struct {
	// System is "all-Si", "M3D IGZO/CNFET/Si", or the shorthands si/m3d.
	System string `json:"system"`
	// Workload is a bundled Embench-style kernel name.
	Workload string `json:"workload"`
	// Grid names the energy grid (default "US").
	Grid string `json:"grid"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Grid == "" {
		req.Grid = "US"
	}
	// Resolve names only — building a core.System walks the whole design
	// stack, which would be wasted work on a cache hit. The system is
	// constructed inside the workFn, where a miss pays for it once.
	sysName, err := core.CanonicalSystemName(req.System)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := embench.ByName(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := carbon.GridByName(req.Grid)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := evaluateKey(sysName, wl.Name, grid.Name)
	fwd := s.forwardSpecFor(r, "/v1/evaluate", key,
		evaluateRequest{System: sysName, Workload: wl.Name, Grid: grid.Name})
	s.serveComputed(w, r, key, s.evaluateWork(sysName, wl, grid), fwd)
}

// evaluateWork builds the workFn computing one (system, workload, grid)
// tuple — shared by /v1/evaluate and /v1/batch items so both populate
// the same cache entries.
func (s *Server) evaluateWork(sysName string, wl embench.Workload, grid carbon.Grid) workFn {
	return func(ctx context.Context, buf *bytes.Buffer) (int64, error) {
		sys, err := core.SystemByName(sysName)
		if err != nil {
			return 0, err
		}
		res, err := core.EvaluateContext(ctx, sys, wl, grid)
		if err != nil {
			return 0, err
		}
		encStart := time.Now()
		err = core.WriteJSONOne(buf, res)
		return time.Since(encStart).Nanoseconds(), err
	}
}

// suiteRequest asks for the full per-workload comparison suite.
type suiteRequest struct {
	// Grid names the energy grid (default "US").
	Grid string `json:"grid"`
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var req suiteRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Grid == "" {
		req.Grid = "US"
	}
	grid, err := carbon.GridByName(req.Grid)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := suiteKey(grid.Name)
	fwd := s.forwardSpecFor(r, "/v1/suite", key, suiteRequest{Grid: grid.Name})
	s.serveComputed(w, r, key, func(ctx context.Context, buf *bytes.Buffer) (int64, error) {
		rows, err := core.SuiteContext(ctx, grid)
		if err != nil {
			return 0, err
		}
		encStart := time.Now()
		err = core.WriteSuiteJSON(buf, rows)
		return time.Since(encStart).Nanoseconds(), err
	}, fwd)
}

// tcdpRequest asks for the carbon-efficiency comparison of the two
// designs at a lifetime: the tCDP ratio, crossovers, and the Fig. 6a
// isoline sampled at the requested operational scales.
type tcdpRequest struct {
	// Workload is a bundled kernel name (default "matmult-int").
	Workload string `json:"workload"`
	// Grid names the energy grid (default "US").
	Grid string `json:"grid"`
	// Months is the system lifetime (default 24).
	Months float64 `json:"months"`
	// OpScales samples the isoline x(y) at these operational-energy
	// scales (default 0.25..1.5 in steps of 0.25).
	OpScales []float64 `json:"op_scales"`
}

// tcdpDesign is one design's slice of the tCDP response.
type tcdpDesign struct {
	System            string  `json:"system"`
	EmbodiedG         float64 `json:"embodied_g"`
	OperationalG      float64 `json:"operational_g"`
	TCG               float64 `json:"tc_g"`
	TCDPGS            float64 `json:"tcdp_gs"`
	EmbodiedOpCrossMo float64 `json:"embodied_operational_crossover_months"`
}

// isolinePoint is one sample of the Fig. 6a isoline.
type isolinePoint struct {
	OpScale       float64 `json:"op_scale"`
	EmbodiedScale float64 `json:"embodied_scale"`
}

// tcdpResponse is the /v1/tcdp payload.
type tcdpResponse struct {
	Workload string  `json:"workload"`
	Grid     string  `json:"grid"`
	Months   float64 `json:"months"`
	// TCDPRatio is tCDP(all-Si)/tCDP(M3D); >1 means the M3D design wins.
	TCDPRatio float64    `json:"tcdp_ratio"`
	Si        tcdpDesign `json:"si"`
	M3D       tcdpDesign `json:"m3d"`
	// TCCrossoverMonths is where the designs' total-carbon curves cross
	// (omitted when one design dominates at every lifetime).
	TCCrossoverMonths *float64       `json:"tc_crossover_months,omitempty"`
	Isoline           []isolinePoint `json:"isoline"`
}

func (s *Server) handleTCDP(w http.ResponseWriter, r *http.Request) {
	var req tcdpRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Workload == "" {
		req.Workload = "matmult-int"
	}
	if req.Grid == "" {
		req.Grid = "US"
	}
	if req.Months == 0 {
		req.Months = 24
	}
	if req.Months <= 0 {
		writeError(w, http.StatusBadRequest, errors.New("months must be positive"))
		return
	}
	if len(req.OpScales) == 0 {
		req.OpScales = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	}
	for _, y := range req.OpScales {
		if y <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("op_scales must be positive"))
			return
		}
	}
	wl, err := embench.ByName(req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := carbon.GridByName(req.Grid)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := RequestKey("tcdp", wl.Name, grid.Name, req.Months, req.OpScales)
	fwd := s.forwardSpecFor(r, "/v1/tcdp", key, tcdpRequest{
		Workload: wl.Name, Grid: grid.Name, Months: req.Months, OpScales: req.OpScales,
	})
	s.serveComputed(w, r, key, func(ctx context.Context, buf *bytes.Buffer) (int64, error) {
		return computeTCDP(ctx, buf, wl, grid, req.Months, req.OpScales)
	}, fwd)
}

func computeTCDP(ctx context.Context, buf *bytes.Buffer, wl embench.Workload, grid carbon.Grid, months float64, opScales []float64) (int64, error) {
	si, err := core.EvaluateContext(ctx, core.AllSiSystem(), wl, grid)
	if err != nil {
		return 0, err
	}
	m3d, err := core.EvaluateContext(ctx, core.M3DSystem(), wl, grid)
	if err != nil {
		return 0, err
	}
	sc := tcdp.PaperScenario()
	life := units.Months(months)
	a, b := si.DesignPoint(), m3d.DesignPoint()

	ratio, err := tcdp.Ratio(a, b, sc, life)
	if err != nil {
		return 0, err
	}
	resp := tcdpResponse{
		Workload:  wl.Name,
		Grid:      grid.Name,
		Months:    months,
		TCDPRatio: ratio,
	}
	for _, d := range []struct {
		pt  tcdp.DesignPoint
		out *tcdpDesign
	}{{a, &resp.Si}, {b, &resp.M3D}} {
		tc, err := tcdp.TC(d.pt, sc, life)
		if err != nil {
			return 0, err
		}
		prod, err := tcdp.TCDP(d.pt, sc, life)
		if err != nil {
			return 0, err
		}
		cross, err := tcdp.EmbodiedOperationalCrossover(d.pt, sc)
		if err != nil {
			return 0, err
		}
		*d.out = tcdpDesign{
			System:            d.pt.Name,
			EmbodiedG:         tc.Embodied.Grams(),
			OperationalG:      tc.Operational.Grams(),
			TCG:               tc.TC().Grams(),
			TCDPGS:            prod,
			EmbodiedOpCrossMo: float64(cross),
		}
	}
	if cross, err := tcdp.DesignCrossover(a, b, sc); err == nil {
		v := float64(cross)
		resp.TCCrossoverMonths = &v
	}
	iso, err := tcdp.Isoline(b, a, sc, life)
	if err != nil {
		return 0, err
	}
	for _, y := range opScales {
		resp.Isoline = append(resp.Isoline, isolinePoint{OpScale: y, EmbodiedScale: iso(y)})
	}
	encStart := time.Now()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	err = enc.Encode(resp)
	return time.Since(encStart).Nanoseconds(), err
}

// gridInfo is one entry of the /v1/grids discovery response.
type gridInfo struct {
	Name             string  `json:"name"`
	IntensityGPerKWh float64 `json:"intensity_g_per_kwh"`
}

// workloadInfo is one entry of the /v1/workloads discovery response.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// encodeStaticBodies renders the discovery responses once at startup:
// grids and workloads are compiled in, so their bodies never change and
// per-request encoding would be pure waste.
func (s *Server) encodeStaticBodies() {
	grids := make([]gridInfo, 0, 4)
	for _, g := range carbon.Grids() {
		grids = append(grids, gridInfo{Name: g.Name, IntensityGPerKWh: g.Intensity.GramsPerKilowattHour()})
	}
	ws := embench.Workloads()
	wls := make([]workloadInfo, 0, len(ws))
	for _, wl := range ws {
		wls = append(wls, workloadInfo{Name: wl.Name, Description: wl.Description})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(grids); err != nil {
		panic(fmt.Sprintf("server: encoding static grids body: %v", err))
	}
	s.gridsBody = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := enc.Encode(wls); err != nil {
		panic(fmt.Sprintf("server: encoding static workloads body: %v", err))
	}
	s.workloadsBody = append([]byte(nil), buf.Bytes()...)
}

func (s *Server) handleGrids(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(s.gridsBody)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(s.workloadsBody)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleHealth is readiness: a draining server answers 503 so load
// balancers and cluster peers stop routing to it before the listener
// closes (BeginShutdown flips the flag ahead of drain). Use /livez for
// liveness — it stays 200 for as long as the process can serve at all.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if strings.HasPrefix(s.persist.SweepDir, "degraded") || strings.HasPrefix(s.persist.Store, "degraded") {
		status = "degraded"
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":       status,
		"uptime_s":     time.Since(s.started).Seconds(),
		"queue_depth":  s.pool.QueueDepth(),
		"cache_shards": s.cache.Shards(),
		"persistence":  s.persist,
	}
	if ch := s.clusterHealth(); ch != nil {
		body["cluster"] = ch
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// handleLive is liveness: 200 whenever the process is up, draining
// included. Orchestrators restart on /livez failures and deroute on
// /healthz failures; conflating the two turns every drain into a kill.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "alive"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.WriteTo(w)
}
