package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"ppatc/internal/dse"
	"ppatc/internal/store"
)

// The persistence layer: evaluation responses and sweep results write
// through the in-memory cache to a pluggable store.ResultStore, so a
// restarted (or scaled-out) daemon serves historical results from disk
// instead of re-running the pipeline. The store is an accelerator, not
// a dependency — every store failure degrades to compute-on-miss and is
// surfaced on /healthz rather than failing requests.

// Store backends selectable by Config.StoreBackend / ppatcd -store-backend.
const (
	StoreBackendSegment = "segment"
	StoreBackendCAS     = "cas"
)

// persistStatus is the /healthz persistence report: one line per
// persistence surface, "ok", "disabled", or "degraded: <why>".
type persistStatus struct {
	SweepDir string `json:"sweep_dir"`
	Store    string `json:"store"`
}

// openStore resolves Config.Store/StoreDir into the server's result
// store. A failed open logs, marks /healthz degraded and leaves the
// daemon serving compute-only — the same degrade-don't-die policy as
// the sweep checkpoint directory.
func (s *Server) openStore(cfg Config) {
	switch {
	case cfg.Store != nil:
		s.store = cfg.Store
		s.persist.Store = "ok"
	case cfg.StoreDir == "":
		s.persist.Store = "disabled"
		return
	default:
		var err error
		switch cfg.StoreBackend {
		case "", StoreBackendSegment:
			s.store, err = store.OpenSegmentStore(cfg.StoreDir, cfg.StoreMaxSegmentBytes)
		case StoreBackendCAS:
			s.store, err = store.OpenCASStore(cfg.StoreDir)
		default:
			err = fmt.Errorf("unknown store backend %q (valid: %s, %s)",
				cfg.StoreBackend, StoreBackendSegment, StoreBackendCAS)
		}
		if err != nil {
			s.log.Error("result store unavailable; persistence disabled",
				"dir", cfg.StoreDir, "error", err)
			s.persist.Store = "degraded: " + err.Error()
			s.store = nil
			return
		}
		s.persist.Store = "ok"
	}
	s.metrics.storeKeys = func() int { return s.store.Stats().Keys }
	s.warmCache()
}

// errWarmFull stops the warm-up scan once the cache is at capacity.
var errWarmFull = errors.New("cache full")

// warmCache preloads the response cache from the store at boot, newest
// restart picking up where the last process left off: request-shaped
// records (evaluate, suite, tcdp) go straight into the LRU so the first
// wave of traffic after a restart hits memory, not disk or pipeline.
func (s *Server) warmCache() {
	warmed := 0
	for _, prefix := range []string{"evaluate|", "suite|", "tcdp:"} {
		err := s.store.Scan(prefix, func(rec store.Record) error {
			if warmed >= s.cfg.CacheEntries {
				return errWarmFull
			}
			s.cache.Put(rec.Key, rec.Body)
			warmed++
			return nil
		})
		if err != nil && !errors.Is(err, errWarmFull) {
			s.log.Error("cache warm-up scan failed", "prefix", prefix, "error", err)
			s.metrics.StoreErrors.Add(1)
			return
		}
		if errors.Is(err, errWarmFull) {
			break
		}
	}
	if warmed > 0 {
		s.log.Info("cache warmed from store", "entries", warmed)
	}
}

// storeKind tags a response-cache key with its record kind.
func storeKind(key string) string {
	switch {
	case strings.HasPrefix(key, "evaluate|"):
		return "evaluate"
	case strings.HasPrefix(key, "suite|"):
		return "suite"
	case strings.HasPrefix(key, "tcdp:"):
		return "tcdp"
	default:
		return "result"
	}
}

// persistResult writes one computed response through to the store.
// Failures are metered and logged, never propagated — losing
// persistence must not fail the request that computed the result.
func (s *Server) persistResult(key string, body []byte) {
	s.persistResultFor(key, body, "")
}

// persistResultFor is persistResult carrying the originating request's
// ID, so a failed (or slow) write-through joins back to the request
// that computed the result in the logs and flight recorder.
func (s *Server) persistResultFor(key string, body []byte, requestID string) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(store.Record{Key: key, Kind: storeKind(key), Body: body}); err != nil {
		s.metrics.StoreErrors.Add(1)
		s.log.Warn("store write-through failed", "key", key, "request_id", requestID, "error", err)
		return
	}
	s.metrics.StoreWrites.Add(1)
}

// storeLookup serves a cache miss from the persistent store, promoting
// the record back into the LRU. ok is false when there is no store, the
// key is absent, or the read failed (metered, logged, degraded to
// compute).
func (s *Server) storeLookup(key string) (body []byte, ok bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok, err := s.store.Get(key)
	if err != nil {
		s.metrics.StoreErrors.Add(1)
		s.log.Warn("store read failed", "key", key, "error", err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	s.metrics.StoreHits.Add(1)
	return s.cache.Put(key, rec.Body), true
}

// persistPoint writes one freshly evaluated sweep point through to the
// store under its coordinate key. Metered log-don't-fail, like every
// persistence write.
func (s *Server) persistPoint(plan *dse.Plan, r dse.Result, requestID string) {
	if s.store == nil {
		return
	}
	if err := dse.PersistPoint(s.store, plan, r); err != nil {
		s.metrics.StoreErrors.Add(1)
		s.log.Warn("point persist failed", "index", r.Index, "request_id", requestID, "error", err)
		return
	}
	s.metrics.StoreWrites.Add(1)
}

// loadStoredSweep reads a finished sweep's result set from the store;
// ok is false when there's no store, no record, or the read failed.
func (s *Server) loadStoredSweep(id string) ([]dse.Result, bool) {
	if s.store == nil {
		return nil, false
	}
	results, ok, err := dse.LoadSweep(s.store, id)
	if err != nil {
		s.metrics.StoreErrors.Add(1)
		s.log.Warn("stored sweep read failed", "id", id, "error", err)
		return nil, false
	}
	if ok {
		s.metrics.StoreHits.Add(1)
	}
	return results, ok
}

// serveStoredSweepResults replays a finished sweep's NDJSON stream from
// the store for an ID the in-memory job table no longer knows — the
// daemon restarted since the sweep ran. The replay is byte-identical to
// the live stream: MarshalLine over the same ordered result set.
func (s *Server) serveStoredSweepResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	results, ok := s.loadStoredSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", "STORE")
	for i := range results {
		line, err := results[i].MarshalLine()
		if err != nil {
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
	}
}

// serveStoredSweepStatus reconstructs a terminal status for a stored
// sweep whose job entry didn't survive the restart.
func (s *Server) serveStoredSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	results, ok := s.loadStoredSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	writeJSON(w, sweepStatus{
		ID:        id,
		Status:    SweepDone,
		Total:     len(results),
		Completed: len(results),
		Stored:    true,
	})
}

// persistSweep stores a finished sweep's result set for post-restart
// replay; per-point records were already written by the OnComplete
// write-through.
func (s *Server) persistSweep(id string, results []dse.Result, requestID string) {
	if s.store == nil {
		return
	}
	if err := dse.PersistSweep(s.store, id, results); err != nil {
		s.metrics.StoreErrors.Add(1)
		s.log.Warn("sweep persist failed", "id", id, "request_id", requestID, "error", err)
		return
	}
	s.metrics.StoreWrites.Add(1)
}

// resultInfo is one entry of the GET /v1/results listing.
type resultInfo struct {
	Key   string `json:"key"`
	Kind  string `json:"kind,omitempty"`
	Bytes int    `json:"bytes"`
}

// resultListResponse is the GET /v1/results envelope.
type resultListResponse struct {
	Stats   store.Stats  `json:"stats"`
	Count   int          `json:"count"`
	Results []resultInfo `json:"results"`
}

// handleResultList lists stored records (filtered by ?prefix=), with
// the store's stats — the operator's view of what survived restarts.
func (s *Server) handleResultList(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no result store configured (-store-dir)"))
		return
	}
	prefix := ""
	if r.URL.RawQuery != "" {
		prefix = r.URL.Query().Get("prefix")
	}
	out := resultListResponse{Stats: s.store.Stats(), Results: []resultInfo{}}
	err := s.store.Scan(prefix, func(rec store.Record) error {
		out.Results = append(out.Results, resultInfo{Key: rec.Key, Kind: rec.Kind, Bytes: len(rec.Body)})
		return nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out.Count = len(out.Results)
	writeJSON(w, out)
}

// handleResultGet serves one stored record verbatim by its canonical
// key (URL-escaped in the path: GET /v1/results/evaluate%7Csi%7C…).
// Bodies are returned byte-identically to the computation that produced
// them, restarts notwithstanding.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no result store configured (-store-dir)"))
		return
	}
	key := r.PathValue("key")
	rec, ok, err := s.store.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no stored result under key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "STORE")
	_, _ = w.Write(rec.Body)
}
