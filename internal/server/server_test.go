package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func quietConfig() Config {
	return Config{
		Workers:      4,
		QueueDepth:   16,
		CacheEntries: 32,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(quietConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func TestDiscoveryAndHealth(t *testing.T) {
	_, ts := newTestServer(t)

	resp, b := get(t, ts, "/v1/grids")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grids status %d: %s", resp.StatusCode, b)
	}
	var grids []struct {
		Name             string  `json:"name"`
		IntensityGPerKWh float64 `json:"intensity_g_per_kwh"`
	}
	if err := json.Unmarshal(b, &grids); err != nil {
		t.Fatalf("decode grids: %v", err)
	}
	if len(grids) != 4 || grids[0].Name != "US" || grids[0].IntensityGPerKWh != 380 {
		t.Errorf("unexpected grids: %+v", grids)
	}

	resp, b = get(t, ts, "/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workloads status %d", resp.StatusCode)
	}
	var workloads []struct{ Name, Description string }
	if err := json.Unmarshal(b, &workloads); err != nil {
		t.Fatalf("decode workloads: %v", err)
	}
	if len(workloads) < 8 {
		t.Errorf("got %d workloads, want >= 8", len(workloads))
	}

	resp, b = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		t.Errorf("healthz status %d body %s", resp.StatusCode, b)
	}
}

func TestEvaluateCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)
	body := `{"system":"si","workload":"crc32","grid":"US"}`

	resp1, b1 := post(t, ts, "/v1/evaluate", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first evaluate: status %d: %s", resp1.StatusCode, b1)
	}
	if h := resp1.Header.Get("X-Cache"); h != "MISS" {
		t.Errorf("first evaluate X-Cache = %q, want MISS", h)
	}

	// A differently-cased but equivalent request must be the same cache key.
	resp2, b2 := post(t, ts, "/v1/evaluate", `{"system":"ALL-SI","workload":"crc32","grid":"us"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second evaluate: status %d: %s", resp2.StatusCode, b2)
	}
	if h := resp2.Header.Get("X-Cache"); h != "HIT" {
		t.Errorf("second evaluate X-Cache = %q, want HIT", h)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cache hit is not byte-identical to the original response")
	}

	var decoded struct {
		System   string `json:"system"`
		Workload string `json:"workload"`
		Cycles   uint64 `json:"cycles"`
	}
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatalf("decode evaluate: %v", err)
	}
	if decoded.System != "all-Si" || decoded.Workload != "crc32" || decoded.Cycles == 0 {
		t.Errorf("unexpected evaluation: %+v", decoded)
	}

	if hits := srv.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if misses := srv.Metrics().CacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}

	// The counters must be visible at /metrics.
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		"ppatcd_cache_hits_total 1",
		"ppatcd_cache_misses_total 1",
		`ppatcd_requests_total{endpoint="evaluate"} 2`,
		`ppatcd_request_seconds_count{endpoint="evaluate"} 2`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestConcurrentEvaluate(t *testing.T) {
	srv, ts := newTestServer(t)
	requests := []string{
		`{"system":"si","workload":"crc32"}`,
		`{"system":"m3d","workload":"crc32"}`,
		`{"system":"si","workload":"sieve"}`,
	}
	const perRequest = 6

	var wg sync.WaitGroup
	bodies := make([][]byte, len(requests)*perRequest)
	errs := make([]error, len(requests)*perRequest)
	for i, req := range requests {
		for j := 0; j < perRequest; j++ {
			wg.Add(1)
			go func(slot int, body string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
				if err != nil {
					errs[slot] = err
					return
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					errs[slot] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[slot] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
					return
				}
				bodies[slot] = b
			}(i*perRequest+j, req)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Every response for the same request must be byte-identical.
	for i := range requests {
		first := bodies[i*perRequest]
		for j := 1; j < perRequest; j++ {
			if !bytes.Equal(first, bodies[i*perRequest+j]) {
				t.Errorf("request %d: response %d differs from first", i, j)
			}
		}
	}
	m := srv.Metrics()
	total := m.Requests("evaluate")
	if total != int64(len(requests)*perRequest) {
		t.Errorf("requests_total = %d, want %d", total, len(requests)*perRequest)
	}
	if m.CacheHits.Load()+m.CacheMisses.Load() != total {
		t.Errorf("hits+misses = %d, want %d", m.CacheHits.Load()+m.CacheMisses.Load(), total)
	}
}

func TestTCDPEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, b := post(t, ts, "/v1/tcdp", `{"workload":"crc32","months":24}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tcdp status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Workload  string  `json:"workload"`
		Grid      string  `json:"grid"`
		Months    float64 `json:"months"`
		TCDPRatio float64 `json:"tcdp_ratio"`
		Si        struct {
			TCG               float64 `json:"tc_g"`
			EmbodiedOpCrossMo float64 `json:"embodied_operational_crossover_months"`
		} `json:"si"`
		M3D struct {
			TCG float64 `json:"tc_g"`
		} `json:"m3d"`
		Isoline []struct {
			OpScale       float64 `json:"op_scale"`
			EmbodiedScale float64 `json:"embodied_scale"`
		} `json:"isoline"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decode tcdp: %v", err)
	}
	if out.Workload != "crc32" || out.Grid != "US" || out.Months != 24 {
		t.Errorf("echoed parameters wrong: %+v", out)
	}
	if out.TCDPRatio <= 0.5 || out.TCDPRatio >= 2 {
		t.Errorf("tcdp_ratio = %v, want a ratio near 1", out.TCDPRatio)
	}
	if out.Si.TCG <= 0 || out.M3D.TCG <= 0 {
		t.Errorf("total carbon must be positive: %+v", out)
	}
	if out.Si.EmbodiedOpCrossMo <= 0 {
		t.Errorf("crossover must be positive: %v", out.Si.EmbodiedOpCrossMo)
	}
	if len(out.Isoline) != 6 {
		t.Errorf("got %d isoline points, want 6", len(out.Isoline))
	}
}

func TestSuiteEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("suite evaluates every workload on both designs")
	}
	_, ts := newTestServer(t)
	resp, b := post(t, ts, "/v1/suite", `{"grid":"US"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite status %d: %s", resp.StatusCode, b)
	}
	var rows []struct {
		Workload    string  `json:"workload"`
		Cycles      uint64  `json:"cycles"`
		TCDPRatio24 float64 `json:"tcdp_ratio_24mo"`
	}
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatalf("decode suite: %v", err)
	}
	if len(rows) < 8 {
		t.Fatalf("got %d rows, want >= 8", len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 || r.TCDPRatio24 <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	// Second call must come from the cache, byte-identical.
	resp2, b2 := post(t, ts, "/v1/suite", `{"grid":"US"}`)
	if resp2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(b, b2) {
		t.Error("repeated suite request should be a byte-identical cache hit")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"bad json", "/v1/evaluate", `{"system":`, http.StatusBadRequest},
		{"unknown field", "/v1/evaluate", `{"system":"si","workload":"crc32","bogus":1}`, http.StatusBadRequest},
		{"unknown system", "/v1/evaluate", `{"system":"quantum","workload":"crc32"}`, http.StatusBadRequest},
		{"unknown workload", "/v1/evaluate", `{"system":"si","workload":"doom"}`, http.StatusBadRequest},
		{"unknown grid", "/v1/evaluate", `{"system":"si","workload":"crc32","grid":"Mars"}`, http.StatusBadRequest},
		{"bad months", "/v1/tcdp", `{"months":-3}`, http.StatusBadRequest},
		{"bad scales", "/v1/tcdp", `{"op_scales":[0.5,-1]}`, http.StatusBadRequest},
		{"unknown suite grid", "/v1/suite", `{"grid":"Mars"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, b := post(t, ts, c.path, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.wantStatus, b)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not a JSON envelope: %s", c.name, b)
		}
	}

	// Grid errors must list the valid names (the GridByName contract).
	_, b := post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32","grid":"Mars"}`)
	for _, name := range []string{"US", "Coal", "Solar", "Taiwan"} {
		if !bytes.Contains(b, []byte(name)) {
			t.Errorf("grid error should list %q: %s", name, b)
		}
	}

	// Method mismatches are rejected by the router.
	resp, _ := get(t, ts, "/v1/evaluate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate status %d, want 405", resp.StatusCode)
	}
}

// TestGracefulDrain verifies the SIGTERM path's contract: http.Server.
// Shutdown (what the daemon calls on signal) lets an in-flight evaluation
// finish and respond before the listener closes.
func TestGracefulDrain(t *testing.T) {
	srv := New(quietConfig())
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/evaluate",
			"application/json", strings.NewReader(`{"system":"m3d","workload":"sieve"}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b, err: err}
	}()

	// Give the request a moment to get in flight, then shut down.
	time.Sleep(50 * time.Millisecond)
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain: %s", r.status, r.body)
	}
}
