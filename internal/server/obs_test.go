package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ppatc/internal/core"
	"ppatc/internal/obs"
)

const evalBody = `{"system":"si","workload":"crc32","grid":"US"}`

func TestRequestIDAdoptedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate", strings.NewReader(evalBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Errorf("X-Request-ID = %q, want the caller's ID echoed", got)
	}

	// Without a caller ID the server must mint one.
	resp2, _ := post(t, ts, "/v1/evaluate", evalBody)
	if got := resp2.Header.Get("X-Request-ID"); got == "" {
		t.Error("server did not assign a request ID")
	}
}

func TestTraceQueryReturnsSpanTree(t *testing.T) {
	_, ts := newTestServer(t)

	resp, b := post(t, ts, "/v1/evaluate?trace=1", evalBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
		t.Errorf("X-Cache = %q, want BYPASS (traced requests skip the cache)", got)
	}
	var env struct {
		RequestID string          `json:"request_id"`
		Result    json.RawMessage `json:"result"`
		Trace     struct {
			ID    string         `json:"id"`
			Spans []obs.SpanNode `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("decode envelope: %v\n%s", err, b)
	}
	if env.RequestID == "" || env.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("envelope request_id %q != header %q", env.RequestID, resp.Header.Get("X-Request-ID"))
	}
	if env.Trace.ID != env.RequestID {
		t.Errorf("trace id %q != request id %q", env.Trace.ID, env.RequestID)
	}
	// The result inside the envelope is the normal evaluation payload.
	var result struct {
		System string `json:"system"`
	}
	if err := json.Unmarshal(env.Result, &result); err != nil {
		t.Fatalf("decode inner result: %v", err)
	}
	if result.System == "" {
		t.Error("inner result missing system field")
	}
	// The span tree carries the full pipeline.
	if len(env.Trace.Spans) != 1 || env.Trace.Spans[0].Name != "evaluate" {
		t.Fatalf("want one evaluate root span, got %+v", env.Trace.Spans)
	}
	var stages []string
	for _, c := range env.Trace.Spans[0].Children {
		stages = append(stages, c.Name)
	}
	want := core.Stages()
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Errorf("stage spans = %v, want %v", stages, want)
	}

	// A traced request must not have populated the cache: the next plain
	// request is a MISS, not a HIT.
	resp2, _ := post(t, ts, "/v1/evaluate", evalBody)
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("request after traced run: X-Cache = %q, want MISS", got)
	}
}

func TestStageLatencyHistogramsExposed(t *testing.T) {
	srv, ts := newTestServer(t)

	post(t, ts, "/v1/evaluate", evalBody)
	_, b := get(t, ts, "/metrics")
	body := string(b)
	for _, stage := range core.Stages() {
		line := fmt.Sprintf("ppatcd_stage_seconds_count{stage=%q} 1", stage)
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q after one evaluation", line)
		}
		if got := srv.metrics.StageCount(stage); got != 1 {
			t.Errorf("StageCount(%q) = %d, want 1", stage, got)
		}
	}
	// A cache hit computes nothing, so stage counts must not move.
	post(t, ts, "/v1/evaluate", evalBody)
	if got := srv.metrics.StageCount(core.StageEmbench); got != 1 {
		t.Errorf("cache hit advanced stage histogram to %d", got)
	}
}

func TestRequestLogCarriesDispositionAndID(t *testing.T) {
	var buf bytes.Buffer
	cfg := quietConfig()
	cfg.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	post(t, ts, "/v1/evaluate", evalBody) // MISS
	post(t, ts, "/v1/evaluate", evalBody) // HIT

	type record struct {
		Msg        string  `json:"msg"`
		Endpoint   string  `json:"endpoint"`
		Status     int     `json:"status"`
		DurationMS float64 `json:"duration_ms"`
		Cache      string  `json:"cache"`
		RequestID  string  `json:"request_id"`
	}
	var dispositions []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec.Msg != "request" || rec.Endpoint != "evaluate" {
			continue
		}
		if rec.Status != http.StatusOK {
			t.Errorf("log status = %d, want 200", rec.Status)
		}
		if rec.DurationMS < 0 {
			t.Errorf("log duration_ms = %v, want >= 0", rec.DurationMS)
		}
		if rec.RequestID == "" {
			t.Error("log record missing request_id")
		}
		dispositions = append(dispositions, rec.Cache)
	}
	if len(dispositions) != 2 || dispositions[0] != "MISS" || dispositions[1] != "HIT" {
		t.Errorf("logged cache dispositions = %v, want [MISS HIT]", dispositions)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	// Default config: pprof is off.
	_, ts := newTestServer(t)
	resp, _ := get(t, ts, "/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	cfg := quietConfig()
	cfg.EnablePprof = true
	srv := New(cfg)
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv.Close()
	})
	resp2, b := get(t, ts2, "/debug/pprof/")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d: %s", resp2.StatusCode, b)
	}
}
