package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Pool.Do when the request queue is at
// capacity; callers should surface it as backpressure (HTTP 503).
var ErrQueueFull = errors.New("server: request queue full")

// ErrPoolClosed is returned by Pool.Do after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// Class is a job's admission class. Interactive jobs (single
// evaluations, likely-cached work) are always picked before bulk jobs
// (cold batch fan-outs), so a 256-tuple cold batch can never put tens
// of milliseconds of queue ahead of a 100µs request — the head-of-line
// blocking BENCH_4 measured as a 141 ms batch-era p99 against a
// 0.43 ms p95.
type Class int

const (
	// ClassInteractive is the default class: request-sized work whose
	// latency a client is actively waiting on.
	ClassInteractive Class = iota
	// ClassBulk is throughput work (cold batch chunks) that must not
	// delay interactive jobs.
	ClassBulk
	numClasses
)

// String names the class as it appears in metrics labels and flight
// events.
func (c Class) String() string {
	if c == ClassBulk {
		return "bulk"
	}
	return "interactive"
}

// Pool is a bounded worker pool with one fixed-depth queue per
// admission class. Work is submitted with a context; jobs whose context
// is already done when a worker picks them up are skipped, and a full
// queue rejects immediately rather than blocking the submitter.
// Workers drain the interactive queue strictly before touching bulk,
// and when the pool has at least two workers one of them is reserved
// for interactive work only, so an interactive job's wait is bounded by
// the remaining runtime of at most one in-flight job rather than the
// whole bulk backlog.
type Pool struct {
	queues [numClasses]chan *job
	wg     sync.WaitGroup
	mu     sync.RWMutex
	done   bool
	depth  [numClasses]atomic.Int64
}

type job struct {
	//ppatcvet:ignore ctxflow a queue entry deliberately carries its submitter's context so the worker can skip work the caller abandoned
	ctx  context.Context
	fn   func()
	done chan struct{}
	enq  time.Time
	// wait is how long the job sat queued before a worker picked it up.
	// Written by the worker before close(done); reading it after <-done
	// is ordered by that happens-before edge.
	wait time.Duration
}

// NewPool starts workers goroutines consuming per-class queues of at
// most queue waiting jobs each (minimums of 1 are enforced).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{}
	for c := range p.queues {
		p.queues[c] = make(chan *job, queue)
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		// Worker 0 is the reserved interactive lane when the pool is big
		// enough to afford one; a single-worker pool serves both classes.
		go p.worker(i == 0 && workers > 1)
	}
	return p
}

// worker consumes jobs until every queue it serves is closed and
// drained. Interactive work is taken with strict priority: a waiting
// interactive job is always preferred over any number of waiting bulk
// jobs.
func (p *Pool) worker(reserved bool) {
	defer p.wg.Done()
	qi, qb := p.queues[ClassInteractive], p.queues[ClassBulk]
	if reserved {
		qb = nil
	}
	for qi != nil || qb != nil {
		// Strict priority: serve a waiting interactive job first.
		if qi != nil {
			select {
			case j, ok := <-qi:
				if !ok {
					qi = nil
					continue
				}
				p.run(j, ClassInteractive)
				continue
			default:
			}
		}
		// Nothing interactive waiting: block on whichever class delivers
		// first (a nil channel blocks forever, so a closed-and-drained
		// queue simply drops out of the select).
		select {
		case j, ok := <-qi:
			if !ok {
				qi = nil
				continue
			}
			p.run(j, ClassInteractive)
		case j, ok := <-qb:
			if !ok {
				qb = nil
				continue
			}
			p.run(j, ClassBulk)
		}
	}
}

func (p *Pool) run(j *job, c Class) {
	p.depth[c].Add(-1)
	j.wait = time.Since(j.enq)
	if j.ctx.Err() == nil {
		j.fn()
	}
	close(j.done)
}

// Do runs fn on a pool worker as interactive work and blocks until it
// completes or ctx is done. A full queue fails fast with ErrQueueFull.
// When ctx expires while the job is still queued, the job is abandoned
// (the worker skips it).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	_, err := p.DoClassMeasured(ctx, ClassInteractive, fn)
	return err
}

// DoMeasured is Do plus the job's measured queue wait — how long it sat
// behind other work before a worker picked it up, the raw signal for
// head-of-line-blocking attribution. The wait is only meaningful when
// err is nil (an abandoned or rejected job reports 0).
func (p *Pool) DoMeasured(ctx context.Context, fn func()) (time.Duration, error) {
	return p.DoClassMeasured(ctx, ClassInteractive, fn)
}

// DoClassMeasured is DoMeasured on an explicit admission class. Bulk
// jobs queue behind every interactive job; interactive jobs queue only
// behind each other.
func (p *Pool) DoClassMeasured(ctx context.Context, c Class, fn func()) (time.Duration, error) {
	if c < 0 || c >= numClasses {
		c = ClassInteractive
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enq: time.Now()}
	p.mu.RLock()
	if p.done {
		p.mu.RUnlock()
		return 0, ErrPoolClosed
	}
	select {
	case p.queues[c] <- j:
		p.depth[c].Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return 0, ErrQueueFull
	}
	select {
	case <-j.done:
		return j.wait, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker across
// every class.
func (p *Pool) QueueDepth() int64 {
	var total int64
	for c := range p.depth {
		total += p.depth[c].Load()
	}
	return total
}

// QueueDepthClass reports the number of jobs of one class waiting for
// a worker.
func (p *Pool) QueueDepthClass(c Class) int64 {
	if c < 0 || c >= numClasses {
		return 0
	}
	return p.depth[c].Load()
}

// Close stops accepting new work, lets queued and in-flight jobs finish,
// and waits for every worker to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.done {
		p.done = true
		for c := range p.queues {
			close(p.queues[c])
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
