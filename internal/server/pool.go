package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by Pool.Do when the request queue is at
// capacity; callers should surface it as backpressure (HTTP 503).
var ErrQueueFull = errors.New("server: request queue full")

// ErrPoolClosed is returned by Pool.Do after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// Pool is a bounded worker pool with a fixed-depth queue. Work is
// submitted with a context; jobs whose context is already done when a
// worker picks them up are skipped, and a full queue rejects immediately
// rather than blocking the submitter.
type Pool struct {
	jobs  chan *job
	wg    sync.WaitGroup
	mu    sync.RWMutex
	done  bool
	depth atomic.Int64
}

type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// NewPool starts workers goroutines consuming a queue of at most queue
// waiting jobs (minimums of 1 are enforced).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{jobs: make(chan *job, queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.depth.Add(-1)
		if j.ctx.Err() == nil {
			j.fn()
		}
		close(j.done)
	}
}

// Do runs fn on a pool worker and blocks until it completes or ctx is
// done. A full queue fails fast with ErrQueueFull. When ctx expires while
// the job is still queued, the job is abandoned (the worker skips it).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.RLock()
	if p.done {
		p.mu.RUnlock()
		return ErrPoolClosed
	}
	select {
	case p.jobs <- j:
		p.depth.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return ErrQueueFull
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int64 { return p.depth.Load() }

// Close stops accepting new work, lets queued and in-flight jobs finish,
// and waits for every worker to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.done {
		p.done = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
