package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Pool.Do when the request queue is at
// capacity; callers should surface it as backpressure (HTTP 503).
var ErrQueueFull = errors.New("server: request queue full")

// ErrPoolClosed is returned by Pool.Do after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// Pool is a bounded worker pool with a fixed-depth queue. Work is
// submitted with a context; jobs whose context is already done when a
// worker picks them up are skipped, and a full queue rejects immediately
// rather than blocking the submitter.
type Pool struct {
	jobs  chan *job
	wg    sync.WaitGroup
	mu    sync.RWMutex
	done  bool
	depth atomic.Int64
}

type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
	enq  time.Time
	// wait is how long the job sat queued before a worker picked it up.
	// Written by the worker before close(done); reading it after <-done
	// is ordered by that happens-before edge.
	wait time.Duration
}

// NewPool starts workers goroutines consuming a queue of at most queue
// waiting jobs (minimums of 1 are enforced).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{jobs: make(chan *job, queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.depth.Add(-1)
		j.wait = time.Since(j.enq)
		if j.ctx.Err() == nil {
			j.fn()
		}
		close(j.done)
	}
}

// Do runs fn on a pool worker and blocks until it completes or ctx is
// done. A full queue fails fast with ErrQueueFull. When ctx expires while
// the job is still queued, the job is abandoned (the worker skips it).
func (p *Pool) Do(ctx context.Context, fn func()) error {
	_, err := p.DoMeasured(ctx, fn)
	return err
}

// DoMeasured is Do plus the job's measured queue wait — how long it sat
// behind other work before a worker picked it up, the raw signal for
// head-of-line-blocking attribution. The wait is only meaningful when
// err is nil (an abandoned or rejected job reports 0).
func (p *Pool) DoMeasured(ctx context.Context, fn func()) (time.Duration, error) {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enq: time.Now()}
	p.mu.RLock()
	if p.done {
		p.mu.RUnlock()
		return 0, ErrPoolClosed
	}
	select {
	case p.jobs <- j:
		p.depth.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return 0, ErrQueueFull
	}
	select {
	case <-j.done:
		return j.wait, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int64 { return p.depth.Load() }

// Close stops accepting new work, lets queued and in-flight jobs finish,
// and waits for every worker to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.done {
		p.done = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
