package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"ppatc/internal/obs/flight"
)

// The evaluation pipeline is deterministic — same system, workload and
// grid always produce the same bytes — so the daemon caches encoded
// responses keyed by a canonical request string and coalesces concurrent
// identical requests onto a single computation.

// RequestKey builds the canonical cache key for an endpoint and its
// resolved (canonical-cased) parameters. It hashes through fmt, which
// boxes every part — fine for request shapes with open-ended parameters
// (tcdp's float lists), too slow for the per-request hot path; evaluate
// and suite use the direct concatenations below instead.
func RequestKey(endpoint string, parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", endpoint)
	for _, p := range parts {
		fmt.Fprintf(h, "|%v", p)
	}
	return endpoint + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}

// evaluateKey is the cache key of one (system, workload, grid) evaluation
// tuple. Shared by /v1/evaluate and every /v1/batch item, so a batch item
// hits the cache entry a plain evaluate warmed (and vice versa). The
// names must already be canonical; a single concatenation keeps the
// cache-hit path at one allocation.
//
//ppatc:hotpath
func evaluateKey(system, workload, grid string) string {
	return "evaluate|" + system + "|" + workload + "|" + grid
}

// suiteKey is the cache key of the full-suite comparison on one grid.
//
//ppatc:hotpath
func suiteKey(grid string) string {
	return "suite|" + grid
}

// lruShard is one mutex-guarded stripe of the LRU: a classic list+map
// least-recently-used byte cache with a fixed entry capacity.
type lruShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUShard(capacity int) *lruShard {
	if capacity < 1 {
		capacity = 1
	}
	return &lruShard{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

//ppatc:hotpath
func (c *lruShard) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruShard) put(key string, val []byte) []byte {
	// Copy: the cache must own its bytes. Callers reuse encode buffers
	// (and may mutate what they handed in later); cached entries are
	// immutable from the moment they are stored.
	stored := make([]byte, len(val))
	copy(stored, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = stored
		return stored
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, val: stored})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	return stored
}

func (c *lruShard) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// LRU is the response cache: a least-recently-used byte cache striped
// into mutex-guarded shards selected by a hash of the key, so concurrent
// hot-path lookups from many request goroutines don't serialize on one
// lock. Capacity is split evenly across shards (eviction is per shard).
type LRU struct {
	shards []*lruShard
	mask   uint32
}

// NewLRU builds a single-shard cache holding at most capacity entries
// (minimum 1) — exact global LRU order, for small caches and tests.
func NewLRU(capacity int) *LRU { return NewShardedLRU(capacity, 1) }

// NewShardedLRU builds a cache of roughly capacity entries striped over
// shards mutex-guarded shards (rounded up to a power of two, minimum 1).
func NewShardedLRU(capacity, shards int) *LRU {
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity < 1 {
		capacity = 1
	}
	per := (capacity + n - 1) / n
	c := &LRU{shards: make([]*lruShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = newLRUShard(per)
	}
	return c
}

// shard selects the stripe for a key with inline FNV-1a (no allocation).
//
//ppatc:hotpath
func (c *LRU) shard(key string) *lruShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h&c.mask]
}

// Get returns the cached bytes for key, marking the entry recently used.
// The returned slice is shared and MUST NOT be mutated — write it to the
// response and let it go. The hit path is allocation-free.
//
//ppatc:hotpath
func (c *LRU) Get(key string) ([]byte, bool) {
	return c.shard(key).get(key)
}

// Put copies val into the cache under key, evicting the least recently
// used entry of the key's shard when at capacity. It returns the stored
// copy, which callers may hand out (but, like Get's result, must not
// mutate); val itself remains the caller's to reuse or scribble over.
func (c *LRU) Put(key string, val []byte) []byte {
	return c.shard(key).put(key, val)
}

// Len reports the number of cached entries across all shards.
func (c *LRU) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}

// Shards reports the shard count (used by tests and /healthz).
func (c *LRU) Shards() int { return len(c.shards) }

// flightGroup coalesces concurrent computations of the same key: the
// first caller starts fn, later callers block until its result is ready
// (or their own context is done) and share it.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	bd   flight.Breakdown
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns fn's result for key, running fn at most once across
// concurrent callers. shared reports whether this caller piggybacked on
// another caller's computation.
//
// fn runs on its own goroutine, detached from every caller: a leader
// whose context is cancelled mid-flight gets its ctx.Err() back
// immediately, while the computation carries on and delivers the real
// result to every surviving waiter (and, via fn's own side effects, to
// the cache). Without the detachment a cancelled leader would either
// poison coalesced waiters with its context.Canceled or hold its handler
// goroutine hostage until the computation finished.
//
// The returned breakdown attributes this caller's own wall clock: the
// leader gets fn's measured stages, while a coalesced waiter — whose
// entire time was spent blocked behind someone else's in-flight
// computation — gets that wait as queue_wait. The distinction keeps
// every request's stage sum equal to its own latency rather than the
// leader's.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, flight.Breakdown, error)) (val []byte, bd flight.Breakdown, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		//ppatcvet:ignore determinism latency attribution measures wall time only; it never flows into cached bytes
		waitStart := time.Now()
		select {
		case <-c.done:
			return c.val, flight.Breakdown{QueueWaitNS: time.Since(waitStart).Nanoseconds()}, true, c.err
		case <-ctx.Done():
			return nil, flight.Breakdown{QueueWaitNS: time.Since(waitStart).Nanoseconds()}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		c.val, c.bd, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()

	select {
	case <-c.done:
		return c.val, c.bd, false, c.err
	case <-ctx.Done():
		return nil, flight.Breakdown{}, false, ctx.Err()
	}
}
