package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// The evaluation pipeline is deterministic — same system, workload and
// grid always produce the same bytes — so the daemon caches encoded
// responses keyed by a canonical request hash and coalesces concurrent
// identical requests onto a single computation.

// RequestKey builds the canonical cache key for an endpoint and its
// resolved (canonical-cased) parameters.
func RequestKey(endpoint string, parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", endpoint)
	for _, p := range parts {
		fmt.Fprintf(h, "|%v", p)
	}
	return endpoint + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}

// LRU is a mutex-guarded least-recently-used byte cache with a fixed
// entry capacity.
type LRU struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// NewLRU builds a cache holding at most capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key, marking the entry recently used.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// at capacity.
func (c *LRU) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup coalesces concurrent computations of the same key: the
// first caller runs fn, later callers block until its result is ready
// (or their own context is done) and share it.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns fn's result for key, running fn at most once across
// concurrent callers. shared reports whether this caller piggybacked on
// another caller's computation.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
