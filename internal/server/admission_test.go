package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ppatc/internal/obs/flight"
)

// TestPoolClassPriority pins the scheduler's strict priority: when the
// single worker frees up with both classes queued, the interactive job
// runs before bulk jobs that were queued earlier.
func TestPoolClassPriority(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.DoClassMeasured(context.Background(), ClassBulk, func() { close(started); <-block })
	<-started // the single worker is now busy

	var mu sync.Mutex
	var order []Class
	record := func(c Class) { mu.Lock(); order = append(order, c); mu.Unlock() }
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.DoClassMeasured(context.Background(), ClassBulk, func() { record(ClassBulk) }); err != nil {
				t.Errorf("bulk job: %v", err)
			}
		}()
	}
	for i := 0; p.QueueDepthClass(ClassBulk) < 3 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.DoClassMeasured(context.Background(), ClassInteractive, func() { record(ClassInteractive) }); err != nil {
			t.Errorf("interactive job: %v", err)
		}
	}()
	for i := 0; p.QueueDepthClass(ClassInteractive) < 1 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	close(block)
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("ran %d jobs, want 4", len(order))
	}
	if order[0] != ClassInteractive {
		t.Fatalf("first job after the blocker was %v, want interactive ahead of %d queued bulk jobs", order[0], 3)
	}
}

// TestPoolReservedInteractiveWorker pins the reservation: with two
// workers, bulk work can occupy at most one of them, so an interactive
// job admitted while bulk jobs block never waits behind them.
func TestPoolReservedInteractiveWorker(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go p.DoClassMeasured(context.Background(), ClassBulk, func() {
			started <- struct{}{}
			<-block
		})
	}
	<-started // one bulk job holds the unreserved worker; the second queues

	done := make(chan error, 1)
	go func() {
		_, err := p.DoClassMeasured(context.Background(), ClassInteractive, func() {})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interactive job: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interactive job starved behind blocked bulk work; the reserved worker is not serving")
	}
	close(block)
}

// TestSplitFanOutZeroDenominator pins the admission-control bugfix: a
// fan-out whose items recorded no stage time (an all-hit batch inside
// clock resolution) must attribute the full wall time to "other", not
// divide by zero and poison every stage.
func TestSplitFanOutZeroDenominator(t *testing.T) {
	items := make([]flight.Attribution, 3) // all zero stage times
	bd := splitFanOut(items, 1234)
	if bd.OtherNS != 1234 {
		t.Fatalf("zero-denominator split attributed %d ns to other, want the full 1234 (breakdown %+v)", bd.OtherNS, bd)
	}
	if got := bd.QueueWaitNS + bd.CacheLookupNS + bd.ComputeNS + bd.EncodeNS + bd.StoreWriteNS; got != 0 {
		t.Fatalf("zero-denominator split put %d ns into named stages: %+v", got, bd)
	}
	if bd := splitFanOut(items, 0); bd != (flight.Breakdown{}) {
		t.Fatalf("zero-wall split should attribute nothing, got %+v", bd)
	}
	// The split must re-add to the wall clock exactly, truncation included.
	items[0].ComputeNS = 7777
	items[1].QueueWaitNS = 1111
	items[2].StoreWriteNS = 3
	bd = splitFanOut(items, 5000)
	if sum := bd.QueueWaitNS + bd.CacheLookupNS + bd.ComputeNS + bd.EncodeNS + bd.StoreWriteNS + bd.OtherNS; sum != 5000 {
		t.Fatalf("split sums to %d, want the 5000 ns wall clock: %+v", sum, bd)
	}
}

// TestAdmissionClassInFlightDump drives the three admission shapes over
// a live server and asserts the flight dump labels them: cold 8-miss
// batches are bulk, single evaluations and small batches interactive,
// and every event — the all-hit replay included — keeps the partition
// invariant.
func TestAdmissionClassInFlightDump(t *testing.T) {
	srv, ts := newTestServer(t)

	// A cold batch above the interactive-miss threshold: bulk.
	items := make([]string, 0, 8)
	for _, wl := range []string{"crc32", "edn", "sieve", "strsearch"} {
		items = append(items, fmt.Sprintf(`{"system":"si","workload":%q}`, wl))
		items = append(items, fmt.Sprintf(`{"system":"m3d","workload":%q}`, wl))
	}
	coldBatch := `{"items":[` + strings.Join(items, ",") + `]}`
	if resp, b := post(t, ts, "/v1/batch", coldBatch); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold batch: %d %s", resp.StatusCode, b)
	}
	// The same batch again: all hits, no fan-out, no admission class.
	if resp, b := post(t, ts, "/v1/batch", coldBatch); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm batch: %d %s", resp.StatusCode, b)
	}
	// A single evaluation: interactive by endpoint.
	if resp, b := post(t, ts, "/v1/evaluate", `{"system":"si","workload":"huff"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: %d %s", resp.StatusCode, b)
	}
	// A two-miss batch: within the threshold, interactive.
	smallBatch := `{"items":[{"system":"si","workload":"matmult-int"},{"system":"m3d","workload":"matmult-int"}]}`
	if resp, b := post(t, ts, "/v1/batch", smallBatch); resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch: %d %s", resp.StatusCode, b)
	}

	resp, body := get(t, ts, "/debug/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight dump status %d", resp.StatusCode)
	}
	evs := decodeFlightDump(t, body)
	if len(evs) != 4 {
		t.Fatalf("flight dump has %d events, want 4:\n%s", len(evs), body)
	}
	for _, e := range evs {
		if err := e.CheckTotal(0.01); err != nil {
			t.Fatalf("stage sum cross-check failed: %v (event %+v)", err, e)
		}
	}
	if got := evs[0].AdmissionClass; got != "bulk" {
		t.Errorf("cold 8-miss batch admission_class %q, want bulk", got)
	}
	if got := evs[1].AdmissionClass; got != "" {
		t.Errorf("all-hit batch admission_class %q, want empty (never reached the pool)", got)
	}
	if evs[1].Disposition != "HIT" {
		t.Errorf("all-hit batch disposition %q, want HIT", evs[1].Disposition)
	}
	if got := evs[2].AdmissionClass; got != "interactive" {
		t.Errorf("evaluate admission_class %q, want interactive", got)
	}
	if got := evs[3].AdmissionClass; got != "interactive" {
		t.Errorf("2-miss batch admission_class %q, want interactive", got)
	}

	// The per-class queue-wait surface saw both classes.
	if n := srv.Metrics().QueueWaitCount("bulk"); n != 8 {
		t.Errorf("bulk queue-wait observations %d, want 8 (one per cold batch item)", n)
	}
	if n := srv.Metrics().QueueWaitCount("interactive"); n < 3 {
		t.Errorf("interactive queue-wait observations %d, want >= 3", n)
	}
}
