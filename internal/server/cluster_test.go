package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppatc/internal/carbon"
	"ppatc/internal/cluster"
	"ppatc/internal/core"
	"ppatc/internal/dse"
	"ppatc/internal/embench"
)

// clusterSweep expands to 8 points (2 systems × 1 workload × 2 grids ×
// 2 lifetimes) — enough to shard meaningfully at range size 2.
const clusterSweep = `{"name": "clu", "axes": {"workload": ["huff"], "grid": {"names": ["US", "Coal"]}, "lifetime_months": {"values": [12, 24]}}}`

func clusterConfig() Config {
	cfg := quietConfig()
	cfg.ClusterGossipInterval = time.Hour // gossip driven manually in tests
	// Generous lease: a range in honest progress must never expire and
	// be stolen (the race detector slows evaluation ~10×, and a steal
	// here re-executes points, breaking exactly-once assertions). The
	// worker-death test shortens it deliberately to provoke a steal.
	cfg.ClusterLeaseTTL = 10 * time.Second
	cfg.ClusterRangeSize = 2
	return cfg
}

// startClusterNode brings up one clustered server on an httptest
// listener, advertising its real URL.
func startClusterNode(t *testing.T, id string, cfg Config, join ...string) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	if err := srv.StartCluster(id, ts.URL, join); err != nil {
		t.Fatalf("StartCluster(%s): %v", id, err)
	}
	return srv, ts
}

// twoNodeCluster starts node-a and node-b, joined and converged.
func twoNodeCluster(t *testing.T) (a, b *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	a, tsA = startClusterNode(t, "node-a", clusterConfig())
	b, tsB = startClusterNode(t, "node-b", clusterConfig(), tsA.URL)
	b.clusterNode().Gossip()
	if a.clusterNode().AliveCount() != 2 || b.clusterNode().AliveCount() != 2 {
		t.Fatal("cluster did not converge")
	}
	return a, b, tsA, tsB
}

// evaluateOwnedBy finds an evaluate request whose canonical key the
// given node owns on the two-node ring.
func evaluateOwnedBy(t *testing.T, owner string) (body, key string) {
	t.Helper()
	ring := cluster.NewRing(cluster.DefaultVNodes, "node-a", "node-b")
	for _, sys := range []string{"si", "m3d"} {
		sysName, err := core.CanonicalSystemName(sys)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range embench.Workloads() {
			for _, g := range carbon.Grids() {
				k := evaluateKey(sysName, wl.Name, g.Name)
				if o, _ := ring.Owner(k); o == owner {
					return fmt.Sprintf(`{"system": %q, "workload": %q, "grid": %q}`, sys, wl.Name, g.Name), k
				}
			}
		}
	}
	t.Fatalf("no evaluate key owned by %s", owner)
	return "", ""
}

// TestClusterForwarding pins the routing contract: a miss on the
// non-owner forwards one hop to the owner instead of recomputing, the
// round trip is attributed under peer_forward, and the reply is cached
// locally so the next request is a plain HIT.
func TestClusterForwarding(t *testing.T) {
	a, b, tsA, _ := twoNodeCluster(t)
	body, key := evaluateOwnedBy(t, "node-b")

	resp, respBody := post(t, tsA, "/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded evaluate: %d %s", resp.StatusCode, respBody)
	}
	if got := resp.Header.Get("X-Cache"); got != "REMOTE" {
		t.Fatalf("X-Cache = %q, want REMOTE", got)
	}
	if got := a.metrics.ClusterForwards.With("remote").Load(); got != 1 {
		t.Errorf("node-a remote forwards = %d, want 1", got)
	}
	// The owner computed it exactly once (a MISS on node-b).
	if got := b.metrics.CacheMisses.Load(); got != 1 {
		t.Errorf("node-b cache misses = %d, want 1", got)
	}
	// peer_forward shows up in node-a's flight recorder.
	evs := a.Recorder().Dump("all", 0)
	found := false
	for _, ev := range evs {
		if ev.Disposition == "REMOTE" {
			found = true
			if ev.PeerForwardNS <= 0 {
				t.Errorf("REMOTE event has peer_forward_ns %d, want > 0", ev.PeerForwardNS)
			}
		}
	}
	if !found {
		t.Error("no REMOTE event in node-a's flight recorder")
	}
	// The forwarded reply was cached locally: second request is a HIT
	// with byte-identical body, no second forward.
	resp2, respBody2 := post(t, tsA, "/v1/evaluate", body)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(respBody, respBody2) {
		t.Error("cached forward reply differs from the original")
	}
	if got := a.metrics.ClusterForwards.With("remote").Load(); got != 1 {
		t.Errorf("remote forwards after HIT = %d, want still 1", got)
	}
	// And the owner itself serves the key locally, never forwarding.
	if _, ok := a.cache.Get(key); !ok {
		t.Error("forwarded reply not in node-a's cache")
	}
}

// TestClusterForwardLoopGuard pins the one-hop contract: a request
// that already crossed a node is served locally, and a hop path
// proving a loop (two hops, or this node's own ID) is refused with
// 508 rather than forwarded again.
func TestClusterForwardLoopGuard(t *testing.T) {
	a, _, tsA, _ := twoNodeCluster(t)
	body, _ := evaluateOwnedBy(t, "node-b")

	send := func(hops string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, tsA.URL+"/v1/evaluate", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(forwardedHeader, hops)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// One foreign hop: node-a is the owner's fallback — it must serve
	// locally (MISS), never re-forward.
	resp := send("node-b")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-hop forward: %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got == "REMOTE" {
		t.Error("forwarded request was forwarded again")
	}
	// Two hops: refused.
	if resp := send("node-b,node-x"); resp.StatusCode != http.StatusLoopDetected {
		t.Errorf("double-forward: %d, want %d", resp.StatusCode, http.StatusLoopDetected)
	}
	// Own ID in the path: refused.
	if resp := send("node-a"); resp.StatusCode != http.StatusLoopDetected {
		t.Errorf("self-forward: %d, want %d", resp.StatusCode, http.StatusLoopDetected)
	}
	if got := a.metrics.ClusterForwards.With("refused").Load(); got != 2 {
		t.Errorf("refused forwards = %d, want 2", got)
	}
}

// singleNodeSweepNDJSON runs the spec on a fresh unclustered server
// and returns the merged NDJSON — the byte-identity reference.
func singleNodeSweepNDJSON(t *testing.T, spec string) []byte {
	t.Helper()
	_, ts := newSweepServer(t, quietConfig())
	resp, body := post(t, ts, "/v1/sweeps", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got := waitSweep(t, ts, st.ID); got.Status != SweepDone {
		t.Fatalf("reference sweep: %+v", got)
	}
	_, raw := get(t, ts, "/v1/sweeps/"+st.ID+"/results")
	return raw
}

// TestClusterDistributedSweep pins the tentpole correctness contract:
// a sweep POSTed to one node of a two-node cluster shards across both,
// every point is evaluated exactly once cluster-wide, and the merged
// NDJSON is byte-identical to a single-node run.
func TestClusterDistributedSweep(t *testing.T) {
	want := singleNodeSweepNDJSON(t, clusterSweep)

	a, b, tsA, _ := twoNodeCluster(t)
	resp, body := post(t, tsA, "/v1/sweeps", clusterSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 8 {
		t.Fatalf("sweep total = %d, want 8", st.Total)
	}
	if got := waitSweep(t, tsA, st.ID); got.Status != SweepDone || got.Completed != 8 {
		t.Fatalf("distributed sweep: %+v", got)
	}
	_, raw := get(t, tsA, "/v1/sweeps/"+st.ID+"/results")
	if !bytes.Equal(raw, want) {
		t.Errorf("distributed NDJSON differs from single-node run:\n got: %s\nwant: %s", raw, want)
	}
	// Exactly-once cluster-wide: the two nodes' fresh evaluations sum
	// to the plan size — nothing skipped, nothing evaluated twice.
	evals := a.metrics.SweepPoints.Load() + b.metrics.SweepPoints.Load()
	if evals != 8 {
		t.Errorf("cluster-wide evaluations = %d (a=%d, b=%d), want exactly 8",
			evals, a.metrics.SweepPoints.Load(), b.metrics.SweepPoints.Load())
	}
}

// TestClusterSweepWorkerDeath pins work-stealing: a worker that claims
// a range and dies never completes it; its lease expires and the
// coordinator steals and finishes the range, with the merged output
// still byte-identical and every point evaluated exactly once.
//
// The dead worker is deterministic: a gossip-speaking peer whose work
// handler synchronously claims the first range and then goes silent —
// the claim is guaranteed to land before the coordinator starts its
// own loop because work notifications are delivered synchronously
// first.
func TestClusterSweepWorkerDeath(t *testing.T) {
	want := singleNodeSweepNDJSON(t, clusterSweep)

	// Short lease so the ghost's abandoned range expires fast. The
	// coordinator is the only real executor and its claim loop is
	// serial, so its own expired-mid-work leases can't double-execute.
	cfg := clusterConfig()
	cfg.ClusterLeaseTTL = 200 * time.Millisecond
	a, tsA := startClusterNode(t, "node-a", cfg)

	// The ghost: joins the cluster for real, accepts work, claims one
	// range, never executes it.
	mux := http.NewServeMux()
	ghostTS := httptest.NewServer(mux)
	t.Cleanup(ghostTS.Close)
	ghost, err := cluster.StartNode(cluster.NodeConfig{
		ID:             "node-ghost",
		Advertise:      ghostTS.URL,
		GossipInterval: time.Hour,
		Logger:         quietConfig().Logger,
	}, []string{tsA.URL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ghost.Close)
	mux.HandleFunc("POST /cluster/v1/gossip", func(w http.ResponseWriter, r *http.Request) {
		var msg cluster.GossipMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ghost.HandleGossip(msg))
	})
	claimed := make(chan clusterClaimResp, 1)
	mux.HandleFunc("POST /cluster/v1/sweeps/work", func(w http.ResponseWriter, r *http.Request) {
		var msg clusterWorkMsg
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Claim a range like a real worker would — then die on it.
		body, _ := json.Marshal(clusterClaimReq{Worker: "node-ghost"})
		resp, err := http.Post(msg.CoordinatorURL+"/cluster/v1/sweeps/"+msg.JobID+"/claim",
			"application/json", bytes.NewReader(body))
		if err == nil {
			var cr clusterClaimResp
			json.NewDecoder(resp.Body).Decode(&cr)
			resp.Body.Close()
			claimed <- cr
		}
		w.WriteHeader(http.StatusAccepted)
	})
	ghost.Gossip()
	if a.clusterNode().AliveCount() != 2 {
		t.Fatal("ghost did not join")
	}

	resp, body := post(t, tsA, "/v1/sweeps", clusterSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d %s", resp.StatusCode, body)
	}
	var st sweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got := waitSweep(t, tsA, st.ID); got.Status != SweepDone || got.Completed != 8 {
		t.Fatalf("sweep with dead worker: %+v", got)
	}
	// The ghost really held a range hostage — this run exercised the
	// lease-expiry steal, it didn't just run clean.
	select {
	case cr := <-claimed:
		if cr.Status != "range" {
			t.Fatalf("ghost claim status %q, want \"range\"", cr.Status)
		}
	default:
		t.Fatal("ghost never claimed a range")
	}
	_, raw := get(t, tsA, "/v1/sweeps/"+st.ID+"/results")
	if !bytes.Equal(raw, want) {
		t.Error("NDJSON after worker death differs from single-node run")
	}
	// The coordinator evaluated everything itself (the ghost did no
	// work), and exactly once.
	if got := a.metrics.SweepPoints.Load(); got != 8 {
		t.Errorf("coordinator evaluations = %d, want exactly 8", got)
	}
}

// TestClusterMetricsSurface pins the scrape surface: the peers gauge
// reports cluster size, and flight-recorder drops are a first-class
// metric rather than a per-dump header.
func TestClusterMetricsSurface(t *testing.T) {
	_, _, tsA, _ := twoNodeCluster(t)
	_, body := get(t, tsA, "/metrics")
	text := string(body)
	if !strings.Contains(text, "ppatcd_cluster_peers 2") {
		t.Errorf("/metrics missing \"ppatcd_cluster_peers 2\":\n%s", text)
	}
	if !strings.Contains(text, "ppatcd_flight_dropped_total") {
		t.Error("/metrics missing ppatcd_flight_dropped_total")
	}
	if !strings.Contains(text, "ppatcd_cluster_forwards_total") {
		t.Error("/metrics missing ppatcd_cluster_forwards_total")
	}
}

// TestReadinessLivenessSplit pins the drain ordering: BeginShutdown
// flips /healthz to 503 draining and gossips leaving to peers before
// any listener work, while /livez stays 200.
func TestReadinessLivenessSplit(t *testing.T) {
	a, b, tsA, _ := twoNodeCluster(t)

	resp, _ := get(t, tsA, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz = %d", resp.StatusCode)
	}

	a.BeginShutdown()

	resp, body := get(t, tsA, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"draining"`) {
		t.Errorf("draining /healthz body: %s", body)
	}
	if resp, _ := get(t, tsA, "/livez"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining /livez = %d, want 200", resp.StatusCode)
	}
	// BeginShutdown pushed "leaving" synchronously: the peer has
	// already dropped node-a from its alive set and ring.
	if got := b.clusterNode().AliveCount(); got != 1 {
		t.Errorf("peer alive count after drain = %d, want 1", got)
	}
}

// TestClusterEndpointsWithoutCluster pins that the control plane is
// mounted but refuses service outside cluster mode.
func TestClusterEndpointsWithoutCluster(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{
		"/cluster/v1/gossip",
		"/cluster/v1/sweeps/work",
		"/cluster/v1/sweeps/x/claim",
		"/cluster/v1/sweeps/x/complete",
	} {
		resp, _ := post(t, ts, path, `{}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s without cluster = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestMetricsStreamKeepAlive pins the SSE keep-alive contract: an idle
// subscriber receives ": ping" comments and its subscription is
// released cleanly on disconnect.
func TestMetricsStreamKeepAlive(t *testing.T) {
	oldKA, oldHB := metricsStreamKeepAlive, metricsStreamHeartbeat
	metricsStreamKeepAlive = 30 * time.Millisecond
	metricsStreamHeartbeat = time.Hour // only pings on an idle stream
	defer func() { metricsStreamKeepAlive, metricsStreamHeartbeat = oldKA, oldHB }()

	srv, ts := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/metrics/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sawPing := false
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		if strings.HasPrefix(sc.Text(), ": ping") {
			sawPing = true
			break
		}
	}
	if !sawPing {
		t.Fatal("idle stream never received a keep-alive comment")
	}
	if got := srv.Recorder().Hub().Subscribers(); got != 1 {
		t.Fatalf("subscribers while connected = %d, want 1", got)
	}
	cancel() // client disconnects
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Recorder().Hub().Subscribers() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("subscription not released after disconnect")
}

// TestClusterWorkAcceptContentType pins header ordering on the work
// invitation's 202: Content-Type must be set before WriteHeader writes
// the status line, because Go silently drops headers set afterwards and
// the coordinator would receive an untyped body.
func TestClusterWorkAcceptContentType(t *testing.T) {
	_, _, tsA, tsB := twoNodeCluster(t)

	spec, err := dse.ParseSpec(strings.NewReader(clusterSweep))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dse.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := json.Marshal(clusterWorkMsg{
		// The job ID is the spec hash; the coordinator has no such sweep,
		// so the spawned worker's first claim fails and it exits — the
		// test only exercises the invitation response itself.
		JobID:          plan.Hash[:12],
		CoordinatorURL: tsA.URL,
		Spec:           json.RawMessage(clusterSweep),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, tsB, "/cluster/v1/sweeps/work", string(msg))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("work invitation: %d %s, want 202", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("202 Content-Type = %q, want application/json (headers set after WriteHeader are dropped)", got)
	}
}
