package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestBatchMixedHitMissInvalid(t *testing.T) {
	_, ts := newTestServer(t)

	// Warm one tuple through the single-evaluate path so the batch sees a
	// genuine cache hit, and capture its body for byte-identity.
	resp, single := post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32","grid":"US"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm evaluate: %d %s", resp.StatusCode, single)
	}

	resp, b := post(t, ts, "/v1/batch", `{"items":[
		{"system":"si","workload":"crc32","grid":"US"},
		{"system":"si","workload":"crc32","grid":"Coal"},
		{"system":"si","workload":"no-such-kernel"},
		{"system":"si","workload":"crc32","grid":"Coal"}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, b)
	}
	var out struct {
		Count int `json:"count"`
		Items []struct {
			Index    int             `json:"index"`
			System   string          `json:"system"`
			Workload string          `json:"workload"`
			Grid     string          `json:"grid"`
			Cache    string          `json:"cache"`
			Result   json.RawMessage `json:"result"`
			Error    string          `json:"error"`
		} `json:"items"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if out.Count != 4 || len(out.Items) != 4 {
		t.Fatalf("count = %d, items = %d, want 4", out.Count, len(out.Items))
	}
	for i, it := range out.Items {
		if it.Index != i {
			t.Errorf("item %d carries index %d", i, it.Index)
		}
	}

	if it := out.Items[0]; it.Cache != "HIT" || it.Error != "" {
		t.Errorf("warmed tuple: cache %q error %q, want HIT", it.Cache, it.Error)
	}
	// The envelope encoder re-indents embedded raw messages, so compare
	// the payloads structurally rather than byte-for-byte.
	var fromBatch, fromSingle any
	if err := json.Unmarshal(out.Items[0].Result, &fromBatch); err != nil {
		t.Fatalf("batch HIT result not valid JSON: %v", err)
	}
	if err := json.Unmarshal(single, &fromSingle); err != nil {
		t.Fatalf("evaluate result not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(fromBatch, fromSingle) {
		t.Error("batch HIT payload differs from the /v1/evaluate payload for the same tuple")
	}
	if it := out.Items[0]; it.System != "all-Si" || it.Workload != "crc32" || it.Grid != "US" {
		t.Errorf("tuple echo not canonicalized: %q %q %q", it.System, it.Workload, it.Grid)
	}

	// The duplicated fresh tuple: one leads (MISS), the other either
	// coalesces onto it or hits the cache, depending on timing.
	fresh := []string{out.Items[1].Cache, out.Items[3].Cache}
	misses := 0
	for _, c := range fresh {
		switch c {
		case "MISS":
			misses++
		case "COALESCED", "HIT":
		default:
			t.Errorf("fresh tuple disposition %q", c)
		}
	}
	if misses != 1 {
		t.Errorf("duplicate fresh tuples produced %d MISSes, want exactly 1 (%v)", misses, fresh)
	}
	for _, i := range []int{1, 3} {
		if out.Items[i].Error != "" || len(out.Items[i].Result) == 0 {
			t.Errorf("item %d: error %q, result %d bytes", i, out.Items[i].Error, len(out.Items[i].Result))
		}
	}

	// The invalid item fails alone, without failing the batch.
	if it := out.Items[2]; it.Error == "" || !strings.Contains(it.Error, "no-such-kernel") {
		t.Errorf("invalid item error = %q, want unknown-workload message", it.Error)
	}
	if len(out.Items[2].Result) != 0 {
		t.Error("invalid item carries a result")
	}

	// A batch-warmed tuple is a plain-evaluate cache hit: same keyspace.
	resp, _ = post(t, ts, "/v1/evaluate", `{"system":"si","workload":"crc32","grid":"Coal"}`)
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("evaluate after batch: X-Cache %q, want HIT", got)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)

	resp, _ := post(t, ts, "/v1/batch", `{"items":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/v1/batch", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: %d, want 400", resp.StatusCode)
	}

	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"system":"si","workload":"crc32"}`)
	}
	sb.WriteString(`]}`)
	resp, b := post(t, ts, "/v1/batch", sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d %s, want 400", resp.StatusCode, b)
	}
}

func TestBatchCancelledContext(t *testing.T) {
	srv := New(quietConfig())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/v1/batch",
		strings.NewReader(`{"items":[{"system":"m3d","workload":"strsearch","grid":"US"}]}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled batch: %d %s, want 503", w.Code, w.Body.String())
	}
}

// TestAcquireSlotCancellation pins the fan-out back-pressure contract:
// a chunk goroutine waiting for a semaphore slot must give up the
// moment the request context dies instead of blocking behind a
// saturated fan-out.
func TestAcquireSlotCancellation(t *testing.T) {
	sem := make(chan struct{}, 1)
	if !acquireSlot(context.Background(), sem) {
		t.Fatal("acquireSlot failed with a free slot and a live context")
	}

	// The slot is now held: a dead context must bail out promptly, not
	// block until the holder releases.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := make(chan bool, 1)
	go func() { got <- acquireSlot(ctx, sem) }()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("acquireSlot took a slot from a full semaphore")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquireSlot blocked on a full semaphore with a cancelled context")
	}
	<-sem
}
