package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ppatc/internal/dse"
)

// Sweep job lifecycle states.
const (
	SweepQueued    = "queued"
	SweepRunning   = "running"
	SweepDone      = "done"
	SweepFailed    = "failed"
	SweepCancelled = "cancelled"
)

var errSweepCancelled = errors.New("sweep cancelled")

// sweepJob is one asynchronous design-space sweep. Results are committed
// in plan order, so /results streams a stable prefix of the final NDJSON
// while the sweep is still running.
type sweepJob struct {
	id   string
	plan *dse.Plan
	// requestID is the X-Request-ID of the POST that created the job,
	// carried into sweep and persistence log records so an async
	// failure joins back to its originating request.
	requestID string

	mu       sync.Mutex
	status   string
	errMsg   string
	results  []dse.Result
	resumed  int           // points recovered from a checkpoint
	notify   chan struct{} // closed and replaced on every commit
	cancel   context.CancelFunc
	created  time.Time
	finished time.Time
}

func (j *sweepJob) commit(r dse.Result) {
	j.mu.Lock()
	j.results = append(j.results, r)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func (j *sweepJob) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	if status == SweepDone || status == SweepFailed || status == SweepCancelled {
		j.finished = time.Now()
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func sweepTerminal(status string) bool {
	return status == SweepDone || status == SweepFailed || status == SweepCancelled
}

// sweepManager owns the job table and the bounded runner pool. Job IDs
// are the spec hash, so POSTing the same spec twice (or after a daemon
// restart) lands on the same job — and, with a checkpoint directory, on
// the same completed points.
type sweepManager struct {
	mu    sync.Mutex
	jobs  map[string]*sweepJob
	order []string
	queue chan *sweepJob
}

// maxSweepJobs bounds the job table; oldest terminal jobs are evicted.
const maxSweepJobs = 64

func newSweepManager(queueDepth int) *sweepManager {
	return &sweepManager{
		jobs:  make(map[string]*sweepJob),
		queue: make(chan *sweepJob, queueDepth),
	}
}

func (m *sweepManager) get(id string) *sweepJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

func (m *sweepManager) list() []*sweepJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*sweepJob, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// add registers a job (unless its ID exists) and enqueues it. existing
// is non-nil when the spec is already known; queued reports whether a
// new job found queue room.
func (m *sweepManager) add(j *sweepJob) (existing *sweepJob, queued bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prior, ok := m.jobs[j.id]; ok {
		return prior, false
	}
	select {
	case m.queue <- j:
	default:
		return nil, false
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	return nil, true
}

// evictLocked drops the oldest terminal jobs once the table overflows.
func (m *sweepManager) evictLocked() {
	if len(m.order) <= maxSweepJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - maxSweepJobs
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		terminal := sweepTerminal(j.status)
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// runSweeps is one runner goroutine: it executes queued jobs until the
// server closes.
func (s *Server) runSweeps() {
	for {
		select {
		case j := <-s.sweeps.queue:
			s.runSweep(j)
		case <-s.base.Done():
			return
		}
	}
}

func (s *Server) runSweep(j *sweepJob) {
	j.mu.Lock()
	if j.status != SweepQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.status = SweepRunning
	ctx, cancel := context.WithCancelCause(s.base)
	j.cancel = func() { cancel(errSweepCancelled) }
	j.mu.Unlock()
	defer cancel(nil)

	start := time.Now()
	opts := dse.Options{
		Workers:     s.cfg.Workers,
		MaxPoints:   s.cfg.SweepMaxPoints,
		EvalCounter: s.metrics.SweepPoints,
		OnResult: func(r dse.Result) error {
			j.commit(r)
			return nil
		},
	}
	// Adopt every point some earlier job already computed and persisted
	// — cross-job, cross-restart dedup by coordinate identity. A
	// job-local checkpoint (same spec, interrupted run) overlays it.
	completed := dse.StoredCompleted(s.store, j.plan)
	var cp *dse.Checkpoint
	if s.cfg.SweepDir != "" {
		var err error
		cp, err = dse.OpenCheckpoint(filepath.Join(s.cfg.SweepDir, j.id+".ckpt"), j.plan)
		if err != nil {
			s.finishSweep(j, SweepFailed, err, start)
			return
		}
		defer cp.Close()
		for i, r := range cp.Completed {
			if completed == nil {
				completed = make(map[int]dse.Result, len(cp.Completed))
			}
			completed[i] = r
		}
		opts.OnComplete = cp.Record
	}
	opts.Completed = completed
	j.mu.Lock()
	j.resumed = len(completed)
	j.mu.Unlock()
	// Fresh evaluations write through to the store after checkpointing;
	// a persist failure degrades (metered) rather than failing the sweep.
	checkpoint := opts.OnComplete
	opts.OnComplete = func(r dse.Result) error {
		if checkpoint != nil {
			if err := checkpoint(r); err != nil {
				return err
			}
		}
		s.persistPoint(j.plan, r, j.requestID)
		return nil
	}

	// With alive peers, shard the plan across the cluster instead of
	// running it on one box: the coordinator merges ranges back into
	// plan order, so the committed results — and the checkpoint and
	// persistence writes chained into opts.OnComplete — are the same
	// either way.
	if n := s.clusterNode(); n != nil && len(n.AlivePeers()) > 0 {
		s.runDistributedSweep(ctx, j, completed, opts.OnComplete, start)
		return
	}

	results, err := dse.RunPlan(ctx, j.plan, opts)
	switch {
	case err == nil:
		s.persistSweep(j.id, results, j.requestID)
		s.finishSweep(j, SweepDone, nil, start)
	case errors.Is(err, errSweepCancelled):
		s.finishSweep(j, SweepCancelled, nil, start)
	case errors.Is(err, context.Canceled):
		// Daemon shutdown: leave the job resumable, not failed.
		s.finishSweep(j, SweepCancelled, nil, start)
	default:
		s.finishSweep(j, SweepFailed, err, start)
	}
}

func (s *Server) finishSweep(j *sweepJob, status string, err error, start time.Time) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	j.setStatus(status, msg)
	s.metrics.SweepJobs.With(status).Add(1)
	s.metrics.SweepSeconds.With(status).Observe(time.Since(start))
	s.log.Info("sweep",
		"id", j.id,
		"spec", j.plan.Spec.Name,
		"status", status,
		"points", len(j.plan.Points),
		"duration_ms", float64(time.Since(start).Microseconds())/1e3,
		"request_id", j.requestID,
		"error", msg,
	)
}

// sweepStatus is the job-status JSON envelope.
type sweepStatus struct {
	ID        string  `json:"id"`
	Name      string  `json:"name,omitempty"`
	Status    string  `json:"status"`
	Total     int     `json:"total"`
	Completed int     `json:"completed"`
	Resumed   int     `json:"resumed,omitempty"`
	Error     string  `json:"error,omitempty"`
	SpecSHA   string  `json:"spec_sha256,omitempty"`
	CreatedAt string  `json:"created_at,omitempty"`
	Elapsed   float64 `json:"elapsed_s"`
	// Stored marks a status reconstructed from the persistent store: the
	// job finished in an earlier process life and only its results remain.
	Stored bool `json:"stored,omitempty"`
}

func (j *sweepJob) snapshot() sweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return sweepStatus{
		ID:        j.id,
		Name:      j.plan.Spec.Name,
		Status:    j.status,
		Total:     len(j.plan.Points),
		Completed: len(j.results),
		Resumed:   j.resumed,
		Error:     j.errMsg,
		SpecSHA:   j.plan.Hash,
		CreatedAt: j.created.UTC().Format(time.RFC3339),
		Elapsed:   end.Sub(j.created).Seconds(),
	}
}

func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	spec, err := dse.ParseSpec(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := dse.Expand(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(plan.Points) > s.cfg.SweepMaxPoints {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep has %d points, cap is %d", len(plan.Points), s.cfg.SweepMaxPoints))
		return
	}
	j := &sweepJob{
		id:        plan.Hash[:12],
		plan:      plan,
		requestID: w.Header().Get("X-Request-ID"),
		status:    SweepQueued,
		notify:    make(chan struct{}),
		created:   time.Now(),
	}
	existing, queued := s.sweeps.add(j)
	if existing != nil {
		writeJSON(w, existing.snapshot()) // idempotent POST: same spec, same job
		return
	}
	if !queued {
		s.metrics.Rejections.Add(1)
		writeError(w, http.StatusServiceUnavailable, errors.New("sweep queue full"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.snapshot())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sweeps.list()
	out := make([]sweepStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	writeJSON(w, out)
}

func (s *Server) sweepByPath(w http.ResponseWriter, r *http.Request) *sweepJob {
	j := s.sweeps.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.sweeps.get(r.PathValue("id")); j != nil {
		writeJSON(w, j.snapshot())
		return
	}
	s.serveStoredSweepStatus(w, r)
}

// handleSweepResults streams the job's results as NDJSON, in plan order,
// following the sweep live until it reaches a terminal state (or the
// client goes away). A done job replays instantly — and byte-identically,
// per the engine's determinism contract. An ID the in-memory table no
// longer knows (the daemon restarted since the sweep ran) replays from
// the persistent store.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	j := s.sweeps.get(r.PathValue("id"))
	if j == nil {
		s.serveStoredSweepResults(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		results := j.results // append-only: the prefix is immutable
		status := j.status
		notify := j.notify
		j.mu.Unlock()
		for ; sent < len(results); sent++ {
			line, err := results[sent].MarshalLine()
			if err != nil {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if sweepTerminal(status) && sent == len(results) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepFrontier serves the analysis bundle of a finished sweep:
// the Pareto frontier over the spec's objectives, the per-axis
// sensitivity of the first objective, and the win-probability summary.
func (s *Server) handleSweepFrontier(w http.ResponseWriter, r *http.Request) {
	j := s.sweepByPath(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	status := j.status
	results := j.results
	j.mu.Unlock()
	if status != SweepDone {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep is %s; analyses need a done sweep", status))
		return
	}
	objectives := j.plan.Spec.Objectives
	front, err := dse.Frontier(results, objectives)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	type analyses struct {
		Objectives  []dse.Objective       `json:"objectives"`
		Frontier    []dse.Result          `json:"frontier"`
		Sensitivity []dse.AxisSensitivity `json:"sensitivity,omitempty"`
		Winners     *dse.WinnerSummary    `json:"winners,omitempty"`
	}
	out := analyses{Objectives: objectives, Frontier: front}
	if sens, err := dse.Sensitivity(results, objectives[0].Metric); err == nil {
		out.Sensitivity = sens
	}
	if win, err := dse.Winners(results, objectives[0]); err == nil {
		out.Winners = win
	}
	writeJSON(w, out)
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j := s.sweepByPath(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch {
	case sweepTerminal(j.status):
		// Nothing to do; report the terminal state.
	case j.status == SweepQueued:
		j.status = SweepCancelled
		j.finished = time.Now()
		close(j.notify)
		j.notify = make(chan struct{})
		s.metrics.SweepJobs.With(SweepCancelled).Add(1)
	default: // running
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	writeJSON(w, j.snapshot())
}

// ensureSweepDir creates the checkpoint directory up front so a
// misconfigured path fails at startup, not mid-sweep.
func ensureSweepDir(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}
