package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ppatc/internal/cluster"
	"ppatc/internal/dse"
	"ppatc/internal/obs/flight"
)

// Cluster mode: StartCluster joins this daemon to a peer group. Three
// cooperating mechanisms hang off the membership node:
//
//   - result routing: every canonical cache key has one owner on a
//     consistent-hash ring; a miss on a non-owner forwards the request
//     one hop to the owner (loop-guarded by X-PPATC-Forwarded) instead
//     of recomputing, and caches the reply locally;
//   - distributed sweeps: the node receiving POST /v1/sweeps becomes
//     the coordinator, shards the plan into contiguous ranges under a
//     lease table, and hands ranges to peers (and itself) over HTTP;
//     expired leases are stolen, completions are first-wins, and the
//     merged NDJSON is byte-identical to a single-node run;
//   - health: gossip state feeds /healthz and the ppatcd_cluster_*
//     metrics, and BeginShutdown gossips "leaving" before drain.

// forwardedHeader carries the hop path of a forwarded request: the
// node IDs that already handled it, comma-separated. One hop is the
// maximum — a second forward means ring disagreement and is refused.
const forwardedHeader = "X-PPATC-Forwarded"

// clusterState is everything cluster mode adds to a server.
type clusterState struct {
	node *cluster.Node

	mu sync.Mutex
	// coords indexes the distributed sweeps this node coordinates.
	coords map[string]*sweepCoord
	// working marks sweep jobs this node is already executing ranges
	// for, so duplicate work notifications don't double the loops.
	working map[string]bool
}

// StartCluster joins the server to a cluster under the given identity.
// Call it after New and before serving traffic; join lists peer base
// URLs (empty for the first node). The gossip endpoints are always
// mounted and reply 503 until this is called.
func (s *Server) StartCluster(nodeID, advertise string, join []string) error {
	node, err := cluster.StartNode(cluster.NodeConfig{
		ID:             nodeID,
		Advertise:      advertise,
		GossipInterval: s.cfg.ClusterGossipInterval,
		PeerTTL:        s.cfg.ClusterPeerTTL,
		Logger:         s.log,
	}, join)
	if err != nil {
		return err
	}
	c := &clusterState{
		node:    node,
		coords:  make(map[string]*sweepCoord),
		working: make(map[string]bool),
	}
	s.cluster.Store(c)
	s.metrics.clusterPeers = node.AliveCount
	s.log.Info("cluster mode", "node_id", nodeID, "advertise", advertise, "join", strings.Join(join, ","))
	return nil
}

// clusterNode returns the membership node, nil outside cluster mode.
func (s *Server) clusterNode() *cluster.Node {
	if c := s.cluster.Load(); c != nil {
		return c.node
	}
	return nil
}

// BeginShutdown flips /healthz to draining and gossips "leaving" to
// peers — call it before http.Server.Shutdown so load balancers and
// ring lookups stop routing here while in-flight requests drain.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
	if c := s.cluster.Load(); c != nil {
		c.node.Leave()
	}
}

// forwardSpec is what serveComputed needs to re-issue a request to the
// key owner: the endpoint path, the canonical request body, and the
// owner's address.
type forwardSpec struct {
	path     string
	body     []byte
	ownerID  string
	ownerURL string
}

// forwardSpecFor resolves the key's owner and, when it is a healthy
// remote peer and this request isn't already a forward, builds the
// forward spec. Returns nil in every serve-locally case.
func (s *Server) forwardSpecFor(r *http.Request, path, key string, canonicalBody any) *forwardSpec {
	c := s.cluster.Load()
	if c == nil || r.Header.Get(forwardedHeader) != "" {
		return nil
	}
	owner, self, ok := c.node.Owner(key)
	if !ok || self {
		return nil
	}
	body, err := json.Marshal(canonicalBody)
	if err != nil {
		return nil
	}
	return &forwardSpec{path: path, body: body, ownerID: owner.ID, ownerURL: owner.URL}
}

// refuseForwardLoop rejects a request whose hop path already proves a
// routing loop: two hops, or this node's own ID in the path. Returns
// true when the request was refused and written.
func (s *Server) refuseForwardLoop(w http.ResponseWriter, r *http.Request) bool {
	hops := r.Header.Get(forwardedHeader)
	if hops == "" {
		return false
	}
	n := s.clusterNode()
	parts := strings.Split(hops, ",")
	if len(parts) >= 2 || (n != nil && parts[0] == n.ID()) {
		s.metrics.ClusterForwards.With("refused").Add(1)
		writeError(w, http.StatusLoopDetected,
			fmt.Errorf("forward loop: request already crossed %q", hops))
		return true
	}
	return false
}

// forwardToPeer re-issues the request to the key owner and returns the
// owner's response body. The hop header names this node so the owner
// serves locally (and a loop is detectable).
func (s *Server) forwardToPeer(ctx context.Context, fwd *forwardSpec) ([]byte, error) {
	n := s.clusterNode()
	if n == nil {
		return nil, errors.New("cluster not started")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, fwd.ownerURL+fwd.path, bytes.NewReader(fwd.body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, n.ID())
	resp, err := n.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: %s", fwd.ownerID, resp.Status)
	}
	return body, nil
}

// computeForward is the miss path of a routed key: forward to the
// owner, cache its bytes locally (the owner persists; this node only
// caches), and attribute the round trip as peer_forward. A failed
// forward degrades to local compute — availability over placement.
func (s *Server) computeForward(ctx context.Context, key string, fwd *forwardSpec) ([]byte, flight.Breakdown, bool) {
	var bd flight.Breakdown
	start := time.Now()
	body, err := s.forwardToPeer(ctx, fwd)
	bd.PeerForwardNS = time.Since(start).Nanoseconds()
	if err != nil {
		s.metrics.ClusterForwards.With("fallback").Add(1)
		s.log.Warn("peer forward failed; computing locally",
			"key", key, "owner", fwd.ownerID, "error", err)
		return nil, bd, false
	}
	s.metrics.ClusterForwards.With("remote").Add(1)
	bd.Remote = true
	return s.cache.Put(key, body), bd, true
}

// --- distributed sweeps: wire types ---

// clusterWorkMsg notifies a peer that a distributed sweep wants
// workers: POST /cluster/v1/sweeps/work.
type clusterWorkMsg struct {
	JobID          string          `json:"job_id"`
	CoordinatorURL string          `json:"coordinator_url"`
	Spec           json.RawMessage `json:"spec"`
}

// clusterClaimReq asks the coordinator for a range:
// POST /cluster/v1/sweeps/{id}/claim.
type clusterClaimReq struct {
	Worker string `json:"worker"`
}

// clusterClaimResp is the coordinator's answer: a range to run
// ("range", with any already-resumed indices to skip), "wait" (all
// ranges validly leased right now), or "done".
type clusterClaimResp struct {
	Status string `json:"status"`
	Lo     int    `json:"lo,omitempty"`
	Hi     int    `json:"hi,omitempty"`
	Skip   []int  `json:"skip,omitempty"`
}

// clusterCompleteReq delivers a finished range's fresh results:
// POST /cluster/v1/sweeps/{id}/complete.
type clusterCompleteReq struct {
	Worker  string       `json:"worker"`
	Lo      int          `json:"lo"`
	Hi      int          `json:"hi"`
	Results []dse.Result `json:"results"`
}

type clusterCompleteResp struct {
	// Accepted is false when another worker completed the range first
	// (a stolen lease's original holder resurfacing); the results are
	// discarded and the worker moves on.
	Accepted bool `json:"accepted"`
}

// --- coordinator ---

// sweepCoord coordinates one distributed sweep: the lease table
// sharding the plan, and a reorder buffer merging accepted ranges back
// into plan order so the job's committed results are byte-identical to
// a single-node run.
type sweepCoord struct {
	s        *Server
	j        *sweepJob
	plan     *dse.Plan
	leases   *cluster.LeaseTable
	leaseTTL time.Duration
	// resumed marks indices adopted from the store/checkpoint before
	// the run; workers skip them and the merge fills them from results.
	resumed []bool
	// onFresh chains checkpoint + persistence for every freshly
	// evaluated point, called at merge time in completion order.
	onFresh func(dse.Result) error

	mu      sync.Mutex
	results []dse.Result
	present []bool
	next    int // first index not yet committed to the job
	failed  error
	done    chan struct{} // closed when every index has been committed
}

// newSweepCoord seeds the merge buffer with resumed results and
// commits any already-complete prefix, mirroring the single-node
// engine's pre-release of checkpointed points.
func newSweepCoord(s *Server, j *sweepJob, completed map[int]dse.Result, onFresh func(dse.Result) error) *sweepCoord {
	total := len(j.plan.Points)
	rangeSize := s.cfg.ClusterRangeSize
	if rangeSize <= 0 {
		// Auto: ~4 ranges per member so stealing has granularity without
		// drowning the coordinator in completion round trips.
		members := 1
		if n := s.clusterNode(); n != nil {
			members = n.AliveCount()
		}
		rangeSize = total / (members * 4)
		if rangeSize < 1 {
			rangeSize = 1
		}
	}
	co := &sweepCoord{
		s:        s,
		j:        j,
		plan:     j.plan,
		leases:   cluster.NewLeaseTable(total, rangeSize),
		leaseTTL: s.cfg.ClusterLeaseTTL,
		resumed:  make([]bool, total),
		onFresh:  onFresh,
		results:  make([]dse.Result, total),
		present:  make([]bool, total),
		done:     make(chan struct{}),
	}
	for i, r := range completed {
		if i >= 0 && i < total {
			co.results[i] = r
			co.present[i] = true
			co.resumed[i] = true
		}
	}
	co.mu.Lock()
	co.releaseLocked()
	co.mu.Unlock()
	return co
}

// claim hands a worker the next range, or reports wait/done.
func (co *sweepCoord) claim(worker string) clusterClaimResp {
	if co.leases.Done() {
		return clusterClaimResp{Status: "done"}
	}
	lo, hi, ok := co.leases.Claim(worker, co.leaseTTL)
	if !ok {
		if co.leases.Done() {
			return clusterClaimResp{Status: "done"}
		}
		return clusterClaimResp{Status: "wait"}
	}
	resp := clusterClaimResp{Status: "range", Lo: lo, Hi: hi}
	for i := lo; i < hi; i++ {
		if co.resumed[i] {
			resp.Skip = append(resp.Skip, i)
		}
	}
	return resp
}

// acceptRange merges one completed range. First completion of a range
// wins; duplicates (a stolen lease's original holder finishing late)
// are reported unaccepted and discarded, preserving exactly-once
// commitment per point. results must hold exactly the range's
// non-resumed points in ascending index order.
func (co *sweepCoord) acceptRange(lo, hi int, results []dse.Result) (bool, error) {
	want := 0
	for i := lo; i < hi; i++ {
		if !co.resumed[i] {
			want++
		}
	}
	if len(results) != want {
		return false, fmt.Errorf("range [%d, %d): got %d results, want %d", lo, hi, len(results), want)
	}
	idx := lo
	for _, r := range results {
		for idx < hi && co.resumed[idx] {
			idx++
		}
		if idx >= hi || r.Index != idx {
			return false, fmt.Errorf("range [%d, %d): unexpected result index %d", lo, hi, r.Index)
		}
		idx++
	}
	accepted, err := co.leases.Complete(lo, hi)
	if err != nil || !accepted {
		return false, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.failed != nil {
		return false, co.failed
	}
	for _, r := range results {
		// Checkpoint + persist before the point becomes visible anywhere,
		// matching the single-node OnComplete-before-OnResult ordering.
		if err := co.onFresh(r); err != nil {
			co.failLocked(err)
			return false, err
		}
		co.results[r.Index] = r
		co.present[r.Index] = true
	}
	co.releaseLocked()
	return true, nil
}

// releaseLocked commits the contiguous present prefix to the job in
// plan order — the same reorder-buffer discipline as the engine, so
// /v1/sweeps/{id}/results streams a stable, byte-identical prefix.
func (co *sweepCoord) releaseLocked() {
	for co.next < len(co.results) && co.present[co.next] {
		co.j.commit(co.results[co.next])
		co.next++
	}
	if co.next == len(co.results) {
		select {
		case <-co.done:
		default:
			close(co.done)
		}
	}
}

func (co *sweepCoord) failLocked(err error) {
	if co.failed == nil {
		co.failed = err
		select {
		case <-co.done:
		default:
			close(co.done)
		}
	}
}

// err returns the coordinator's terminal error, if any.
func (co *sweepCoord) err() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.failed
}

// finalResults returns the merged results after done closes cleanly.
func (co *sweepCoord) finalResults() []dse.Result {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.results
}

// runDistributedSweep is the cluster branch of runSweep: shard the
// plan, invite every alive peer, and work the lease table locally too
// (the coordinator is also a worker, and the local loop steals expired
// leases from dead peers — liveness never depends on any peer).
func (s *Server) runDistributedSweep(ctx context.Context, j *sweepJob, completed map[int]dse.Result, onFresh func(dse.Result) error, start time.Time) {
	c := s.cluster.Load()
	co := newSweepCoord(s, j, completed, onFresh)
	c.mu.Lock()
	c.coords[j.id] = co
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.coords, j.id)
		c.mu.Unlock()
	}()

	specJSON, err := json.Marshal(j.plan.Spec)
	if err != nil {
		s.finishSweep(j, SweepFailed, err, start)
		return
	}
	peers := c.node.AlivePeers()
	msg := clusterWorkMsg{JobID: j.id, CoordinatorURL: c.node.Advertise(), Spec: specJSON}
	for _, p := range peers {
		if err := s.postClusterJSON(ctx, p.URL+"/cluster/v1/sweeps/work", msg, nil); err != nil {
			// A peer that can't take work is only lost capacity: its
			// ranges fall to the local loop (or other peers) by stealing.
			s.log.Warn("sweep work notification failed", "id", j.id, "peer", p.ID, "error", err)
		}
	}
	s.log.Info("distributed sweep", "id", j.id, "points", len(j.plan.Points),
		"ranges", co.leases.Remaining(), "peers", len(peers))

	s.workLeases(ctx, co, c.node.ID(), func(lo, hi int, skip []int) ([]dse.Result, error) {
		return s.executeRange(ctx, j.plan, lo, hi, skip, co)
	}, func(lo, hi int, rs []dse.Result) (bool, error) {
		return co.acceptRange(lo, hi, rs)
	})

	select {
	case <-co.done:
	case <-ctx.Done():
	}
	switch {
	case ctx.Err() != nil:
		// Explicit cancel and daemon shutdown both leave the job
		// resumable rather than failed, like the single-node path.
		s.finishSweep(j, SweepCancelled, nil, start)
	case co.err() != nil:
		s.finishSweep(j, SweepFailed, co.err(), start)
	default:
		results := co.finalResults()
		s.persistSweep(j.id, results, j.requestID)
		s.finishSweep(j, SweepDone, nil, start)
	}
}

// workLeases is the claim-execute-complete loop shared by the
// coordinator's local worker and remote workers: claim a range, run
// it, deliver it, repeat until the table is done (waiting out ranges
// validly leased elsewhere — if their holder dies, the lease expires
// and the loop steals it).
func (s *Server) workLeases(ctx context.Context, co *sweepCoord, worker string,
	execute func(lo, hi int, skip []int) ([]dse.Result, error),
	deliver func(lo, hi int, rs []dse.Result) (bool, error)) {
	poll := co.leaseTTL / 10
	if poll < 20*time.Millisecond {
		poll = 20 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	for ctx.Err() == nil {
		resp := co.claim(worker)
		switch resp.Status {
		case "done":
			return
		case "wait":
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return
			}
		case "range":
			rs, err := execute(resp.Lo, resp.Hi, resp.Skip)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				co.mu.Lock()
				co.failLocked(err)
				co.mu.Unlock()
				return
			}
			accepted, err := deliver(resp.Lo, resp.Hi, rs)
			if err != nil {
				return
			}
			status := "completed"
			if !accepted {
				status = "duplicate"
			}
			s.metrics.ClusterRanges.With(status).Add(1)
		}
	}
}

// executeRange evaluates [lo, hi) of the plan, skipping resumed
// indices, and returns the fresh results in ascending index order.
func (s *Server) executeRange(ctx context.Context, plan *dse.Plan, lo, hi int, skip []int, co *sweepCoord) ([]dse.Result, error) {
	skipSet := make(map[int]bool, len(skip))
	completed := make(map[int]dse.Result, len(skip))
	for _, i := range skip {
		skipSet[i] = true
		if co != nil {
			co.mu.Lock()
			completed[i] = co.results[i]
			co.mu.Unlock()
		} else {
			// Remote workers don't hold the resumed values; a placeholder
			// keeps the engine from evaluating the point, and the filter
			// below drops it before delivery.
			completed[i] = dse.Result{Index: i}
		}
	}
	rs, err := dse.RunPlanRange(ctx, plan, lo, hi, dse.Options{
		Workers:     s.cfg.Workers,
		Completed:   completed,
		EvalCounter: s.metrics.SweepPoints,
	})
	if err != nil {
		return nil, err
	}
	fresh := rs[:0]
	for _, r := range rs {
		if !skipSet[r.Index] {
			fresh = append(fresh, r)
		}
	}
	return fresh, nil
}

// --- remote worker ---

// runClusterWorker executes ranges of a remote coordinator's sweep
// until the coordinator reports done (or this server shuts down).
func (s *Server) runClusterWorker(jobID, coordURL string, plan *dse.Plan) {
	c := s.cluster.Load()
	if c == nil {
		return
	}
	defer func() {
		c.mu.Lock()
		delete(c.working, jobID)
		c.mu.Unlock()
	}()
	ctx := s.base
	worker := c.node.ID()
	leaseTTL := s.cfg.ClusterLeaseTTL
	poll := leaseTTL / 10
	if poll < 20*time.Millisecond {
		poll = 20 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	claimURL := coordURL + "/cluster/v1/sweeps/" + jobID + "/claim"
	completeURL := coordURL + "/cluster/v1/sweeps/" + jobID + "/complete"
	for ctx.Err() == nil {
		var resp clusterClaimResp
		if err := s.postClusterJSON(ctx, claimURL, clusterClaimReq{Worker: worker}, &resp); err != nil {
			// Coordinator unreachable or job gone: nothing left to do here;
			// the coordinator's own loop covers the remaining ranges.
			s.log.Warn("cluster worker claim failed", "job", jobID, "error", err)
			return
		}
		switch resp.Status {
		case "done":
			return
		case "wait":
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return
			}
		case "range":
			rs, err := s.executeRange(ctx, plan, resp.Lo, resp.Hi, resp.Skip, nil)
			if err != nil {
				s.log.Warn("cluster worker range failed", "job", jobID, "lo", resp.Lo, "hi", resp.Hi, "error", err)
				return
			}
			var cresp clusterCompleteResp
			err = s.postClusterJSON(ctx, completeURL,
				clusterCompleteReq{Worker: worker, Lo: resp.Lo, Hi: resp.Hi, Results: rs}, &cresp)
			if err != nil {
				s.log.Warn("cluster worker complete failed", "job", jobID, "error", err)
				return
			}
			status := "completed"
			if !cresp.Accepted {
				status = "duplicate"
			}
			s.metrics.ClusterRanges.With(status).Add(1)
		default:
			return
		}
	}
}

// postClusterJSON is the cluster control-plane HTTP helper: POST v as
// JSON, decode the reply into out (when non-nil), error on non-2xx.
func (s *Server) postClusterJSON(ctx context.Context, url string, v, out any) error {
	n := s.clusterNode()
	if n == nil {
		return errors.New("cluster not started")
	}
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.Client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out)
}

// --- HTTP handlers ---

// requireCluster fetches the cluster state or writes 503.
func (s *Server) requireCluster(w http.ResponseWriter) *clusterState {
	c := s.cluster.Load()
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("cluster mode not enabled"))
	}
	return c
}

// handleClusterGossip is the membership exchange endpoint.
func (s *Server) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w)
	if c == nil {
		return
	}
	var msg cluster.GossipMsg
	if err := decodeBody(r, &msg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, c.node.HandleGossip(msg))
}

// handleClusterWork accepts a work invitation: verify the shipped spec
// expands to the advertised job (the job ID is the spec hash — a
// mismatched invitation is refused, not executed), then work the
// coordinator's lease table in the background.
func (s *Server) handleClusterWork(w http.ResponseWriter, r *http.Request) {
	c := s.requireCluster(w)
	if c == nil {
		return
	}
	var msg clusterWorkMsg
	if err := decodeBody(r, &msg); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := dse.ParseSpec(bytes.NewReader(msg.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := dse.Expand(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(plan.Hash) < 12 || plan.Hash[:12] != msg.JobID {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("spec hash %.12s does not match job %q", plan.Hash, msg.JobID))
		return
	}
	if msg.CoordinatorURL == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing coordinator_url"))
		return
	}
	c.mu.Lock()
	already := c.working[msg.JobID]
	if !already {
		c.working[msg.JobID] = true
	}
	c.mu.Unlock()
	if !already {
		go s.runClusterWorker(msg.JobID, msg.CoordinatorURL, plan)
	}
	// Content-Type must precede the status line: headers set after
	// WriteHeader are silently dropped, and the 202 body would reach the
	// coordinator untyped.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"status": "accepted"})
}

// coordByPath resolves the coordinator for a claim/complete call.
func (s *Server) coordByPath(w http.ResponseWriter, r *http.Request) *sweepCoord {
	c := s.requireCluster(w)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	co := c.coords[r.PathValue("id")]
	c.mu.Unlock()
	if co == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("not coordinating sweep %q", r.PathValue("id")))
	}
	return co
}

func (s *Server) handleClusterClaim(w http.ResponseWriter, r *http.Request) {
	co := s.coordByPath(w, r)
	if co == nil {
		return
	}
	var req clusterClaimReq
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, co.claim(req.Worker))
}

func (s *Server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	co := s.coordByPath(w, r)
	if co == nil {
		return
	}
	var req clusterCompleteReq
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	accepted, err := co.acceptRange(req.Lo, req.Hi, req.Results)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	status := "completed"
	if !accepted {
		status = "stolen"
	}
	s.metrics.ClusterRanges.With(status).Add(1)
	writeJSON(w, clusterCompleteResp{Accepted: accepted})
}

// clusterHealth summarizes membership for /healthz.
func (s *Server) clusterHealth() map[string]any {
	c := s.cluster.Load()
	if c == nil {
		return nil
	}
	byState := make(map[string]int, 2)
	for _, m := range c.node.Members() {
		byState[m.State]++
	}
	// encoding/json renders map keys sorted, so the body is stable.
	return map[string]any{
		"node_id": c.node.ID(),
		"peers":   c.node.AliveCount(),
		"members": byState,
	}
}
