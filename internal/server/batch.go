package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
)

// maxBatchItems bounds one /v1/batch request. A full cross product of
// the bundled systems, workloads and grids is 2×8×4 = 64 tuples; 256
// leaves headroom without letting one request monopolize the pool.
const maxBatchItems = 256

// batchItem names one evaluation tuple of a batch request.
type batchItem struct {
	// System is "all-Si", "M3D IGZO/CNFET/Si", or the shorthands si/m3d.
	System string `json:"system"`
	// Workload is a bundled Embench-style kernel name.
	Workload string `json:"workload"`
	// Grid names the energy grid (default "US").
	Grid string `json:"grid"`
}

// batchRequest asks for many evaluations in one round trip.
type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchItemResult is one item's slice of the batch response: the echoed
// (canonicalized) tuple plus either the evaluation result or the item's
// own error. Item errors don't fail the batch — each item stands alone.
type batchItemResult struct {
	Index    int             `json:"index"`
	System   string          `json:"system,omitempty"`
	Workload string          `json:"workload,omitempty"`
	Grid     string          `json:"grid,omitempty"`
	Cache    string          `json:"cache,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// batchResponse is the /v1/batch envelope.
type batchResponse struct {
	Count int               `json:"count"`
	Items []batchItemResult `json:"items"`
}

// handleBatch evaluates a list of (system, workload, grid) tuples in one
// request. Each item resolves through the same cache keys as
// /v1/evaluate — cached tuples are answered inline, the rest fan out
// across the worker pool (duplicate tuples within the batch coalesce via
// the flight group). Invalid items report their error in place; the
// batch as a whole fails only on malformed JSON, an empty or oversized
// item list, or a dead/cancelled request context.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one item"))
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the limit of %d", len(req.Items), maxBatchItems))
		return
	}

	out := batchResponse{
		Count: len(req.Items),
		Items: make([]batchItemResult, len(req.Items)),
	}
	// First pass, inline: canonicalize every tuple and serve the cache
	// hits without touching a goroutine. Misses are collected for fan-out.
	type pending struct {
		idx  int
		key  string
		work workFn
	}
	var misses []pending
	for i, it := range req.Items {
		res := &out.Items[i]
		res.Index = i
		if it.Grid == "" {
			it.Grid = "US"
		}
		sysName, err := core.CanonicalSystemName(it.System)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		wl, err := embench.ByName(it.Workload)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		grid, err := carbon.GridByName(it.Grid)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		res.System, res.Workload, res.Grid = sysName, wl.Name, grid.Name
		key := evaluateKey(sysName, wl.Name, grid.Name)
		if b, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			res.Cache = "HIT"
			res.Result = b
			continue
		}
		misses = append(misses, pending{idx: i, key: key, work: s.evaluateWork(sysName, wl, grid)})
	}

	// Second pass: evaluate the misses concurrently. compute() already
	// bounds real work by the pool and coalesces duplicate tuples, so
	// the semaphore only caps how many goroutines sit waiting on it.
	if len(misses) > 0 {
		ctx := r.Context()
		sem := make(chan struct{}, s.cfg.Workers)
		var wg sync.WaitGroup
		for _, p := range misses {
			wg.Add(1)
			go func(p pending) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res := &out.Items[p.idx]
				body, disposition, err := s.compute(ctx, p.key, p.work)
				if err != nil {
					res.Error = err.Error()
					return
				}
				res.Cache = disposition
				res.Result = body
			}(p)
		}
		wg.Wait()
		// A dead client can't use partial results; report the
		// cancellation (or timeout) as the batch outcome.
		if err := ctx.Err(); err != nil {
			s.writeComputeError(w, err)
			return
		}
	}

	writeJSON(w, out)
}
