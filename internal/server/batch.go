package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ppatc/internal/carbon"
	"ppatc/internal/core"
	"ppatc/internal/embench"
	"ppatc/internal/obs/flight"
)

// maxBatchItems bounds one /v1/batch request. A full cross product of
// the bundled systems, workloads and grids is 2×8×4 = 64 tuples; 256
// leaves headroom without letting one request monopolize the pool.
const maxBatchItems = 256

// batchInteractiveMisses is the admission-control threshold: a batch
// whose cache probe leaves at most this many misses is classified
// interactive (it is request-sized work), anything colder is bulk.
const batchInteractiveMisses = 4

// batchItem names one evaluation tuple of a batch request.
type batchItem struct {
	// System is "all-Si", "M3D IGZO/CNFET/Si", or the shorthands si/m3d.
	System string `json:"system"`
	// Workload is a bundled Embench-style kernel name.
	Workload string `json:"workload"`
	// Grid names the energy grid (default "US").
	Grid string `json:"grid"`
}

// batchRequest asks for many evaluations in one round trip.
type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchItemResult is one item's slice of the batch response: the echoed
// (canonicalized) tuple plus either the evaluation result or the item's
// own error. Item errors don't fail the batch — each item stands alone.
type batchItemResult struct {
	Index    int             `json:"index"`
	System   string          `json:"system,omitempty"`
	Workload string          `json:"workload,omitempty"`
	Grid     string          `json:"grid,omitempty"`
	Cache    string          `json:"cache,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// batchResponse is the /v1/batch envelope.
type batchResponse struct {
	Count int               `json:"count"`
	Items []batchItemResult `json:"items"`
}

// handleBatch evaluates a list of (system, workload, grid) tuples in one
// request. Each item resolves through the same cache keys as
// /v1/evaluate — cached tuples are answered inline, the rest fan out
// across the worker pool (duplicate tuples within the batch coalesce via
// the flight group). Invalid items report their error in place; the
// batch as a whole fails only on malformed JSON, an empty or oversized
// item list, or a dead/cancelled request context.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one item"))
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d items exceeds the limit of %d", len(req.Items), maxBatchItems))
		return
	}

	att := attributionOf(w)
	att.BatchSize = len(req.Items)

	out := batchResponse{
		Count: len(req.Items),
		Items: make([]batchItemResult, len(req.Items)),
	}
	// First pass, inline: canonicalize every tuple and serve the cache
	// hits without touching a goroutine. Misses are collected for fan-out.
	type pending struct {
		idx  int
		key  string
		work workFn
	}
	var misses []pending
	//ppatcvet:ignore determinism latency attribution measures wall time only; it never flows into response bytes
	lookupStart := time.Now()
	sawHit := false
	for i, it := range req.Items {
		res := &out.Items[i]
		res.Index = i
		if it.Grid == "" {
			it.Grid = "US"
		}
		sysName, err := core.CanonicalSystemName(it.System)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		wl, err := embench.ByName(it.Workload)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		grid, err := carbon.GridByName(it.Grid)
		if err != nil {
			res.Error = err.Error()
			continue
		}
		res.System, res.Workload, res.Grid = sysName, wl.Name, grid.Name
		key := evaluateKey(sysName, wl.Name, grid.Name)
		if b, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			res.Cache = "HIT"
			res.Result = b
			sawHit = true
			continue
		}
		misses = append(misses, pending{idx: i, key: key, work: s.evaluateWork(sysName, wl, grid)})
	}
	att.CacheLookupNS += time.Since(lookupStart).Nanoseconds()

	// Second pass: evaluate the misses. Admission classification uses
	// the cache probe the first pass already paid for: a batch with at
	// most a handful of misses is interactive-sized work, while a cold
	// batch is bulk — its computations queue behind every interactive
	// job, so single evaluations never wait out a 256-tuple fan-out.
	// Bulk batches are additionally chunked: misses are split into
	// bounded sub-units that run their items sequentially, so one batch
	// occupies at most len(misses)/chunk pool slots at a time and the
	// scheduler interleaves chunks of concurrent batches.
	if len(misses) > 0 {
		class := ClassBulk
		if len(misses) <= batchInteractiveMisses {
			class = ClassInteractive
		}
		att.Class = class.String()
		ctx := r.Context()
		chunkSize := s.cfg.BatchChunk
		chunks := make([][]pending, 0, (len(misses)+chunkSize-1)/chunkSize)
		for lo := 0; lo < len(misses); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(misses) {
				hi = len(misses)
			}
			chunks = append(chunks, misses[lo:hi])
		}
		sem := make(chan struct{}, s.cfg.Workers)
		var wg sync.WaitGroup
		// Per-item attributions are private to each goroutine; after the
		// barrier they are folded into the request's attribution with the
		// concurrent fan-out's wall clock split proportionally across
		// stages — item times overlap, so their raw sum would exceed the
		// latency the client actually saw.
		itemAtts := make([]flight.Attribution, len(misses))
		//ppatcvet:ignore determinism latency attribution measures wall time only; it never flows into response bytes
		fanStart := time.Now()
		base := 0
		for _, chunk := range chunks {
			wg.Add(1)
			go func(base int, chunk []pending) {
				defer wg.Done()
				if !acquireSlot(ctx, sem) {
					return
				}
				defer func() { <-sem }()
				for i, p := range chunk {
					ia := &itemAtts[base+i]
					ia.RequestID = att.RequestID
					ia.Class = class.String()
					// Everything between the fan-out start and this item's
					// turn — the chunk's semaphore wait plus its predecessors'
					// runtime — is the same head-of-line pressure as the pool
					// queue: count it as queue_wait so a cold batch behind a
					// saturated pool attributes honestly.
					ia.QueueWaitNS += time.Since(fanStart).Nanoseconds()
					res := &out.Items[p.idx]
					// Batch items never forward: one batch can touch many keys
					// with many owners, and a burst of cross-node hops would
					// cost more than the recompute it saves.
					body, disposition, err := s.compute(ctx, p.key, p.work, ia, nil)
					ia.Disposition = disposition
					if err != nil {
						res.Error = err.Error()
						continue
					}
					res.Cache = disposition
					res.Result = body
				}
			}(base, chunk)
			base += len(chunk)
		}
		wg.Wait()
		wallNS := time.Since(fanStart).Nanoseconds()
		att.AddBreakdown(splitFanOut(itemAtts, wallNS))
		// A dead client can't use partial results; report the
		// cancellation (or timeout) as the batch outcome.
		if err := ctx.Err(); err != nil {
			s.writeComputeError(w, err)
			return
		}
		att.Disposition = aggregateDisposition(itemAtts, sawHit)
	} else if sawHit {
		att.Disposition = "HIT"
	}
	w.Header().Set("X-Cache", att.DispositionOrNone())

	writeJSON(w, out)
}

// splitFanOut folds the per-item stage timings of a concurrent fan-out
// into one breakdown whose sum equals the fan-out's wall clock: each
// stage gets its proportional share. Wall-clock attribution of
// overlapping work is inherently a model; proportional split keeps the
// partition invariant (stages re-add to the total) while preserving
// what dominated — a cold batch stuck behind a saturated pool shows up
// as mostly queue_wait, exactly the head-of-line signal ROADMAP item 2
// needs.
func splitFanOut(items []flight.Attribution, wallNS int64) flight.Breakdown {
	var qw, cl, cp, en, sw int64
	for i := range items {
		qw += items[i].QueueWaitNS
		cl += items[i].CacheLookupNS
		cp += items[i].ComputeNS
		en += items[i].EncodeNS
		sw += items[i].StoreWriteNS
	}
	sum := qw + cl + cp + en + sw
	if wallNS <= 0 {
		// The whole fan-out fit inside one timer tick; there is no wall
		// time to attribute.
		return flight.Breakdown{}
	}
	if sum <= 0 {
		// Zero denominator: every item completed without recording any
		// stage time (an all-hit fan-out inside clock resolution).
		// Dividing here would make the scale NaN and poison every stage;
		// fall back to attributing the full wall time to "other" so the
		// partition invariant (stages re-add to the total) still holds.
		return flight.Breakdown{OtherNS: wallNS}
	}
	scale := float64(wallNS) / float64(sum)
	if scale > 1 {
		// Items accounted for less than the wall clock (scheduling
		// overhead); never inflate stages — the difference lands in
		// "other".
		scale = 1
	}
	bd := flight.Breakdown{
		QueueWaitNS:   int64(float64(qw) * scale),
		CacheLookupNS: int64(float64(cl) * scale),
		ComputeNS:     int64(float64(cp) * scale),
		EncodeNS:      int64(float64(en) * scale),
		StoreWriteNS:  int64(float64(sw) * scale),
	}
	// Truncation and the scale clamp leave the split short of the wall
	// clock; report the shortfall explicitly instead of leaving it to
	// the end-to-end residual.
	if short := wallNS - (bd.QueueWaitNS + bd.CacheLookupNS + bd.ComputeNS + bd.EncodeNS + bd.StoreWriteNS); short > 0 {
		bd.OtherNS = short
	}
	return bd
}

// acquireSlot takes one fan-out semaphore slot, or gives up the moment
// ctx dies: a cancelled batch must not keep its remaining chunks queued
// behind a saturated fan-out, holding goroutines alive for a client
// that already hung up.
func acquireSlot(ctx context.Context, sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// aggregateDisposition reduces a batch's per-item dispositions to one
// headline value, worst-first: a single miss makes the batch a MISS.
func aggregateDisposition(items []flight.Attribution, sawHit bool) string {
	saw := map[string]bool{}
	for i := range items {
		saw[items[i].Disposition] = true
	}
	switch {
	case saw["MISS"]:
		return "MISS"
	case saw["STORE"]:
		return "STORE"
	case saw["COALESCED"]:
		return "COALESCED"
	case sawHit || saw["HIT"]:
		return "HIT"
	default:
		return ""
	}
}
