package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ppatc/internal/core"
	"ppatc/internal/obs"
)

// Metrics is the daemon's observability surface, built on the shared
// obs.Registry so the CLI, daemon, and any future backend declare their
// instruments against one implementation. It keeps per-endpoint request
// counters and latency histograms, the cache/coalescing/backpressure
// counters, and per-pipeline-stage latency histograms fed from trace
// spans. All methods are safe for concurrent use.
type Metrics struct {
	reg         *obs.Registry
	requests    *obs.CounterVec
	latency     *obs.HistogramVec
	stages      *obs.HistogramVec
	disposition *obs.HistogramVec2
	// queueWait is the worker-pool queue wait by admission class
	// (interactive/bulk) — the per-class head-of-line signal the
	// admission-control scheduler is judged on.
	queueWait *obs.HistogramVec

	// slowest tracks the worst-latency request seen per
	// endpoint × disposition pair, with its request ID — the exemplar
	// that turns a histogram tail into a greppable flight-recorder and
	// log lookup. Rendered by WriteTo as
	// ppatcd_slowest_request_seconds gauge lines.
	slowMu  sync.Mutex
	slowest map[string]map[string]slowExemplar

	// CacheHits/CacheMisses count result-cache lookups; Coalesced counts
	// requests that piggybacked on an identical in-flight computation;
	// Rejections counts requests turned away by a full queue.
	CacheHits, CacheMisses, Coalesced, Rejections *obs.Counter

	// SweepPoints counts design points evaluated by sweep jobs;
	// SweepJobs counts finished jobs by terminal status; SweepSeconds
	// is the job-duration histogram, by terminal status.
	SweepPoints  *obs.Counter
	SweepJobs    *obs.CounterVec
	SweepSeconds *obs.HistogramVec

	// StoreHits counts cache misses served from the persistent result
	// store; StoreWrites counts successful write-throughs; StoreErrors
	// counts store operations that failed and degraded to compute.
	StoreHits, StoreWrites, StoreErrors *obs.Counter

	// ClusterForwards counts cross-node request routing by outcome:
	// "remote" (the key's owner served it), "fallback" (forward failed,
	// computed locally), "refused" (a forward loop was rejected).
	// ClusterRanges counts distributed-sweep range deliveries by
	// outcome: "completed", "duplicate" (this node lost a first-wins
	// race), "stolen" (a remote worker lost one).
	ClusterForwards *obs.CounterVec
	ClusterRanges   *obs.CounterVec

	// queueDepth, cacheLen, sweepQueue, storeKeys, flightDropped and
	// streamSubs are gauge hooks wired by the server.
	queueDepth            func() int64
	queueDepthInteractive func() int64
	queueDepthBulk        func() int64
	cacheLen              func() int
	sweepQueue            func() int
	storeKeys             func() int
	flightDropped         func() int64
	streamSubs            func() int64
	clusterPeers          func() int
}

// slowExemplar is one endpoint × disposition pair's worst request.
type slowExemplar struct {
	requestID string
	d         time.Duration
}

// sweepBuckets span the sweep-duration range: seconds for smoke sweeps
// up to an hour for full Monte Carlo studies.
var sweepBuckets = []float64{0.1, 0.5, 1, 5, 10, 30, 60, 300, 600, 1800, 3600}

// NewMetrics builds the daemon's metric set on a fresh registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:                   reg,
		slowest:               make(map[string]map[string]slowExemplar),
		queueDepth:            func() int64 { return 0 },
		queueDepthInteractive: func() int64 { return 0 },
		queueDepthBulk:        func() int64 { return 0 },
		cacheLen:              func() int { return 0 },
		sweepQueue:            func() int { return 0 },
		storeKeys:             func() int { return 0 },
		flightDropped:         func() int64 { return 0 },
		streamSubs:            func() int64 { return 0 },
		clusterPeers:          func() int { return 0 },
	}
	m.requests = reg.CounterVec("ppatcd_requests_total", "Requests served, by endpoint.", "endpoint")
	m.CacheHits = reg.Counter("ppatcd_cache_hits_total", "Result-cache hits.")
	m.CacheMisses = reg.Counter("ppatcd_cache_misses_total", "Result-cache misses.")
	m.Coalesced = reg.Counter("ppatcd_coalesced_total", "Requests coalesced onto an identical in-flight computation.")
	m.Rejections = reg.Counter("ppatcd_rejections_total", "Requests rejected by a full queue.")
	reg.GaugeFunc("ppatcd_queue_depth", "Jobs waiting in the worker queue.",
		func() float64 { return float64(m.queueDepth()) })
	reg.GaugeFunc("ppatcd_queue_depth_interactive", "Interactive-class jobs waiting in the worker queue.",
		func() float64 { return float64(m.queueDepthInteractive()) })
	reg.GaugeFunc("ppatcd_queue_depth_bulk", "Bulk-class jobs waiting in the worker queue.",
		func() float64 { return float64(m.queueDepthBulk()) })
	m.queueWait = reg.HistogramVec("ppatcd_queue_wait_seconds",
		"Worker-pool queue wait, by admission class (interactive/bulk).", "class", nil)
	reg.GaugeFunc("ppatcd_cache_entries", "Entries in the result cache.",
		func() float64 { return float64(m.cacheLen()) })
	m.latency = reg.HistogramVec("ppatcd_request_seconds", "Request latency, by endpoint.", "endpoint", nil)
	m.disposition = reg.HistogramVec2("ppatcd_request_disposition_seconds",
		"Request latency, by endpoint and cache disposition (HIT/MISS/COALESCED/STORE/BYPASS/NONE).",
		"endpoint", "disposition", nil)
	m.stages = reg.HistogramVec("ppatcd_stage_seconds", "Pipeline stage latency, by stage.", "stage", nil)
	reg.GaugeFunc("ppatcd_flight_dropped_total", "Flight-recorder events dropped to slot contention.",
		func() float64 { return float64(m.flightDropped()) })
	reg.GaugeFunc("ppatcd_stream_subscribers", "Live /v1/metrics/stream subscriptions.",
		func() float64 { return float64(m.streamSubs()) })
	m.SweepPoints = reg.Counter("ppatcd_sweep_points_total", "Design points evaluated by sweep jobs.")
	m.SweepJobs = reg.CounterVec("ppatcd_sweep_jobs_total", "Sweep jobs finished, by terminal status.", "status")
	m.SweepSeconds = reg.HistogramVec("ppatcd_sweep_seconds", "Sweep job duration, by terminal status.", "status", sweepBuckets)
	reg.GaugeFunc("ppatcd_sweep_queue_depth", "Sweep jobs waiting for a runner.",
		func() float64 { return float64(m.sweepQueue()) })
	m.StoreHits = reg.Counter("ppatcd_store_hits_total", "Cache misses served from the persistent result store.")
	m.StoreWrites = reg.Counter("ppatcd_store_writes_total", "Results written through to the persistent store.")
	m.StoreErrors = reg.Counter("ppatcd_store_errors_total", "Persistent store operations that failed (degraded to compute).")
	reg.GaugeFunc("ppatcd_store_keys", "Live keys in the persistent result store.",
		func() float64 { return float64(m.storeKeys()) })
	reg.GaugeFunc("ppatcd_cluster_peers", "Alive cluster members, this node included (0 when not clustered).",
		func() float64 { return float64(m.clusterPeers()) })
	m.ClusterForwards = reg.CounterVec("ppatcd_cluster_forwards_total",
		"Cross-node request routing, by outcome (remote/fallback/refused).", "outcome")
	m.ClusterRanges = reg.CounterVec("ppatcd_cluster_ranges_total",
		"Distributed-sweep range deliveries, by outcome (completed/duplicate/stolen).", "outcome")
	return m
}

// Observe records one served request on an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration) {
	m.requests.With(endpoint).Add(1)
	m.latency.With(endpoint).Observe(d)
}

// ObserveDisposition records one served request on the
// endpoint × disposition latency surface — fed from every request,
// cache hits and coalesced requests included (the plain stage
// histograms only see cache-miss computations) — and keeps the
// worst-latency request ID as an exemplar.
//
//ppatc:hotpath
func (m *Metrics) ObserveDisposition(endpoint, disposition string, d time.Duration, requestID string) {
	m.disposition.With(endpoint, disposition).Observe(d)
	m.slowMu.Lock()
	inner, ok := m.slowest[endpoint]
	if !ok {
		inner = make(map[string]slowExemplar)
		m.slowest[endpoint] = inner
	}
	if d > inner[disposition].d {
		inner[disposition] = slowExemplar{requestID: requestID, d: d}
	}
	m.slowMu.Unlock()
}

// ObserveQueueWait records one computation's measured pool queue wait
// on its admission class.
//
//ppatc:hotpath
func (m *Metrics) ObserveQueueWait(class string, d time.Duration) {
	m.queueWait.With(class).Observe(d)
}

// QueueWaitCount reports the per-class queue-wait histogram's
// observation count (used by tests).
func (m *Metrics) QueueWaitCount(class string) int64 {
	return m.queueWait.With(class).Count()
}

// DispositionCount reports the endpoint × disposition histogram's
// observation count (used by tests).
func (m *Metrics) DispositionCount(endpoint, disposition string) int64 {
	return m.disposition.With(endpoint, disposition).Count()
}

// Requests reports the request count of an endpoint.
func (m *Metrics) Requests(endpoint string) int64 {
	return m.requests.With(endpoint).Load()
}

// ObserveStages walks an evaluation trace and feeds every pipeline-stage
// span (embench, edram, synth, floorplan, carbon) into the per-stage
// latency histograms. Cache hits carry no trace, so only real
// computations contribute.
func (m *Metrics) ObserveStages(tr *obs.Trace) {
	if tr == nil {
		return
	}
	known := make(map[string]bool, 5)
	for _, s := range core.Stages() {
		known[s] = true
	}
	tr.Walk(func(name string, d time.Duration) {
		if known[name] {
			m.stages.With(name).Observe(d)
		}
	})
}

// StageCount reports the per-stage histogram's observation count (used
// by tests).
func (m *Metrics) StageCount(stage string) int64 {
	return m.stages.With(stage).Count()
}

// WriteTo renders the registry in Prometheus text exposition format,
// followed by the slowest-request exemplar gauges.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	n, err := m.reg.WriteTo(w)
	if err != nil {
		return n, err
	}
	en, err := m.writeExemplars(w)
	return n + en, err
}

// writeExemplars renders one gauge line per endpoint × disposition
// pair carrying the worst observed latency and the request ID that
// produced it — the jump-off point from a histogram tail to the flight
// recorder and logs.
func (m *Metrics) writeExemplars(w io.Writer) (int64, error) {
	m.slowMu.Lock()
	type row struct {
		endpoint, disposition, requestID string
		seconds                          float64
	}
	rows := make([]row, 0, len(m.slowest))
	for ep, inner := range m.slowest {
		for disp, ex := range inner {
			rows = append(rows, row{ep, disp, ex.requestID, ex.d.Seconds()})
		}
	}
	m.slowMu.Unlock()
	if len(rows) == 0 {
		return 0, nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].endpoint != rows[j].endpoint {
			return rows[i].endpoint < rows[j].endpoint
		}
		return rows[i].disposition < rows[j].disposition
	})
	var n int64
	c, err := fmt.Fprintf(w, "# HELP ppatcd_slowest_request_seconds Worst observed request latency, by endpoint and disposition, with its request ID.\n# TYPE ppatcd_slowest_request_seconds gauge\n")
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, r := range rows {
		c, err := fmt.Fprintf(w, "ppatcd_slowest_request_seconds{endpoint=%q,disposition=%q,request_id=%q} %g\n",
			r.endpoint, r.disposition, r.requestID, r.seconds)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
