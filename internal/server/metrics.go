package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. The spread
// covers both cache hits (sub-millisecond) and full suite evaluations
// (seconds).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with lock-free observation.
// Bucket counts are stored per-bucket and cumulated at render time, the
// way Prometheus expects `le` buckets.
type histogram struct {
	counts    []atomic.Int64 // one per latencyBuckets entry; overflow in count-sum
	count     atomic.Int64
	sumMicros atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumMicros.Add(d.Microseconds())
}

// endpointMetrics accumulates per-endpoint counters.
type endpointMetrics struct {
	requests atomic.Int64
	latency  *histogram
}

// Metrics is the daemon's observability surface: atomic counters and
// per-endpoint latency histograms, rendered in Prometheus text format at
// /metrics. All methods are safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	// CacheHits/CacheMisses count result-cache lookups; Coalesced counts
	// requests that piggybacked on an identical in-flight computation;
	// Rejections counts requests turned away by a full queue.
	CacheHits, CacheMisses, Coalesced, Rejections atomic.Int64

	// queueDepth and cacheLen are gauge hooks wired by the server.
	queueDepth func() int64
	cacheLen   func() int
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints:  make(map[string]*endpointMetrics),
		queueDepth: func() int64 { return 0 },
		cacheLen:   func() int { return 0 },
	}
}

func (m *Metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = &endpointMetrics{latency: newHistogram()}
		m.endpoints[name] = e
	}
	return e
}

// Observe records one served request on an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration) {
	e := m.endpoint(endpoint)
	e.requests.Add(1)
	e.latency.observe(d)
}

// Requests reports the request count of an endpoint.
func (m *Metrics) Requests(endpoint string) int64 {
	return m.endpoint(endpoint).requests.Load()
}

// WriteTo renders the registry in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...any) error {
		c, err := fmt.Fprintf(w, format, args...)
		n += int64(c)
		return err
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	eps := make(map[string]*endpointMetrics, len(names))
	for _, name := range names {
		eps[name] = m.endpoints[name]
	}
	m.mu.Unlock()

	if err := p("# HELP ppatcd_requests_total Requests served, by endpoint.\n# TYPE ppatcd_requests_total counter\n"); err != nil {
		return n, err
	}
	for _, name := range names {
		if err := p("ppatcd_requests_total{endpoint=%q} %d\n", name, eps[name].requests.Load()); err != nil {
			return n, err
		}
	}
	for _, c := range []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"ppatcd_cache_hits_total", "Result-cache hits.", &m.CacheHits},
		{"ppatcd_cache_misses_total", "Result-cache misses.", &m.CacheMisses},
		{"ppatcd_coalesced_total", "Requests coalesced onto an identical in-flight computation.", &m.Coalesced},
		{"ppatcd_rejections_total", "Requests rejected by a full queue.", &m.Rejections},
	} {
		if err := p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v.Load()); err != nil {
			return n, err
		}
	}
	if err := p("# HELP ppatcd_queue_depth Jobs waiting in the worker queue.\n# TYPE ppatcd_queue_depth gauge\nppatcd_queue_depth %d\n", m.queueDepth()); err != nil {
		return n, err
	}
	if err := p("# HELP ppatcd_cache_entries Entries in the result cache.\n# TYPE ppatcd_cache_entries gauge\nppatcd_cache_entries %d\n", m.cacheLen()); err != nil {
		return n, err
	}

	if err := p("# HELP ppatcd_request_seconds Request latency, by endpoint.\n# TYPE ppatcd_request_seconds histogram\n"); err != nil {
		return n, err
	}
	for _, name := range names {
		h := eps[name].latency
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			if err := p("ppatcd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", name, fmt.Sprintf("%g", ub), cum); err != nil {
				return n, err
			}
		}
		if err := p("ppatcd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, h.count.Load()); err != nil {
			return n, err
		}
		if err := p("ppatcd_request_seconds_sum{endpoint=%q} %g\n", name, float64(h.sumMicros.Load())/1e6); err != nil {
			return n, err
		}
		if err := p("ppatcd_request_seconds_count{endpoint=%q} %d\n", name, h.count.Load()); err != nil {
			return n, err
		}
	}
	return n, nil
}
