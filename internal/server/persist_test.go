package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ppatc/internal/store"
)

// blockedDir returns a path that MkdirAll cannot create: a child of a
// regular file.
func blockedDir(t *testing.T) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(f, "dir")
}

type healthBody struct {
	Status      string        `json:"status"`
	Persistence persistStatus `json:"persistence"`
}

func getHealth(t *testing.T, ts *httptest.Server) healthBody {
	t.Helper()
	_, b := get(t, ts, "/healthz")
	var h healthBody
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("decode healthz %s: %v", b, err)
	}
	return h
}

// TestHealthzPersistenceStatus pins the degrade-don't-die contract: a
// broken sweep-checkpoint or store directory keeps the daemon serving
// but is surfaced on /healthz instead of silently swallowed.
func TestHealthzPersistenceStatus(t *testing.T) {
	t.Run("ok", func(t *testing.T) {
		cfg := quietConfig()
		cfg.SweepDir = t.TempDir()
		cfg.StoreDir = t.TempDir()
		_, ts := newSweepServer(t, cfg)
		h := getHealth(t, ts)
		if h.Status != "ok" || h.Persistence.SweepDir != "ok" || h.Persistence.Store != "ok" {
			t.Errorf("want all ok, got %+v", h)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		_, ts := newSweepServer(t, quietConfig())
		h := getHealth(t, ts)
		if h.Status != "ok" || h.Persistence.SweepDir != "disabled" || h.Persistence.Store != "disabled" {
			t.Errorf("want ok/disabled, got %+v", h)
		}
	})
	t.Run("degraded", func(t *testing.T) {
		cfg := quietConfig()
		cfg.SweepDir = blockedDir(t)
		cfg.StoreDir = blockedDir(t)
		srv, ts := newSweepServer(t, cfg)
		h := getHealth(t, ts)
		if h.Status != "degraded" {
			t.Errorf("status = %q, want degraded", h.Status)
		}
		for name, got := range map[string]string{
			"sweep_dir": h.Persistence.SweepDir,
			"store":     h.Persistence.Store,
		} {
			if len(got) < len("degraded: ") || got[:len("degraded: ")] != "degraded: " {
				t.Errorf("%s = %q, want degraded: <why>", name, got)
			}
		}
		// Degraded persistence must not degrade serving.
		resp, _ := post(t, ts, "/v1/evaluate", `{"system":"si","workload":"huff"}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("evaluate under degraded persistence: status %d", resp.StatusCode)
		}
		if srv.store != nil {
			t.Error("degraded store should be nil")
		}
	})
	t.Run("bad backend", func(t *testing.T) {
		cfg := quietConfig()
		cfg.StoreDir = t.TempDir()
		cfg.StoreBackend = "floppy"
		_, ts := newSweepServer(t, cfg)
		if h := getHealth(t, ts); h.Status != "degraded" {
			t.Errorf("unknown backend: status = %q, want degraded", h.Status)
		}
	})
}

// TestRestartServesFromStore is the PR's acceptance test: a daemon
// killed and restarted on the same -store-dir serves a previously
// computed sweep's results and a previously evaluated point from disk,
// with zero pipeline re-evaluations — pinned by the evaluation counters.
func TestRestartServesFromStore(t *testing.T) {
	storeDir := t.TempDir()
	cfg := quietConfig()
	cfg.StoreDir = storeDir

	// Life 1: compute an evaluation and a full sweep, then die.
	srv1 := New(cfg)
	ts1 := httptest.NewServer(srv1.Handler())
	const evalReq = `{"system":"si","workload":"huff"}`
	resp, evalBody := post(t, ts1, "/v1/evaluate", evalReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d: %s", resp.StatusCode, evalBody)
	}
	_, b := post(t, ts1, "/v1/sweeps", smokeSweep)
	var st sweepStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("sweep create: %v", err)
	}
	if got := waitSweep(t, ts1, st.ID); got.Status != SweepDone {
		t.Fatalf("sweep ended %q: %s", got.Status, got.Error)
	}
	_, liveNDJSON := get(t, ts1, "/v1/sweeps/"+st.ID+"/results")
	pointsEvaluated := srv1.Metrics().SweepPoints.Load()
	if pointsEvaluated == 0 {
		t.Fatal("sweep evaluated nothing")
	}
	ts1.Close()
	srv1.Close()

	// Life 2: same store directory, fresh process state.
	srv2 := New(cfg)
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	// The finished sweep replays from disk, byte-identically, under an
	// ID the in-memory job table has never seen.
	resp, storedNDJSON := get(t, ts2, "/v1/sweeps/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stored sweep results: status %d: %s", resp.StatusCode, storedNDJSON)
	}
	if resp.Header.Get("X-Cache") != "STORE" {
		t.Errorf("X-Cache = %q, want STORE", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(storedNDJSON, liveNDJSON) {
		t.Error("stored sweep replay differs from the live stream")
	}
	_, b = get(t, ts2, "/v1/sweeps/"+st.ID)
	var restored sweepStatus
	if err := json.Unmarshal(b, &restored); err != nil {
		t.Fatalf("restored status: %v", err)
	}
	if restored.Status != SweepDone || !restored.Stored || restored.Completed != restored.Total {
		t.Errorf("restored status = %+v", restored)
	}

	// The evaluation replays from the warmed cache, byte-identically.
	resp, evalBody2 := post(t, ts2, "/v1/evaluate", evalReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate after restart: status %d", resp.StatusCode)
	}
	if disp := resp.Header.Get("X-Cache"); disp != "HIT" {
		t.Errorf("X-Cache = %q, want HIT (warmed from store)", disp)
	}
	if !bytes.Equal(evalBody2, evalBody) {
		t.Error("evaluation differs across restart")
	}

	// Re-submitting the same sweep spec adopts every stored point.
	_, b = post(t, ts2, "/v1/sweeps", smokeSweep)
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	final := waitSweep(t, ts2, st.ID)
	if final.Status != SweepDone {
		t.Fatalf("re-run ended %q: %s", final.Status, final.Error)
	}
	if final.Resumed != final.Total {
		t.Errorf("resumed %d of %d points from the store", final.Resumed, final.Total)
	}

	// The acceptance bar: this entire life served history without one
	// pipeline evaluation.
	m := srv2.Metrics()
	if got := m.SweepPoints.Load(); got != 0 {
		t.Errorf("restarted daemon evaluated %d sweep points, want 0", got)
	}
	if got := m.CacheMisses.Load(); got != 0 {
		t.Errorf("restarted daemon had %d cache misses, want 0 (warm cache)", got)
	}
	if got := m.StageCount("embench"); got != 0 {
		t.Errorf("restarted daemon ran %d embench stages, want 0", got)
	}
}

// TestStoreDispositionAfterEviction pins the middle tier: evicted from
// the LRU but present on disk is served as X-Cache: STORE, not
// recomputed.
func TestStoreDispositionAfterEviction(t *testing.T) {
	cfg := quietConfig()
	cfg.CacheEntries = 1
	cfg.CacheShards = 1
	cfg.Store = store.NewMemStore()
	srv, ts := newSweepServer(t, cfg)

	reqA := `{"system":"si","workload":"huff"}`
	reqB := `{"system":"m3d","workload":"huff"}`
	respA, bodyA := post(t, ts, "/v1/evaluate", reqA)
	if respA.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first A: X-Cache %q", respA.Header.Get("X-Cache"))
	}
	post(t, ts, "/v1/evaluate", reqB) // evicts A from the 1-entry cache

	respA2, bodyA2 := post(t, ts, "/v1/evaluate", reqA)
	if got := respA2.Header.Get("X-Cache"); got != "STORE" {
		t.Errorf("evicted A: X-Cache %q, want STORE", got)
	}
	if !bytes.Equal(bodyA2, bodyA) {
		t.Error("store-served body differs from computed body")
	}
	if hits := srv.Metrics().StoreHits.Load(); hits == 0 {
		t.Error("store hit not counted")
	}
	// The store promotion put A back in the cache: next read is a HIT.
	respA3, _ := post(t, ts, "/v1/evaluate", reqA)
	if got := respA3.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("promoted A: X-Cache %q, want HIT", got)
	}
}

// TestResultEndpoints covers the operator surface over the store.
func TestResultEndpoints(t *testing.T) {
	cfg := quietConfig()
	cfg.Store = store.NewMemStore()
	_, ts := newSweepServer(t, cfg)

	_, evalBody := post(t, ts, "/v1/evaluate", `{"system":"si","workload":"huff"}`)

	resp, b := get(t, ts, "/v1/results?prefix=evaluate%7C")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", resp.StatusCode, b)
	}
	var list resultListResponse
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || len(list.Results) != 1 {
		t.Fatalf("list = %+v, want exactly the evaluate record", list)
	}
	if list.Results[0].Kind != "evaluate" {
		t.Errorf("kind = %q", list.Results[0].Kind)
	}
	if list.Stats.Keys != 1 || list.Stats.Puts != 1 {
		t.Errorf("stats = %+v", list.Stats)
	}

	// Fetch the record verbatim by its (escaped) canonical key.
	resp, b = get(t, ts, "/v1/results/"+url.PathEscape(list.Results[0].Key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Cache") != "STORE" {
		t.Errorf("X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b, evalBody) {
		t.Error("stored record differs from served response")
	}

	if resp, _ = get(t, ts, "/v1/results/"+url.PathEscape("no|such|key")); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing key: status %d, want 404", resp.StatusCode)
	}

	// Without a store the endpoints refuse rather than 404-ing.
	_, tsNone := newSweepServer(t, quietConfig())
	if resp, _ = get(t, tsNone, "/v1/results"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no store: status %d, want 503", resp.StatusCode)
	}
	if resp, _ = get(t, tsNone, "/v1/results/x"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no store get: status %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentCacheStoreWriteThrough hammers the sharded LRU and the
// store write-through/promotion paths from many goroutines with a cache
// small enough to evict constantly. Run under -race; it also pins the
// copy-on-Put contract — bytes handed to the cache/store stay immutable
// after the caller's buffer is recycled.
func TestConcurrentCacheStoreWriteThrough(t *testing.T) {
	cfg := quietConfig()
	cfg.CacheEntries = 4
	cfg.CacheShards = 2
	cfg.Store = store.NewMemStore()
	srv, _ := newSweepServer(t, cfg)

	const (
		workers = 8
		rounds  = 200
		keys    = 16
	)
	canonical := make([][]byte, keys)
	for i := range canonical {
		canonical[i] = []byte(fmt.Sprintf(`{"point":%d,"payload":"0123456789abcdef"}`, i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % keys
				key := fmt.Sprintf("evaluate|conc|%d", i)
				switch r % 3 {
				case 0:
					// Write through a scratch buffer, then scribble on it:
					// the cache and store must hold their own copies.
					scratch := append([]byte(nil), canonical[i]...)
					stored := srv.cache.Put(key, scratch)
					srv.persistResult(key, stored)
					for b := range scratch {
						scratch[b] = 'X'
					}
				case 1:
					if b, ok := srv.cache.Get(key); ok && !bytes.Equal(b, canonical[i]) {
						t.Errorf("cache corrupted key %s", key)
						return
					}
				case 2:
					if b, ok := srv.storeLookup(key); ok && !bytes.Equal(b, canonical[i]) {
						t.Errorf("store corrupted key %s", key)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the dust settles every persisted record is pristine.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("evaluate|conc|%d", i)
		rec, ok, err := cfg.Store.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if ok && !bytes.Equal(rec.Body, canonical[i]) {
			t.Errorf("store holds corrupted body for %s", key)
		}
	}
	if errs := srv.Metrics().StoreErrors.Load(); errs != 0 {
		t.Errorf("store errors under concurrency: %d", errs)
	}
}
