package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ppatc/internal/obs"
	"ppatc/internal/obs/flight"
)

// The flight-recorder surface: GET /debug/flight dumps the recorder's
// retained events as NDJSON, and GET /v1/metrics/stream pushes completed
// request events (plus periodic counter snapshots) over Server-Sent
// Events — the seed of the streaming API surface.

// Recorder exposes the flight recorder (tests, the load harness).
func (s *Server) Recorder() *flight.Recorder { return s.recorder }

// handleFlight dumps the flight recorder as NDJSON, one Event per line,
// in ascending sequence order. Query parameters: ?ring=recent|slow|all
// (default all) selects which ring(s); ?n= keeps only the newest n
// events. The dump is copy-on-read — safe to hit on a daemon at full
// load.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	ring := "all"
	max := 0
	if r.URL.RawQuery != "" {
		q := r.URL.Query()
		if v := q.Get("ring"); v != "" {
			ring = v
		}
		if v := q.Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
				return
			}
			max = n
		}
	}
	evs := s.recorder.Dump(ring, max)
	if evs == nil && ring != "all" && ring != "recent" && ring != "slow" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown ring %q (valid: recent, slow, all)", ring))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Flight-Dropped", strconv.FormatInt(s.recorder.Dropped(), 10))
	enc := json.NewEncoder(w)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return
		}
	}
}

// streamSnapshot is the periodic counter snapshot pushed on the SSE
// stream between request events.
type streamSnapshot struct {
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Coalesced   int64  `json:"coalesced"`
	Rejections  int64  `json:"rejections"`
	QueueDepth  int64  `json:"queue_depth"`
	FlightSeq   uint64 `json:"flight_seq"`
	Dropped     int64  `json:"flight_dropped"`
}

// metricsStreamHeartbeat paces the snapshot events; var so tests can
// tighten it.
var metricsStreamHeartbeat = 5 * time.Second

// metricsStreamKeepAlive paces the ": ping" comment lines that keep an
// idle stream's connection alive through proxies and NATs (SSE clients
// ignore comment lines by spec); var so tests can tighten it.
var metricsStreamKeepAlive = 15 * time.Second

// handleMetricsStream pushes completed-request flight events as
// Server-Sent Events ("event: flight"), with a periodic counter
// snapshot ("event: metrics"). The subscription is released the moment
// the client disconnects; slow consumers miss events rather than
// back-pressuring the request path.
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = obs.NewID()
	}
	w.Header().Set("X-Request-ID", rid)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	events, cancel := s.recorder.Hub().Subscribe(64)
	defer cancel()

	enc := json.NewEncoder(w)
	writeEvent := func(kind string, v any) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: ", kind); err != nil {
			return false
		}
		if err := enc.Encode(v); err != nil { // Encode appends the newline
			return false
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	snapshot := func() streamSnapshot {
		return streamSnapshot{
			CacheHits:   s.metrics.CacheHits.Load(),
			CacheMisses: s.metrics.CacheMisses.Load(),
			Coalesced:   s.metrics.Coalesced.Load(),
			Rejections:  s.metrics.Rejections.Load(),
			QueueDepth:  s.pool.QueueDepth(),
			FlightSeq:   s.recorder.Seq(),
			Dropped:     s.recorder.Dropped(),
		}
	}
	if !writeEvent("metrics", snapshot()) {
		return
	}

	ticker := time.NewTicker(metricsStreamHeartbeat)
	defer ticker.Stop()
	keepAlive := time.NewTicker(metricsStreamKeepAlive)
	defer keepAlive.Stop()
	for {
		select {
		case ev := <-events:
			if !writeEvent("flight", &ev) {
				return
			}
		case <-ticker.C:
			if !writeEvent("metrics", snapshot()) {
				return
			}
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.base.Done():
			return
		}
	}
}
